// fastcons-sim — run a propagation experiment from the command line, no C++
// required. Prints the same summary block the figure benches produce.
//
// Usage:
//   fastcons-sim [--topology ba|er|waxman|line|ring|grid|star|tree|complete]
//                [--nodes N] [--algorithm fast|demand-order|weak]
//                [--reps R] [--seed S] [--demand uniform|zipf]
//                [--fanout K] [--loss P] [--high-fraction F] [--cdf]
//
// Examples:
//   fastcons-sim --topology ba --nodes 50 --algorithm fast --reps 10000
//   fastcons-sim --topology grid --nodes 49 --algorithm weak --cdf
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "experiment/propagation.hpp"
#include "stats/table.hpp"
#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace {

using namespace fastcons;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology ba|er|waxman|line|ring|grid|star|tree|"
               "complete] [--nodes N] [--algorithm fast|demand-order|weak] "
               "[--reps R] [--seed S] [--demand uniform|zipf] [--fanout K] "
               "[--loss P] [--high-fraction F] [--cdf]\n",
               argv0);
  std::exit(2);
}

TopologyFactory topology_factory(const std::string& kind, std::size_t n) {
  const LatencyRange lat{0.01, 0.05};
  if (kind == "ba") {
    return [n, lat](Rng& rng) { return make_barabasi_albert(n, 2, lat, rng); };
  }
  if (kind == "er") {
    const double p = std::min(1.0, 8.0 / static_cast<double>(n));
    return [n, p, lat](Rng& rng) { return make_erdos_renyi(n, p, lat, rng); };
  }
  if (kind == "waxman") {
    return [n, lat](Rng& rng) { return make_waxman(n, 0.6, 0.3, lat, rng); };
  }
  if (kind == "line") {
    return [n, lat](Rng& rng) { return make_line(n, lat, rng); };
  }
  if (kind == "ring") {
    return [n, lat](Rng& rng) { return make_ring(n, lat, rng); };
  }
  if (kind == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return [side, lat](Rng& rng) { return make_grid(side, side, lat, rng); };
  }
  if (kind == "star") {
    return [n, lat](Rng& rng) { return make_star(n, lat, rng); };
  }
  if (kind == "tree") {
    return [n, lat](Rng& rng) { return make_binary_tree(n, lat, rng); };
  }
  if (kind == "complete") {
    return [n, lat](Rng& rng) { return make_complete(n, lat, rng); };
  }
  throw ConfigError("unknown topology kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology = "ba";
  std::string algorithm = "fast";
  std::string demand_kind = "uniform";
  std::size_t nodes = 50;
  std::size_t reps = 1000;
  std::uint64_t seed = 42;
  std::size_t fanout = 1;
  double loss = 0.0;
  double high_fraction = 0.10;
  bool print_cdf = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--topology") topology = value();
      else if (arg == "--nodes") nodes = std::stoul(value());
      else if (arg == "--algorithm") algorithm = value();
      else if (arg == "--reps") reps = std::stoul(value());
      else if (arg == "--seed") seed = std::stoull(value());
      else if (arg == "--demand") demand_kind = value();
      else if (arg == "--fanout") fanout = std::stoul(value());
      else if (arg == "--loss") loss = std::stod(value());
      else if (arg == "--high-fraction") high_fraction = std::stod(value());
      else if (arg == "--cdf") print_cdf = true;
      else usage(argv[0]);
    }

    PropagationExperiment exp;
    exp.topology = topology_factory(topology, nodes);
    if (demand_kind == "uniform") {
      exp.demand = [](const Graph& g, Rng& rng) {
        return std::make_shared<StaticDemand>(
            make_uniform_random_demand(g.size(), 0.0, 100.0, rng));
      };
    } else if (demand_kind == "zipf") {
      exp.demand = [](const Graph& g, Rng& rng) {
        return std::make_shared<StaticDemand>(
            make_zipf_demand(g.size(), 1.0, 100.0, rng));
      };
    } else {
      throw ConfigError("unknown demand kind: " + demand_kind);
    }
    if (algorithm == "fast") exp.sim.protocol = ProtocolConfig::fast();
    else if (algorithm == "demand-order") exp.sim.protocol = ProtocolConfig::demand_order_only();
    else if (algorithm == "weak") exp.sim.protocol = ProtocolConfig::weak();
    else throw ConfigError("unknown algorithm: " + algorithm);
    exp.sim.protocol.advert_period = 0.0;
    exp.sim.protocol.fast_fanout = fanout;
    exp.sim.loss_rate = loss;
    exp.repetitions = reps;
    exp.seed = seed;
    exp.high_demand_fraction = high_fraction;

    // Structural context from one sample topology.
    Rng probe(seed);
    const Graph sample = exp.topology(probe);
    std::printf("fastcons-sim: %s, %zu nodes (diameter %zu), %s demand, "
                "algorithm %s, %zu reps, loss %.2f\n",
                topology.c_str(), sample.size(), diameter(sample),
                demand_kind.c_str(), algorithm.c_str(), reps, loss);

    const PropagationResult result = run_propagation(exp);
    Table summary({"metric", "value"});
    summary.add_row({"mean sessions (per replica)",
                     Table::num(result.all.mean())});
    summary.add_row({"mean sessions (high-demand subset)",
                     Table::num(result.high_demand.mean())});
    summary.add_row({"mean sessions to ALL replicas",
                     Table::num(result.time_to_full.mean())});
    summary.add_row({"median / p90 / p99",
                     Table::num(result.all.quantile(0.5), 2) + " / " +
                         Table::num(result.all.quantile(0.9), 2) + " / " +
                         Table::num(result.all.quantile(0.99), 2)});
    summary.add_row({"repetitions converged",
                     Table::num(result.reps_converged) + "/" +
                         Table::num(result.reps_total)});
    summary.add_row({"messages / repetition",
                     Table::num(result.traffic.total_messages() /
                                result.reps_total)});
    summary.add_row({"wire bytes / repetition",
                     Table::num(result.traffic.total_bytes() /
                                result.reps_total)});
    summary.print(std::cout);

    if (print_cdf) {
      Table cdf({"sessions", "P(delivered)"});
      for (double x = 0.0; x <= 12.0 + 1e-9; x += 0.5) {
        cdf.add_row({Table::num(x, 1), Table::num(result.all.at(x))});
      }
      std::cout << '\n';
      cdf.print(std::cout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fastcons-sim: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
