// determinism_lint: static scan of the digest-bearing layers for
// nondeterminism sources.
//
// The simulation stack promises byte-identical JSON digests for any --jobs
// value and any host (ROADMAP, PR 2-4). That promise dies quietly the first
// time someone iterates a std::unordered_map into a result, keys a map by
// pointer, or reads a wall clock inside a trial. This tool rejects those
// constructs mechanically in every layer whose state can reach a digest:
//
//   src/common src/core src/sim src/sim_runtime src/replication src/demand
//   src/experiment src/topology src/islands src/harness src/stats
//
// (src/net is excluded: the live path is wall-clock by nature and its
// results are never digested — see docs/experiments.md. Live-only harness
// files are excluded via the allowlist.)
//
// Rules (comments and string literals are stripped before matching):
//   unordered-container  std::unordered_map / std::unordered_set: iteration
//                        order is seeded per process; even lookup-only uses
//                        must be allowlisted with a justification.
//   c-rand               rand( / srand( — process-global, unseeded by us.
//   c-time               time( — wall clock.
//   random-device        std::random_device — entropy by design.
//   wall-clock           std::chrono::*_clock::now — wall clock. Timing
//                        measurement around (not inside) trial results is
//                        legitimate and allowlisted (runner.cpp,
//                        construction_cost.*).
//   pointer-keyed        std::map/std::set keyed by a pointer type:
//                        iteration order = allocation order.
//
// Allowlist format (tools/determinism_allowlist.txt): one entry per line,
//   <repo-relative-path>:<rule> # <reason>
// The reason is mandatory; entries that match nothing fail the run, so the
// allowlist cannot rot.
//
// Exit status: 0 clean, 1 violations or stale allowlist entries, 2 usage or
// I/O errors. --self-test runs the embedded corpus (each rule must catch its
// seeded violation, comment/string stripping must prevent false positives).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // repo-relative path
  std::size_t line = 0;
  std::string rule;
  std::string excerpt;
};

struct AllowEntry {
  std::string path;
  std::string rule;  // "*" allows every rule for the path
  std::string reason;
  mutable bool used = false;
};

/// Replaces comments, string literals and char literals with spaces,
/// preserving newlines so line numbers survive. Handles //, /* */, "...",
/// '...' and backslash escapes; raw strings are treated as plain strings
/// (good enough: none of the scanned layers use them).
std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { code, line_comment, block_comment, string, chr };
  State state = State::code;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::string;
          out += ' ';
        } else if (c == '\'') {
          state = State::chr;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          state = State::code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::string:
      case State::chr:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if ((state == State::string && c == '"') ||
                   (state == State::chr && c == '\'')) {
          state = State::code;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos]` starts the word `word` with no identifier character
/// directly before it ("rand(" matches, "operand(" does not). A preceding
/// ':' is allowed so std::rand / std::time still match.
bool word_at(const std::string& text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos == 0) return true;
  return !ident_char(text[pos - 1]);
}

/// First template argument of the container starting after `open` ("<"),
/// with nesting respected. Used to spot pointer keys.
std::string first_template_arg(const std::string& text, std::size_t open) {
  int depth = 0;
  std::string arg;
  for (std::size_t i = open; i < text.size() && arg.size() < 200; ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
      if (depth == 1) continue;
    } else if (c == '>') {
      --depth;
      if (depth == 0) break;
    } else if (c == ',' && depth == 1) {
      break;
    }
    if (depth >= 1) arg += c;
  }
  return arg;
}

void scan_line(const std::string& text, std::size_t line_no,
               const std::string& rel_path, std::vector<Violation>& out) {
  const auto add = [&](const char* rule, std::size_t pos) {
    const std::size_t end = std::min(text.size(), pos + 40);
    out.push_back(Violation{rel_path, line_no, rule, text.substr(pos, end - pos)});
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (word_at(text, i, "unordered_map") || word_at(text, i, "unordered_set")) {
      add("unordered-container", i);
    } else if (word_at(text, i, "rand(") || word_at(text, i, "srand(")) {
      add("c-rand", i);
    } else if (word_at(text, i, "time(")) {
      add("c-time", i);
    } else if (word_at(text, i, "random_device")) {
      add("random-device", i);
    } else if (text.compare(i, 12, "_clock::now(") == 0) {
      add("wall-clock", i);
    } else if (word_at(text, i, "map<") || word_at(text, i, "set<")) {
      const std::size_t open = text.find('<', i);
      const std::string key = first_template_arg(text, open);
      if (key.find('*') != std::string::npos) add("pointer-keyed", i);
    }
  }
}

std::vector<Violation> scan_source(const std::string& source,
                                   const std::string& rel_path) {
  std::vector<Violation> out;
  const std::string stripped = strip_comments_and_strings(source);
  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start <= stripped.size()) {
    std::size_t end = stripped.find('\n', start);
    if (end == std::string::npos) end = stripped.size();
    scan_line(stripped.substr(start, end - start), line_no, rel_path, out);
    start = end + 1;
    ++line_no;
  }
  return out;
}

std::vector<AllowEntry> parse_allowlist(std::istream& in, bool& ok) {
  std::vector<AllowEntry> entries;
  ok = true;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t hash = line.find('#');
    if (hash == std::string::npos) {
      std::cerr << "allowlist:" << line_no
                << ": entry has no '# reason' — a justification is mandatory\n";
      ok = false;
      continue;
    }
    std::string spec = line.substr(0, hash);
    while (!spec.empty() && (spec.back() == ' ' || spec.back() == '\t')) {
      spec.pop_back();
    }
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "allowlist:" << line_no
                << ": entry must be <path>:<rule|*> # reason\n";
      ok = false;
      continue;
    }
    AllowEntry e;
    e.path = spec.substr(0, colon);
    e.rule = spec.substr(colon + 1);
    e.reason = line.substr(hash + 1);
    entries.push_back(std::move(e));
  }
  return entries;
}

bool allowed(const std::vector<AllowEntry>& allow, const Violation& v) {
  bool hit = false;
  for (const AllowEntry& e : allow) {
    if (e.path == v.file && (e.rule == "*" || e.rule == v.rule)) {
      e.used = true;
      hit = true;  // keep marking later duplicates as used
    }
  }
  return hit;
}

const char* const kScannedLayers[] = {
    "src/common",   "src/core",     "src/sim",        "src/sim_runtime",
    "src/replication", "src/demand", "src/experiment", "src/topology",
    "src/islands",  "src/harness",  "src/stats",      "src/durability",
    "src/health",
};

int run_tree_scan(const fs::path& root, const fs::path& allowlist_path) {
  std::ifstream allow_file(allowlist_path);
  if (!allow_file) {
    std::cerr << "cannot open allowlist " << allowlist_path << "\n";
    return 2;
  }
  bool allow_ok = true;
  const std::vector<AllowEntry> allow = parse_allowlist(allow_file, allow_ok);
  if (!allow_ok) return 2;

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const char* layer : kScannedLayers) {
    const fs::path dir = root / layer;
    if (!fs::exists(dir)) {
      std::cerr << "scanned layer missing: " << dir << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string rel = fs::relative(file, root).generic_string();
      for (Violation& v : scan_source(buffer.str(), rel)) {
        if (!allowed(allow, v)) violations.push_back(std::move(v));
      }
      ++files_scanned;
    }
  }

  int status = 0;
  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": " << v.rule << ": " << v.excerpt
              << "\n";
    status = 1;
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::cout << "stale allowlist entry (matched nothing): " << e.path << ":"
                << e.rule << "\n";
      status = 1;
    }
  }
  if (status == 0) {
    std::cout << "determinism lint: " << files_scanned << " files clean\n";
  }
  return status;
}

// --- self-test --------------------------------------------------------------

struct SelfCase {
  const char* name;
  const char* source;
  const char* expect_rule;  // nullptr = must be clean
};

const SelfCase kSelfCases[] = {
    {"unordered_map iteration",
     "#include <unordered_map>\n"
     "std::unordered_map<int, double> t;\n"
     "double sum() { double s = 0; for (auto& [k, v] : t) s += v; return s; }\n",
     "unordered-container"},
    {"unordered_set", "std::unordered_set<int> seen;\n", "unordered-container"},
    {"c rand", "int draw() { return rand() % 6; }\n", "c-rand"},
    {"std::rand", "int draw() { return std::rand(); }\n", "c-rand"},
    {"c time", "long stamp() { return time(nullptr); }\n", "c-time"},
    {"random_device", "std::random_device rd;\n", "random-device"},
    {"steady_clock now",
     "auto t0 = std::chrono::steady_clock::now();\n", "wall-clock"},
    {"system_clock now",
     "auto t0 = std::chrono::system_clock::now();\n", "wall-clock"},
    {"pointer-keyed map", "std::map<Node*, int> order;\n", "pointer-keyed"},
    {"pointer-keyed set", "std::set<const Event*> live;\n", "pointer-keyed"},
    {"comment mention is fine",
     "// we replaced std::unordered_map with sorted vectors\n"
     "/* rand() would break digests */\n"
     "int x = 0;\n",
     nullptr},
    {"string mention is fine",
     "const char* msg = \"do not use time() here\";\n", nullptr},
    {"operand is not rand", "int operand(int a); int y = operand(2);\n",
     nullptr},
    {"value-keyed map is fine", "std::map<int, char*> names;\n", nullptr},
    {"runtime_error is fine",
     "throw std::runtime_error(\"boom\");\n", nullptr},
};

int run_self_test() {
  int failures = 0;
  for (const SelfCase& c : kSelfCases) {
    const std::vector<Violation> found = scan_source(c.source, "self_test.cpp");
    if (c.expect_rule == nullptr) {
      if (!found.empty()) {
        std::cerr << "self-test FAIL [" << c.name << "]: expected clean, got "
                  << found.front().rule << "\n";
        ++failures;
      }
    } else {
      const bool hit =
          std::any_of(found.begin(), found.end(), [&](const Violation& v) {
            return v.rule == c.expect_rule;
          });
      if (!hit) {
        std::cerr << "self-test FAIL [" << c.name << "]: rule "
                  << c.expect_rule << " not triggered\n";
        ++failures;
      }
    }
  }
  // Allowlist machinery: suppression works, stale entries are detected.
  {
    std::istringstream allow_src(
        "self_test.cpp:unordered-container # lookup-only, proven by test\n"
        "other.cpp:c-rand # never matches\n");
    bool ok = true;
    const std::vector<AllowEntry> allow = parse_allowlist(allow_src, ok);
    if (!ok || allow.size() != 2) {
      std::cerr << "self-test FAIL: allowlist parse\n";
      ++failures;
    } else {
      const Violation v{"self_test.cpp", 1, "unordered-container", "..."};
      if (!allowed(allow, v)) {
        std::cerr << "self-test FAIL: allowlist suppression\n";
        ++failures;
      }
      if (allow[1].used) {
        std::cerr << "self-test FAIL: stale entry marked used\n";
        ++failures;
      }
    }
  }
  // A reason-less allowlist entry must be rejected.
  {
    std::istringstream allow_src("self_test.cpp:c-rand\n");
    bool ok = true;
    parse_allowlist(allow_src, ok);
    if (ok) {
      std::cerr << "self-test FAIL: reason-less entry accepted\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "determinism lint self-test: "
              << std::size(kSelfCases) + 2 << " cases passed\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path allowlist;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else {
      std::cerr << "usage: determinism_lint --root DIR --allowlist FILE\n"
                   "       determinism_lint --self-test\n";
      return 2;
    }
  }
  if (self_test) return run_self_test();
  if (root.empty() || allowlist.empty()) {
    std::cerr << "determinism_lint: --root and --allowlist are required "
                 "(or --self-test)\n";
    return 2;
  }
  return run_tree_scan(root, allowlist);
}
