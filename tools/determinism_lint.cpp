// determinism_lint: thin alias over the fastcons_lint determinism rule.
//
// The original single-purpose scanner grew into tools/fastcons_lint/ (five
// rules, shared lexer/index, per-rule self-tests). This binary keeps the
// historical CLI and exit-code contract so existing ctest entries, CI jobs
// and muscle memory keep working:
//
//   determinism_lint --root DIR --allowlist FILE
//   determinism_lint --self-test
//
// Exit status: 0 clean, 1 violations or stale allowlist entries, 2 usage or
// I/O errors. Rule semantics (unordered containers, rand/srand/time,
// random_device, *_clock::now, pointer-keyed maps; reasons mandatory in the
// allowlist, stale entries fail) are unchanged — they now live in
// tools/fastcons_lint/rules.cpp and are exercised by its self-test corpus.
#include <iostream>
#include <string>
#include <string_view>

#include "fastcons_lint/lint.hpp"

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else {
      std::cerr << "usage: determinism_lint --root DIR --allowlist FILE\n"
                   "       determinism_lint --self-test\n";
      return 2;
    }
  }
  if (self_test) {
    return fastcons::lint::run_self_test(fastcons::lint::kRuleDeterminism);
  }
  if (root.empty() || allowlist.empty()) {
    std::cerr << "determinism_lint: --root and --allowlist are required "
                 "(or --self-test)\n";
    return 2;
  }
  fastcons::lint::RunOptions options;
  options.root = root;
  options.rules = {fastcons::lint::kRuleDeterminism};
  options.determinism_allowlist_path = allowlist;
  return fastcons::lint::run_lint(options);
}
