// fastcons_bench — the unified experiment harness CLI.
//
// Replaces the 13 per-experiment bench_* binaries: every scenario lives in
// the harness registry (src/harness), trials fan out across a thread pool
// with per-trial derived seeds, and results land in versioned JSON files
// whose bytes are identical for any --jobs value.
//
//   fastcons_bench --list
//   fastcons_bench --scenario fig5 --jobs 8
//   fastcons_bench --all --smoke --out bench_results
//   fastcons_bench --scenario diameter-ba --sweep ba-100 --trials 50
//
// See docs/experiments.md for the methodology and the JSON schema.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace {

using namespace fastcons;
using namespace fastcons::harness;

int usage(std::FILE* out) {
  std::fputs(
      "usage: fastcons_bench [options]\n"
      "\n"
      "  --list            list registered scenarios and exit\n"
      "  --scenario NAME   run one scenario (repeatable); \"live\" runs the\n"
      "                    real-socket family (wall-clock results, excluded\n"
      "                    from DIGESTS.txt)\n"
      "  --all             run every deterministic scenario (not live)\n"
      "  --sweep SUBSTR    only sweep points whose label contains SUBSTR\n"
      "  --trials N        override trials per sweep point\n"
      "  --jobs N          worker threads (default 1; 0 = all cores);\n"
      "                    results are bit-identical for any value\n"
      "  --seed N          base seed (default 42)\n"
      "  --smoke           tiny-scale run of the same sweep (CI / quick checks)\n"
      "  --out DIR         results directory (default bench_results;\n"
      "                    empty string disables writing)\n"
      "  --quiet           no summary tables, just the digest line\n"
      "  --help            this text\n",
      out);
  return out == stdout ? 0 : 2;
}

void list_scenarios(const ScenarioRegistry& registry,
                    const ScenarioRegistry& live) {
  std::size_t width = 0;
  for (const ScenarioSpec& spec : registry.all()) {
    width = std::max(width, spec.name.size());
  }
  for (const ScenarioSpec& spec : live.all()) {
    width = std::max(width, spec.name.size());
  }
  for (const ScenarioSpec& spec : registry.all()) {
    std::printf("%-*s  %3zu points x %5zu trials  [%s] %s\n",
                static_cast<int>(width), spec.name.c_str(), spec.sweep.size(),
                spec.trials, spec.paper_ref.c_str(), spec.title.c_str());
  }
  for (const ScenarioSpec& spec : live.all()) {
    std::printf("%-*s  %3zu points x %5zu trials  [%s] %s (live sockets)\n",
                static_cast<int>(width), spec.name.c_str(), spec.sweep.size(),
                spec.trials, spec.paper_ref.c_str(), spec.title.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  bool all = false;
  bool list = false;
  bool quiet = false;
  std::string out_dir = "bench_results";
  RunOptions options;

  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return usage(stdout);
    } else if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--all") == 0) {
      all = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      names.emplace_back(next_value(i, arg));
    } else if (std::strcmp(arg, "--sweep") == 0) {
      options.sweep_filter = next_value(i, arg);
    } else if (std::strcmp(arg, "--trials") == 0) {
      options.trials = static_cast<std::size_t>(
          std::strtoull(next_value(i, arg), nullptr, 10));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = static_cast<std::size_t>(
          std::strtoull(next_value(i, arg), nullptr, 10));
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.base_seed = std::strtoull(next_value(i, arg), nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = next_value(i, arg);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n\n", arg);
      return usage(stderr);
    }
  }

  try {
    const ScenarioRegistry registry = builtin_registry();
    const ScenarioRegistry live = live_registry();
    if (list) {
      list_scenarios(registry, live);
      return 0;
    }
    if (all) {
      names = registry.names();
    }
    if (names.empty()) {
      std::fprintf(stderr, "error: nothing to run; pass --scenario NAME, "
                           "--all or --list\n\n");
      return usage(stderr);
    }

    // Deterministic results feed the digest roll-up; live (real-socket)
    // results are wall-clock measurements and are written as standalone
    // scenario files so they can never perturb DIGESTS.txt.
    std::vector<ScenarioResult> results;
    std::vector<ScenarioResult> live_results;
    for (const std::string& name : names) {
      const ScenarioSpec* spec = registry.find(name);
      const bool is_live = spec == nullptr && live.find(name) != nullptr;
      if (spec == nullptr) spec = &live.get(name);
      if (!quiet) {
        std::printf("running %s (%zu sweep points)...\n", spec->name.c_str(),
                    spec->sweep.size());
        std::fflush(stdout);
      }
      (is_live ? live_results : results)
          .push_back(run_scenario(*spec, options));
      auto& latest = is_live ? live_results.back() : results.back();
      if (!quiet) {
        print_scenario(latest, std::cout);
        std::cout << "\n";
      }
    }

    if (!out_dir.empty()) {
      if (!results.empty()) {
        const std::string digest = write_results(results, out_dir);
        std::printf("wrote %zu scenario file(s) + BENCH_RESULTS.json + "
                    "DIGESTS.txt to %s/ (digest %s)\n",
                    results.size(), out_dir.c_str(), digest.c_str());
      }
      for (const ScenarioResult& result : live_results) {
        write_scenario_file(result, out_dir);
        std::printf("wrote %s/%s.json (live: wall-clock results, no digest)\n",
                    out_dir.c_str(), result.name.c_str());
      }
    } else {
      if (!results.empty()) {
        std::printf("digest %s\n",
                    digest_hex(rollup_to_json(results).dump()).c_str());
      }
      if (!live_results.empty()) {
        std::printf("live scenarios ran without --out; results not saved\n");
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
