// fastcons_soak — Jepsen-lite chaos soak over a durable LocalCluster.
//
// A seeded nemesis kills/restarts replicas, partitions the mesh and opens
// frame-drop windows while client writes flow, with invariants checked
// continuously (see net/soak.hpp). Exit 0 iff the soak passed; invariant
// violations are fatal by design so CI can gate on this binary directly.
//
// Usage:
//   fastcons_soak --duration 45 [--nodes 5] [--seed 1] [--write-rate 50]
//                 [--seconds-per-unit 0.02] [--data-dir DIR]
//                 [--quiesce-timeout 30] [--verbose]
//
// --data-dir defaults to a fresh directory under the system temp root and
// is removed on success; pass one explicitly to keep the WALs around.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/error.hpp"
#include "net/soak.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, bool error) {
  std::fprintf(error ? stderr : stdout,
               "usage: %s [--duration S] [--nodes N] [--seed S] "
               "[--write-rate R] [--seconds-per-unit S] [--data-dir DIR] "
               "[--quiesce-timeout S] [--verbose]\n",
               argv0);
  std::exit(error ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastcons;
  SoakConfig config;
  bool keep_data_dir = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], /*error=*/true);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(argv[0], /*error=*/false);
    else if (arg == "--duration") config.duration_seconds = std::atof(next());
    else if (arg == "--nodes") config.nodes = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") config.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--write-rate") config.write_rate = std::atof(next());
    else if (arg == "--seconds-per-unit")
      config.seconds_per_unit = std::atof(next());
    else if (arg == "--quiesce-timeout")
      config.quiesce_timeout_seconds = std::atof(next());
    else if (arg == "--data-dir") {
      config.data_dir = next();
      keep_data_dir = true;
    } else if (arg == "--verbose")
      config.verbose = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0], /*error=*/true);
    }
  }

  namespace fs = std::filesystem;
  if (config.data_dir.empty()) {
    const fs::path dir =
        fs::temp_directory_path() /
        ("fastcons-soak-" + std::to_string(config.seed) + "-" +
         std::to_string(static_cast<unsigned>(::getpid())));
    fs::create_directories(dir);
    config.data_dir = dir.string();
  }

  try {
    const SoakReport report = run_soak(config);
    std::fprintf(
        stderr,
        "soak: %.1fs wall, %llu writes (%llu confirmed), %llu kills / "
        "%llu restarts (%llu nodes ever killed), %llu partitions / %llu "
        "heals, %llu drop windows, %llu invariant sweeps\n",
        report.wall_seconds,
        static_cast<unsigned long long>(report.writes_issued),
        static_cast<unsigned long long>(report.writes_confirmed),
        static_cast<unsigned long long>(report.kills),
        static_cast<unsigned long long>(report.restarts),
        static_cast<unsigned long long>(report.nodes_ever_killed),
        static_cast<unsigned long long>(report.partitions),
        static_cast<unsigned long long>(report.heals),
        static_cast<unsigned long long>(report.drop_windows),
        static_cast<unsigned long long>(report.checks));
    std::fprintf(stderr, "soak: quiesce all_peers_up=%s converged=%s "
                 "digests_agree=%s\n",
                 report.all_peers_up ? "yes" : "NO",
                 report.converged ? "yes" : "NO",
                 report.digests_agree ? "yes" : "NO");
    for (const std::string& violation : report.violations) {
      std::fprintf(stderr, "soak: VIOLATION %s\n", violation.c_str());
    }
    if (!report.ok()) {
      std::fprintf(stderr, "soak: FAILED (%zu violations)\n",
                   report.violations.size());
      return 1;
    }
    std::fprintf(stderr, "soak: PASSED\n");
    if (!keep_data_dir) {
      std::error_code ec;
      fs::remove_all(config.data_dir, ec);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "fastcons_soak: fatal: %s\n", e.what());
    return 2;
  }
  return 0;
}
