// fastcons_lint: whole-program invariant analyzer for the fastcons tree.
//
// The repo's hardest invariants are not things a compiler or unit test can
// see: digest-bearing layers must be bit-deterministic, no blocking syscall
// may run while engine_mutex_ is held (the PR 5 lock discipline), decode
// paths must honour their throw contracts, and the layer DAG must stay
// acyclic as the system grows. This library checks them mechanically from
// source text alone — no compiler, no compile_commands.json — so the scan
// runs in milliseconds on any host and gates CI.
//
// Pipeline:
//   strip_source   comments / strings / raw strings / char literals blanked
//                  (newlines preserved so line numbers survive),
//                  preprocessor directives blanked with #include targets
//                  extracted first.
//   index_sources  per-TU index: function definitions (namespace/class
//                  scopes tracked for qualified names), call sites with
//                  qualification, MutexLock acquisition regions bounded by
//                  their brace scope, try regions, throw / .at( /
//                  dynamic_cast sites, REQUIRES/ACQUIRE annotations merged
//                  from declarations — plus a conservative name-resolved
//                  call graph over everything indexed.
//   rule_*         five rule engines (see below) producing Violations with
//                  the offending call chain attached.
//
// Rules:
//   blocking-under-lock  no blocking syscall/sleep reachable from a region
//                        holding the configured mutex (default
//                        engine_mutex_). Blocking primitives are the
//                        ::-qualified POSIX calls (send/recv/poll/connect/
//                        read/write/fsync/fdatasync/...) plus sleeps; the
//                        codebase's convention of ::-qualifying raw
//                        syscalls is what makes this precise.
//   layer-dag            #include edges between src/ layers must follow the
//                        declared DAG in layers.txt (transitive closure of
//                        the declared direct deps, mirroring the PUBLIC
//                        CMake link graph); the declared graph itself must
//                        be acyclic.
//   throw-contract       functions in nothrow.txt, and everything they
//                        reach through unguarded calls, may not contain
//                        throw, unguarded .at(), or dynamic_cast; a
//                        contract may instead allow exactly one exception
//                        type (throws=CodecError). Calls and throws inside
//                        a try block count as guarded.
//   determinism          the historical determinism lint, ported intact:
//                        unordered containers, rand/srand/time,
//                        random_device, *_clock::now, pointer-keyed
//                        ordered containers in the digest-bearing layers.
//                        Allowlist semantics (tools/determinism_allowlist
//                        .txt) are unchanged: reasons mandatory, stale
//                        entries fail.
//   digest-purity        functions defined in the digest-bearing layer set
//                        may not contain (or reach, across a layer-set
//                        boundary) wall-clock reads or I/O primitives. The
//                        layer set is dependency-closed by construction —
//                        layer-dag enforces that — so direct containment
//                        plus boundary-crossing edges is a sound check.
//
// Allowlists use the established format — `<path>:<rule> # reason` — with
// reasons mandatory and stale entries fatal. Reachability rules match an
// entry against either end of the chain: the file containing the root
// (locked region / contract function) or the file containing the sink, so
// one justified entry at a sanctioned sink suppresses every chain through
// it without loosening anything else.
#ifndef FASTCONS_TOOLS_FASTCONS_LINT_LINT_HPP
#define FASTCONS_TOOLS_FASTCONS_LINT_LINT_HPP

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fastcons::lint {

// ---------------------------------------------------------------- sources

/// One input file: repo-relative generic path plus raw text.
struct SourceFile {
  std::string path;
  std::string text;
};

/// Lexer output: code-only text (same length/line structure as the input)
/// plus the #include targets the preprocessor pass extracted.
struct StrippedSource {
  struct Include {
    std::string target;  ///< as written between the quotes / angle brackets
    std::size_t line = 0;
  };
  std::string text;
  std::vector<Include> includes;
};

/// Blanks comments, string/char literals (raw strings included) and
/// preprocessor directives (with line continuations), preserving newlines.
/// #include targets are recorded before the directive is blanked.
StrippedSource strip_source(const std::string& in);

// ----------------------------------------------------------------- index

/// A call site inside a function body (or member-init list).
struct CallSite {
  std::string name;       ///< last identifier ("send" in ::send / x.send)
  std::string qualifier;  ///< chain before the name ("std::this_thread")
  bool global_qualified = false;  ///< written ::name — a raw libc/syscall
  bool member_access = false;     ///< obj.name( / obj->name(
  std::size_t line = 0;
  bool in_try = false;            ///< lexically inside a try block
  std::vector<std::string> locked;  ///< mutex names held (lexically) here
};

struct ThrowSite {
  std::string type;  ///< thrown type's last identifier ("" for rethrow)
  std::size_t line = 0;
  bool in_try = false;
};

struct MarkSite {  // .at( calls, dynamic_casts, io idents (ofstream, ...)
  std::string what;
  std::size_t line = 0;
  bool in_try = false;
};

/// One indexed function definition (or namespace-scope initializer with a
/// braced body, indexed as "(static-init)" so registry lambdas stay
/// visible to the reachability rules).
struct Function {
  std::string name;       ///< last identifier
  std::string qualified;  ///< scope-qualified (Namespace::Class::name)
  std::string file;
  std::string layer;  ///< "common", "net", ... ("" outside src/)
  std::size_t line = 0;
  std::vector<CallSite> calls;
  std::vector<ThrowSite> throws;
  std::vector<MarkSite> at_calls;
  std::vector<MarkSite> casts;      ///< dynamic_cast sites
  std::vector<MarkSite> io_idents;  ///< ofstream / ifstream / fstream / FILE
  std::vector<std::string> requires_mutexes;  ///< REQUIRES/ACQUIRE(m)
};

struct FileIndex {
  std::string path;
  std::string layer;
  std::vector<StrippedSource::Include> includes;
};

struct ProgramIndex {
  std::vector<Function> functions;
  std::vector<FileIndex> files;
  /// last name -> function indices (conservative name resolution).
  std::map<std::string, std::vector<std::size_t>> by_name;
};

/// Layer of a repo-relative path: the directory under src/ ("" otherwise).
std::string layer_of(const std::string& path);

ProgramIndex index_sources(const std::vector<SourceFile>& sources);

// ------------------------------------------------------------- violations

struct Violation {
  std::string file;  ///< where the finding is reported (rule root)
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::vector<std::string> chain;  ///< "via Fn (file:line)" steps, root first
  std::string sink_file;  ///< file containing the offending primitive ("" =
                          ///< same as `file`); allowlists match either end
};

// -------------------------------------------------------------- allowlist

struct AllowEntry {
  std::string path;
  std::string rule;  ///< "*" allows every rule for the path
  std::string reason;
  mutable bool used = false;
};

struct Allowlist {
  std::vector<AllowEntry> entries;
  /// True when an entry covers `v` (root or sink file); marks entries used.
  bool allowed(const Violation& v) const;
};

/// Parses `<path>:<rule|*> # reason` lines; reasons are mandatory. Returns
/// false (with `err` set) on malformed entries.
bool parse_allowlist(std::istream& in, Allowlist& out, std::string& err);

// ------------------------------------------------------------- rule names

inline constexpr const char* kRuleBlocking = "blocking-under-lock";
inline constexpr const char* kRuleLayers = "layer-dag";
inline constexpr const char* kRuleThrow = "throw-contract";
inline constexpr const char* kRuleDeterminism = "determinism";
inline constexpr const char* kRuleDigest = "digest-purity";

/// All five rule names, scan order.
const std::vector<std::string>& all_rules();

// ----------------------------------------------------------- layer config

/// The declared layer DAG (layers.txt): `layer: dep dep ...` lines in
/// dependency order. The include check uses the transitive closure, since
/// PUBLIC CMake linking makes transitive headers visible.
struct LayerGraph {
  std::vector<std::pair<std::string, std::vector<std::string>>> layers;
  bool knows(const std::string& layer) const;
  /// May `from` include headers of `to`? (true when equal, or `to` is in
  /// the transitive closure of `from`'s declared deps.)
  bool may_include(const std::string& from, const std::string& to) const;
};

/// Parses layers.txt. Fails on unknown deps, duplicates, or cycles (a dep
/// must be declared on an earlier line, which makes cycles unrepresentable
/// and keeps the file readable as a topological order).
bool parse_layer_graph(std::istream& in, LayerGraph& out, std::string& err);

// -------------------------------------------------------- throw contracts

struct ThrowContract {
  std::string function;      ///< last name or Qualified::name suffix
  std::string allowed_type;  ///< "" = strict nothrow
};

/// Parses nothrow.txt: `function` (nothrow) or `function throws=Type`.
bool parse_contracts(std::istream& in, std::vector<ThrowContract>& out,
                     std::string& err);

// ---------------------------------------------------------- rule engines

/// R1: blocking syscalls/sleeps reachable while `mutex` is held.
void rule_blocking_under_lock(const ProgramIndex& index,
                              const std::string& mutex,
                              std::vector<Violation>& out);

/// R2: include edges between src/ layers must follow `graph`.
void rule_layer_dag(const ProgramIndex& index, const LayerGraph& graph,
                    std::vector<Violation>& out);

/// R3: contract functions (and what they reach unguarded) may not throw
/// outside their contract. A contract naming no indexed function is itself
/// a violation, so nothrow.txt cannot rot.
void rule_throw_contracts(const ProgramIndex& index,
                          const std::vector<ThrowContract>& contracts,
                          std::vector<Violation>& out);

/// Layers scanned by the determinism rule (the digest-bearing set, as the
/// historical determinism_lint defined it).
const std::vector<std::string>& determinism_layers();

/// R4: the ported determinism scan, applied to files whose layer is in
/// determinism_layers() (pass everything; filtering happens inside).
void rule_determinism(const std::vector<SourceFile>& sources,
                      std::vector<Violation>& out);

/// Layers checked by digest-purity: determinism_layers() minus harness and
/// durability (their I/O — results files, the WAL — is sanctioned and sits
/// outside the digested values by construction).
const std::vector<std::string>& digest_purity_layers();

/// R5: wall-clock reads and I/O primitives in the digest-purity layer set.
void rule_digest_purity(const ProgramIndex& index, std::vector<Violation>& out);

// ----------------------------------------------------------------- runner

/// One full scan, shared by the fastcons_lint CLI and the thin
/// determinism_lint alias. Empty paths take the defaults under `root`
/// (tools/fastcons_lint/{allowlist,layers,nothrow}.txt and
/// tools/determinism_allowlist.txt).
struct RunOptions {
  std::string root;
  std::vector<std::string> rules;  ///< empty = all five
  std::string allowlist_path;
  std::string determinism_allowlist_path;
  std::string layers_path;
  std::string contracts_path;
  std::string mutex = "engine_mutex_";
};

/// Loads src/** sources, runs the selected rules, applies the allowlists
/// and prints diagnostics. Exit-code semantics: 0 clean, 1 violations or
/// stale allowlist entries, 2 usage/IO/config errors. Allowlist staleness
/// is enforced per allowlist only when the rules it serves all ran, so a
/// single-rule invocation cannot spuriously report the others' entries.
int run_lint(const RunOptions& options);

// ------------------------------------------------------------- self tests

/// Runs the embedded corpus for `rule` ("" = every rule plus the shared
/// machinery). Returns 0 on success, 1 on failure; prints failures.
int run_self_test(const std::string& rule);

}  // namespace fastcons::lint

#endif  // FASTCONS_TOOLS_FASTCONS_LINT_LINT_HPP
