// Embedded self-test corpus: every rule must catch its seeded violation and
// stay quiet on the adjacent negative case, and the shared machinery
// (lexer, allowlist, config parsers) must hold its documented edge cases.
// Registered per-rule as ctest cases so a regression names the rule that
// broke.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

struct Tally {
  int failures = 0;
  int checks = 0;
  void expect(bool ok, const std::string& rule, const std::string& name,
              const std::string& detail) {
    ++checks;
    if (!ok) {
      ++failures;
      std::cerr << "self-test FAIL [" << rule << "/" << name << "]: " << detail
                << "\n";
    }
  }
};

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

// ------------------------------------------------------------- machinery

void test_machinery(Tally& t) {
  const std::string rule = "machinery";
  {
    // Raw strings (with prefix) blank fully, newlines preserved.
    const std::string src =
        "auto s = R\"(rand( time( ::send)\";\n"
        "auto u = u8R\"x(std::unordered_map)x\";\nint v;\n";
    const StrippedSource out = strip_source(src);
    t.expect(out.text.find("rand") == std::string::npos, rule, "raw-string",
             "raw string content not blanked");
    t.expect(out.text.find("unordered_map") == std::string::npos, rule,
             "raw-string-prefix", "u8R raw string content not blanked");
    t.expect(std::count(out.text.begin(), out.text.end(), '\n') == 3, rule,
             "raw-string-newlines", "newline count changed");
  }
  {
    // Digit separators are not char literals.
    const StrippedSource out =
        strip_source("int n = 1'000'000; int m = rand();\n");
    t.expect(out.text.find("rand") != std::string::npos, rule,
             "digit-separator", "code after digit separator was blanked");
  }
  {
    // Block comments blank across lines; line comments to end of line.
    const StrippedSource out = strip_source(
        "/* rand(\n   time( */ int x; // random_device\nint y;\n");
    t.expect(out.text.find("rand") == std::string::npos &&
                 out.text.find("random_device") == std::string::npos,
             rule, "comments", "comment content not blanked");
    t.expect(out.text.find("int x") != std::string::npos, rule,
             "comments-keep-code", "code after block comment lost");
  }
  {
    // #include targets extracted; directives (with continuations) blanked.
    const StrippedSource out = strip_source(
        "#include <vector>\n"
        "#include \"common/log.hpp\"\n"
        "#define BAD rand() \\\n"
        "    time(nullptr)\n"
        "int z;\n");
    t.expect(out.includes.size() == 2, rule, "include-count",
             "expected 2 includes, got " + std::to_string(out.includes.size()));
    if (out.includes.size() == 2) {
      t.expect(out.includes[0].target == "vector" &&
                   out.includes[0].line == 1,
               rule, "include-angle", "angle include target/line wrong");
      t.expect(out.includes[1].target == "common/log.hpp" &&
                   out.includes[1].line == 2,
               rule, "include-quote", "quoted include target/line wrong");
    }
    t.expect(out.text.find("rand") == std::string::npos, rule,
             "directive-continuation",
             "continued #define body leaked into code text");
    t.expect(out.text.find("int z") != std::string::npos, rule,
             "directive-end", "code after directive lost");
  }
  {
    // Call-graph construction: definitions indexed with scopes, call sites
    // resolved by last name, lock regions and try regions attached.
    const std::vector<SourceFile> sources = {
        {"src/net/server.hpp",
         "namespace fastcons {\n"
         "class Server {\n"
         " public:\n"
         "  void pump() {\n"
         "    MutexLock lock(engine_mutex_);\n"
         "    step_engine();\n"
         "  }\n"
         "  void step_engine() { try { decode(); } catch (...) {} }\n"
         "};\n"
         "}\n"}};
    const ProgramIndex index = index_sources(sources);
    t.expect(index.functions.size() == 2, rule, "index-count",
             "expected 2 functions, got " +
                 std::to_string(index.functions.size()));
    const auto it = index.by_name.find("pump");
    t.expect(it != index.by_name.end(), rule, "index-by-name",
             "pump not resolvable by name");
    if (it != index.by_name.end()) {
      const Function& pump = index.functions[it->second.front()];
      t.expect(pump.qualified == "fastcons::Server::pump", rule,
               "index-qualified",
               "qualified name was " + pump.qualified);
      t.expect(pump.calls.size() == 1 && pump.calls[0].name == "step_engine",
               rule, "index-calls", "pump call sites wrong");
      t.expect(!pump.calls.empty() &&
                   pump.calls[0].locked ==
                       std::vector<std::string>{"engine_mutex_"},
               rule, "index-lock-region", "lock region not attached");
    }
    const auto se = index.by_name.find("decode");
    t.expect(se == index.by_name.end(), rule, "index-no-phantom",
             "call-only name indexed as a function");
    const auto step = index.by_name.find("step_engine");
    if (step != index.by_name.end()) {
      const Function& fn = index.functions[step->second.front()];
      t.expect(fn.calls.size() == 1 && fn.calls[0].in_try, rule,
               "index-try-region", "try region not attached to call");
    }
  }
}

// ------------------------------------------------- R1: blocking under lock

void test_blocking(Tally& t) {
  const std::string rule = kRuleBlocking;
  const auto run = [](const std::vector<SourceFile>& sources) {
    std::vector<Violation> out;
    rule_blocking_under_lock(index_sources(sources), "engine_mutex_", out);
    return out;
  };
  t.expect(has_rule(run({{"src/net/server.hpp",
                          "void flush() {\n"
                          "  MutexLock lock(engine_mutex_);\n"
                          "  ::send(fd_, buf, len, 0);\n"
                          "}\n"}}),
                    rule),
           rule, "direct-send", "::send under lock not flagged");
  const std::vector<Violation> indirect =
      run({{"src/net/server.hpp",
            "void persist() { ::fsync(fd_); }\n"
            "void tick() { MutexLock l(engine_mutex_); persist(); }\n"}});
  t.expect(has_rule(indirect, rule), rule, "indirect-fsync",
           "::fsync reachable under lock not flagged");
  t.expect(!indirect.empty() && !indirect.front().chain.empty(), rule,
           "indirect-chain", "call chain missing from indirect finding");
  t.expect(has_rule(run({{"src/net/server.hpp",
                          "void drain() REQUIRES(engine_mutex_) {\n"
                          "  ::write(fd_, p, n);\n"
                          "}\n"}}),
                    rule),
           rule, "requires-annotation",
           "REQUIRES(engine_mutex_) body with ::write not flagged");
  t.expect(has_rule(run({{"src/net/server.hpp",
                          "void nap() { MutexLock l(engine_mutex_);\n"
                          "  std::this_thread::sleep_for(d); }\n"}}),
                    rule),
           rule, "sleep", "sleep_for under lock not flagged");
  t.expect(run({{"src/net/server.hpp",
                 "void tick() {\n"
                 "  { MutexLock l(engine_mutex_); state_ += 1; }\n"
                 "  ::send(fd_, buf, len, 0);\n"
                 "}\n"}})
               .empty(),
           rule, "scope-release", "::send after lock scope ended flagged");
  t.expect(run({{"src/net/server.hpp",
                 "void tick() { MutexLock l(net_mutex_);\n"
                 "  ::send(fd_, buf, len, 0); }\n"}})
               .empty(),
           rule, "other-mutex", "::send under a different mutex flagged");
}

// ----------------------------------------------------------- R2: layer DAG

void test_layers(Tally& t) {
  const std::string rule = kRuleLayers;
  LayerGraph graph;
  std::string err;
  {
    std::istringstream in("common:\ncore: common\nnet: core\n");
    t.expect(parse_layer_graph(in, graph, err), rule, "parse", err);
  }
  const auto run = [&](const std::vector<SourceFile>& sources) {
    std::vector<Violation> out;
    rule_layer_dag(index_sources(sources), graph, out);
    return out;
  };
  t.expect(run({{"src/net/a.cpp", "#include \"core/x.hpp\"\n"}}).empty(), rule,
           "direct-dep", "declared dep flagged");
  t.expect(run({{"src/net/a.cpp", "#include \"common/y.hpp\"\n"}}).empty(),
           rule, "transitive-dep", "transitive dep (closure) flagged");
  t.expect(has_rule(run({{"src/core/b.cpp", "#include \"net/server.hpp\"\n"}}),
                    rule),
           rule, "downward-ref", "core including net not flagged");
  t.expect(has_rule(run({{"src/rogue/c.cpp", "int x;\n"}}), rule), rule,
           "undeclared-layer", "undeclared layer not flagged");
  t.expect(run({{"src/core/d.cpp", "#include <vector>\n"}}).empty(), rule,
           "system-header", "system header flagged");
  {
    LayerGraph bad;
    std::istringstream in("core: common\ncommon:\n");
    t.expect(!parse_layer_graph(in, bad, err), rule, "forward-dep",
             "forward-declared dep accepted (cycles would be expressible)");
  }
  {
    LayerGraph bad;
    std::istringstream in("common:\ncommon:\n");
    t.expect(!parse_layer_graph(in, bad, err), rule, "duplicate",
             "duplicate layer accepted");
  }
}

// ------------------------------------------------------ R3: throw contracts

void test_throw(Tally& t) {
  const std::string rule = kRuleThrow;
  const auto run = [](const std::vector<SourceFile>& sources,
                      const std::string& contract_line) {
    std::vector<ThrowContract> contracts;
    std::string err;
    std::istringstream in(contract_line);
    if (!parse_contracts(in, contracts, err)) return std::vector<Violation>();
    std::vector<Violation> out;
    rule_throw_contracts(index_sources(sources), contracts, out);
    return out;
  };
  t.expect(has_rule(run({{"src/durability/wal.cpp",
                          "void scan_wal() { throw CodecError(\"x\"); }\n"}},
                        "scan_wal\n"),
                    rule),
           rule, "direct-throw", "throw in nothrow function not flagged");
  t.expect(has_rule(run({{"src/durability/wal.cpp",
                          "int pick(const V& v) { return v.at(3); }\n"
                          "void scan_wal() { pick(tbl_); }\n"}},
                        "scan_wal\n"),
                    rule),
           rule, "reachable-at",
           "unguarded .at() reachable from nothrow function not flagged");
  t.expect(run({{"src/durability/wal.cpp",
                 "void scan_wal() {\n"
                 "  try { decode_record(); } catch (...) { }\n"
                 "}\n"
                 "void decode_record() { throw CodecError(\"bad\"); }\n"}},
               "scan_wal\n")
               .empty(),
           rule, "try-guard", "try-guarded call treated as reachable");
  t.expect(run({{"src/net/wire.cpp",
                 "Body decode_body() { throw CodecError(\"bad\"); }\n"}},
               "decode_body throws=CodecError\n")
               .empty(),
           rule, "allowed-type", "contracted exception type flagged");
  t.expect(has_rule(run({{"src/net/wire.cpp",
                          "Body decode_body() {\n"
                          "  throw std::runtime_error(\"bad\");\n"
                          "}\n"}},
                        "decode_body throws=CodecError\n"),
                    rule),
           rule, "wrong-type", "off-contract exception type not flagged");
  t.expect(has_rule(run({{"src/durability/wal.cpp", "void scan_wal() { }\n"}},
                        "scan_wal\nno_such_function\n"),
                    rule),
           rule, "stale-contract", "contract naming nothing not flagged");
  t.expect(has_rule(run({{"src/net/wire.hpp",
                          "struct FrameReader {\n"
                          "  void feed(const B& b) {\n"
                          "    Object o = cast_to(dynamic_cast<T&>(b));\n"
                          "  }\n"
                          "};\n"}},
                        "FrameReader::feed\n"),
                    rule),
           rule, "throwing-cast", "dynamic_cast in nothrow path not flagged");
}

// ---------------------------------------------------- R4: determinism port

// The historical determinism_lint self-corpus, ported intact (paths moved
// into a scanned layer; the old tool scanned whatever path it was given,
// the rule now filters by layer itself).
struct DetCase {
  const char* name;
  const char* source;
  const char* expect_rule;  // nullptr = must be clean
};

const DetCase kDetCases[] = {
    {"unordered_map iteration",
     "#include <unordered_map>\n"
     "std::unordered_map<int, double> t;\n"
     "double sum() { double s = 0; for (auto& [k, v] : t) s += v; return s; }\n",
     "unordered-container"},
    {"unordered_set", "std::unordered_set<int> seen;\n", "unordered-container"},
    {"c rand", "int draw() { return rand() % 6; }\n", "c-rand"},
    {"std::rand", "int draw() { return std::rand(); }\n", "c-rand"},
    {"c time", "long stamp() { return time(nullptr); }\n", "c-time"},
    {"random_device", "std::random_device rd;\n", "random-device"},
    {"steady_clock now",
     "auto t0 = std::chrono::steady_clock::now();\n", "wall-clock"},
    {"system_clock now",
     "auto t0 = std::chrono::system_clock::now();\n", "wall-clock"},
    {"pointer-keyed map", "std::map<Node*, int> order;\n", "pointer-keyed"},
    {"pointer-keyed set", "std::set<const Event*> live;\n", "pointer-keyed"},
    {"comment mention is fine",
     "// we replaced std::unordered_map with sorted vectors\n"
     "/* rand() would break digests */\n"
     "int x = 0;\n",
     nullptr},
    {"string mention is fine",
     "const char* msg = \"do not use time() here\";\n", nullptr},
    {"operand is not rand", "int operand(int a); int y = operand(2);\n",
     nullptr},
    {"value-keyed map is fine", "std::map<int, char*> names;\n", nullptr},
    {"runtime_error is fine",
     "throw std::runtime_error(\"boom\");\n", nullptr},
};

void test_determinism(Tally& t) {
  const std::string rule = kRuleDeterminism;
  for (const DetCase& c : kDetCases) {
    std::vector<Violation> found;
    rule_determinism({{"src/core/self_test.cpp", c.source}}, found);
    if (c.expect_rule == nullptr) {
      t.expect(found.empty(), rule, c.name,
               "expected clean, got " +
                   (found.empty() ? std::string() : found.front().rule));
    } else {
      t.expect(has_rule(found, c.expect_rule), rule, c.name,
               std::string("rule ") + c.expect_rule + " not triggered");
    }
  }
  // Files outside the determinism layer set are not scanned.
  {
    std::vector<Violation> found;
    rule_determinism({{"src/net/live.cpp", "int d() { return rand(); }\n"}},
                     found);
    t.expect(found.empty(), rule, "net-excluded",
             "src/net scanned by the determinism rule");
  }
  // Allowlist machinery: suppression works, stale entries are detected.
  {
    std::istringstream allow_src(
        "src/core/self_test.cpp:unordered-container # lookup-only, proven\n"
        "other.cpp:c-rand # never matches\n");
    Allowlist allow;
    std::string err;
    const bool ok = parse_allowlist(allow_src, allow, err);
    t.expect(ok && allow.entries.size() == 2, rule, "allowlist-parse", err);
    if (ok && allow.entries.size() == 2) {
      const Violation v{"src/core/self_test.cpp", 1, "unordered-container",
                        "...", {}, ""};
      t.expect(allow.allowed(v), rule, "allowlist-suppression",
               "matching entry did not suppress");
      t.expect(!allow.entries[1].used, rule, "allowlist-stale",
               "stale entry marked used");
    }
  }
  {
    std::istringstream allow_src("self_test.cpp:c-rand\n");
    Allowlist allow;
    std::string err;
    t.expect(!parse_allowlist(allow_src, allow, err), rule,
             "allowlist-reason-mandatory", "reason-less entry accepted");
  }
  // Sink-file matching: reachability findings may be suppressed at either
  // end of the chain.
  {
    std::istringstream allow_src("src/common/log.cpp:digest-purity # sink\n");
    Allowlist allow;
    std::string err;
    parse_allowlist(allow_src, allow, err);
    const Violation v{"src/core/engine.cpp", 7, kRuleDigest, "...", {},
                      "src/common/log.cpp"};
    t.expect(allow.allowed(v), rule, "allowlist-sink-match",
             "sink-file entry did not suppress");
  }
}

// ------------------------------------------------------- R5: digest purity

void test_digest(Tally& t) {
  const std::string rule = kRuleDigest;
  const auto run = [](const std::vector<SourceFile>& sources) {
    std::vector<Violation> out;
    rule_digest_purity(index_sources(sources), out);
    return out;
  };
  t.expect(has_rule(run({{"src/core/engine.cpp",
                          "void tick() {\n"
                          "  auto t0 = std::chrono::steady_clock::now();\n"
                          "}\n"}}),
                    rule),
           rule, "wall-clock", "steady_clock::now in core not flagged");
  t.expect(has_rule(run({{"src/core/engine.cpp",
                          "void dump() { std::ofstream out(path_); }\n"}}),
                    rule),
           rule, "ofstream", "ofstream in core not flagged");
  t.expect(has_rule(run({{"src/harness/run.cpp", "void run_live() { }\n"},
                         {"src/core/engine.cpp",
                          "void tick() { run_live(); }\n"}}),
                    rule),
           rule, "boundary-cross",
           "core call resolving into harness not flagged");
  t.expect(run({{"src/net/server.cpp",
                 "void pump() {\n"
                 "  auto t0 = std::chrono::steady_clock::now();\n"
                 "  std::ofstream out(path_);\n"
                 "}\n"}})
               .empty(),
           rule, "net-excluded", "src/net scanned by digest-purity");
  t.expect(run({{"src/core/engine.cpp",
                 "void tick() { advance(state_); }\n"
                 "void advance(State& s) { s.step += 1; }\n"}})
               .empty(),
           rule, "pure-clean", "pure core code flagged");
}

}  // namespace

int run_self_test(const std::string& rule) {
  if (!rule.empty() &&
      std::find(all_rules().begin(), all_rules().end(), rule) ==
          all_rules().end()) {
    std::cerr << "unknown rule '" << rule << "' — rules are:";
    for (const std::string& r : all_rules()) std::cerr << " " << r;
    std::cerr << "\n";
    return 2;
  }
  Tally t;
  const bool all = rule.empty();
  if (all) test_machinery(t);
  if (all || rule == kRuleBlocking) test_blocking(t);
  if (all || rule == kRuleLayers) test_layers(t);
  if (all || rule == kRuleThrow) test_throw(t);
  if (all || rule == kRuleDeterminism) test_determinism(t);
  if (all || rule == kRuleDigest) test_digest(t);
  if (t.failures == 0) {
    std::cout << "fastcons_lint self-test (" << (all ? "all" : rule) << "): "
              << t.checks << " checks passed\n";
    return 0;
  }
  std::cerr << "fastcons_lint self-test: " << t.failures << " of " << t.checks
            << " checks FAILED\n";
  return 1;
}

}  // namespace fastcons::lint
