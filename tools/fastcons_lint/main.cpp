// fastcons_lint CLI. See lint.hpp for the rule catalogue.
//
//   fastcons_lint --root DIR [--rule NAME]... [flag overrides]
//   fastcons_lint --self-test [RULE]
//
// Exit status: 0 clean, 1 violations or stale allowlist entries, 2 usage or
// I/O errors — same contract the determinism lint always had.
#include <algorithm>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "fastcons_lint/lint.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: fastcons_lint --root DIR [--rule NAME]... [options]\n"
         "       fastcons_lint --self-test [RULE]\n"
         "rules:";
  for (const std::string& rule : fastcons::lint::all_rules()) {
    std::cerr << " " << rule;
  }
  std::cerr
      << "\noptions (defaults live under <root>/tools/):\n"
         "  --allowlist FILE              fastcons_lint/allowlist.txt\n"
         "  --determinism-allowlist FILE  determinism_allowlist.txt\n"
         "  --layers FILE                 fastcons_lint/layers.txt\n"
         "  --contracts FILE              fastcons_lint/nothrow.txt\n"
         "  --mutex NAME                  engine_mutex_\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using fastcons::lint::all_rules;
  fastcons::lint::RunOptions options;
  bool self_test = false;
  std::string self_test_rule;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--self-test") {
      self_test = true;
      // Optional rule operand: consume the next arg when it names a rule.
      if (i + 1 < argc &&
          std::find(all_rules().begin(), all_rules().end(),
                    std::string(argv[i + 1])) != all_rules().end()) {
        self_test_rule = argv[++i];
      }
    } else if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.root = v;
    } else if (arg == "--rule") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.rules.emplace_back(v);
    } else if (arg == "--allowlist") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.allowlist_path = v;
    } else if (arg == "--determinism-allowlist") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.determinism_allowlist_path = v;
    } else if (arg == "--layers") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.layers_path = v;
    } else if (arg == "--contracts") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.contracts_path = v;
    } else if (arg == "--mutex") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.mutex = v;
    } else {
      return usage();
    }
  }
  if (self_test) return fastcons::lint::run_self_test(self_test_rule);
  if (options.root.empty()) {
    std::cerr << "fastcons_lint: --root is required (or --self-test)\n";
    return 2;
  }
  return fastcons::lint::run_lint(options);
}
