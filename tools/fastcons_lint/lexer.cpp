// Lexing pass: reduce a C++ source file to code-only text the indexer and
// the token rules can scan without being fooled by comments, string
// literals (raw strings included) or preprocessor directives. Every blanked
// character becomes a space and every newline survives, so byte offsets map
// to the original line numbers throughout the pipeline.
#include <cctype>
#include <cstddef>
#include <string>

#include "fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the quote at `pos` opens a raw string: the identifier tail
/// directly before it is one of the raw-string prefixes and the character
/// before the prefix is not part of a longer identifier.
bool is_raw_string_quote(const std::string& in, std::size_t pos) {
  static const char* const kPrefixes[] = {"R", "uR", "UR", "LR", "u8R"};
  for (const char* prefix : kPrefixes) {
    const std::size_t len = std::char_traits<char>::length(prefix);
    if (pos < len) continue;
    if (in.compare(pos - len, len, prefix) != 0) continue;
    if (pos - len > 0 && ident_char(in[pos - len - 1])) continue;
    return true;
  }
  return false;
}

/// Extracts the include target from a captured directive ("include" already
/// seen): the text between "..." or <...>.
void record_include(const std::string& directive, std::size_t line,
                    StrippedSource& out) {
  std::size_t open = directive.find_first_of("\"<");
  if (open == std::string::npos) return;
  const char close = directive[open] == '"' ? '"' : '>';
  const std::size_t end = directive.find(close, open + 1);
  if (end == std::string::npos) return;
  out.includes.push_back(
      {directive.substr(open + 1, end - open - 1), line});
}

}  // namespace

StrippedSource strip_source(const std::string& in) {
  StrippedSource out;
  out.text.reserve(in.size());
  enum class State {
    code,
    line_comment,
    block_comment,
    string,
    chr,
    raw_string,
    directive,  // from a line-leading '#' to its (continuation-aware) end
  };
  State state = State::code;
  bool at_line_start = true;      // only whitespace seen since the newline
  std::string raw_terminator;     // ")delim\"" for the active raw string
  std::string directive_text;     // captured directive (for #include)
  std::size_t directive_line = 0;
  std::size_t line = 1;

  const auto end_directive = [&] {
    if (directive_text.compare(0, 7, "include") == 0) {
      record_include(directive_text, directive_line, out);
    }
    directive_text.clear();
  };

  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out.text += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out.text += "  ";
          ++i;
        } else if (c == '#' && at_line_start) {
          state = State::directive;
          directive_line = line;
          out.text += ' ';
        } else if (c == '"' && is_raw_string_quote(in, i)) {
          state = State::raw_string;
          // Capture the delimiter up to '(' and build ")delim\"".
          std::size_t d = i + 1;
          std::string delim;
          while (d < in.size() && in[d] != '(' && delim.size() <= 16) {
            delim += in[d++];
          }
          raw_terminator = ")" + delim + "\"";
          out.text += ' ';
        } else if (c == '"') {
          state = State::string;
          out.text += ' ';
        } else if (c == '\'' && !(i > 0 && ident_char(in[i - 1]))) {
          // A quote after an identifier character is a C++14 digit
          // separator (1'000'000), not a char literal.
          state = State::chr;
          out.text += ' ';
        } else {
          out.text += c;
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          state = State::code;
          out.text += '\n';
        } else {
          out.text += ' ';
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out.text += "  ";
          ++i;
        } else {
          out.text += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::string:
      case State::chr:
        if (c == '\\') {
          out.text += ' ';
          if (next != '\0') {
            out.text += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if ((state == State::string && c == '"') ||
                   (state == State::chr && c == '\'')) {
          state = State::code;
          out.text += ' ';
        } else {
          out.text += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::raw_string:
        if (in.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t k = 0; k < raw_terminator.size(); ++k) {
            out.text += ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::code;
        } else {
          out.text += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::directive:
        if (c == '\n') {
          // A backslash immediately before the newline continues the
          // directive onto the next line.
          if (!directive_text.empty() && directive_text.back() == '\\') {
            directive_text.pop_back();
            out.text += '\n';
          } else {
            end_directive();
            state = State::code;
            out.text += '\n';
          }
        } else if (c == '/' && next == '/') {
          // Trailing line comment inside a directive: the directive keeps
          // consuming (the comment has no code anyway).
          directive_text += ' ';
          out.text += "  ";
          ++i;
        } else {
          directive_text += c;
          out.text += ' ';
        }
        break;
    }
    // Track newline / line-start state from the ORIGINAL character.
    if (c == '\n') {
      ++line;
      at_line_start = true;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      at_line_start = false;
    }
  }
  if (state == State::directive) end_directive();
  return out;
}

std::string layer_of(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

}  // namespace fastcons::lint
