// Indexing pass: from stripped source text to a per-TU index of function
// definitions, call sites, mutex-acquisition regions and throw-relevant
// constructs, merged into one conservative whole-program call graph.
//
// This is a heuristic scanner, not a parser. The contract is conservative
// OVER-approximation where it matters to the rules: a call site resolves to
// every indexed function sharing its last name, a MutexLock region extends
// to the end of its enclosing brace scope, a lambda body belongs to its
// enclosing function, and namespace-scope initializers with braced bodies
// (registry lambdas) are indexed as "(static-init)" pseudo-functions. Known
// under-approximations — constructor calls via variable declarations, calls
// hidden behind macros — are documented in docs/architecture.md; the rules
// that need airtight coverage (determinism, digest-purity) work on token
// scans over whole files, not the call graph, exactly for that reason.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_keyword(const std::string& w) {
  static const char* const kWords[] = {
      "if",       "for",      "while",    "switch",   "return", "catch",
      "sizeof",   "alignof",  "decltype", "noexcept", "new",    "delete",
      "throw",    "do",       "else",     "case",     "goto",   "co_return",
      "co_await", "co_yield", "static_assert"};
  return std::find_if(std::begin(kWords), std::end(kWords), [&](const char* k) {
           return w == k;
         }) != std::end(kWords);
}

bool is_lock_type(const std::string& w) {
  return w == "MutexLock" || w == "lock_guard" || w == "unique_lock" ||
         w == "scoped_lock";
}

bool is_io_ident(const std::string& w) {
  return w == "ofstream" || w == "ifstream" || w == "fstream" || w == "FILE";
}

struct Region {
  std::size_t from = 0;
  std::size_t to = 0;
  std::string what;  // mutex name for lock regions; unused for try regions
  bool contains(std::size_t pos) const { return pos >= from && pos < to; }
};

/// Per-file scanning state shared by the outer and body walkers.
class Indexer {
 public:
  Indexer(const SourceFile& source, const StrippedSource& stripped,
          ProgramIndex& out)
      : path_(source.path),
        layer_(layer_of(source.path)),
        text_(stripped.text),
        out_(out) {
    line_starts_.push_back(0);
    for (std::size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == '\n') line_starts_.push_back(i + 1);
    }
    compute_brace_matches();
  }

  void run() { parse_outer(0, text_.size(), ""); }

 private:
  // ------------------------------------------------------------- helpers

  std::size_t line_at(std::size_t pos) const {
    const auto it =
        std::upper_bound(line_starts_.begin(), line_starts_.end(), pos);
    return static_cast<std::size_t>(it - line_starts_.begin());
  }

  void compute_brace_matches() {
    brace_match_.assign(text_.size(), std::string::npos);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == '{') {
        stack.push_back(i);
      } else if (text_[i] == '}' && !stack.empty()) {
        brace_match_[stack.back()] = i;
        stack.pop_back();
      }
    }
  }

  std::size_t skip_ws(std::size_t p) const {
    while (p < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[p])) != 0) {
      ++p;
    }
    return p;
  }

  std::string read_ident(std::size_t& p) const {
    const std::size_t start = p;
    while (p < text_.size() && ident_char(text_[p])) ++p;
    return text_.substr(start, p - start);
  }

  /// Reads a qualified identifier chain (`::a::b::c`, `a::b`, `~a`) at `p`.
  /// Returns the components; sets `global` when the chain starts with `::`.
  std::vector<std::string> read_chain(std::size_t& p, bool& global) const {
    std::vector<std::string> chain;
    global = false;
    if (p + 1 < text_.size() && text_[p] == ':' && text_[p + 1] == ':') {
      global = true;
      p += 2;
      p = skip_ws(p);
    }
    bool tilde = false;
    if (p < text_.size() && text_[p] == '~') {
      tilde = true;
      ++p;
      p = skip_ws(p);
    }
    while (p < text_.size() && ident_start(text_[p])) {
      std::string word = read_ident(p);
      if (tilde) {
        word = "~" + word;
        tilde = false;
      }
      chain.push_back(word);
      const std::size_t q = skip_ws(p);
      if (q + 1 < text_.size() && text_[q] == ':' && text_[q + 1] == ':') {
        p = skip_ws(q + 2);
        if (p < text_.size() && text_[p] == '~') {
          tilde = true;
          ++p;
          p = skip_ws(p);
        }
        continue;
      }
      break;
    }
    return chain;
  }

  /// Skips a balanced pair starting at the opener at `p` (or returns p+1
  /// when unmatched). Openers: ( [ {.
  std::size_t skip_balanced(std::size_t p) const {
    const char open = text_[p];
    const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
    if (open == '{') {
      const std::size_t m = brace_match_[p];
      return m == std::string::npos ? text_.size() : m + 1;
    }
    int depth = 0;
    for (std::size_t i = p; i < text_.size(); ++i) {
      if (text_[i] == open) ++depth;
      if (text_[i] == close && --depth == 0) return i + 1;
    }
    return text_.size();
  }

  /// Skips a balanced template-argument list starting at '<'; `>>` closes
  /// two levels. Gives up (returning p+1, i.e. "that was a less-than") at
  /// `;` or `{` so expressions cannot derail the scan.
  std::size_t skip_angles(std::size_t p) const {
    int depth = 0;
    for (std::size_t i = p; i < text_.size(); ++i) {
      const char c = text_[i];
      if (c == '<') ++depth;
      else if (c == '>') {
        if (--depth == 0) return i + 1;
      } else if (c == '(' || c == '[') {
        i = skip_balanced(i) - 1;
      } else if (c == ';' || c == '{') {
        return p + 1;
      }
    }
    return p + 1;
  }

  char prev_nonspace(std::size_t p) const {
    const std::size_t q = prev_nonspace_pos(p);
    return q == std::string::npos ? '\0' : text_[q];
  }

  std::size_t prev_nonspace_pos(std::size_t p) const {
    while (p > 0) {
      --p;
      if (std::isspace(static_cast<unsigned char>(text_[p])) == 0) {
        return p;
      }
    }
    return std::string::npos;
  }

  // -------------------------------------------------------- outer scopes

  void parse_outer(std::size_t pos, std::size_t end, std::string scope) {
    std::vector<std::string> chain;  // most recent identifier chain
    std::size_t chain_pos = 0;
    while (pos < end) {
      pos = skip_ws(pos);
      if (pos >= end) break;
      const char c = text_[pos];
      if (ident_start(c) || (c == ':' && pos + 1 < end && text_[pos + 1] == ':') ||
          c == '~') {
        const std::size_t start = pos;
        bool global = false;
        std::vector<std::string> words = read_chain(pos, global);
        if (words.empty()) {  // lone ':' etc.
          ++pos;
          continue;
        }
        const std::string& head = words.front();
        if (head == "namespace") {
          pos = skip_ws(pos);
          bool g = false;
          std::vector<std::string> name = read_chain(pos, g);
          pos = skip_ws(pos);
          if (pos < end && text_[pos] == '{') {
            const std::size_t m = brace_match_[pos];
            const std::size_t inner_end = m == std::string::npos ? end : m;
            parse_outer(pos + 1, inner_end,
                        extend_scope(scope, join(name)));
            pos = inner_end + 1;
          } else {
            pos = skip_to_semicolon(pos, end);
          }
          chain.clear();
          continue;
        }
        if (head == "class" || head == "struct" || head == "union") {
          pos = parse_record(pos, end, scope);
          chain.clear();
          continue;
        }
        if (head == "enum") {
          pos = skip_decl_or_braced(pos, end);
          chain.clear();
          continue;
        }
        if (head == "using" || head == "typedef" || head == "friend" ||
            head == "static_assert") {
          pos = skip_to_semicolon(pos, end);
          chain.clear();
          continue;
        }
        if (head == "template") {
          pos = skip_ws(pos);
          if (pos < end && text_[pos] == '<') pos = skip_angles(pos);
          continue;
        }
        if (head == "extern" || head == "inline" || head == "static" ||
            head == "constexpr" || head == "const" || head == "virtual" ||
            head == "explicit") {
          continue;  // specifiers; keep the previous chain semantics simple
        }
        if (head == "operator") {
          // Consume the operator symbol up to its parameter list and treat
          // the whole thing as an unindexable "operator" candidate.
          while (pos < end && text_[pos] != '(' && text_[pos] != ';' &&
                 text_[pos] != '{') {
            ++pos;
          }
          if (pos < end && text_[pos] == '(') {
            // operator() has an extra () before the parameter list.
            const std::size_t after = skip_balanced(pos);
            const std::size_t q = skip_ws(after);
            if (q < end && text_[q] == '(') pos = q;
          }
          chain = {"operator"};
          chain_pos = start;
          continue;
        }
        chain = std::move(words);
        chain_pos = start;
        // A template-argument list directly after the chain belongs to it.
        const std::size_t q = skip_ws(pos);
        if (q < end && text_[q] == '<') pos = skip_angles(q);
        continue;
      }
      if (c == '(') {
        if (chain.empty() || is_keyword(chain.back())) {
          pos = skip_balanced(pos);
          continue;
        }
        const std::size_t params_end = skip_balanced(pos);
        pos = handle_candidate(chain, chain_pos, params_end, end, scope);
        chain.clear();
        continue;
      }
      if (c == '{') {
        const std::size_t m = brace_match_[pos];
        const std::size_t inner_end = m == std::string::npos ? end : m;
        if (chain.empty()) {
          // Transparent scope (extern "C" and friends).
          parse_outer(pos + 1, inner_end, scope);
        }
        // Otherwise a braced initializer (member default, variable): skip.
        pos = inner_end + 1;
        chain.clear();
        continue;
      }
      if (c == '=') {
        // Namespace/class-scope initializer. If it contains a braced body
        // (registry lambdas), index it so reachability rules still see the
        // calls inside.
        const std::size_t init_start = pos + 1;
        pos = skip_to_semicolon(pos, end);
        const std::size_t init_end = pos > 0 ? pos - 1 : pos;
        if (text_.find('{', init_start) < init_end) {
          Function fn;
          fn.name = "(static-init)";
          fn.qualified = extend_scope(scope, "(static-init)");
          fn.file = path_;
          fn.layer = layer_;
          fn.line = line_at(init_start);
          scan_body(fn, init_start, init_end);
          out_.functions.push_back(std::move(fn));
        }
        chain.clear();
        continue;
      }
      if (c == ';' || c == '}') {
        chain.clear();
        ++pos;
        continue;
      }
      ++pos;  // *, &, [, commas, ...
      if (c == '[') pos = skip_balanced(pos - 1);  // attributes, arrays
    }
  }

  /// class/struct/union after the keyword: find the body (descending into
  /// it with the record's name pushed onto the scope) or the end of a
  /// forward declaration / variable use.
  std::size_t parse_record(std::size_t pos, std::size_t end,
                           const std::string& scope) {
    std::string name;
    while (pos < end) {
      pos = skip_ws(pos);
      if (pos >= end) break;
      const char c = text_[pos];
      if (ident_start(c)) {
        bool g = false;
        const std::vector<std::string> words = read_chain(pos, g);
        if (!words.empty() && words.back() != "final" &&
            words.back() != "alignas") {
          name = words.back();
        }
        continue;
      }
      if (c == '<') {
        pos = skip_angles(pos);
        continue;
      }
      if (c == '(') {  // alignas(...)
        pos = skip_balanced(pos);
        continue;
      }
      if (c == ':') {  // base-clause: scan forward to the body
        ++pos;
        continue;
      }
      if (c == '{') {
        const std::size_t m = brace_match_[pos];
        const std::size_t inner_end = m == std::string::npos ? end : m;
        parse_outer(pos + 1, inner_end, extend_scope(scope, name));
        return inner_end + 1;
      }
      if (c == ';' || c == '=') return pos;  // fwd decl / elaborated use
      ++pos;
    }
    return pos;
  }

  std::size_t skip_decl_or_braced(std::size_t pos, std::size_t end) {
    while (pos < end && text_[pos] != '{' && text_[pos] != ';') ++pos;
    if (pos < end && text_[pos] == '{') pos = skip_balanced(pos);
    return pos;
  }

  /// Advances past the terminating ';', skipping balanced (), {}, [].
  std::size_t skip_to_semicolon(std::size_t pos, std::size_t end) const {
    while (pos < end) {
      const char c = text_[pos];
      if (c == ';') return pos + 1;
      if (c == '(' || c == '{' || c == '[') {
        pos = skip_balanced(pos);
        continue;
      }
      ++pos;
    }
    return pos;
  }

  // A candidate `chain(params)` was seen at outer scope. Decide whether it
  // is a declaration (record REQUIRES/ACQUIRE annotations), a definition
  // (index it, scan the body) or neither. Returns the resume position.
  std::size_t handle_candidate(const std::vector<std::string>& chain,
                               std::size_t chain_pos, std::size_t params_end,
                               std::size_t end, const std::string& scope) {
    std::size_t p = params_end;
    std::vector<std::string> mutexes;
    std::size_t init_start = 0;  // member-init list start (0 = none)
    while (p < end) {
      p = skip_ws(p);
      if (p >= end) break;
      const char c = text_[p];
      if (ident_start(c)) {
        std::size_t q = p;
        const std::string w = read_ident(q);
        if (w == "const" || w == "noexcept" || w == "override" ||
            w == "final" || w == "mutable" || w == "volatile" ||
            w == "throw" || w == "try" || w == "requires") {
          p = skip_ws(q);
          if (p < end && text_[p] == '(') p = skip_balanced(p);
          continue;
        }
        if (w == "REQUIRES" || w == "ACQUIRE" || w == "ACQUIRE_SHARED" ||
            w == "EXCLUSIVE_LOCKS_REQUIRED") {
          p = skip_ws(q);
          if (p < end && text_[p] == '(') {
            collect_arg_idents(p, mutexes);
            p = skip_balanced(p);
          }
          continue;
        }
        if (w == "EXCLUDES" || w == "RELEASE" || w == "RELEASE_SHARED" ||
            w == "LOCKS_EXCLUDED" || w == "NO_THREAD_SAFETY_ANALYSIS" ||
            w == "__attribute__") {
          p = skip_ws(q);
          if (p < end && text_[p] == '(') p = skip_balanced(p);
          continue;
        }
        return chain_pos + chain.back().size();  // not a function after all
      }
      if (c == '-' && p + 1 < end && text_[p + 1] == '>') {
        p += 2;  // trailing return type: consume type tokens
        while (p < end) {
          p = skip_ws(p);
          if (p >= end) break;
          const char t = text_[p];
          if (ident_start(t)) {
            read_ident(p);
          } else if (t == '<') {
            p = skip_angles(p);
          } else if (t == ':' && p + 1 < end && text_[p + 1] == ':') {
            p += 2;
          } else if (t == '*' || t == '&') {
            ++p;
          } else {
            break;
          }
        }
        continue;
      }
      if (c == ':' && !(p + 1 < end && text_[p + 1] == ':')) {
        init_start = p + 1;  // member-init list; calls in it are indexed
        // Scan forward to the body's '{': init items are `name(...)` or
        // `name{...}` separated by commas.
        ++p;
        while (p < end) {
          p = skip_ws(p);
          if (p >= end) break;
          const char t = text_[p];
          if (ident_start(t) || t == ':') {
            bool g = false;
            read_chain(p, g);
            continue;
          }
          if (t == '<') {
            p = skip_angles(p);
            continue;
          }
          if (t == '(' || t == '[') {
            p = skip_balanced(p);
            continue;
          }
          if (t == '{') {
            // Either an init item's braced args or the body. The body's
            // brace is preceded (after a balanced init item) by no comma.
            const std::size_t after = skip_balanced(p);
            const std::size_t q = skip_ws(after);
            if (q < end && (text_[q] == ',' || text_[q] == '{')) {
              p = after;  // braced init item, keep scanning
              continue;
            }
            // Assume this brace WAS the body when nothing plausible
            // follows; back up and let the '{' case below handle it.
            break;
          }
          if (t == ',') {
            ++p;
            continue;
          }
          break;
        }
        continue;
      }
      if (c == '{') {
        const std::size_t m = brace_match_[p];
        const std::size_t body_end = m == std::string::npos ? end : m;
        Function fn;
        fn.name = chain.back();
        fn.qualified = extend_scope(scope, join(chain));
        fn.file = path_;
        fn.layer = layer_;
        fn.line = line_at(chain_pos);
        scan_body(fn, init_start != 0 ? init_start : p + 1, body_end);
        fn.requires_mutexes = mutexes;
        out_.functions.push_back(std::move(fn));
        return body_end + 1;
      }
      if (c == ';') {
        if (!mutexes.empty()) record_decl_annotations(chain.back(), mutexes);
        return p + 1;
      }
      if (c == '=') {
        // = default / = delete / = 0 declaration forms.
        const std::size_t stop = skip_to_semicolon(p, end);
        if (!mutexes.empty()) record_decl_annotations(chain.back(), mutexes);
        return stop;
      }
      return p;  // ',' etc: a variable declaration, not a function
    }
    return p;
  }

  void collect_arg_idents(std::size_t paren, std::vector<std::string>& out) {
    const std::size_t close = skip_balanced(paren) - 1;
    std::size_t p = paren + 1;
    std::string last;
    while (p < close) {
      if (ident_start(text_[p])) {
        last = read_ident(p);
        continue;
      }
      if (text_[p] == ',' ) {
        if (!last.empty()) out.push_back(last);
        last.clear();
      }
      ++p;
    }
    if (!last.empty()) out.push_back(last);
  }

  void record_decl_annotations(const std::string& name,
                               const std::vector<std::string>& mutexes) {
    auto& slot = decl_annotations_[name];
    slot.insert(slot.end(), mutexes.begin(), mutexes.end());
  }

  // -------------------------------------------------------- function body

  void scan_body(Function& fn, std::size_t start, std::size_t end) {
    std::vector<Region> locks;
    std::vector<Region> tries;
    std::vector<std::size_t> brace_stack;
    std::set<std::string> local_lambdas;  // `auto f = [..]` names: calls to
                                          // them stay inside this body
    std::string prev_chain;  // identifier chain directly before the cursor
                             // ("" when the previous token was punctuation)

    const auto scope_end = [&]() -> std::size_t {
      for (auto it = brace_stack.rbegin(); it != brace_stack.rend(); ++it) {
        const std::size_t m = brace_match_[*it];
        if (m != std::string::npos) return m;
      }
      return end;
    };
    const auto in_try = [&](std::size_t pos) {
      return std::any_of(tries.begin(), tries.end(),
                         [&](const Region& r) { return r.contains(pos); });
    };
    const auto locked_at = [&](std::size_t pos) {
      std::vector<std::string> held;
      for (const Region& r : locks) {
        if (r.contains(pos)) held.push_back(r.what);
      }
      return held;
    };

    std::size_t pos = start;
    while (pos < end) {
      const char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos;
        continue;
      }
      if (c == '{') {
        brace_stack.push_back(pos);
        prev_chain.clear();
        ++pos;
        continue;
      }
      if (c == '}') {
        if (!brace_stack.empty()) brace_stack.pop_back();
        prev_chain.clear();
        ++pos;
        continue;
      }
      const bool global_start =
          c == ':' && pos + 1 < end && text_[pos + 1] == ':' &&
          !ident_char(prev_nonspace(pos)) && prev_nonspace(pos) != '>' &&
          prev_nonspace(pos) != ')';
      if (ident_start(c) || global_start) {
        const std::size_t chain_start = pos;
        const char prev = prev_nonspace(pos);
        bool global = false;
        std::vector<std::string> chain = read_chain(pos, global);
        if (chain.empty()) {
          prev_chain.clear();
          ++pos;
          continue;
        }
        const std::string& name = chain.back();
        if (name == "throw" && chain.size() == 1) {
          std::size_t q = skip_ws(pos);
          std::string type;
          if (q < end && (ident_start(text_[q]) ||
                          (text_[q] == ':' && text_[q + 1] == ':'))) {
            bool g = false;
            const std::vector<std::string> t = read_chain(q, g);
            if (!t.empty()) type = t.back();
          }
          fn.throws.push_back(
              {type, line_at(chain_start), in_try(chain_start)});
          prev_chain = name;  // keyword: the thrown type's ctor is a call
          pos = q;
          continue;
        }
        if (name == "try") {
          const std::size_t q = skip_ws(pos);
          if (q < end && text_[q] == '{') {
            const std::size_t m = brace_match_[q];
            tries.push_back({q, m == std::string::npos ? end : m, ""});
          }
          prev_chain.clear();
          continue;
        }
        if (name == "dynamic_cast") {
          fn.casts.push_back(
              {"dynamic_cast", line_at(chain_start), in_try(chain_start)});
          const std::size_t q = skip_ws(pos);
          if (q < end && text_[q] == '<') pos = skip_angles(q);
          prev_chain.clear();
          continue;
        }
        if (is_io_ident(name)) {
          fn.io_idents.push_back(
              {name, line_at(chain_start), in_try(chain_start)});
          prev_chain = name;  // `std::ofstream out(path)` declares, not calls
          continue;
        }
        if (is_lock_type(name)) {
          // `MutexLock guard(mutex_expr)`: optional template args, a
          // variable name, then the guarded mutex as the first argument.
          std::size_t q = skip_ws(pos);
          if (q < end && text_[q] == '<') q = skip_ws(skip_angles(q));
          if (q < end && ident_start(text_[q])) {
            read_ident(q);
            q = skip_ws(q);
            if (q < end && text_[q] == '(') {
              std::vector<std::string> args;
              collect_arg_idents(q, args);
              const std::size_t after = skip_balanced(q);
              if (!args.empty()) {
                locks.push_back({after, scope_end(), args.front()});
              }
              prev_chain.clear();
              pos = after;
              continue;
            }
          }
          prev_chain.clear();
          continue;
        }
        // Template args between the chain and a call's parentheses.
        std::size_t q = skip_ws(pos);
        if (q < end && text_[q] == '<') {
          const std::size_t after = skip_angles(q);
          if (after > q + 1) {
            pos = after;
            q = skip_ws(pos);
          }
        }
        // `auto f = [..](..) {..}` introduces a body-local lambda: calls to
        // `f` never leave this function, so the call graph must not resolve
        // them against same-named free functions elsewhere.
        if (q < end && text_[q] == '=' &&
            (q + 1 >= end || text_[q + 1] != '=')) {
          const std::size_t after_eq = skip_ws(q + 1);
          if (after_eq < end && text_[after_eq] == '[') {
            local_lambdas.insert(name);
          }
          prev_chain.clear();
          pos = q + 1;
          continue;
        }
        if (q < end && text_[q] == '(' && !is_keyword(name)) {
          const std::size_t pp = prev_nonspace_pos(chain_start);
          const bool member =
              prev == '.' || (prev == '>' && pp != std::string::npos &&
                              pp > 0 && text_[pp - 1] == '-');
          // `Type name(args)` is a paren-initialised declaration, not a
          // call: the token right before `name` is itself an identifier
          // chain that is not a statement keyword (`return f(x)` and
          // `throw E(x)` still count as calls).
          const bool decl_like = !global && !member && ident_char(prev) &&
                                 !prev_chain.empty() &&
                                 !is_keyword(prev_chain);
          if (decl_like || local_lambdas.count(name) != 0) {
            prev_chain.clear();
            pos = q + 1;  // initialiser arguments still get scanned
            continue;
          }
          CallSite call;
          call.name = name;
          for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
            if (k) call.qualifier += "::";
            call.qualifier += chain[k];
          }
          call.global_qualified = global && chain.size() == 1;
          call.member_access = member;
          call.line = line_at(chain_start);
          call.in_try = in_try(chain_start);
          call.locked = locked_at(chain_start);
          if (call.member_access && name == "at") {
            fn.at_calls.push_back(
                {".at(", call.line, call.in_try});
          } else {
            fn.calls.push_back(std::move(call));
          }
          prev_chain.clear();
          pos = q + 1;  // descend into the argument list naturally
          continue;
        }
        prev_chain = name;
        continue;
      }
      prev_chain.clear();
      ++pos;
    }
  }

  // -------------------------------------------------------------- misc

  static std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const std::string& part : parts) {
      if (!out.empty()) out += "::";
      out += part;
    }
    return out;
  }

  static std::string extend_scope(const std::string& scope,
                                  const std::string& name) {
    if (scope.empty()) return name;
    if (name.empty()) return scope;
    return scope + "::" + name;
  }

 public:
  /// REQUIRES/ACQUIRE annotations seen on declarations, keyed by last name
  /// (merged into same-named definitions once every file is indexed).
  std::map<std::string, std::vector<std::string>>& decl_annotations() {
    return decl_annotations_;
  }

 private:
  std::string path_;
  std::string layer_;
  const std::string& text_;
  ProgramIndex& out_;
  std::vector<std::size_t> line_starts_;
  std::vector<std::size_t> brace_match_;
  std::map<std::string, std::vector<std::string>> decl_annotations_;
};

}  // namespace

ProgramIndex index_sources(const std::vector<SourceFile>& sources) {
  ProgramIndex index;
  std::map<std::string, std::vector<std::string>> decl_annotations;
  for (const SourceFile& source : sources) {
    const StrippedSource stripped = strip_source(source.text);
    FileIndex file;
    file.path = source.path;
    file.layer = layer_of(source.path);
    file.includes = stripped.includes;
    index.files.push_back(std::move(file));

    Indexer indexer(source, stripped, index);
    indexer.run();
    for (auto& [name, mutexes] : indexer.decl_annotations()) {
      auto& slot = decl_annotations[name];
      slot.insert(slot.end(), mutexes.begin(), mutexes.end());
    }
  }
  // Merge declaration-side REQUIRES/ACQUIRE annotations into definitions
  // (headers declare, .cpp files define; Clang TSA puts the attribute on
  // the declaration only).
  for (Function& fn : index.functions) {
    const auto it = decl_annotations.find(fn.name);
    if (it != decl_annotations.end()) {
      for (const std::string& m : it->second) {
        if (std::find(fn.requires_mutexes.begin(), fn.requires_mutexes.end(),
                      m) == fn.requires_mutexes.end()) {
          fn.requires_mutexes.push_back(m);
        }
      }
    }
  }
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    index.by_name[index.functions[i].name].push_back(i);
  }
  return index;
}

}  // namespace fastcons::lint
