// Tree-scan runner: loads src/** sources, runs the selected rules, applies
// the two allowlists (the fastcons_lint one and the historical determinism
// one, whose semantics are preserved byte-for-byte), prints diagnostics
// with call chains, and enforces allowlist staleness.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

namespace fs = std::filesystem;

bool has(const std::vector<std::string>& rules, const std::string& rule) {
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::string default_path(const std::string& configured, const fs::path& root,
                         const char* fallback) {
  if (!configured.empty()) return configured;
  return (root / fallback).string();
}

bool load_allowlist(const std::string& path, Allowlist& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open allowlist " << path << "\n";
    return false;
  }
  std::string err;
  if (!parse_allowlist(in, out, err)) {
    std::cerr << err;
    return false;
  }
  return true;
}

void print_violation(const Violation& v) {
  std::cout << v.file << ":" << v.line << ": " << v.rule << ": " << v.message
            << "\n";
  for (const std::string& step : v.chain) {
    std::cout << "    " << step << "\n";
  }
}

/// Stale-entry check for one allowlist; only called when the rules the
/// allowlist serves actually ran (otherwise unused entries are expected).
int report_stale(const Allowlist& allow, const char* which) {
  int status = 0;
  for (const AllowEntry& e : allow.entries) {
    if (!e.used) {
      std::cout << "stale " << which << " entry (matched nothing): " << e.path
                << ":" << e.rule << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int run_lint(const RunOptions& options) {
  const fs::path root = options.root;
  const std::vector<std::string> rules =
      options.rules.empty() ? all_rules() : options.rules;
  for (const std::string& rule : rules) {
    if (!has(all_rules(), rule)) {
      std::cerr << "unknown rule '" << rule << "'\n";
      return 2;
    }
  }

  // The determinism rule keeps the historical contract that every scanned
  // layer directory exists — a renamed layer must be renamed here too.
  if (has(rules, kRuleDeterminism)) {
    for (const std::string& layer : determinism_layers()) {
      if (!fs::exists(root / "src" / layer)) {
        std::cerr << "scanned layer missing: " << (root / "src" / layer)
                  << "\n";
        return 2;
      }
    }
  }

  const fs::path src_dir = root / "src";
  if (!fs::exists(src_dir)) {
    std::cerr << "no src/ under root " << root << "\n";
    return 2;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(
        {fs::relative(path, root).generic_string(), buffer.str()});
  }

  // Structural rules (everything but determinism) share the program index
  // and the fastcons_lint allowlist; determinism keeps its own.
  const bool structural = has(rules, kRuleBlocking) || has(rules, kRuleLayers) ||
                          has(rules, kRuleThrow) || has(rules, kRuleDigest);
  Allowlist allow;
  Allowlist det_allow;
  if (structural &&
      !load_allowlist(default_path(options.allowlist_path, root,
                                   "tools/fastcons_lint/allowlist.txt"),
                      allow)) {
    return 2;
  }
  if (has(rules, kRuleDeterminism) &&
      !load_allowlist(default_path(options.determinism_allowlist_path, root,
                                   "tools/determinism_allowlist.txt"),
                      det_allow)) {
    return 2;
  }

  LayerGraph graph;
  if (has(rules, kRuleLayers)) {
    const std::string path = default_path(options.layers_path, root,
                                          "tools/fastcons_lint/layers.txt");
    std::ifstream in(path);
    std::string err;
    if (!in) {
      std::cerr << "cannot open layer graph " << path << "\n";
      return 2;
    }
    if (!parse_layer_graph(in, graph, err)) {
      std::cerr << err << "\n";
      return 2;
    }
  }
  std::vector<ThrowContract> contracts;
  if (has(rules, kRuleThrow)) {
    const std::string path = default_path(options.contracts_path, root,
                                          "tools/fastcons_lint/nothrow.txt");
    std::ifstream in(path);
    std::string err;
    if (!in) {
      std::cerr << "cannot open throw contracts " << path << "\n";
      return 2;
    }
    if (!parse_contracts(in, contracts, err)) {
      std::cerr << err << "\n";
      return 2;
    }
  }

  ProgramIndex index;
  if (structural) index = index_sources(sources);

  std::vector<Violation> structural_violations;
  std::vector<Violation> det_violations;
  if (has(rules, kRuleBlocking)) {
    rule_blocking_under_lock(index, options.mutex, structural_violations);
  }
  if (has(rules, kRuleLayers)) {
    rule_layer_dag(index, graph, structural_violations);
  }
  if (has(rules, kRuleThrow)) {
    rule_throw_contracts(index, contracts, structural_violations);
  }
  if (has(rules, kRuleDeterminism)) {
    rule_determinism(sources, det_violations);
  }
  if (has(rules, kRuleDigest)) {
    rule_digest_purity(index, structural_violations);
  }

  int status = 0;
  std::set<std::string> printed;  // dedup identical findings (e.g. two
                                  // chains to the same sink line)
  const auto emit = [&](const std::vector<Violation>& violations,
                        const Allowlist& list) {
    for (const Violation& v : violations) {
      if (list.allowed(v)) continue;
      std::ostringstream key;
      key << v.file << ":" << v.line << ":" << v.rule << ":" << v.message;
      if (!printed.insert(key.str()).second) continue;
      print_violation(v);
      status = 1;
    }
  };
  emit(structural_violations, allow);
  emit(det_violations, det_allow);

  const bool all_structural_ran =
      has(rules, kRuleBlocking) && has(rules, kRuleLayers) &&
      has(rules, kRuleThrow) && has(rules, kRuleDigest);
  if (all_structural_ran) {
    status |= report_stale(allow, "allowlist");
  }
  if (has(rules, kRuleDeterminism)) {
    status |= report_stale(det_allow, "determinism allowlist");
  }

  if (status == 0) {
    std::cout << "fastcons_lint: " << sources.size() << " files clean (";
    for (std::size_t i = 0; i < rules.size(); ++i) {
      std::cout << (i ? ", " : "") << rules[i];
    }
    std::cout << ")\n";
  }
  return status;
}

}  // namespace fastcons::lint
