// Rule engines and config parsing for fastcons_lint. Each rule reports
// Violations with the offending call chain attached; suppression and
// staleness policy live in the Allowlist (shared with the historical
// determinism lint, whose sub-rule names and semantics are preserved).
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::string display_call(const CallSite& c) {
  if (c.global_qualified) return "::" + c.name;
  if (!c.qualifier.empty()) return c.qualifier + "::" + c.name;
  return c.member_access ? "." + c.name : c.name;
}

/// Formats one "via" step of a reported call chain.
std::string chain_step(const Function& fn) {
  std::ostringstream out;
  out << "via " << fn.qualified << " (" << fn.file << ":" << fn.line << ")";
  return out.str();
}

const std::vector<std::size_t>* resolve(const ProgramIndex& index,
                                        const std::string& name) {
  const auto it = index.by_name.find(name);
  return it == index.by_name.end() ? nullptr : &it->second;
}

/// Conservative name resolution for interprocedural traversal, with two
/// precision refinements that mirror real C++ lookup: ::-qualified calls
/// name the global namespace (libc), never an indexed fastcons function,
/// and std-qualified calls name the standard library. Among the remaining
/// candidates, a definition in the same file (then the same layer) shadows
/// same-named functions elsewhere — without this, every `find(...)` in the
/// tree would resolve to every `find` anybody ever wrote.
std::vector<std::size_t> resolve_targets(const ProgramIndex& index,
                                         const CallSite& call,
                                         const Function& from) {
  if (call.global_qualified) return {};
  if (call.qualifier == "std" || call.qualifier.rfind("std::", 0) == 0) {
    return {};
  }
  const std::vector<std::size_t>* all = resolve(index, call.name);
  if (all == nullptr) return {};
  std::vector<std::size_t> same_file;
  std::vector<std::size_t> same_layer;
  for (const std::size_t t : *all) {
    const Function& g = index.functions[t];
    if (g.file == from.file) {
      same_file.push_back(t);
    } else if (!from.layer.empty() && g.layer == from.layer) {
      same_layer.push_back(t);
    }
  }
  if (!same_file.empty()) return same_file;
  if (!same_layer.empty()) return same_layer;
  return *all;
}

/// Reconstructs the root-first chain for `fn` from BFS parent links.
std::vector<std::string> build_chain(
    const ProgramIndex& index,
    const std::map<std::size_t, std::size_t>& parent, std::size_t fn) {
  std::vector<std::string> chain;
  for (std::size_t cur = fn;;) {
    chain.push_back(chain_step(index.functions[cur]));
    const auto it = parent.find(cur);
    if (it == parent.end() || it->second == cur) break;
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

// ---------------------------------------------------------------- allowlist

bool Allowlist::allowed(const Violation& v) const {
  bool hit = false;
  for (const AllowEntry& e : entries) {
    const bool path_match =
        e.path == v.file || (!v.sink_file.empty() && e.path == v.sink_file);
    if (path_match && (e.rule == "*" || e.rule == v.rule)) {
      e.used = true;
      hit = true;  // keep marking later duplicates as used
    }
  }
  return hit;
}

bool parse_allowlist(std::istream& in, Allowlist& out, std::string& err) {
  bool ok = true;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t hash = line.find('#');
    if (hash == std::string::npos) {
      err += "allowlist:" + std::to_string(line_no) +
             ": entry has no '# reason' — a justification is mandatory\n";
      ok = false;
      continue;
    }
    const std::string spec = trim(line.substr(0, hash));
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      err += "allowlist:" + std::to_string(line_no) +
             ": entry must be <path>:<rule|*> # reason\n";
      ok = false;
      continue;
    }
    AllowEntry e;
    e.path = spec.substr(0, colon);
    e.rule = spec.substr(colon + 1);
    e.reason = line.substr(hash + 1);
    out.entries.push_back(std::move(e));
  }
  return ok;
}

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      kRuleBlocking, kRuleLayers, kRuleThrow, kRuleDeterminism, kRuleDigest};
  return kRules;
}

// -------------------------------------------------------------- layer graph

bool LayerGraph::knows(const std::string& layer) const {
  return std::any_of(layers.begin(), layers.end(),
                     [&](const auto& l) { return l.first == layer; });
}

bool LayerGraph::may_include(const std::string& from,
                             const std::string& to) const {
  if (from == to) return true;
  // BFS over the declared direct deps: PUBLIC CMake linking makes
  // transitive headers visible, so the closure is the legal set.
  std::vector<std::string> queue = {from};
  std::set<std::string> seen = {from};
  while (!queue.empty()) {
    const std::string cur = queue.back();
    queue.pop_back();
    for (const auto& [name, deps] : layers) {
      if (name != cur) continue;
      for (const std::string& dep : deps) {
        if (dep == to) return true;
        if (seen.insert(dep).second) queue.push_back(dep);
      }
    }
  }
  return false;
}

bool parse_layer_graph(std::istream& in, LayerGraph& out, std::string& err) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      err = "layers.txt:" + std::to_string(line_no) +
            ": expected `layer: dep dep ...`";
      return false;
    }
    const std::string name = trim(line.substr(0, colon));
    if (out.knows(name)) {
      err = "layers.txt:" + std::to_string(line_no) + ": duplicate layer '" +
            name + "'";
      return false;
    }
    std::vector<std::string> deps;
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) {
      if (!out.knows(dep)) {
        // Deps must be declared on an earlier line: the file reads as a
        // topological order, which makes cycles unrepresentable.
        err = "layers.txt:" + std::to_string(line_no) + ": dep '" + dep +
              "' of '" + name +
              "' is not declared earlier (file must be in dependency "
              "order; cycles cannot be expressed)";
        return false;
      }
      deps.push_back(dep);
    }
    out.layers.emplace_back(name, std::move(deps));
  }
  return true;
}

// ---------------------------------------------------------- throw contracts

bool parse_contracts(std::istream& in, std::vector<ThrowContract>& out,
                     std::string& err) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    std::istringstream parts(line);
    ThrowContract contract;
    parts >> contract.function;
    std::string extra;
    if (parts >> extra) {
      const std::string_view prefix = "throws=";
      if (extra.compare(0, prefix.size(), prefix) != 0 ||
          extra.size() == prefix.size()) {
        err = "nothrow.txt:" + std::to_string(line_no) +
              ": expected `function` or `function throws=Type`";
        return false;
      }
      contract.allowed_type = extra.substr(prefix.size());
    }
    out.push_back(std::move(contract));
  }
  return true;
}

// ------------------------------------------------- R1: blocking under lock

namespace {

/// The PR 5 discipline: raw POSIX syscalls are ::-qualified throughout the
/// codebase, which is exactly what lets this stay precise. Sleeps are
/// blocking regardless of qualification.
bool is_blocking_sink(const CallSite& c) {
  static const std::set<std::string> kPosix = {
      "send",   "sendto",  "sendmsg", "recv",    "recvfrom", "recvmsg",
      "poll",   "ppoll",   "select",  "pselect", "connect",  "accept",
      "accept4", "read",   "write",   "pread",   "pwrite",   "readv",
      "writev", "fsync",   "fdatasync", "open",  "openat",   "usleep",
      "nanosleep", "sleep"};
  static const std::set<std::string> kSleeps = {"sleep_for", "sleep_until",
                                                "usleep", "nanosleep"};
  if (c.global_qualified && kPosix.count(c.name) != 0) return true;
  return kSleeps.count(c.name) != 0;
}

const CallSite* first_blocking_sink(const Function& fn) {
  for (const CallSite& c : fn.calls) {
    if (is_blocking_sink(c)) return &c;
  }
  return nullptr;
}

}  // namespace

void rule_blocking_under_lock(const ProgramIndex& index,
                              const std::string& mutex,
                              std::vector<Violation>& out) {
  for (const Function& fn : index.functions) {
    const bool fn_locked = contains(fn.requires_mutexes, mutex);
    for (const CallSite& origin : fn.calls) {
      if (!fn_locked && !contains(origin.locked, mutex)) continue;
      if (is_blocking_sink(origin)) {
        out.push_back({fn.file, origin.line, kRuleBlocking,
                       "blocking call " + display_call(origin) +
                           " while holding " + mutex,
                       {},
                       ""});
        continue;
      }
      // BFS through the call graph from this under-lock call site; every
      // reachable function containing a blocking sink is a finding.
      std::map<std::size_t, std::size_t> parent;
      std::vector<std::size_t> queue;
      for (const std::size_t t : resolve_targets(index, origin, fn)) {
        if (parent.emplace(t, t).second) queue.push_back(t);
      }
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t cur = queue[head];
        const Function& g = index.functions[cur];
        if (const CallSite* sink = first_blocking_sink(g)) {
          std::ostringstream msg;
          msg << "blocking call " << display_call(*sink) << " (" << g.file
              << ":" << sink->line << ") reachable while holding " << mutex;
          out.push_back({fn.file, origin.line, kRuleBlocking, msg.str(),
                         build_chain(index, parent, cur), g.file});
        }
        for (const CallSite& c : g.calls) {
          for (const std::size_t t : resolve_targets(index, c, g)) {
            if (parent.emplace(t, cur).second) queue.push_back(t);
          }
        }
      }
    }
  }
}

// ----------------------------------------------------------- R2: layer DAG

void rule_layer_dag(const ProgramIndex& index, const LayerGraph& graph,
                    std::vector<Violation>& out) {
  for (const FileIndex& file : index.files) {
    if (file.layer.empty()) continue;
    if (!graph.knows(file.layer)) {
      out.push_back({file.path, 1, kRuleLayers,
                     "layer '" + file.layer +
                         "' is not declared in layers.txt — declare it (with "
                         "its deps) before adding code to it",
                     {},
                     ""});
      continue;
    }
    for (const StrippedSource::Include& inc : file.includes) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // system / non-layer header
      const std::string target_layer = inc.target.substr(0, slash);
      if (!graph.knows(target_layer)) continue;  // not a src/ layer include
      if (graph.may_include(file.layer, target_layer)) continue;
      out.push_back({file.path, inc.line, kRuleLayers,
                     "layer '" + file.layer + "' may not include '" +
                         inc.target + "' (layer '" + target_layer +
                         "' is not in its declared dependency closure)",
                     {},
                     "src/" + target_layer});
    }
  }
}

// ------------------------------------------------------ R3: throw contracts

namespace {

bool contract_matches(const ThrowContract& contract, const Function& fn) {
  if (contract.function.find("::") != std::string::npos) {
    if (fn.qualified == contract.function) return true;
    return fn.qualified.size() > contract.function.size() &&
           fn.qualified.ends_with("::" + contract.function);
  }
  return fn.name == contract.function;
}

}  // namespace

void rule_throw_contracts(const ProgramIndex& index,
                          const std::vector<ThrowContract>& contracts,
                          std::vector<Violation>& out) {
  for (const ThrowContract& contract : contracts) {
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
      if (contract_matches(contract, index.functions[i])) roots.push_back(i);
    }
    if (roots.empty()) {
      out.push_back({"tools/fastcons_lint/nothrow.txt", 0, kRuleThrow,
                     "contract names no indexed function: " +
                         contract.function + " (stale contract)",
                     {},
                     ""});
      continue;
    }
    for (const std::size_t root : roots) {
      // BFS through UNGUARDED calls only: a call inside a try block is an
      // analysis boundary — whatever it throws is handled locally.
      std::map<std::size_t, std::size_t> parent;
      parent.emplace(root, root);
      std::vector<std::size_t> queue = {root};
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t cur = queue[head];
        const Function& g = index.functions[cur];
        const auto report = [&](std::size_t line, const std::string& what) {
          std::ostringstream msg;
          msg << what << " in " << g.qualified
              << ", reachable from " << (contract.allowed_type.empty()
                                             ? "nothrow"
                                             : "throws=" +
                                                   contract.allowed_type)
              << " contract " << contract.function;
          out.push_back({g.file, line, kRuleThrow, msg.str(),
                         build_chain(index, parent, cur),
                         index.functions[root].file});
        };
        for (const ThrowSite& t : g.throws) {
          if (t.in_try) continue;
          if (!contract.allowed_type.empty() &&
              t.type == contract.allowed_type) {
            continue;
          }
          report(t.line, "throw " + (t.type.empty() ? "(rethrow)" : t.type));
        }
        for (const MarkSite& m : g.at_calls) {
          if (!m.in_try) report(m.line, "unguarded .at()");
        }
        for (const MarkSite& m : g.casts) {
          if (!m.in_try) report(m.line, "throwing cast " + m.what);
        }
        for (const CallSite& c : g.calls) {
          if (c.in_try) continue;
          for (const std::size_t t : resolve_targets(index, c, g)) {
            if (parent.emplace(t, cur).second) queue.push_back(t);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------- R4: determinism port

const std::vector<std::string>& determinism_layers() {
  static const std::vector<std::string> kLayers = {
      "common",     "core",    "sim",     "sim_runtime", "replication",
      "demand",     "experiment", "topology", "islands", "harness",
      "stats",      "durability", "health"};
  return kLayers;
}

namespace {

/// True when `text[pos]` starts the word `word` with no identifier character
/// directly before it ("rand(" matches, "operand(" does not). A preceding
/// ':' is allowed so std::rand / std::time still match.
bool word_at(const std::string& text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos == 0) return true;
  return !ident_char(text[pos - 1]);
}

/// First template argument of the container starting after `open` ("<"),
/// with nesting respected. Used to spot pointer keys.
std::string first_template_arg(const std::string& text, std::size_t open) {
  int depth = 0;
  std::string arg;
  for (std::size_t i = open; i < text.size() && arg.size() < 200; ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
      if (depth == 1) continue;
    } else if (c == '>') {
      --depth;
      if (depth == 0) break;
    } else if (c == ',' && depth == 1) {
      break;
    }
    if (depth >= 1) arg += c;
  }
  return arg;
}

void determinism_scan_line(const std::string& text, std::size_t line_no,
                           const std::string& rel_path,
                           std::vector<Violation>& out) {
  const auto add = [&](const char* rule, std::size_t pos) {
    const std::size_t end = std::min(text.size(), pos + 40);
    out.push_back(Violation{rel_path, line_no, rule,
                            text.substr(pos, end - pos), {}, ""});
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (word_at(text, i, "unordered_map") || word_at(text, i, "unordered_set")) {
      add("unordered-container", i);
    } else if (word_at(text, i, "rand(") || word_at(text, i, "srand(")) {
      add("c-rand", i);
    } else if (word_at(text, i, "time(")) {
      add("c-time", i);
    } else if (word_at(text, i, "random_device")) {
      add("random-device", i);
    } else if (text.compare(i, 12, "_clock::now(") == 0) {
      add("wall-clock", i);
    } else if (word_at(text, i, "map<") || word_at(text, i, "set<")) {
      const std::size_t open = text.find('<', i);
      const std::string key = first_template_arg(text, open);
      if (key.find('*') != std::string::npos) add("pointer-keyed", i);
    }
  }
}

}  // namespace

void rule_determinism(const std::vector<SourceFile>& sources,
                      std::vector<Violation>& out) {
  const auto& layers = determinism_layers();
  for (const SourceFile& source : sources) {
    const std::string layer = layer_of(source.path);
    if (std::find(layers.begin(), layers.end(), layer) == layers.end()) {
      continue;
    }
    const std::string stripped = strip_source(source.text).text;
    std::size_t line_no = 1;
    std::size_t start = 0;
    while (start <= stripped.size()) {
      std::size_t end = stripped.find('\n', start);
      if (end == std::string::npos) end = stripped.size();
      determinism_scan_line(stripped.substr(start, end - start), line_no,
                            source.path, out);
      start = end + 1;
      ++line_no;
    }
  }
}

// ------------------------------------------------------- R5: digest purity

const std::vector<std::string>& digest_purity_layers() {
  // determinism_layers() minus harness and durability: their I/O (results
  // files, the WAL) is sanctioned and sits outside the digested values.
  static const std::vector<std::string> kLayers = {
      "common", "core",       "sim",      "sim_runtime", "replication",
      "demand", "experiment", "topology", "islands",     "stats",
      "health"};
  return kLayers;
}

namespace {

/// I/O primitive classification for digest purity. C stdio names are
/// distinctive enough to match unqualified; POSIX names only when
/// ::-qualified (the codebase convention); std::filesystem via qualifier.
bool is_io_call(const CallSite& c) {
  static const std::set<std::string> kPosixIo = {
      "open", "openat", "read",  "write", "pread",     "pwrite",
      "close", "fsync", "fdatasync", "send", "recv",   "unlink",
      "rename", "mkdir"};
  static const std::set<std::string> kCIo = {
      "fopen", "freopen", "fclose", "fread", "fwrite", "fprintf",
      "fscanf", "fputs",  "fgets",  "fflush", "popen", "system",
      "getenv"};
  if (c.global_qualified && kPosixIo.count(c.name) != 0) return true;
  if (kCIo.count(c.name) != 0) return true;
  return c.qualifier == "fs" || c.qualifier == "std::filesystem" ||
         c.qualifier.ends_with("::filesystem");
}

bool is_wall_clock_call(const CallSite& c) {
  return c.name == "now" && c.qualifier.ends_with("_clock");
}

}  // namespace

void rule_digest_purity(const ProgramIndex& index,
                        std::vector<Violation>& out) {
  const auto& layers = digest_purity_layers();
  const auto pure = [&](const std::string& layer) {
    return std::find(layers.begin(), layers.end(), layer) != layers.end();
  };
  for (const Function& fn : index.functions) {
    if (!pure(fn.layer)) continue;
    for (const CallSite& c : fn.calls) {
      if (is_wall_clock_call(c)) {
        out.push_back({fn.file, c.line, kRuleDigest,
                       "wall-clock read " + display_call(c) +
                           " in digest-purity layer '" + fn.layer + "'",
                       {},
                       ""});
      } else if (is_io_call(c)) {
        out.push_back({fn.file, c.line, kRuleDigest,
                       "I/O call " + display_call(c) +
                           " in digest-purity layer '" + fn.layer + "'",
                       {},
                       ""});
      } else if (!c.member_access) {
        // Boundary crossing: a free-function call resolving into a src/
        // layer OUTSIDE the purity set. Member calls are excluded — the
        // layer DAG already prevents purity layers from holding objects of
        // impure layers, and member-name collisions with std containers
        // would drown the signal.
        for (const std::size_t t : resolve_targets(index, c, fn)) {
          const Function& g = index.functions[t];
          if (g.layer.empty() || pure(g.layer)) continue;
          out.push_back({fn.file, c.line, kRuleDigest,
                         "call " + display_call(c) + " resolves into layer '" +
                             g.layer + "' (" + g.file +
                             ") from digest-purity layer '" + fn.layer + "'",
                         {chain_step(g)},
                         g.file});
          break;
        }
      }
    }
    for (const MarkSite& io : fn.io_idents) {
      out.push_back({fn.file, io.line, kRuleDigest,
                     "I/O primitive " + io.what + " in digest-purity layer '" +
                         fn.layer + "'",
                     {},
                     ""});
    }
  }
}

}  // namespace fastcons::lint
