// fastconsd — run one fast-consistency replica as a standalone process.
//
// Several instances on one or more hosts form a replication mesh; each is
// told its own id/port and its neighbours' addresses. Useful for manual
// experiments beyond the in-process LocalCluster.
//
// Usage:
//   fastconsd --id 0 --port 7000 --peer 1:127.0.0.1:7001 <more peers...>
//             --demand 8 [options]
//
// Options:
//   --id N                 replica id (required)
//   --port P               listen port (required; must match what peers use)
//   --peer ID:HOST:PORT    repeatable; one per neighbour
//   --demand D             advertised demand (default 0)
//   --algorithm A          fast | demand-order | weak  (default fast)
//   --period-ms M          session period in wall-clock ms (default 1000)
//   --write KEY=VALUE      repeatable; client writes issued after startup
//   --run-seconds S        exit after S seconds (default: run forever)
//   --verbose              info-level logging to stderr
//
// The process prints a one-line status (summary size, sessions, offers)
// every session period.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N --port P [--peer ID:HOST:PORT]... "
               "[--demand D] [--algorithm fast|demand-order|weak] "
               "[--period-ms M] [--write K=V]... [--run-seconds S] "
               "[--verbose]\n",
               argv0);
  std::exit(2);
}

fastcons::PeerAddress parse_peer(const std::string& spec) {
  const auto first = spec.find(':');
  const auto second = spec.rfind(':');
  if (first == std::string::npos || second == first) {
    throw fastcons::ConfigError("bad --peer spec (want ID:HOST:PORT): " + spec);
  }
  fastcons::PeerAddress peer;
  peer.id = static_cast<fastcons::NodeId>(
      std::strtoul(spec.substr(0, first).c_str(), nullptr, 10));
  peer.host = spec.substr(first + 1, second - first - 1);
  peer.port = static_cast<std::uint16_t>(
      std::strtoul(spec.substr(second + 1).c_str(), nullptr, 10));
  return peer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastcons;
  init_log_from_env();

  ServerConfig config;
  config.protocol = ProtocolConfig::fast();
  std::vector<std::pair<std::string, std::string>> writes;
  double run_seconds = -1.0;
  double period_ms = 1000.0;
  long port = -1;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--id") {
        config.self = static_cast<NodeId>(std::stoul(value()));
      } else if (arg == "--port") {
        port = std::stol(value());
      } else if (arg == "--peer") {
        config.peers.push_back(parse_peer(value()));
      } else if (arg == "--demand") {
        config.demand = std::stod(value());
      } else if (arg == "--algorithm") {
        const std::string algo = value();
        if (algo == "fast") config.protocol = ProtocolConfig::fast();
        else if (algo == "demand-order") config.protocol = ProtocolConfig::demand_order_only();
        else if (algo == "weak") config.protocol = ProtocolConfig::weak();
        else usage(argv[0]);
      } else if (arg == "--period-ms") {
        period_ms = std::stod(value());
      } else if (arg == "--write") {
        const std::string kv = value();
        const auto eq = kv.find('=');
        if (eq == std::string::npos) usage(argv[0]);
        writes.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
      } else if (arg == "--run-seconds") {
        run_seconds = std::stod(value());
      } else if (arg == "--verbose") {
        set_log_threshold(LogLevel::info);
      } else {
        usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "argument error: %s\n", e.what());
    usage(argv[0]);
  }
  if (config.self == kInvalidNode || port < 0) usage(argv[0]);
  config.seconds_per_unit = period_ms / 1000.0;
  config.seed = 0x5eed0000u + config.self;

  try {
    config.listen_port = static_cast<std::uint16_t>(port);
    const std::size_t peer_count = config.peers.size();
    const double demand = config.demand;
    ReplicaServer server(std::move(config));
    std::fprintf(stderr, "fastconsd: replica %u on 127.0.0.1:%u (%zu peers, "
                 "demand %.1f)\n", server.self(), server.port(), peer_count,
                 demand);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    server.start();
    for (auto& [key, val] : writes) server.write(key, val);

    const auto started = std::chrono::steady_clock::now();
    while (g_stop == 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(period_ms)));
      const EngineStats stats = server.stats();
      std::fprintf(stderr,
                   "replica %u: updates=%llu sessions(i/r)=%llu/%llu "
                   "offers=%llu dups=%llu\n",
                   server.self(),
                   static_cast<unsigned long long>(stats.updates_applied),
                   static_cast<unsigned long long>(stats.sessions_completed),
                   static_cast<unsigned long long>(stats.sessions_responded),
                   static_cast<unsigned long long>(stats.offers_sent),
                   static_cast<unsigned long long>(stats.duplicate_updates));
      if (run_seconds >= 0.0 &&
          std::chrono::steady_clock::now() - started >
              std::chrono::duration<double>(run_seconds)) {
        break;
      }
    }
    server.stop();
  } catch (const Error& e) {
    std::fprintf(stderr, "fastconsd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
