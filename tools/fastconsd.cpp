// fastconsd — run one fast-consistency replica as a standalone process.
//
// Several instances on one or more hosts form a replication mesh; each is
// told its own id/port and its neighbours' addresses. Useful for manual
// experiments beyond the in-process LocalCluster.
//
// Usage:
//   fastconsd --id 0 --port 7000 --peer 1:10.0.0.8:7001 <more peers...>
//             --bind 0.0.0.0 --demand 8 [options]
//
// Options:
//   --id N                 replica id (required)
//   --port P               listen port (required; must match what peers use)
//   --bind ADDR            listen address (default 127.0.0.1; use 0.0.0.0
//                          or an interface address for a multi-host mesh)
//   --peer ID:HOST:PORT    repeatable; one per neighbour
//   --demand D             advertised demand (default 0)
//   --algorithm A          fast | demand-order | weak  (default fast)
//   --period-ms M          session period in wall-clock ms (default 1000)
//   --write KEY=VALUE      repeatable; client writes issued after startup
//   --run-seconds S        exit after S seconds (default: run forever)
//   --load-writes-per-sec R  load-generator mode: issue R writes/sec...
//   --load-seconds S         ...for S seconds, print a latency report, exit
//   --data-dir DIR         durable mode: persist a write-ahead log and
//                          periodic checkpoints under DIR and recover them
//                          on startup (default: in-memory only)
//   --fsync none|always    WAL fsync policy in durable mode (default none:
//                          group-committed to the OS, synced by the kernel)
//   --checkpoint-every N   rewrite the checkpoint every N WAL records
//                          (default 4096; 0 = never)
//   --verbose              info-level logging to stderr
//
// The process prints a one-line status (summary size, sessions, offers,
// link health) every session period.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/options.hpp"
#include "net/pacer.hpp"
#include "net/server.hpp"
#include "stats/cdf.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0, bool error) {
  std::fprintf(error ? stderr : stdout,
               "usage: %s --id N --port P [--bind ADDR] "
               "[--peer ID:HOST:PORT]... "
               "[--demand D] [--algorithm fast|demand-order|weak] "
               "[--period-ms M] [--write K=V]... [--run-seconds S] "
               "[--load-writes-per-sec R --load-seconds S] "
               "[--data-dir DIR] [--fsync none|always] "
               "[--checkpoint-every N] [--verbose]\n",
               argv0);
  std::exit(error ? 2 : 0);
}

void print_status(fastcons::ReplicaServer& server) {
  const fastcons::EngineStats stats = server.stats();
  const fastcons::NetStats net = server.net_stats();
  std::size_t peers_up = 0;
  for (const auto& peer : net.peers) peers_up += peer.connected ? 1 : 0;
  std::fprintf(stderr,
               "replica %u: updates=%llu sessions(i/r)=%llu/%llu "
               "offers=%llu dups=%llu links=%zu/%zu "
               "frames(tx/rx/drop)=%llu/%llu/%llu\n",
               server.self(),
               static_cast<unsigned long long>(stats.updates_applied),
               static_cast<unsigned long long>(stats.sessions_completed),
               static_cast<unsigned long long>(stats.sessions_responded),
               static_cast<unsigned long long>(stats.offers_sent),
               static_cast<unsigned long long>(stats.duplicate_updates),
               peers_up, net.peers.size(),
               static_cast<unsigned long long>(net.frames_sent),
               static_cast<unsigned long long>(net.frames_received),
               static_cast<unsigned long long>(net.frames_dropped));
}

/// Load-generator mode: sustained writes at a steady rate, sampling the
/// local write -> readable round trip through the server's command queue
/// (cross-replica visibility needs an observer on the other replica; the
/// LocalCluster::run_load helper measures that form in-process).
int run_load(fastcons::ReplicaServer& server, double rate, double seconds) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kSampleEvery = 8;
  fastcons::EmpiricalCdf apply_latency_ms;
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds);
  const fastcons::RatePacer pacer(start, rate);
  std::uint64_t issued = 0;
  while (g_stop == 0 && Clock::now() < deadline) {
    const auto now = Clock::now();
    if (now < pacer.due(issued)) {
      std::this_thread::sleep_for(pacer.sleep_toward(issued, now));
      continue;
    }
    const std::string key = "load/" + std::to_string(server.self()) + "/" +
                            std::to_string(issued);
    server.write(key, "v");
    ++issued;
    if (issued % kSampleEvery == 1) {
      while (g_stop == 0 && !server.read(key).has_value()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      apply_latency_ms.add(
          std::chrono::duration<double, std::milli>(Clock::now() - now)
              .count());
    }
  }
  const double window =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::fprintf(stderr,
               "load report: %llu writes in %.2fs (%.1f/s requested, "
               "%.1f/s achieved)\n",
               static_cast<unsigned long long>(issued), window, rate,
               window > 0.0 ? static_cast<double>(issued) / window : 0.0);
  if (!apply_latency_ms.empty()) {
    std::fprintf(stderr,
                 "local apply latency: p50 %.3fms p99 %.3fms max %.3fms "
                 "(%zu samples)\n",
                 apply_latency_ms.quantile(0.50),
                 apply_latency_ms.quantile(0.99), apply_latency_ms.max(),
                 apply_latency_ms.count());
  }
  print_status(server);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastcons;
  init_log_from_env();

  DaemonOptions options;
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parse_daemon_args(args, options)) {
    if (*error == "help") usage(argv[0], /*error=*/false);
    std::fprintf(stderr, "argument error: %s\n", error->c_str());
    usage(argv[0], /*error=*/true);
  }
  if (options.verbose) set_log_threshold(LogLevel::info);
  options.server.seed = 0x5eed0000u + options.server.self;

  try {
    const std::size_t peer_count = options.server.peers.size();
    const double demand = options.server.demand;
    const std::string bind_address = options.server.bind_address;
    ReplicaServer server(std::move(options.server));
    std::fprintf(stderr, "fastconsd: replica %u on %s:%u (%zu peers, "
                 "demand %.1f)\n", server.self(), bind_address.c_str(),
                 server.port(), peer_count, demand);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    server.start();
    if (const RecoveryInfo& rec = server.recovery_info(); rec.attempted) {
      std::fprintf(stderr,
                   "durable: %s (checkpoint=%llu updates, wal=%llu records"
                   "%s) in %.1fms, %zu catch-up peers\n",
                   rec.recovered_from_disk ? "recovered" : "fresh start",
                   static_cast<unsigned long long>(rec.checkpoint_updates),
                   static_cast<unsigned long long>(rec.wal_records),
                   rec.wal_torn_tail ? ", torn tail truncated" : "",
                   rec.load_ms, rec.catchup_peers);
    }
    for (auto& [key, val] : options.writes) server.write(key, val);

    if (options.load_writes_per_sec > 0.0) {
      const int rc = run_load(server, options.load_writes_per_sec,
                              options.load_seconds);
      server.stop();
      return rc;
    }

    const auto started = std::chrono::steady_clock::now();
    auto next_status =
        started + std::chrono::milliseconds(static_cast<long>(options.period_ms));
    while (g_stop == 0) {
      // Short sleeps keep signal response prompt: a SIGTERM waits at most
      // ~50ms before the graceful shutdown below runs, independent of the
      // status period.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_status) {
        print_status(server);
        next_status +=
            std::chrono::milliseconds(static_cast<long>(options.period_ms));
      }
      if (options.run_seconds >= 0.0 &&
          now - started > std::chrono::duration<double>(options.run_seconds)) {
        break;
      }
    }
    if (g_stop != 0) {
      std::fprintf(stderr,
                   "fastconsd: signal received, shutting down gracefully\n");
    }
    // Graceful stop: flushes the WAL group-commit buffer, writes a final
    // checkpoint (durable mode) and closes the listener — the next start
    // recovers with zero WAL replay.
    server.stop();
    std::fprintf(stderr, "fastconsd: clean shutdown\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "fastconsd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
