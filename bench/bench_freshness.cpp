// Compatibility stub: this experiment now lives in the harness registry as
// the scenario(s) listed below. Prefer the unified CLI:
//   fastcons_bench --scenario freshness
// Env knobs kept: FASTCONS_REPS, FASTCONS_JOBS, FASTCONS_CSV_DIR.
#include "harness/report.hpp"

int main() { return fastcons::harness::legacy_bench_main({"freshness"}); }
