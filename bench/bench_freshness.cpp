// Experiment E12 (extension) — the paper's abstract, measured literally:
// "updating first replicas having most demand, a greater number of clients
// would gain access to updated content in a shorter period of time."
//
// Clients issue Poisson reads at each replica at its demand rate while a
// stream of writes flows through the system; a read is *fresh* when the
// serving replica already holds the newest write of the requested key. We
// sweep the write rate and report the fresh-read fraction and the mean age
// of stale reads for all three algorithms.
#include "bench_common.hpp"
#include "experiment/workload.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t n = 40;
  const std::size_t runs = std::max<std::size_t>(repetitions(400) / 20, 5);
  std::printf("Client freshness (extension E12): BA-%zu, Zipf demand, %zu "
              "runs per cell\n", n, runs);

  Table table({"write interval", "algorithm", "fresh reads", "stale age",
               "reads/run", "writes/run"});
  for (const double interval : {4.0, 2.0, 1.0}) {
    for (const auto& [name, protocol] : three_algorithms()) {
      double fresh_sum = 0.0;
      OnlineStats stale_age;
      std::uint64_t reads = 0, writes = 0;
      Rng master(31415);
      for (std::size_t run = 0; run < runs; ++run) {
        Rng rep_rng = master.split();
        Graph g = make_barabasi_albert(n, 2, {0.01, 0.05}, rep_rng);
        auto demand = std::make_shared<StaticDemand>(
            make_zipf_demand(n, 1.0, 60.0, rep_rng));
        SimConfig sim;
        sim.protocol = protocol;
        sim.seed = rep_rng.next_u64();
        WorkloadConfig workload;
        workload.keys = 4;
        workload.write_interval = interval;
        workload.duration = 40.0;
        workload.warmup = 5.0;
        workload.seed = rep_rng.next_u64();
        const WorkloadResult result =
            run_workload(std::move(g), demand, sim, workload);
        fresh_sum += result.fresh_fraction();
        stale_age.merge(result.stale_age);
        reads += result.reads;
        writes += result.writes;
      }
      table.add_row({Table::num(interval, 1), name,
                     Table::num(100.0 * fresh_sum / static_cast<double>(runs), 2) + "%",
                     Table::num(stale_age.mean(), 3),
                     Table::num(reads / runs), Table::num(writes / runs)});
    }
  }
  std::cout << "\n== fresh reads by algorithm and write rate ==\n";
  table.print(std::cout);
  emit_csv(table, "freshness");
  std::cout << "\nexpected shape: fast consistency keeps the fresh-read "
               "fraction highest at every write rate, and the stale reads "
               "that remain are younger; the gap widens as writes become "
               "more frequent\n";
  return 0;
}
