// Experiment E8 — §8's overhead claims: "it requires few additional bytes in
// the exchange of messages between replicas ... The algorithm is scalable,
// does not cause traffic overload". We measure wire bytes (via the codec's
// exact sizes) per message class over a fixed horizon, comparing weak,
// demand-order and fast on the same workload.
#include "bench_common.hpp"
#include "sim_runtime/sim_network.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t n = 50;
  const std::size_t reps = repetitions(300);
  const SimTime horizon = 10.0;
  std::printf("Overhead accounting: BA-%zu, one write, horizon %.0f session"
              " periods, %zu repetitions\n", n, horizon, reps);

  Table table({"algorithm", "msgs/node/unit", "bytes/node/unit",
               "session-ctl B", "session-payload B", "fast-ctl B",
               "fast-payload B", "extra vs weak"});
  std::uint64_t weak_bytes = 0;
  for (const auto& [name, protocol] : three_algorithms()) {
    TrafficCounters total;
    Rng master(2025);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rep_rng = master.split();
      Graph g = make_barabasi_albert(n, 2, {0.01, 0.05}, rep_rng);
      auto demand = std::make_shared<StaticDemand>(
          make_uniform_random_demand(n, 0.0, 100.0, rep_rng));
      SimConfig cfg;
      cfg.protocol = protocol;
      cfg.seed = rep_rng.next_u64();
      SimNetwork net(std::move(g), demand, cfg);
      net.schedule_write(static_cast<NodeId>(rep_rng.index(n)), "k", "v", 0.5);
      net.run_until(horizon);
      total.merge(net.total_traffic());
    }
    const double node_units =
        static_cast<double>(reps) * static_cast<double>(n) * horizon;
    if (name == "weak") weak_bytes = total.total_bytes();
    const double extra =
        weak_bytes == 0
            ? 0.0
            : 100.0 * (static_cast<double>(total.total_bytes()) -
                       static_cast<double>(weak_bytes)) /
                  static_cast<double>(weak_bytes);
    table.add_row(
        {name,
         Table::num(static_cast<double>(total.total_messages()) / node_units, 2),
         Table::num(static_cast<double>(total.total_bytes()) / node_units, 1),
         Table::num(total.bytes(TrafficClass::session_control) / reps),
         Table::num(total.bytes(TrafficClass::session_payload) / reps),
         Table::num(total.bytes(TrafficClass::fast_control) / reps),
         Table::num(total.bytes(TrafficClass::fast_payload) / reps),
         Table::num(extra, 1) + "%"});
  }
  std::cout << "\n== traffic per algorithm (same horizon, same workload) ==\n";
  table.print(std::cout);
  emit_csv(table, "overhead");
  std::cout << "\nexpected shape: the fast rows add only small id-sized "
               "offer/ack traffic (\"few additional bytes\"); per-byte "
               "totals stay within a few percent of weak\n";
  return 0;
}
