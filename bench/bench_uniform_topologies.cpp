// Experiment E6 — §5's claim: "Similar results as shown in figures 5 and 6
// have been obtained with simpler uniform topologies (linear, ring, grid),
// with different number of nodes." One row per topology: fast vs weak mean
// sessions, high-demand subset, and time to full consistency.
#include "bench_common.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t reps = repetitions(1500);
  std::printf("Uniform topologies (paper §5 claim), %zu repetitions each\n",
              reps);

  struct Row {
    std::string name;
    TopologyFactory topo;
  };
  const LatencyRange lat{0.01, 0.05};
  const std::vector<Row> rows{
      {"line-16", [lat](Rng& rng) { return make_line(16, lat, rng); }},
      {"line-32", [lat](Rng& rng) { return make_line(32, lat, rng); }},
      {"ring-16", [lat](Rng& rng) { return make_ring(16, lat, rng); }},
      {"ring-32", [lat](Rng& rng) { return make_ring(32, lat, rng); }},
      {"grid-4x4", [lat](Rng& rng) { return make_grid(4, 4, lat, rng); }},
      {"grid-6x6", [lat](Rng& rng) { return make_grid(6, 6, lat, rng); }},
      {"tree-31", [lat](Rng& rng) { return make_binary_tree(31, lat, rng); }},
  };

  Table table({"topology", "weak mean", "fast mean", "speedup",
               "weak high-demand", "fast high-demand", "weak full",
               "fast full"});
  for (const Row& row : rows) {
    const auto results = run_algorithms(row.topo, uniform_demand_factory(),
                                        reps, 77, three_algorithms());
    const auto& weak = results.at("weak");
    const auto& fast = results.at("fast");
    table.add_row({row.name, Table::num(weak.all.mean(), 3),
                   Table::num(fast.all.mean(), 3),
                   Table::num(weak.all.mean() / fast.all.mean(), 2) + "x",
                   Table::num(weak.high_demand.mean(), 3),
                   Table::num(fast.high_demand.mean(), 3),
                   Table::num(weak.time_to_full.mean(), 3),
                   Table::num(fast.time_to_full.mean(), 3)});
  }
  std::cout << "\n== uniform topologies: fast vs weak ==\n";
  table.print(std::cout);
  emit_csv(table, "uniform_topologies");
  std::cout << "\nexpected shape: fast < weak on every row; fast high-demand"
               " well below fast mean\n";
  return 0;
}
