// Shared plumbing for the figure/table reproduction binaries: environment
// overrides, the three named algorithms, CDF printing and CSV output.
//
// Every bench runs with no arguments; knobs come from the environment:
//   FASTCONS_REPS      repetitions per configuration (default per bench)
//   FASTCONS_CSV_DIR   where to drop CSV copies of each table (default
//                      ./bench_results; set to empty string to disable)
#ifndef FASTCONS_BENCH_BENCH_COMMON_HPP
#define FASTCONS_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "experiment/propagation.hpp"
#include "stats/table.hpp"
#include "topology/generators.hpp"

namespace fastcons::bench {

inline std::size_t repetitions(std::size_t fallback) {
  return static_cast<std::size_t>(env_u64("FASTCONS_REPS", fallback));
}

/// Writes `table` to $FASTCONS_CSV_DIR/<name>.csv (best-effort).
inline void emit_csv(const Table& table, const std::string& name) {
  const char* env = std::getenv("FASTCONS_CSV_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  try {
    table.write_csv(dir + "/" + name + ".csv");
  } catch (const Error&) {
    // CSV output is a convenience; the stdout table is the artefact.
  }
}

/// The three algorithms of the paper's figures, by display name.
inline std::vector<std::pair<std::string, ProtocolConfig>> three_algorithms() {
  // Static-demand experiments: tables are primed at t=0, so adverts are
  // pure overhead; disabling them matches the paper's static model and
  // keeps the byte counters focused on the replication traffic.
  ProtocolConfig weak = ProtocolConfig::weak();
  weak.advert_period = 0.0;
  ProtocolConfig demand_only = ProtocolConfig::demand_order_only();
  demand_only.advert_period = 0.0;
  ProtocolConfig fast = ProtocolConfig::fast();
  fast.advert_period = 0.0;
  return {{"weak", weak}, {"demand-order", demand_only}, {"fast", fast}};
}

/// Runs one propagation experiment per algorithm over the same topology and
/// demand factories.
inline std::map<std::string, PropagationResult> run_algorithms(
    const TopologyFactory& topology, const DemandFactory& demand,
    std::size_t reps, std::uint64_t seed,
    const std::vector<std::pair<std::string, ProtocolConfig>>& algos) {
  std::map<std::string, PropagationResult> results;
  for (const auto& [name, protocol] : algos) {
    PropagationExperiment exp;
    exp.topology = topology;
    exp.demand = demand;
    exp.sim.protocol = protocol;
    exp.repetitions = reps;
    exp.seed = seed;  // same seed: identical topologies/demands/writers
    results.emplace(name, run_propagation(exp));
  }
  return results;
}

/// Prints the paper-style CDF table (x = sessions, one column per curve).
inline void print_cdf_table(
    const std::string& title,
    const std::vector<std::pair<std::string, const EmpiricalCdf*>>& curves,
    double x_max, double x_step, const std::string& csv_name) {
  std::vector<std::string> headers{"sessions"};
  for (const auto& [name, cdf] : curves) {
    (void)cdf;
    headers.push_back(name);
  }
  Table table(std::move(headers));
  for (double x = 0.0; x <= x_max + 1e-9; x += x_step) {
    std::vector<std::string> row{Table::num(x, 1)};
    for (const auto& [name, cdf] : curves) {
      (void)name;
      row.push_back(Table::num(cdf->at(x), 4));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  emit_csv(table, csv_name);
}

inline DemandFactory uniform_demand_factory(double lo = 0.0,
                                            double hi = 100.0) {
  return [lo, hi](const Graph& g, Rng& rng) {
    return std::make_shared<StaticDemand>(
        make_uniform_random_demand(g.size(), lo, hi, rng));
  };
}

}  // namespace fastcons::bench

#endif  // FASTCONS_BENCH_BENCH_COMMON_HPP
