// Experiment E10 — ablations over the design choices DESIGN.md §5 calls out:
//   1. push fanout k (paper: 1)
//   2. FastAck semantics: strict YES/NO (paper) vs wanted-subset
//   3. push trigger: any novel update (paper) vs local writes only
//   4. push rule: demand gradient (paper) vs unconstrained flooding
// Each variant runs the Fig. 5 workload (BA-50, uniform demand).
#include "bench_common.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t n = 50;
  const std::size_t reps = repetitions(1200);
  std::printf("Ablations on the Fig. 5 workload (BA-%zu), %zu repetitions\n",
              n, reps);
  const TopologyFactory topo = [n](Rng& rng) {
    return make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
  };

  std::vector<std::pair<std::string, ProtocolConfig>> variants;
  {
    ProtocolConfig base = ProtocolConfig::fast();
    base.advert_period = 0.0;
    variants.emplace_back("fast (paper: k=1, yes/no, gradient)", base);

    ProtocolConfig k2 = base;
    k2.fast_fanout = 2;
    variants.emplace_back("fanout k=2", k2);

    ProtocolConfig k3 = base;
    k3.fast_fanout = 3;
    variants.emplace_back("fanout k=3", k3);

    ProtocolConfig subset = base;
    subset.ack_mode = FastAckMode::subset;
    variants.emplace_back("subset acks", subset);

    ProtocolConfig write_only = base;
    write_only.push_on_any_gain = false;
    variants.emplace_back("push on local writes only", write_only);

    ProtocolConfig flood = base;
    flood.push_rule = FastPushRule::unconstrained;
    variants.emplace_back("unconstrained push (floods)", flood);

    ProtocolConfig weak = ProtocolConfig::weak();
    weak.advert_period = 0.0;
    variants.emplace_back("weak baseline", weak);
  }

  Table table({"variant", "mean", "high-demand", "full", "fast-ctl msgs/rep",
               "fast-payload B/rep", "dup payloads/rep"});
  for (const auto& [name, protocol] : variants) {
    PropagationExperiment exp;
    exp.topology = topo;
    exp.demand = uniform_demand_factory();
    exp.sim.protocol = protocol;
    exp.repetitions = reps;
    exp.seed = 31337;
    const PropagationResult result = run_propagation(exp);
    // Duplicate payloads are visible as fast-payload bytes beyond one copy
    // per receiver; report the raw counters and let the table speak.
    table.add_row(
        {name, Table::num(result.all.mean(), 3),
         Table::num(result.high_demand.mean(), 3),
         Table::num(result.time_to_full.mean(), 3),
         Table::num(result.traffic.messages(TrafficClass::fast_control) /
                    result.reps_total),
         Table::num(result.traffic.bytes(TrafficClass::fast_payload) /
                    result.reps_total),
         Table::num(result.traffic.messages(TrafficClass::fast_payload) /
                    result.reps_total)});
  }
  std::cout << "\n== ablation results ==\n";
  table.print(std::cout);
  emit_csv(table, "ablation");

  // --- Ablation 4: advert period vs table staleness (the §3 failure) -----
  // Every node's demand is re-drawn at t=0.45, just before the write lands:
  // tables primed at t=0 now rank yesterday's hotspots. Without adverts the
  // fast pushes chase the OLD demand surface and the high-demand advantage
  // evaporates; periodic adverts (§4, "similar to IP routing algorithms")
  // restore it, the faster the refresh the fuller the recovery.
  const std::size_t staleness_reps = std::max<std::size_t>(reps / 4, 100);
  Table staleness({"advert period", "mean", "high-demand", "full",
                   "advert msgs/rep"});
  for (const double advert : {-1.0, 1.0, 0.25, 0.05}) {
    PropagationExperiment exp;
    exp.topology = topo;
    exp.demand = [](const Graph& g,
                    Rng& rng) -> std::shared_ptr<const DemandModel> {
      std::vector<std::map<SimTime, double>> schedules(g.size());
      for (auto& schedule : schedules) {
        schedule[0.0] = rng.uniform(0.0, 100.0);   // what tables get primed with
        schedule[0.45] = rng.uniform(0.0, 100.0);  // the surface that matters
      }
      return std::make_shared<StepDemand>(std::move(schedules));
    };
    exp.sim.protocol = ProtocolConfig::fast();
    exp.sim.protocol.advert_period = advert < 0.0 ? 0.0 : advert;
    exp.repetitions = staleness_reps;
    exp.seed = 777;
    const PropagationResult result = run_propagation(exp);
    staleness.add_row(
        {advert < 0.0 ? "never (primed at t=0)" : Table::num(advert, 2),
         Table::num(result.all.mean(), 3),
         Table::num(result.high_demand.mean(), 3),
         Table::num(result.time_to_full.mean(), 3),
         Table::num(result.traffic.messages(TrafficClass::demand_advert) /
                    result.reps_total)});
  }
  std::cout << "\n== ablation: advert period after an abrupt demand shift ("
            << staleness_reps << " reps; §3's stale-table failure) ==\n";
  staleness.print(std::cout);
  emit_csv(staleness, "ablation_advert_staleness");
  std::cout << "\nreading guide (staleness): with no adverts the high-demand"
               " column degrades toward the population mean — the fast path"
               " is aiming at the pre-shift hotspots; faster adverts restore"
               " the ~1-session advantage at the cost of advert traffic\n";
  std::cout << "\nreading guide: larger fanout buys latency with more "
               "fast-control traffic; unconstrained push floods (large "
               "fast-payload) for a modest latency gain over gradient; "
               "write-only pushes lose most of the benefit on multi-hop "
               "paths; subset acks only matter when offers overlap\n";
  return 0;
}
