// Experiment E1 — the §2 running example: the replica/demand table, the
// demand-ordered neighbour list it induces, and a message-level walkthrough
// of the 18 protocol steps (weak-consistency session E<->B, then the fast
// update B->D).
#include <deque>

#include "bench_common.hpp"
#include "core/engine.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  // Paper §2: Replica A B C D E / demand 4 6 3 8 7. Ids: A=0..E=4.
  const std::vector<double> demands{4, 6, 3, 8, 7};
  const std::vector<std::string> names{"A", "B", "C", "D", "E"};

  Table table({"replica", "rate of demand (Z axis)"});
  for (std::size_t i = 0; i < 5; ++i) {
    table.add_row({names[i], Table::num(demands[i], 0)});
  }
  std::cout << "== §2 table — replicas and demands ==\n";
  table.print(std::cout);
  emit_csv(table, "sec2_demands");

  // The neighbour order the demand-cycle policy produces for B.
  DemandTable b_table({0, 2, 3, 4});
  b_table.update(0, demands[0], 0.0);
  b_table.update(2, demands[2], 0.0);
  b_table.update(3, demands[3], 0.0);
  b_table.update(4, demands[4], 0.0);
  Table order_table({"pick", "replica", "demand"});
  const auto order = b_table.by_demand_desc(0.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order_table.add_row({Table::num(static_cast<std::uint64_t>(i + 1)),
                         names[order[i]], Table::num(demands[order[i]], 0)});
  }
  std::cout << "\n== B's demand-ordered session cycle (paper best case "
               "B-D, B-E, B-A, B-C) ==\n";
  order_table.print(std::cout);
  emit_csv(order_table, "sec2_order");

  // Steps 1-18 walkthrough: engines for E, B, D with the fig. 2 demands;
  // E writes, starts a session with B; B's gain fast-updates D.
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;
  ReplicaEngine e(4, {1}, cfg, 1);
  ReplicaEngine b(1, {0, 2, 3, 4}, cfg, 2);
  ReplicaEngine d(3, {1}, cfg, 3);
  e.set_own_demand(demands[4]);
  b.set_own_demand(demands[1]);
  d.set_own_demand(demands[3]);
  e.prime_neighbour_demand(1, demands[1], 0.0);
  for (const NodeId peer : {0u, 2u, 3u, 4u}) {
    b.prime_neighbour_demand(peer, demands[peer], 0.0);
  }
  d.prime_neighbour_demand(1, demands[1], 0.0);

  std::map<NodeId, ReplicaEngine*> engines{{4, &e}, {1, &b}, {3, &d}};
  std::deque<std::pair<NodeId, Outbound>> queue;
  Table trace({"step", "from", "to", "message"});
  std::uint64_t step = 0;
  const auto enqueue = [&](NodeId from, std::vector<Outbound> outs) {
    for (Outbound& out : outs) queue.push_back({from, std::move(out)});
  };

  enqueue(4, e.local_write("news", "update-from-E", 0.0));
  trace.add_row({Table::num(++step), "client", "E", "write(news)"});
  enqueue(4, e.on_session_timer(0.0));  // E selects B (most demand)
  while (!queue.empty()) {
    auto [from, out] = std::move(queue.front());
    queue.pop_front();
    const auto it = engines.find(out.to);
    trace.add_row({Table::num(++step),
                   names[from], names[out.to],
                   std::string(message_name(out.msg))});
    if (it == engines.end()) continue;  // A/C not instantiated in this demo
    enqueue(out.to, it->second->handle(from, out.msg, 0.0));
  }

  std::cout << "\n== §2.1 protocol walkthrough (E writes; session E-B; "
               "fast update B->D) ==\n";
  trace.print(std::cout);
  emit_csv(trace, "sec2_walkthrough");

  Table state({"replica", "has update?", "read(news)"});
  for (const auto& [id, engine] : engines) {
    state.add_row({names[id],
                   engine->summary().contains(UpdateId{4, 1}) ? "yes" : "no",
                   engine->read("news").value_or("-")});
  }
  std::cout << "\n== resulting replica state ==\n";
  state.print(std::cout);
  return 0;
}
