// Experiment E9 — §6 "Complex demand distribution": two high-demand islands
// separated by a low-demand bridge. Without help, updates crawl across the
// cold region by ordinary sessions; with the island overlay (leader election
// + leader bridges) the far island is served at fast-push speed.
#include "bench_common.hpp"
#include "islands/islands.hpp"
#include "sim_runtime/sim_network.hpp"
#include "stats/online_stats.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t clique = 6;
  const std::size_t reps = repetitions(500);
  std::printf("Islands experiment (§6): two %zu-cliques, varying cold-bridge"
              " length, %zu repetitions\n", clique, reps);

  Table table({"bridge len", "variant", "far-leader sessions",
               "far-island mean", "full consistency", "island ctl links"});

  for (const std::size_t bridge_len : {4u, 8u, 16u}) {
    struct Variant {
      std::string name;
      bool overlay;
      ProtocolConfig protocol;
    };
    ProtocolConfig weak = ProtocolConfig::weak();
    weak.advert_period = 0.0;
    ProtocolConfig fast = ProtocolConfig::fast();
    fast.advert_period = 0.0;
    const std::vector<Variant> variants{
        {"weak", false, weak},
        {"fast", false, fast},
        {"fast+overlay", true, fast},
    };
    for (const Variant& variant : variants) {
      OnlineStats far_leader, far_island, full;
      std::size_t bridges_added = 0;
      Rng master(4242);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Rng rep_rng = master.split();
        Graph g = make_dumbbell(clique, bridge_len, {0.01, 0.03}, rep_rng);
        // Demands: left island warm, right island hot, bridge cold.
        std::vector<double> demand(g.size(), 1.0);
        for (NodeId n2 = 0; n2 < clique; ++n2) {
          demand[n2] = rep_rng.uniform(30.0, 50.0);
        }
        for (NodeId n2 = clique; n2 < 2 * clique; ++n2) {
          demand[n2] = rep_rng.uniform(50.0, 80.0);
        }
        auto model = std::make_shared<StaticDemand>(demand);
        SimConfig cfg;
        cfg.protocol = variant.protocol;
        cfg.seed = rep_rng.next_u64();
        SimNetwork net(std::move(g), model, cfg);

        const auto islands = detect_islands(net.graph(), demand, 20.0);
        const auto leaders = elect_leaders(islands, demand);
        if (variant.overlay) {
          for (const Bridge& b : compute_bridges(net.graph(), leaders)) {
            net.add_overlay_link(b.a, b.b, b.latency);
            ++bridges_added;
          }
        }
        // Write in the left island; measure arrival in the right island.
        const auto writer = static_cast<NodeId>(rep_rng.index(clique));
        const SimTime at = rep_rng.uniform(0.5, 1.5);
        const UpdateId id = net.schedule_write(writer, "k", "v", at);
        net.run_until_update_everywhere(id, at + 80.0);

        const NodeId far_leader_node =
            leaders.size() > 1 ? leaders[1] : static_cast<NodeId>(2 * clique - 1);
        far_leader.add(net.first_delivery(far_leader_node, id)
                           .value_or(at + 80.0) - at);
        OnlineStats island_stat;
        for (NodeId n2 = clique; n2 < 2 * clique; ++n2) {
          island_stat.add(net.first_delivery(n2, id).value_or(at + 80.0) - at);
        }
        far_island.add(island_stat.mean());
        double last = 0.0;
        for (NodeId n2 = 0; n2 < net.size(); ++n2) {
          last = std::max(last,
                          net.first_delivery(n2, id).value_or(at + 80.0) - at);
        }
        full.add(last);
      }
      table.add_row({Table::num(static_cast<std::uint64_t>(bridge_len)),
                     variant.name, Table::num(far_leader.mean(), 3),
                     Table::num(far_island.mean(), 3),
                     Table::num(full.mean(), 3),
                     Table::num(static_cast<std::uint64_t>(
                         variant.overlay ? bridges_added / reps : 0))});
    }
  }
  std::cout << "\n== islands: arrival at the far high-demand region ==\n";
  table.print(std::cout);
  emit_csv(table, "islands");
  std::cout << "\nexpected shape: 'fast+overlay' keeps the far island near "
               "~1 session regardless of bridge length; plain fast degrades "
               "as the cold bridge lengthens\n";
  return 0;
}
