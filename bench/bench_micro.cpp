// Experiment E11 — substrate microbenchmarks (google-benchmark): the data
// structures and hot paths everything else stands on.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "demand/demand_model.hpp"
#include "demand/demand_table.hpp"
#include "net/wire.hpp"
#include "replication/summary_vector.hpp"
#include "replication/write_log.hpp"
#include "sim/simulator.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace {

using namespace fastcons;

SummaryVector make_summary(std::size_t updates, Rng& rng) {
  SummaryVector sv;
  for (std::size_t i = 0; i < updates; ++i) {
    sv.add(UpdateId{static_cast<NodeId>(rng.index(16)),
                    rng.uniform_u64(1, updates)});
  }
  return sv;
}

void BM_SummaryVectorAdd(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    SummaryVector sv;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      sv.add(UpdateId{static_cast<NodeId>(i % 8),
                      static_cast<SeqNo>(i / 8 + 1)});
    }
    benchmark::DoNotOptimize(sv);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SummaryVectorAdd)->Arg(64)->Arg(1024);

void BM_SummaryVectorMerge(benchmark::State& state) {
  Rng rng(2);
  const SummaryVector a = make_summary(static_cast<std::size_t>(state.range(0)), rng);
  const SummaryVector b = make_summary(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    SummaryVector merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_SummaryVectorMerge)->Arg(16)->Arg(256)->Arg(4096);

/// A summary with one contiguous prefix per origin — the shape summaries
/// converge to, and the shape every anti-entropy message carries.
SummaryVector make_watermark_summary(std::size_t origins, SeqNo depth) {
  SummaryVector sv;
  for (NodeId origin = 0; origin < origins; ++origin) {
    for (SeqNo s = 1; s <= depth; ++s) sv.add(UpdateId{origin, s});
  }
  return sv;
}

void BM_SummaryVectorMergeWide(benchmark::State& state) {
  // merge() across many origins (64/512/4096): the session hot path on a
  // converged network, where both sides are pure watermark vectors.
  const auto origins = static_cast<std::size_t>(state.range(0));
  const SummaryVector mine = make_watermark_summary(origins, 4);
  const SummaryVector theirs = make_watermark_summary(origins, 5);
  for (auto _ : state) {
    SummaryVector merged = mine;
    merged.merge(theirs);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(origins));
}
BENCHMARK(BM_SummaryVectorMergeWide)->Arg(64)->Arg(512)->Arg(4096);

void BM_SummaryVectorMissingFrom(benchmark::State& state) {
  // Step 7/10 of every session: diff two summaries that differ in one seq
  // per origin, at 64/512/4096 origins.
  const auto origins = static_cast<std::size_t>(state.range(0));
  const SummaryVector mine = make_watermark_summary(origins, 5);
  const SummaryVector theirs = make_watermark_summary(origins, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mine.missing_from(theirs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(origins));
}
BENCHMARK(BM_SummaryVectorMissingFrom)->Arg(64)->Arg(512)->Arg(4096);

void BM_SummaryVectorCovers(benchmark::State& state) {
  const auto origins = static_cast<std::size_t>(state.range(0));
  const SummaryVector big = make_watermark_summary(origins, 5);
  const SummaryVector small = make_watermark_summary(origins, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(big.covers(small));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(origins));
}
BENCHMARK(BM_SummaryVectorCovers)->Arg(64)->Arg(512)->Arg(4096);

void BM_WriteLogUpdatesFor(benchmark::State& state) {
  Rng rng(3);
  WriteLog log;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    log.apply(Update{UpdateId{static_cast<NodeId>(i % 8),
                              static_cast<SeqNo>(i / 8 + 1)},
                     0.0, "key", "value"});
  }
  const SummaryVector half = make_summary(static_cast<std::size_t>(state.range(0) / 2), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.updates_for(half));
  }
}
BENCHMARK(BM_WriteLogUpdatesFor)->Arg(128)->Arg(2048);

void BM_DemandTableTouch(benchmark::State& state) {
  // ReplicaEngine::handle touches the table on every message, so this
  // lookup is the hottest demand-layer path. Must stay O(1) in the
  // neighbour count (it was a linear scan once; the Args show the scaling).
  Rng rng(7);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> neighbours(n);
  for (std::size_t i = 0; i < n; ++i) neighbours[i] = static_cast<NodeId>(i);
  DemandTable table(neighbours);
  std::vector<NodeId> probe(1024);
  for (auto& p : probe) p = static_cast<NodeId>(rng.index(n));
  double now = 0.0;
  for (auto _ : state) {
    for (const NodeId peer : probe) {
      now += 1e-6;
      table.touch(peer, now);
    }
    benchmark::DoNotOptimize(table.entries().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_DemandTableTouch)->Arg(8)->Arg(256)->Arg(4096);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(10000);

void BM_SimulatorScheduleFireCancel(benchmark::State& state) {
  // The per-event path the simulations actually take: a mix of schedules,
  // firings and cancellations (half the handles are cancelled before their
  // time), exercising the slab free list and lazy heap discards.
  for (auto _ : state) {
    Simulator sim;
    std::vector<TimerHandle> handles;
    handles.reserve(static_cast<std::size_t>(state.range(0)));
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      handles.push_back(
          sim.schedule_at(static_cast<double>(i % 101) + 1.0, [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleFireCancel)->Arg(1000)->Arg(10000);

void BM_SimulatorDeliveryPayload(benchmark::State& state) {
  // Events that carry a protocol message in their closure, like
  // SimNetwork::dispatch schedules: the capture must stay within EventFn's
  // inline buffer or every simulated message costs an allocation.
  Rng rng(8);
  SessionPush payload;
  payload.session_id = 9;
  payload.summary = make_summary(32, rng);
  payload.updates.push_back(
      Update{UpdateId{1, 1}, 0.25, "key", std::string(32, 'v')});
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t seen = 0;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      sim.schedule_at(static_cast<double>(i % 97),
                      [msg = Message{payload}, &seen]() mutable {
                        seen += std::get<SessionPush>(msg).updates.size();
                      });
    }
    sim.run();
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorDeliveryPayload)->Arg(1000);

void BM_BarabasiAlbertGeneration(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_barabasi_albert(
        static_cast<std::size_t>(state.range(0)), 2, {0.01, 0.05}, rng));
  }
}
BENCHMARK(BM_BarabasiAlbertGeneration)->Arg(100)->Arg(1000);

void BM_DiameterBfs(benchmark::State& state) {
  Rng rng(5);
  const Graph g = make_barabasi_albert(
      static_cast<std::size_t>(state.range(0)), 2, {0.01, 0.05}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diameter(g));
  }
}
BENCHMARK(BM_DiameterBfs)->Arg(100)->Arg(400);

void BM_SessionHandshake(benchmark::State& state) {
  // Full 4-message anti-entropy exchange between two engines with
  // state.range(0) updates of skew.
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicaEngine a(0, {1}, cfg, 1);
    ReplicaEngine b(1, {0}, cfg, 2);
    a.prime_neighbour_demand(1, 1.0, 0.0);
    b.prime_neighbour_demand(0, 1.0, 0.0);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      a.local_write("k" + std::to_string(i), "v", 0.0);
    }
    state.ResumeTiming();
    auto m1 = a.on_session_timer(0.0);
    auto m2 = b.handle(0, m1[0].msg, 0.0);
    auto m3 = a.handle(1, m2[0].msg, 0.0);
    auto m4 = b.handle(0, m3[0].msg, 0.0);
    auto m5 = a.handle(1, m4[0].msg, 0.0);
    benchmark::DoNotOptimize(m5);
  }
}
BENCHMARK(BM_SessionHandshake)->Arg(1)->Arg(64);

void BM_WireEncodeDecodePush(benchmark::State& state) {
  Rng rng(6);
  SessionPush msg;
  msg.session_id = 7;
  msg.summary = make_summary(64, rng);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    msg.updates.push_back(Update{UpdateId{1, static_cast<SeqNo>(i + 1)}, 0.5,
                                 "key-" + std::to_string(i),
                                 std::string(64, 'x')});
  }
  const Message m{msg};
  for (auto _ : state) {
    const auto frame = encode_frame(3, m);
    benchmark::DoNotOptimize(decode_body(std::span(frame).subspan(4)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encode_frame(3, m).size()));
}
BENCHMARK(BM_WireEncodeDecodePush)->Arg(1)->Arg(64);

void BM_FastPushChain(benchmark::State& state) {
  // Offer/ack/data across a demand gradient line of engines.
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<ReplicaEngine>> engines;
    for (NodeId i = 0; i < n; ++i) {
      std::vector<NodeId> neighbours;
      if (i > 0) neighbours.push_back(i - 1);
      if (i + 1 < n) neighbours.push_back(i + 1);
      engines.push_back(
          std::make_unique<ReplicaEngine>(i, neighbours, cfg, i + 1));
      engines.back()->set_own_demand(static_cast<double>(i));
      if (i > 0) {
        engines.back()->prime_neighbour_demand(i - 1, static_cast<double>(i - 1), 0.0);
        engines[i - 1]->prime_neighbour_demand(i, static_cast<double>(i), 0.0);
      }
    }
    state.ResumeTiming();
    std::vector<std::pair<NodeId, Outbound>> queue;
    for (auto& out : engines[0]->local_write("k", "v", 0.0)) {
      queue.emplace_back(0, std::move(out));
    }
    while (!queue.empty()) {
      auto [from, out] = std::move(queue.back());
      queue.pop_back();
      for (auto& next : engines[out.to]->handle(from, out.msg, 0.0)) {
        queue.emplace_back(out.to, std::move(next));
      }
    }
    benchmark::DoNotOptimize(engines.back()->summary());
  }
}
BENCHMARK(BM_FastPushChain)->Arg(8)->Arg(64);

void BM_SimNetworkEventsPerSec(benchmark::State& state) {
  // End-to-end simulated events/sec: a 100-node BA network running the fast
  // protocol for 10 session periods after one write. items_per_second is
  // the headline number docs/performance.md tracks.
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    Graph graph = make_barabasi_albert(100, 2, {0.01, 0.05}, rng);
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(graph.size(), 1.0, 9.0, rng));
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.seed = rng.next_u64();
    SimNetwork net(std::move(graph), std::move(demand), cfg);
    net.schedule_write(0, "key", "value", 0.5);
    state.ResumeTiming();
    net.run_until(10.0);
    events += net.events_executed();
    benchmark::DoNotOptimize(net.total_stats().updates_applied);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimNetworkEventsPerSec);

void BM_SimNetworkEventsPerSecReset(benchmark::State& state) {
  // The reset-path twin of BM_SimNetworkEventsPerSec: the network is
  // acquired from a pool (rewired, not rebuilt, between iterations),
  // exactly how harness workers run scenario trials. Construction sits in
  // the paused region of both benchmarks, so the items/sec delta isolates
  // the reset path's effect on event execution itself (reused slab and
  // vector storage staying cache-warm); the construction tax itself is
  // what BM_TrialConstructionFresh/Pooled measure.
  std::uint64_t events = 0;
  SimNetworkPool pool;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    Graph graph = make_barabasi_albert(100, 2, {0.01, 0.05}, rng);
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(graph.size(), 1.0, 9.0, rng));
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.seed = rng.next_u64();
    SimNetwork& net = pool.acquire(std::move(graph), std::move(demand), cfg);
    net.schedule_write(0, "key", "value", 0.5);
    state.ResumeTiming();
    net.run_until(10.0);
    events += net.events_executed();
    benchmark::DoNotOptimize(net.total_stats().updates_applied);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimNetworkEventsPerSecReset);

void BM_TrialConstructionFresh(benchmark::State& state) {
  // The per-trial construction tax at 16/100/1024 nodes: BA topology,
  // uniform demand, full SimNetwork wiring — everything a propagation
  // trial builds before its first event, constructed from scratch the way
  // trials did before context pooling.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  for (auto _ : state) {
    Graph graph = make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(n, 0.0, 100.0, rng));
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.seed = rng.next_u64();
    SimNetwork net(std::move(graph), std::move(demand), cfg);
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrialConstructionFresh)->Arg(16)->Arg(100)->Arg(1024);

void BM_TrialConstructionPooled(benchmark::State& state) {
  // Same construction work through a pooled network: topology and demand
  // are still built per iteration (random per trial, as in the fig5/fig6
  // sweeps), but engines/simulator/tracker storage is rewired in place.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  SimNetworkPool pool;
  for (auto _ : state) {
    Graph graph = make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(n, 0.0, 100.0, rng));
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.seed = rng.next_u64();
    SimNetwork& net = pool.acquire(std::move(graph), std::move(demand), cfg);
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrialConstructionPooled)->Arg(16)->Arg(100)->Arg(1024);

void BM_TrialConstructionPooledShared(benchmark::State& state) {
  // The deterministic-topology fast path: the graph is built once and
  // shared immutably across iterations, so per-trial construction is just
  // the demand model plus the rewire — the floor the harness reaches on
  // shared-topology sweep points (fig3, the large-scale grids).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  const auto graph = std::make_shared<const Graph>(
      make_barabasi_albert(n, 2, {0.01, 0.05}, rng));
  SimNetworkPool pool;
  for (auto _ : state) {
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(n, 0.0, 100.0, rng));
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.seed = rng.next_u64();
    SimNetwork& net = pool.acquire(graph, std::move(demand), cfg);
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrialConstructionPooledShared)->Arg(16)->Arg(100)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
