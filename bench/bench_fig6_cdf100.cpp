// Experiment E4 — paper Figure 6: the Figure 5 experiment at 100 nodes.
//
// Paper reference points (100 nodes):
//   - fast consistency reaches ALL replicas in 4.78117 sessions on average
//   - weak consistency needs 6.982 sessions on average
//   - high-demand replicas reach consistency in ~1 session
//   - doubling the node count grows the session count only mildly (the
//     number of sessions tracks the network diameter, not the node count)
#include "bench_common.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t n = 100;
  const std::size_t reps = repetitions(10000);
  const TopologyFactory topo = [n](Rng& rng) {
    return make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
  };

  std::printf("Figure 6 reproduction: %zu-node BA topologies, %zu repetitions\n",
              n, reps);
  const auto results =
      run_algorithms(topo, uniform_demand_factory(), reps, 43,
                     three_algorithms());

  const auto& fast = results.at("fast");
  const auto& mid = results.at("demand-order");
  const auto& weak = results.at("weak");

  print_cdf_table(
      "Fig. 6 — CDF of number of sessions, 100 nodes",
      {{"fast-consistency", &fast.all},
       {"consistency-high-demand", &fast.high_demand},
       {"weak-consistency", &weak.all},
       {"demand-order-only", &mid.all}},
      11.0, 0.5, "fig6_cdf_100");

  Table summary({"metric", "fast", "demand-order", "weak", "paper-fast",
                 "paper-weak"});
  summary.add_row({"mean sessions (per replica)", Table::num(fast.all.mean()),
                   Table::num(mid.all.mean()), Table::num(weak.all.mean()),
                   "-", "-"});
  summary.add_row({"mean sessions (high-demand replicas)",
                   Table::num(fast.high_demand.mean()),
                   Table::num(mid.high_demand.mean()),
                   Table::num(weak.high_demand.mean()), "~1", "-"});
  summary.add_row({"mean sessions to reach ALL replicas",
                   Table::num(fast.time_to_full.mean()),
                   Table::num(mid.time_to_full.mean()),
                   Table::num(weak.time_to_full.mean()), "4.78117", "6.982"});
  summary.add_row({"p99 sessions (per replica)",
                   Table::num(fast.all.quantile(0.99)),
                   Table::num(mid.all.quantile(0.99)),
                   Table::num(weak.all.quantile(0.99)), "-", "-"});
  summary.add_row({"repetitions converged",
                   Table::num(fast.reps_converged),
                   Table::num(mid.reps_converged),
                   Table::num(weak.reps_converged), "-", "-"});
  std::cout << "\n== Fig. 6 summary (paper: means 4.78 vs 6.98; high-demand ~1) ==\n";
  summary.print(std::cout);
  emit_csv(summary, "fig6_summary_100");
  return 0;
}
