// Experiment E3 — paper Figure 5: CDF of the number of sessions needed for
// a change written at a random replica to reach the other replicas, on
// BRITE-like (Barabási–Albert) topologies with 50 nodes and uniformly random
// demands, repeated many times (paper: 10,000).
//
// Paper reference points (50 nodes):
//   - fast consistency reaches ALL replicas in 3.9261 sessions on average
//   - weak consistency needs 6.1499 sessions on average
//   - the replicas with most demand reach consistency in ~1 session
#include "bench_common.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  const std::size_t n = 50;
  const std::size_t reps = repetitions(10000);
  const TopologyFactory topo = [n](Rng& rng) {
    return make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
  };

  std::printf("Figure 5 reproduction: %zu-node BA topologies, %zu repetitions\n",
              n, reps);
  const auto results =
      run_algorithms(topo, uniform_demand_factory(), reps, 42,
                     three_algorithms());

  const auto& fast = results.at("fast");
  const auto& mid = results.at("demand-order");
  const auto& weak = results.at("weak");

  print_cdf_table(
      "Fig. 5 — CDF of number of sessions, 50 nodes",
      {{"fast-consistency", &fast.all},
       {"consistency-high-demand", &fast.high_demand},
       {"weak-consistency", &weak.all},
       {"demand-order-only", &mid.all}},
      11.0, 0.5, "fig5_cdf_50");

  Table summary({"metric", "fast", "demand-order", "weak", "paper-fast",
                 "paper-weak"});
  summary.add_row({"mean sessions (per replica)", Table::num(fast.all.mean()),
                   Table::num(mid.all.mean()), Table::num(weak.all.mean()),
                   "-", "-"});
  summary.add_row({"mean sessions (high-demand replicas)",
                   Table::num(fast.high_demand.mean()),
                   Table::num(mid.high_demand.mean()),
                   Table::num(weak.high_demand.mean()), "~1", "-"});
  summary.add_row({"mean sessions to reach ALL replicas",
                   Table::num(fast.time_to_full.mean()),
                   Table::num(mid.time_to_full.mean()),
                   Table::num(weak.time_to_full.mean()), "3.9261", "6.1499"});
  summary.add_row({"p99 sessions (per replica)",
                   Table::num(fast.all.quantile(0.99)),
                   Table::num(mid.all.quantile(0.99)),
                   Table::num(weak.all.quantile(0.99)), "-", "-"});
  summary.add_row({"repetitions converged",
                   Table::num(fast.reps_converged),
                   Table::num(mid.reps_converged),
                   Table::num(weak.reps_converged), "-", "-"});
  std::cout << "\n== Fig. 5 summary (paper: means 3.93 vs 6.15; high-demand ~1) ==\n";
  summary.print(std::cout);
  emit_csv(summary, "fig5_summary_50");
  return 0;
}
