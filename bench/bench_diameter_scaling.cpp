// Experiment E7 — §5's scaling claim: "as the number of nodes doubles, the
// number of sessions required to propagate a change to all replicas does
// not grow as fast. It seems that the number of sessions required to reach
// a global consistent state is related to the diameter of the network."
//
// Two sweeps demonstrate the two halves of the claim:
//   (a) BA graphs n = 25..400: node count grows 16x, diameter barely moves,
//       and sessions-to-consistency stays nearly flat.
//   (b) grids k x k: diameter grows linearly with k and sessions track it.
#include "bench_common.hpp"
#include "topology/metrics.hpp"

namespace {

using namespace fastcons;
using namespace fastcons::bench;

struct ScalePoint {
  std::string name;
  TopologyFactory topo;
  std::size_t reps_scale;  // divide base reps for the big instances
};

void sweep(const std::string& title, const std::vector<ScalePoint>& points,
           std::size_t base_reps, const std::string& csv) {
  Table table({"topology", "nodes", "diameter", "mean path", "weak full",
               "fast full", "fast/diameter"});
  for (const ScalePoint& point : points) {
    // Representative structural metrics from one sample topology.
    Rng probe_rng(123);
    const Graph sample = point.topo(probe_rng);
    const std::size_t diam = diameter(sample);
    const double mpl = mean_path_length(sample);

    const std::size_t reps =
        std::max<std::size_t>(50, base_reps / point.reps_scale);
    const auto results = run_algorithms(point.topo, uniform_demand_factory(),
                                        reps, 99, three_algorithms());
    const double weak_full = results.at("weak").time_to_full.mean();
    const double fast_full = results.at("fast").time_to_full.mean();
    table.add_row({point.name, Table::num(static_cast<std::uint64_t>(sample.size())),
                   Table::num(static_cast<std::uint64_t>(diam)),
                   Table::num(mpl, 2), Table::num(weak_full, 3),
                   Table::num(fast_full, 3),
                   Table::num(fast_full / static_cast<double>(diam), 3)});
  }
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  emit_csv(table, csv);
}

}  // namespace

int main() {
  const std::size_t base = repetitions(1000);
  std::printf("Diameter scaling (paper §5 claim), base repetitions %zu\n",
              base);
  const LatencyRange lat{0.01, 0.05};

  sweep("(a) BA graphs: node count up 16x, sessions nearly flat",
        {
            {"ba-25", [lat](Rng& r) { return make_barabasi_albert(25, 2, lat, r); }, 1},
            {"ba-50", [lat](Rng& r) { return make_barabasi_albert(50, 2, lat, r); }, 1},
            {"ba-100", [lat](Rng& r) { return make_barabasi_albert(100, 2, lat, r); }, 2},
            {"ba-200", [lat](Rng& r) { return make_barabasi_albert(200, 2, lat, r); }, 4},
            {"ba-400", [lat](Rng& r) { return make_barabasi_albert(400, 2, lat, r); }, 10},
        },
        base, "diameter_scaling_ba");

  sweep("(b) grids: diameter grows linearly and sessions track it",
        {
            {"grid-3x3", [lat](Rng& r) { return make_grid(3, 3, lat, r); }, 1},
            {"grid-5x5", [lat](Rng& r) { return make_grid(5, 5, lat, r); }, 1},
            {"grid-7x7", [lat](Rng& r) { return make_grid(7, 7, lat, r); }, 2},
            {"grid-9x9", [lat](Rng& r) { return make_grid(9, 9, lat, r); }, 4},
        },
        base, "diameter_scaling_grid");

  std::cout << "\nexpected shape: (a) 'fast full' roughly constant while n"
               " grows 16x; (b) 'fast full' grows with grid diameter\n";
  return 0;
}
