// Experiment E2 — paper Figure 3: requests per unit time satisfied with
// consistent content after each session, on the five-replica example of §2
// (demands A=4, B=6, C=3, D=8, E=7; B holds the change and is connected to
// the other four).
//
// The worst and optimal curves are the paper's two session orders evaluated
// exactly; the fast-consistency curve is measured by simulation, averaged
// over repetitions. The paper claims fast consistency "works even better
// than the optimal case" because the fast-update push serves D without
// consuming a session.
#include <array>

#include "bench_common.hpp"
#include "experiment/metrics.hpp"
#include "sim_runtime/sim_network.hpp"

int main() {
  using namespace fastcons;
  using namespace fastcons::bench;

  // Node ids: A=0, B=1, C=2, D=3, E=4. B is the hub.
  const std::vector<double> demands{4, 6, 3, 8, 7};
  const auto star = []() {
    Graph g(5);
    g.add_edge(1, 0, 0.02);
    g.add_edge(1, 2, 0.02);
    g.add_edge(1, 3, 0.02);
    g.add_edge(1, 4, 0.02);
    return g;
  };

  const auto series_for_order = [&](const std::vector<NodeId>& order) {
    std::vector<std::optional<SimTime>> delivery(5);
    delivery[1] = 0.0;  // B starts with the change
    for (std::size_t k = 0; k < order.size(); ++k) {
      delivery[order[k]] = static_cast<double>(k + 1);
    }
    return consistent_rate_series(delivery, demands, 4, 1.0);
  };
  const auto worst = series_for_order({2, 0, 4, 3});    // B-C, B-A, B-E, B-D
  const auto optimal = series_for_order({3, 4, 0, 2});  // B-D, B-E, B-A, B-C

  // Measured fast consistency: B writes at t=0; average the consistent-
  // service rate at session boundaries over many randomized runs.
  const std::size_t reps = repetitions(2000);
  std::array<OnlineStats, 4> fast_rate;
  Rng master(7);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.timing = SimConfig::Timing::periodic;
    cfg.seed = master.next_u64();
    SimNetwork net(star(), std::make_shared<StaticDemand>(demands), cfg);
    const UpdateId id = net.schedule_write(1, "k", "v", 0.0);
    net.run_until_update_everywhere(id, 10.0);
    std::vector<std::optional<SimTime>> delivery(5);
    for (NodeId n = 0; n < 5; ++n) delivery[n] = net.first_delivery(n, id);
    const auto series = consistent_rate_series(delivery, demands, 4, 1.0);
    for (std::size_t k = 0; k < 4; ++k) fast_rate[k].add(series[k]);
  }

  std::printf("Figure 3 reproduction: 5 replicas (A=4 B=6 C=3 D=8 E=7), "
              "%zu repetitions for the measured curve\n", reps);
  Table table({"session", "worst-case", "optimal-case", "fast-consistency"});
  for (std::size_t k = 0; k < 4; ++k) {
    table.add_row({Table::num(static_cast<std::uint64_t>(k + 1)),
                   Table::num(worst[k], 0), Table::num(optimal[k], 0),
                   Table::num(fast_rate[k].mean(), 2)});
  }
  std::cout << "\n== Fig. 3 — requests/unit-time served with consistent "
               "content ==\n";
  table.print(std::cout);
  emit_csv(table, "fig3_requests");

  std::cout << "\npaper worst case:   9 13 20 28\n"
               "paper optimal case: 14 21 25 28\n"
               "claim: fast consistency >= optimal at every session\n";
  return 0;
}
