// Adversarial / robustness tests: the engine must shrug off unsolicited,
// stale, duplicated, or nonsensical messages — on an open network all of
// these happen (reordering, retries, crashed peers, buggy peers).
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace fastcons {
namespace {

ProtocolConfig cfg() {
  ProtocolConfig c = ProtocolConfig::fast();
  c.advert_period = 0.0;
  return c;
}

TEST(EngineAdversarialTest, UnsolicitedFastDataIsStillApplied) {
  // FastData without a preceding offer: content is content — apply it.
  // (Weak consistency never rejects updates; dedup happens via the log.)
  ReplicaEngine e(0, {1}, cfg(), 1);
  e.handle(1, Message{FastData{999, {Update{UpdateId{5, 1}, 0.0, "k", "v"}}}},
           0.0);
  EXPECT_TRUE(e.summary().contains(UpdateId{5, 1}));
}

TEST(EngineAdversarialTest, FastAckForUnknownOfferIgnored) {
  ReplicaEngine e(0, {1}, cfg(), 1);
  const auto out = e.handle(1, Message{FastAck{12345, true, {}}}, 0.0);
  EXPECT_TRUE(out.empty());
}

TEST(EngineAdversarialTest, FastAckFromWrongPeerIgnored) {
  ReplicaEngine b(1, {2, 3}, cfg(), 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  b.prime_neighbour_demand(3, 8.0, 0.0);
  const auto offers = b.local_write("k", "v", 0.0);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].to, 2u);
  const auto offer_id = std::get<FastOffer>(offers[0].msg).offer_id;
  // Node 3 acks an offer that was made to node 2.
  const auto out = b.handle(3, Message{FastAck{offer_id, true, {}}}, 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(b.inflight_offers(), 1u);  // the real offer stays pending
}

TEST(EngineAdversarialTest, DuplicateFastAckSendsDataOnlyOnce) {
  ReplicaEngine b(1, {2}, cfg(), 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  const auto offers = b.local_write("k", "v", 0.0);
  const auto offer_id = std::get<FastOffer>(offers[0].msg).offer_id;
  const auto first = b.handle(2, Message{FastAck{offer_id, true, {}}}, 0.0);
  EXPECT_EQ(first.size(), 1u);
  const auto second = b.handle(2, Message{FastAck{offer_id, true, {}}}, 0.0);
  EXPECT_TRUE(second.empty());  // offer already consumed
}

TEST(EngineAdversarialTest, ReplayedAckAfterDeclineStaysConsumed) {
  // A NO consumes the offer state. Retransmits of the NO — or a late flip
  // to YES fishing for data — must hit the already-consumed offer and be
  // dropped instead of resurrecting it.
  ReplicaEngine b(1, {2}, cfg(), 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  const auto offers = b.local_write("k", "v", 0.0);
  ASSERT_EQ(offers.size(), 1u);
  const auto offer_id = std::get<FastOffer>(offers[0].msg).offer_id;
  EXPECT_TRUE(b.handle(2, Message{FastAck{offer_id, false, {}}}, 0.0).empty());
  EXPECT_EQ(b.inflight_offers(), 0u);
  EXPECT_TRUE(b.handle(2, Message{FastAck{offer_id, false, {}}}, 0.1).empty());
  EXPECT_TRUE(b.handle(2, Message{FastAck{offer_id, true, {}}}, 0.2).empty());
}

TEST(EngineAdversarialTest, DuplicateOfferReplayAnsweredNoSecondTime) {
  // The same FastOffer delivered twice (sender retry): the first ack says
  // YES, the replay must be declined because the payload is now expected /
  // applied, and stats must count both offers.
  ReplicaEngine e(0, {1}, cfg(), 1);
  FastOffer offer;
  offer.offer_id = 77;
  offer.offered = {OfferedId{UpdateId{1, 1}, 0.0}};
  const auto first = e.handle(1, Message{offer}, 0.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(std::get<FastAck>(first[0].msg).yes);
  // Deliver the payload, then replay the identical offer.
  e.handle(1, Message{FastData{77, {Update{UpdateId{1, 1}, 0.0, "k", "v"}}}},
           0.1);
  const auto replay = e.handle(1, Message{offer}, 0.2);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_FALSE(std::get<FastAck>(replay[0].msg).yes);
  EXPECT_EQ(e.stats().offers_received, 2u);
}

TEST(EngineAdversarialTest, SubsetAckRequestingUnofferedIdsIgnored) {
  ProtocolConfig c = cfg();
  c.ack_mode = FastAckMode::subset;
  ReplicaEngine b(1, {2}, c, 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  const auto offers = b.local_write("k", "v", 0.0);
  const auto offer_id = std::get<FastOffer>(offers[0].msg).offer_id;
  // The peer asks for ids that were never offered (fishing for data).
  FastAck greedy{offer_id, true, {UpdateId{7, 7}, UpdateId{1, 1}}};
  const auto out = b.handle(2, Message{greedy}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  const auto& data = std::get<FastData>(out[0].msg);
  ASSERT_EQ(data.updates.size(), 1u);  // only the genuinely offered id
  EXPECT_EQ(data.updates[0].id, (UpdateId{1, 1}));
}

TEST(EngineAdversarialTest, SessionPushForUnknownSessionStillSyncs) {
  // The responder is stateless by design: any SessionPush is a valid
  // one-shot sync even if we never saw the request (e.g. our reply to the
  // request was lost).
  ReplicaEngine b(1, {0}, cfg(), 1);
  SessionPush push;
  push.session_id = 0xabc;
  push.updates = {Update{UpdateId{0, 1}, 0.0, "k", "v"}};
  const auto out = b.handle(0, Message{push}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<SessionReply>(out[0].msg));
  EXPECT_TRUE(b.summary().contains(UpdateId{0, 1}));
}

TEST(EngineAdversarialTest, DuplicateSessionReplyIgnored) {
  ReplicaEngine e(0, {1}, cfg(), 1);
  e.prime_neighbour_demand(1, 1.0, 0.0);
  const auto start = e.on_session_timer(0.0);
  const auto session_id = std::get<SessionRequest>(start[0].msg).session_id;
  e.handle(1, Message{SessionSummary{session_id, SummaryVector{}}}, 0.0);
  SessionReply reply{session_id, {Update{UpdateId{1, 1}, 0.0, "k", "v"}}};
  e.handle(1, Message{reply}, 0.0);
  EXPECT_EQ(e.stats().sessions_completed, 1u);
  // Replay of the same reply: the session is gone, so the message is
  // dropped before its payload is even inspected — no extra work, no
  // double-completion.
  const auto out = e.handle(1, Message{reply}, 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(e.stats().sessions_completed, 1u);
  EXPECT_EQ(e.stats().duplicate_updates, 0u);
  EXPECT_EQ(e.stats().updates_applied, 1u);
}

TEST(EngineAdversarialTest, MessagesFromUnknownPeersAreHarmless) {
  // Node 99 is not a neighbour; its messages must not corrupt the demand
  // table or crash anything. Content it carries is still accepted (weak
  // consistency welcomes data from anywhere).
  ReplicaEngine e(0, {1}, cfg(), 1);
  e.handle(99, Message{DemandAdvert{1000.0}}, 0.0);
  EXPECT_FALSE(e.demand_table().demand_of(99).has_value());
  e.handle(99, Message{SessionRequest{1}}, 0.0);
  e.handle(99, Message{FastOffer{2, {OfferedId{UpdateId{9, 1}, 0.0}}}}, 0.0);
  EXPECT_EQ(e.demand_table().entries().size(), 1u);
}

TEST(EngineAdversarialTest, SelfDemandNeverTargetsSelf) {
  // Degenerate neighbour list containing high-demand peers only; ensure no
  // code path ever emits a message to self.
  ReplicaEngine e(0, {1, 2}, cfg(), 1);
  e.set_own_demand(5.0);
  e.prime_neighbour_demand(1, 50.0, 0.0);
  e.prime_neighbour_demand(2, 40.0, 0.0);
  for (int i = 0; i < 10; ++i) {
    for (const Outbound& out : e.on_session_timer(static_cast<double>(i))) {
      EXPECT_NE(out.to, 0u);
    }
    for (const Outbound& out :
         e.local_write("k" + std::to_string(i), "v", static_cast<double>(i))) {
      EXPECT_NE(out.to, 0u);
    }
  }
}

TEST(EngineAdversarialTest, ZeroSeqUpdateRejectedByPrecondition) {
  // seq 0 is reserved ("nothing seen"); applying it is a contract violation
  // caught in debug assertions. Here we verify the summary itself treats
  // seq bounds correctly via the public API.
  SummaryVector sv;
  sv.add(UpdateId{0, 1});
  EXPECT_TRUE(sv.contains(UpdateId{0, 1}));
  EXPECT_EQ(sv.watermark(0), 1u);
}

TEST(EngineAdversarialTest, ManyConcurrentSessionsCoexist) {
  // An initiator with several neighbours can have overlapping in-flight
  // sessions; replies must route to the right session state.
  ProtocolConfig c = cfg();
  c.session_timeout = 100.0;
  ReplicaEngine e(0, {1, 2, 3}, c, 1);
  for (const NodeId peer : {1u, 2u, 3u}) {
    e.prime_neighbour_demand(peer, static_cast<double>(peer), 0.0);
  }
  std::vector<std::pair<NodeId, std::uint64_t>> sessions;
  for (int i = 0; i < 3; ++i) {
    const auto out = e.on_session_timer(static_cast<double>(i));
    ASSERT_EQ(out.size(), 1u);
    sessions.emplace_back(out[0].to,
                          std::get<SessionRequest>(out[0].msg).session_id);
  }
  EXPECT_EQ(e.inflight_sessions(), 3u);
  // Answer them out of order.
  for (auto it = sessions.rbegin(); it != sessions.rend(); ++it) {
    const auto out =
        e.handle(it->first, Message{SessionSummary{it->second, SummaryVector{}}},
                 2.5);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].to, it->first);
  }
  EXPECT_EQ(e.inflight_sessions(), 3u);  // awaiting replies
  for (auto& [peer, session_id] : sessions) {
    e.handle(peer, Message{SessionReply{session_id, {}}}, 2.6);
  }
  EXPECT_EQ(e.inflight_sessions(), 0u);
  EXPECT_EQ(e.stats().sessions_completed, 3u);
}

TEST(EngineAdversarialTest, ExpiredOfferAckDoesNothing) {
  ProtocolConfig c = cfg();
  c.session_timeout = 0.5;
  ReplicaEngine b(1, {2}, c, 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  const auto offers = b.local_write("k", "v", 0.0);
  const auto offer_id = std::get<FastOffer>(offers[0].msg).offer_id;
  b.expire_inflight(1.0);
  EXPECT_EQ(b.inflight_offers(), 0u);
  const auto out = b.handle(2, Message{FastAck{offer_id, true, {}}}, 1.0);
  EXPECT_TRUE(out.empty());
}

TEST(EngineAdversarialTest, EmptyOfferListAnsweredNo) {
  ReplicaEngine e(0, {1}, cfg(), 1);
  const auto out = e.handle(1, Message{FastOffer{3, {}}}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<FastAck>(out[0].msg).yes);
}

}  // namespace
}  // namespace fastcons
