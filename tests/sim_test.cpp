#include "sim/simulator.hpp"
#include "sim/timer_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fastcons {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::string log;
  sim.schedule_at(1.0, [&] { log += 'a'; });
  sim.schedule_at(1.0, [&] { log += 'b'; });
  sim.schedule_at(1.0, [&] { log += 'c'; });
  sim.run();
  EXPECT_EQ(log, "abc");
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(SimulatorTest, NestedSchedulingDuringEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.0, [&] { order.push_back(2); });  // same time, later seq
  });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  // The nested zero-delay event was inserted after event 3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const TimerHandle h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const TimerHandle h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, CancelDefaultHandleIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(TimerHandle{}));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const TimerHandle h = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, RunUntilExecutesOnlyDueEvents) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(5.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(3.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 3.0);  // advances to the deadline
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.run_until(7.5);
  EXPECT_EQ(sim.now(), 7.5);
}

TEST(SimulatorTest, RunUntilBoundaryIsInclusive) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // A fresh run resumes the remaining events.
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, StepExecutesSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CancelledEventsDoNotCountAsSteps) {
  Simulator sim;
  const TimerHandle h = sim.schedule_at(1.0, [] {});
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(h);
  EXPECT_TRUE(sim.step());  // skips the cancelled entry, runs the live one
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ManyEventsKeepRelativeOrderStable) {
  Simulator sim;
  std::vector<int> order;
  // Same timestamp, 100 events: insertion order must be preserved exactly.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, TimeNeverGoesBackwards) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(static_cast<double>(50 - i), [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

// ---------------------------------------------------------------------------
// Slab/generation semantics: handles must stay dead across slot reuse.

TEST(SimulatorTest, StaleHandleCannotCancelSlotReuse) {
  Simulator sim;
  // Fire A, whose slot is then recycled for B. A's stale handle must not
  // cancel B.
  const TimerHandle a = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());  // A fired; its slot returns to the free list
  bool b_fired = false;
  sim.schedule_at(2.0, [&] { b_fired = true; });
  EXPECT_FALSE(sim.cancel(a));  // stale generation: must be a no-op
  sim.run();
  EXPECT_TRUE(b_fired);
}

TEST(SimulatorTest, CancelledSlotReuseKeepsNewEventAlive) {
  Simulator sim;
  const TimerHandle a = sim.schedule_at(5.0, [] {});
  EXPECT_TRUE(sim.cancel(a));
  // The freed slot is reused immediately; the orphaned heap entry for A
  // must not fire or suppress B.
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(a));  // still stale after reuse
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ManyCancellationsInterleavedWithReuse) {
  Simulator sim;
  std::vector<TimerHandle> handles;
  int fired = 0;
  for (int round = 0; round < 10; ++round) {
    handles.clear();
    for (int i = 0; i < 20; ++i) {
      handles.push_back(
          sim.schedule_in(1.0 + i, [&] { ++fired; }));
    }
    // Cancel every other event; the slots get reused next round.
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      EXPECT_TRUE(sim.cancel(handles[i]));
      EXPECT_FALSE(sim.cancel(handles[i]));
    }
    sim.run();
  }
  EXPECT_EQ(fired, 10 * 10);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelFromInsideEventIsSafe) {
  Simulator sim;
  bool victim_fired = false;
  const TimerHandle victim =
      sim.schedule_at(2.0, [&] { victim_fired = true; });
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(SimulatorTest, TieBreakSurvivesCancellationChurn) {
  // Determinism pin: interleaved schedule/cancel churn must not disturb
  // the (time, insertion-seq) order of the surviving events.
  Simulator sim;
  std::vector<int> order;
  std::vector<TimerHandle> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(sim.schedule_at(1.0, [] {}));
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  for (const TimerHandle h : doomed) sim.cancel(h);
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsExecutedCounts) {
  Simulator sim;
  const std::uint64_t thread_before = Simulator::thread_events_executed();
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0, [] {});
  const TimerHandle h = sim.schedule_at(2.0, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);  // cancelled events don't count
  EXPECT_EQ(Simulator::thread_events_executed() - thread_before, 5u);
}

TEST(SimulatorTest, MoveOnlyCaptureAndLargePayload) {
  // EventFn accepts move-only captures (std::function never could) and
  // falls back to the heap for captures beyond its inline buffer.
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  sim.schedule_at(1.0, [p = std::move(payload), &got] { got = *p + 1; });
  struct Big {
    double data[40] = {};
  };
  double sum = -1.0;
  sim.schedule_at(2.0, [big = Big{}, &sum] { sum = big.data[0]; });
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(sum, 0.0);
}

TEST(SimulatorTest, SelfReschedulingTimerPattern) {
  // The pattern SimNetwork uses for session timers: a TimerPool owns the
  // closure, scheduled events hold non-owning pointers (a shared_ptr
  // self-capture would be a leaky reference cycle).
  Simulator sim;
  TimerPool timers;
  int fires = 0;
  std::function<void()>* tick = timers.add();
  *tick = [&sim, &fires, tick] {
    ++fires;
    if (fires < 5) sim.schedule_in(1.0, [tick] { (*tick)(); });
  };
  sim.schedule_at(0.5, [tick] { (*tick)(); });
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

}  // namespace
}  // namespace fastcons
