// Peer-health state machine: threshold-exact transitions, flapping,
// failure-driven suspicion, demand decay through the table and the engine,
// and the default-off contract that keeps every sim digest byte-identical.
#include "health/peer_health.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "demand/demand_table.hpp"

namespace fastcons {
namespace {

HealthConfig enabled_config() {
  HealthConfig cfg;
  cfg.enabled = true;  // suspect_after 1.5, down_after 4.0, factor 0.25
  return cfg;
}

TEST(PeerHealthTest, DisabledTrackerReportsEverythingUp) {
  PeerHealthTracker t({1, 2}, HealthConfig{}, 0.0);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.state(1, 1000.0), PeerHealth::up);
  EXPECT_DOUBLE_EQ(t.demand_factor(1, 1000.0), 1.0);
  t.record_failure(1, 500.0);
  t.record_failure(1, 501.0);
  t.record_failure(1, 502.0);
  EXPECT_EQ(t.state(1, 503.0), PeerHealth::up);
  EXPECT_TRUE(t.all_up(1e9));
}

TEST(PeerHealthTest, TransitionsExactlyAtThresholds) {
  PeerHealthTracker t({1}, enabled_config(), 0.0);
  // Silence < suspect_after: still up. At the threshold: suspect.
  EXPECT_EQ(t.state(1, 1.4999), PeerHealth::up);
  EXPECT_EQ(t.state(1, 1.5), PeerHealth::suspect);
  EXPECT_EQ(t.state(1, 3.9999), PeerHealth::suspect);
  EXPECT_EQ(t.state(1, 4.0), PeerHealth::down);
  // Derivation is pure: asking about the past still answers up.
  EXPECT_EQ(t.state(1, 1.0), PeerHealth::up);
  // suspect_since is when the degradation began, not when we asked.
  EXPECT_DOUBLE_EQ(t.view(1, 10.0).suspect_since, 1.5);
}

TEST(PeerHealthTest, ContactRepromotesAndReportsPriorState) {
  PeerHealthTracker t({1}, enabled_config(), 0.0);
  EXPECT_EQ(t.state(1, 5.0), PeerHealth::down);
  // The revival contact returns the state the peer was in before it.
  EXPECT_EQ(t.record_contact(1, 5.0), PeerHealth::down);
  EXPECT_EQ(t.state(1, 5.0), PeerHealth::up);
  EXPECT_EQ(t.recoveries(), 1u);
  // A second contact is an up -> up no-op, not another recovery.
  EXPECT_EQ(t.record_contact(1, 5.1), PeerHealth::up);
  EXPECT_EQ(t.recoveries(), 1u);
}

TEST(PeerHealthTest, FlappingPeerNeverReachesDown) {
  // Contact every 2.0 units: silence crosses suspect_after (1.5) each gap
  // but never down_after (4.0) — the peer oscillates up <-> suspect.
  PeerHealthTracker t({1}, enabled_config(), 0.0);
  for (int cycle = 0; cycle < 10; ++cycle) {
    const SimTime base = 2.0 * cycle;
    EXPECT_EQ(t.state(1, base + 1.9), PeerHealth::suspect) << cycle;
    EXPECT_EQ(t.record_contact(1, base + 2.0), PeerHealth::suspect) << cycle;
    EXPECT_EQ(t.state(1, base + 2.0), PeerHealth::up) << cycle;
  }
  EXPECT_EQ(t.recoveries(), 0u);  // suspect -> up is not a down-recovery
}

TEST(PeerHealthTest, ConsecutiveFailuresForceSuspicion) {
  PeerHealthTracker t({1}, enabled_config(), 0.0);
  t.record_contact(1, 1.0);
  // Two failures: below the threshold of 3, recency still rules.
  t.record_failure(1, 1.1);
  t.record_failure(1, 1.2);
  EXPECT_EQ(t.state(1, 1.3), PeerHealth::up);
  t.record_failure(1, 1.3);
  EXPECT_EQ(t.state(1, 1.4), PeerHealth::suspect);
  // suspect_since points at the first failure of the run.
  EXPECT_DOUBLE_EQ(t.view(1, 1.4).suspect_since, 1.1);
  // Failures alone never mean down — only prolonged silence does.
  EXPECT_EQ(t.state(1, 2.0), PeerHealth::suspect);
  // Restart-under-suspicion: one real contact clears the failure run.
  EXPECT_EQ(t.record_contact(1, 2.0), PeerHealth::suspect);
  EXPECT_EQ(t.state(1, 2.1), PeerHealth::up);
  EXPECT_EQ(t.view(1, 2.1).consecutive_failures, 0u);
}

TEST(PeerHealthTest, DemandFactorDecaysWithState) {
  PeerHealthTracker t({1}, enabled_config(), 0.0);
  EXPECT_DOUBLE_EQ(t.demand_factor(1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.demand_factor(1, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(t.demand_factor(1, 5.0), 0.0);
}

TEST(PeerHealthTest, ResetMatchesFreshConstruction) {
  PeerHealthTracker t({1, 2}, enabled_config(), 0.0);
  t.record_contact(1, 3.0);
  t.record_failure(2, 3.0);
  ASSERT_EQ(t.record_contact(2, 9.0), PeerHealth::down);
  ASSERT_EQ(t.recoveries(), 1u);
  t.reset({1, 2}, enabled_config(), 10.0);
  const PeerHealthTracker fresh({1, 2}, enabled_config(), 10.0);
  EXPECT_EQ(t.recoveries(), 0u);
  for (const NodeId peer : {1u, 2u}) {
    EXPECT_EQ(t.state(peer, 11.0), fresh.state(peer, 11.0));
    EXPECT_DOUBLE_EQ(t.view(peer, 11.0).last_heard,
                     fresh.view(peer, 11.0).last_heard);
  }
}

TEST(PeerHealthTest, DemandTableSelectionDecaysSuspectAndDropsDown) {
  // Peer 1: demand 10, silent since t=0 (down by t=5).
  // Peer 2: demand 8, heard at t=4 (up at t=5).
  // Peer 3: demand 40, heard at t=4 - 1.6 (suspect: 40 * 0.25 = 10 ties
  //         with nothing; effective 10 > 8 keeps it first).
  PeerHealthTracker t({1, 2, 3}, enabled_config(), 0.0);
  t.record_contact(2, 4.0);
  t.record_contact(3, 2.4);
  DemandTable table({1, 2, 3});
  table.update(1, 10.0, 0.0);
  table.update(2, 8.0, 0.0);
  table.update(3, 40.0, 0.0);

  const auto ranked = table.by_demand_desc(3.9, &t);
  ASSERT_EQ(ranked.size(), 3u);  // nobody down yet at t=3.9
  EXPECT_EQ(ranked[0], 3u);

  const auto later = table.by_demand_desc(5.0, &t);
  ASSERT_EQ(later.size(), 2u);  // peer 1 is down and excluded
  EXPECT_EQ(later[0], 3u);  // 40 * 0.25 = 10 beats 8
  EXPECT_EQ(later[1], 2u);
  // Health-blind overload is unchanged: raw demand order, all peers.
  EXPECT_EQ(table.by_demand_desc(5.0).size(), 3u);
  EXPECT_EQ(table.by_demand_desc(5.0)[0], 3u);

  const auto live = table.alive(5.0, &t);
  ASSERT_EQ(live.size(), 2u);
}

TEST(PeerHealthEngineTest, MessagesRefreshHealthAndSilenceDegrades) {
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.health.enabled = true;
  ReplicaEngine e(0, {1, 2}, cfg, /*seed=*/7);
  e.handle(1, DemandAdvert{5.0}, 0.2);
  // Peer 1 heard at 0.2; peer 2 silent since construction at 0.0.
  EXPECT_EQ(e.peer_health().state(1, 1.0), PeerHealth::up);
  EXPECT_EQ(e.peer_health().state(2, 1.6), PeerHealth::suspect);
  EXPECT_EQ(e.peer_health().state(2, 4.5), PeerHealth::down);
  EXPECT_EQ(e.peer_health().state(1, 1.6), PeerHealth::up);
}

TEST(PeerHealthEngineTest, ResetClearsHealthState) {
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.health.enabled = true;
  ReplicaEngine e(0, {1}, cfg, 7);
  e.handle(1, DemandAdvert{5.0}, 8.0);
  e.reset(0, {1}, cfg, 7);
  // After reset the tracker starts from t=0 again, exactly like a fresh
  // engine: silence is measured from construction, not the old contact.
  EXPECT_EQ(e.peer_health().state(1, 1.0), PeerHealth::up);
  EXPECT_EQ(e.peer_health().state(1, 4.0), PeerHealth::down);
}

TEST(PeerHealthEngineTest, GradientPushSkipsUnhealthyTarget) {
  // Node 0 (demand 1) with a demand-3 neighbour: a local write fast-pushes
  // to it while up (3 > 1), but once the neighbour turns suspect its
  // decayed demand (3 * 0.25 = 0.75) no longer clears the gradient — the
  // push is suppressed and counted. A fully-down peer is excluded from
  // selection before the gradient even looks at it.
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.health.enabled = true;
  ReplicaEngine e(0, {1}, cfg, 7);
  e.set_own_demand(1.0);
  e.handle(1, DemandAdvert{3.0}, 0.1);

  const auto while_up = e.local_write("a", "1", 0.2);
  bool pushed = false;
  for (const Outbound& out : while_up) {
    if (out.to == 1) pushed = true;
  }
  EXPECT_TRUE(pushed);
  EXPECT_EQ(e.stats().pushes_suppressed_unhealthy, 0u);

  const auto while_suspect = e.local_write("b", "2", 2.0);  // silent 1.9
  EXPECT_TRUE(while_suspect.empty());
  EXPECT_EQ(e.stats().pushes_suppressed_unhealthy, 1u);

  const auto while_down = e.local_write("c", "3", 9.0);  // excluded outright
  EXPECT_TRUE(while_down.empty());
  EXPECT_EQ(e.stats().pushes_suppressed_unhealthy, 1u);
}

}  // namespace
}  // namespace fastcons
