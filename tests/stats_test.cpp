#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/online_stats.hpp"
#include "stats/table.hpp"

namespace fastcons {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMeanAndVariance) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  Rng rng(3);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // empty right side: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty left side: adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(CdfTest, EmptyAtIsZero) {
  EmpiricalCdf cdf;
  EXPECT_EQ(cdf.at(10.0), 0.0);
  EXPECT_TRUE(cdf.empty());
}

TEST(CdfTest, StepFunctionSemantics) {
  EmpiricalCdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  cdf.add(3.0);
  cdf.add(4.0);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);  // inclusive at sample points
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(CdfTest, QuantilesNearestRank) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(CdfTest, MeanMinMax) {
  EmpiricalCdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
}

TEST(CdfTest, CurveIsMonotoneAndEndsAtOne) {
  EmpiricalCdf cdf;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) cdf.add(rng.uniform(0.0, 10.0));
  const auto curve = cdf.curve(0.0, 10.0, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
}

TEST(CdfTest, InterleavedAddAndQuery) {
  EmpiricalCdf cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
  cdf.add(1.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 0.5);
}

TEST(HistogramTest, BinEdgesAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0 (inclusive lower edge)
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(10.0);  // overflow (exclusive upper edge)
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(CountersTest, RecordAndTotals) {
  TrafficCounters c;
  c.record(TrafficClass::session_control, 10);
  c.record(TrafficClass::session_control, 15);
  c.record(TrafficClass::fast_payload, 100);
  EXPECT_EQ(c.messages(TrafficClass::session_control), 2u);
  EXPECT_EQ(c.bytes(TrafficClass::session_control), 25u);
  EXPECT_EQ(c.total_messages(), 3u);
  EXPECT_EQ(c.total_bytes(), 125u);
}

TEST(CountersTest, MergeAddsCellwise) {
  TrafficCounters a, b;
  a.record(TrafficClass::demand_advert, 8);
  b.record(TrafficClass::demand_advert, 8);
  b.record(TrafficClass::fast_control, 20);
  a.merge(b);
  EXPECT_EQ(a.messages(TrafficClass::demand_advert), 2u);
  EXPECT_EQ(a.bytes(TrafficClass::demand_advert), 16u);
  EXPECT_EQ(a.messages(TrafficClass::fast_control), 1u);
}

TEST(CountersTest, ClassNamesAreDistinct) {
  EXPECT_NE(traffic_class_name(TrafficClass::session_control),
            traffic_class_name(TrafficClass::fast_control));
  EXPECT_NE(traffic_class_name(TrafficClass::session_payload),
            traffic_class_name(TrafficClass::fast_payload));
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string path = ::testing::TempDir() + "/fastcons_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "k,v");
  EXPECT_EQ(row, "\"a,b\",\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace fastcons
