// The paper's core safety/liveness property, swept over topology families,
// algorithms and seeds: every write eventually reaches every replica, and
// the fast-consistency machinery never breaks eventual consistency — even
// with message loss.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

enum class Topo { line, ring, grid, star, tree, ba, er };
enum class Algo { weak, demand_only, fast, fast_subset, fast_unconstrained };

Graph build_topology(Topo topo, Rng& rng) {
  const LatencyRange lat{0.01, 0.05};
  switch (topo) {
    case Topo::line: return make_line(12, lat, rng);
    case Topo::ring: return make_ring(12, lat, rng);
    case Topo::grid: return make_grid(4, 3, lat, rng);
    case Topo::star: return make_star(12, lat, rng);
    case Topo::tree: return make_binary_tree(12, lat, rng);
    case Topo::ba: return make_barabasi_albert(16, 2, lat, rng);
    case Topo::er: return make_erdos_renyi(16, 0.2, lat, rng);
  }
  return Graph{};
}

ProtocolConfig build_protocol(Algo algo) {
  switch (algo) {
    case Algo::weak: return ProtocolConfig::weak();
    case Algo::demand_only: return ProtocolConfig::demand_order_only();
    case Algo::fast: return ProtocolConfig::fast();
    case Algo::fast_subset: {
      ProtocolConfig cfg = ProtocolConfig::fast();
      cfg.ack_mode = FastAckMode::subset;
      cfg.fast_fanout = 2;
      return cfg;
    }
    case Algo::fast_unconstrained: {
      ProtocolConfig cfg = ProtocolConfig::fast();
      cfg.push_rule = FastPushRule::unconstrained;
      return cfg;
    }
  }
  return ProtocolConfig{};
}

using Param = std::tuple<Topo, Algo, std::uint64_t>;

class ConvergenceProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ConvergenceProperty, EveryWriteReachesEveryReplica) {
  const auto [topo, algo, seed] = GetParam();
  Rng rng(seed * 7919 + 13);
  Graph graph = build_topology(topo, rng);
  const std::size_t n = graph.size();
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(n, 0.0, 100.0, rng));

  SimConfig cfg;
  cfg.protocol = build_protocol(algo);
  cfg.seed = rng.next_u64();
  SimNetwork net(std::move(graph), demand, cfg);

  // Three writes from distinct random replicas at staggered times.
  std::vector<UpdateId> ids;
  for (int w = 0; w < 3; ++w) {
    const auto writer = static_cast<NodeId>(rng.index(n));
    ids.push_back(net.schedule_write(writer, "key" + std::to_string(w),
                                     "value" + std::to_string(w),
                                     0.3 + 0.4 * w));
  }

  // Run past the last write first: before any write fires, all-empty logs
  // are trivially "consistent" and would end the wait at t=0.
  net.run_until(2.0);
  ASSERT_TRUE(net.run_until_consistent(80.0)) << "did not converge";
  for (const UpdateId id : ids) {
    EXPECT_EQ(net.nodes_holding(id), n);
  }
  // Convergence also means identical materialised key-value state.
  for (NodeId node = 1; node < n; ++node) {
    for (int w = 0; w < 3; ++w) {
      const std::string key = "key" + std::to_string(w);
      EXPECT_EQ(net.engine(node).read(key), net.engine(0).read(key));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvergenceProperty,
    ::testing::Combine(
        ::testing::Values(Topo::line, Topo::ring, Topo::grid, Topo::star,
                          Topo::tree, Topo::ba, Topo::er),
        ::testing::Values(Algo::weak, Algo::demand_only, Algo::fast,
                          Algo::fast_subset, Algo::fast_unconstrained),
        ::testing::Values(1u, 2u)));

class LossyConvergenceProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LossyConvergenceProperty, ConvergesDespiteLoss) {
  Rng rng(GetParam() * 31 + 7);
  Graph graph = make_barabasi_albert(14, 2, {0.01, 0.05}, rng);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(graph.size(), 0.0, 100.0, rng));
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.loss_rate = 0.25;
  cfg.seed = rng.next_u64();
  SimNetwork net(std::move(graph), demand, cfg);
  const auto writer = static_cast<NodeId>(rng.index(net.size()));
  const UpdateId id = net.schedule_write(writer, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 120.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyConvergenceProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

class HealedPartitionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HealedPartitionProperty, ConvergesAfterHeal) {
  // Ring cut in two places -> two halves; writes land on both sides during
  // the partition; after healing everything converges.
  Rng rng(GetParam() * 101 + 3);
  Graph graph = make_ring(10, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(10, 0.0, 100.0, rng));
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seed = rng.next_u64();
  SimNetwork net(std::move(graph), demand, cfg);
  net.add_link_failure(0, 9, 0.0, 8.0);
  net.add_link_failure(4, 5, 0.0, 8.0);
  const UpdateId left = net.schedule_write(2, "left", "L", 0.5);
  const UpdateId right = net.schedule_write(7, "right", "R", 0.5);
  net.run_until(8.0);
  // During the partition neither write crossed the cut.
  EXPECT_LT(net.nodes_holding(left), 10u);
  EXPECT_LT(net.nodes_holding(right), 10u);
  EXPECT_TRUE(net.run_until_consistent(80.0));
  EXPECT_EQ(net.nodes_holding(left), 10u);
  EXPECT_EQ(net.nodes_holding(right), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealedPartitionProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace fastcons
