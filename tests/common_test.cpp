#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "common/log.hpp"

namespace fastcons {
namespace {

TEST(EnvTest, MissingVariableFallsBack) {
  ::unsetenv("FASTCONS_TEST_ENV_U64");
  EXPECT_EQ(env_u64("FASTCONS_TEST_ENV_U64", 42), 42u);
  EXPECT_DOUBLE_EQ(env_double("FASTCONS_TEST_ENV_DBL", 2.5), 2.5);
}

TEST(EnvTest, ParsesValidValues) {
  ::setenv("FASTCONS_TEST_ENV_U64", "12345", 1);
  EXPECT_EQ(env_u64("FASTCONS_TEST_ENV_U64", 0), 12345u);
  ::setenv("FASTCONS_TEST_ENV_DBL", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_double("FASTCONS_TEST_ENV_DBL", 0.0), 0.125);
  ::unsetenv("FASTCONS_TEST_ENV_U64");
  ::unsetenv("FASTCONS_TEST_ENV_DBL");
}

TEST(EnvTest, GarbageFallsBack) {
  ::setenv("FASTCONS_TEST_ENV_U64", "12x", 1);
  EXPECT_EQ(env_u64("FASTCONS_TEST_ENV_U64", 7), 7u);
  ::setenv("FASTCONS_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("FASTCONS_TEST_ENV_U64", 7), 7u);
  ::setenv("FASTCONS_TEST_ENV_DBL", "zz", 1);
  EXPECT_DOUBLE_EQ(env_double("FASTCONS_TEST_ENV_DBL", 1.5), 1.5);
  ::unsetenv("FASTCONS_TEST_ENV_U64");
  ::unsetenv("FASTCONS_TEST_ENV_DBL");
}

TEST(LogTest, ThresholdGatesOutput) {
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::error);
  EXPECT_FALSE(FASTCONS_LOG(debug, "test").enabled());
  EXPECT_FALSE(FASTCONS_LOG(warn, "test").enabled());
  EXPECT_TRUE(FASTCONS_LOG(error, "test").enabled());
  set_log_threshold(LogLevel::trace);
  EXPECT_TRUE(FASTCONS_LOG(trace, "test").enabled());
  set_log_threshold(original);
}

TEST(LogTest, InitFromEnvSetsLevel) {
  const LogLevel original = log_threshold();
  ::setenv("FASTCONS_LOG", "debug", 1);
  init_log_from_env();
  EXPECT_EQ(log_threshold(), LogLevel::debug);
  ::setenv("FASTCONS_LOG", "not-a-level", 1);
  init_log_from_env();                          // unknown value: unchanged
  EXPECT_EQ(log_threshold(), LogLevel::debug);
  ::unsetenv("FASTCONS_LOG");
  set_log_threshold(original);
}

TEST(LogTest, StreamingDisabledLineIsCheap) {
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::error);
  // Streaming into a disabled line must not crash and must not evaluate
  // into visible output; mostly a smoke test for the operator<< chain.
  FASTCONS_LOG(debug, "test") << "value " << 42 << " and " << 2.5;
  set_log_threshold(original);
}

}  // namespace
}  // namespace fastcons
