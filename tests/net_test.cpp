// Real-socket integration tests. Environments without loopback networking
// skip gracefully (GTEST_SKIP on bind failure).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/cluster.hpp"
#include "net/soak.hpp"
#include "net/options.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "stats/cdf.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

bool loopback_available() {
  try {
    const TcpListener listener = TcpListener::bind_loopback(0);
    return listener.valid();
  } catch (const TransportError&) {
    return false;
  }
}

#define REQUIRE_LOOPBACK()                                     \
  do {                                                          \
    if (!loopback_available()) {                                \
      GTEST_SKIP() << "loopback networking unavailable";        \
    }                                                           \
  } while (0)

TEST(SocketTest, ListenerGetsEphemeralPort) {
  REQUIRE_LOOPBACK();
  const TcpListener a = TcpListener::bind_loopback(0);
  const TcpListener b = TcpListener::bind_loopback(0);
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(SocketTest, ConnectSendReceive) {
  REQUIRE_LOOPBACK();
  TcpListener listener = TcpListener::bind_loopback(0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.port());
  // Accept may need a moment for the non-blocking handshake.
  std::optional<TcpConnection> serverside;
  for (int i = 0; i < 100 && !serverside; ++i) {
    serverside = listener.accept();
    if (!serverside) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(serverside.has_value());
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  // Flush until the kernel accepts everything.
  for (int i = 0; i < 100 && client.send(payload) == IoStatus::would_block;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::vector<std::uint8_t> received;
  for (int i = 0; i < 200 && received.size() < payload.size(); ++i) {
    serverside->read_available(received);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received, payload);
}

TEST(SocketTest, InvalidAddressThrows) {
  REQUIRE_LOOPBACK();
  EXPECT_THROW(TcpConnection::connect("not-an-ip", 1234), TransportError);
}

TEST(SocketTest, WakePipeWakesAndDrains) {
  WakePipe pipe;
  pipe.wake();
  pipe.wake();
  std::uint8_t buf[8];
  // After draining, the read end is empty (non-blocking read returns <= 0).
  pipe.drain();
  EXPECT_LE(::read(pipe.read_fd(), buf, sizeof(buf)), 0);
}

TEST(ServerTest, ConcurrentStopIsIdempotent) {
  // Regression: stop() used to check running_ with a plain load before
  // joining, so two concurrent callers could both reach thread_.join().
  // The exchange(false) guarantees exactly one caller performs the join;
  // the rest return immediately.
  REQUIRE_LOOPBACK();
  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  ReplicaServer server(std::move(cfg));
  server.start();
  server.write("k", "v");
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(server.running());
  server.stop();  // and again after it is already stopped
  EXPECT_FALSE(server.running());
}

TEST(ServerTest, LocalWriteIsReadable) {
  REQUIRE_LOOPBACK();
  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  ReplicaServer server(std::move(cfg));
  server.start();
  server.write("city", "tokyo");
  std::optional<std::string> value;
  for (int i = 0; i < 200 && !value; ++i) {
    value = server.read("city");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "tokyo");
}

TEST(ServerTest, TwoServersSyncViaSessions) {
  REQUIRE_LOOPBACK();
  Rng rng(1);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 5.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("k", "v");
  const bool converged = cluster.wait_for_convergence(10.0);
  const auto value = cluster.server(1).read("k");
  cluster.stop();
  ASSERT_TRUE(converged);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "v");
}

TEST(ServerTest, FiveNodeClusterConvergesWithMultipleWriters) {
  REQUIRE_LOOPBACK();
  Rng rng(2);
  const Graph g = make_ring(5, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {4.0, 6.0, 3.0, 8.0, 7.0};
  cfg.seed = 3;
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("a", "1");
  cluster.server(2).write("b", "2");
  cluster.server(4).write("c", "3");
  const bool converged = cluster.wait_for_convergence(15.0, 3);
  std::vector<std::optional<std::string>> values;
  for (NodeId n = 0; n < 5; ++n) values.push_back(cluster.server(n).read("a"));
  cluster.stop();
  ASSERT_TRUE(converged);
  for (NodeId n = 0; n < 5; ++n) {
    ASSERT_TRUE(values[n].has_value()) << "node " << n;
    EXPECT_EQ(*values[n], "1");
  }
}

TEST(ServerTest, FastPushBeatsSessionsToHighDemandPeer) {
  REQUIRE_LOOPBACK();
  // Writer with one very-high-demand neighbour: the fast push should land
  // well before the first session period elapses.
  Rng rng(3);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.session_period = 1.0;
  cfg.seconds_per_unit = 0.5;  // one session = 500ms of wall clock
  cfg.demands = {1.0, 100.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  // Give adverts a moment to prime the demand tables.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto started = std::chrono::steady_clock::now();
  cluster.server(0).write("hot", "content");
  std::optional<std::string> value;
  while (!value &&
         std::chrono::steady_clock::now() - started < std::chrono::seconds(5)) {
    value = cluster.server(1).read("hot");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const auto stats = cluster.server(0).stats();
  cluster.stop();
  ASSERT_TRUE(value.has_value());
  EXPECT_GE(stats.offers_sent, 1u);
  // Arrived via push (milliseconds), not via a session (>= ~250ms).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            250);
}

TEST(ServerTest, SurvivesPeerRestart) {
  REQUIRE_LOOPBACK();
  // Peer goes away mid-run; the survivor keeps running and re-syncs when a
  // new peer appears at the same port... (we approximate by stopping and
  // asserting the survivor stays healthy and writable).
  ServerConfig a_cfg;
  a_cfg.self = 0;
  a_cfg.protocol = ProtocolConfig::fast();
  a_cfg.seconds_per_unit = 0.02;
  ReplicaServer a(std::move(a_cfg));

  ServerConfig b_cfg;
  b_cfg.self = 1;
  b_cfg.protocol = ProtocolConfig::fast();
  b_cfg.seconds_per_unit = 0.02;
  auto b = std::make_unique<ReplicaServer>(std::move(b_cfg));

  a.set_peers({PeerAddress{1, "127.0.0.1", b->port()}});
  b->set_peers({PeerAddress{0, "127.0.0.1", a.port()}});
  a.start();
  b->start();
  a.write("k1", "v1");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  b->stop();
  b.reset();  // peer gone: sends now fail, server must tolerate it
  a.write("k2", "v2");
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(a.read("k2"), "v2");
  EXPECT_TRUE(a.running());
  a.stop();
}

TEST(ClusterTest, DemandVectorSizeValidated) {
  REQUIRE_LOOPBACK();
  Rng rng(4);
  const Graph g = make_line(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.demands = {1.0};  // wrong size
  EXPECT_THROW(LocalCluster(g, cfg), ConfigError);
}

// ---------------------------------------------------------------- bind ----

// Regression: bind_loopback used to be the only entry point and hard-bound
// INADDR_LOOPBACK, so the daemon's documented multi-host mesh could never
// accept a non-local peer. A wildcard bind must accept connections.
TEST(SocketTest, NonLoopbackBindAcceptsConnection) {
  REQUIRE_LOOPBACK();
  TcpListener listener = TcpListener::bind("0.0.0.0", 0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.port());
  std::optional<TcpConnection> serverside;
  for (int i = 0; i < 100 && !serverside; ++i) {
    serverside = listener.accept();
    if (!serverside) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(serverside.has_value());
}

TEST(SocketTest, BindRejectsInvalidAddress) {
  EXPECT_THROW(TcpListener::bind("not-an-address", 0), TransportError);
  EXPECT_THROW(TcpListener::bind("", 0), TransportError);
}

TEST(ServerTest, WildcardBindServersConverge) {
  REQUIRE_LOOPBACK();
  Rng rng(9);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.bind_address = "0.0.0.0";
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("k", "v");
  const bool converged = cluster.wait_for_convergence(10.0);
  const auto value = cluster.server(1).read("k");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(value, "v");
}

// ------------------------------------------------------- empty cluster ----

// Regression: converged() called servers_.front() — UB on a cluster built
// from an empty topology.
TEST(ClusterTest, EmptyTopologyDoesNotCrash) {
  const Graph empty;
  ClusterConfig cfg;
  LocalCluster cluster(empty, cfg);
  cluster.start();
  EXPECT_FALSE(cluster.converged());     // one update required, none exist
  EXPECT_TRUE(cluster.converged(0));     // vacuously consistent
  EXPECT_TRUE(cluster.wait_for_convergence(0.05, 0));
  EXPECT_FALSE(cluster.wait_for_convergence(0.05, 1));
  cluster.stop();
}

// --------------------------------------------------------- backpressure ----

// Regression: flush() erased sent bytes from the front of the outbox —
// O(n^2) under backpressure. Queue multi-MB of frames against a reader
// that is not draining, then drain and check every byte arrives in order.
TEST(SocketTest, BackpressuredOutboxDeliversEverything) {
  REQUIRE_LOOPBACK();
  TcpListener listener = TcpListener::bind_loopback(0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.port());
  std::optional<TcpConnection> serverside;
  for (int i = 0; i < 100 && !serverside; ++i) {
    serverside = listener.accept();
    if (!serverside) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(serverside.has_value());

  // 4 MiB in 64 KiB frames of a deterministic byte pattern, sent while
  // nobody reads: the socket buffers fill and the outbox backs up.
  constexpr std::size_t kFrame = 64 * 1024;
  constexpr std::size_t kFrames = 64;
  std::vector<std::uint8_t> frame(kFrame);
  std::size_t sent_index = 0;
  for (std::size_t f = 0; f < kFrames; ++f) {
    for (auto& b : frame) {
      b = static_cast<std::uint8_t>(sent_index * 31 + 7);
      ++sent_index;
    }
    const IoStatus status = client.send(frame);
    ASSERT_NE(status, IoStatus::error);
  }
  EXPECT_GT(client.pending_output_bytes(), 0u)
      << "expected the stalled reader to backpressure the sender";

  // Drain: alternate reads and flushes until everything lands.
  std::vector<std::uint8_t> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.size() < kFrame * kFrames &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_NE(client.flush(), IoStatus::error);
    ASSERT_NE(serverside->read_available(received), IoStatus::error);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(received.size(), kFrame * kFrames);
  EXPECT_FALSE(client.has_pending_output());
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], static_cast<std::uint8_t>(i * 31 + 7))
        << "corrupt byte at offset " << i;
  }
}

// ----------------------------------------------------------- arg parsing ----

TEST(OptionsTest, ParsePeerAddressValid) {
  const PeerAddress peer = parse_peer_address("3:10.0.0.7:7001");
  EXPECT_EQ(peer.id, 3u);
  EXPECT_EQ(peer.host, "10.0.0.7");
  EXPECT_EQ(peer.port, 7001);
}

// Regression: strtoul without error checking turned "--peer abc:host:port"
// into replica id 0 silently.
TEST(OptionsTest, ParsePeerAddressRejectsMalformedSpecs) {
  EXPECT_THROW(parse_peer_address("abc:127.0.0.1:7001"), ConfigError);
  EXPECT_THROW(parse_peer_address("1x:127.0.0.1:7001"), ConfigError);
  EXPECT_THROW(parse_peer_address("1:127.0.0.1:70x1"), ConfigError);
  EXPECT_THROW(parse_peer_address("1:127.0.0.1:0"), ConfigError);
  EXPECT_THROW(parse_peer_address("1:127.0.0.1:99999"), ConfigError);
  EXPECT_THROW(parse_peer_address("1::7001"), ConfigError);
  EXPECT_THROW(parse_peer_address("1:127.0.0.1"), ConfigError);
  EXPECT_THROW(parse_peer_address("no-colons-at-all"), ConfigError);
  EXPECT_THROW(parse_peer_address(":host:1"), ConfigError);
}

TEST(OptionsTest, ParseDaemonArgsFullCommandLine) {
  DaemonOptions options;
  const auto error = parse_daemon_args(
      {"--id", "2", "--port", "7002", "--bind", "0.0.0.0", "--peer",
       "0:10.0.0.5:7000", "--peer", "1:10.0.0.6:7001", "--demand", "8.5",
       "--algorithm", "weak", "--period-ms", "250", "--write", "k=v",
       "--run-seconds", "3", "--load-writes-per-sec", "100",
       "--load-seconds", "2", "--verbose"},
      options);
  ASSERT_FALSE(error.has_value()) << *error;
  EXPECT_EQ(options.server.self, 2u);
  EXPECT_EQ(options.server.listen_port, 7002);
  EXPECT_EQ(options.server.bind_address, "0.0.0.0");
  ASSERT_EQ(options.server.peers.size(), 2u);
  EXPECT_EQ(options.server.peers[1].host, "10.0.0.6");
  EXPECT_DOUBLE_EQ(options.server.demand, 8.5);
  EXPECT_FALSE(options.server.protocol.fast_push);  // weak preset
  EXPECT_DOUBLE_EQ(options.server.seconds_per_unit, 0.25);
  ASSERT_EQ(options.writes.size(), 1u);
  EXPECT_EQ(options.writes[0].first, "k");
  EXPECT_DOUBLE_EQ(options.run_seconds, 3.0);
  EXPECT_DOUBLE_EQ(options.load_writes_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(options.load_seconds, 2.0);
  EXPECT_TRUE(options.verbose);
}

TEST(OptionsTest, ParseDaemonArgsRejectsBadInput) {
  const auto parse = [](std::vector<std::string> args) {
    DaemonOptions options;
    return parse_daemon_args(args, options);
  };
  EXPECT_TRUE(parse({"--port", "7000"}).has_value());            // missing id
  EXPECT_TRUE(parse({"--id", "0"}).has_value());                 // missing port
  EXPECT_TRUE(parse({"--id", "x", "--port", "1"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "x"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1", "--peer",
                     "abc:h:1"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1", "--algorithm",
                     "turbo"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1", "--write",
                     "novalue"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1",
                     "--load-writes-per-sec", "5"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1", "--period-ms",
                     "0"}).has_value());
  EXPECT_TRUE(parse({"--id", "0", "--port", "1", "--bogus"}).has_value());
  EXPECT_EQ(parse({"--help"}), "help");
  EXPECT_FALSE(parse({"--id", "0", "--port", "1"}).has_value());
}

// ------------------------------------------------- lock discipline / IO ----

// Socket work must never run under the engine mutex: with a peer that is
// unreachable (blackhole or refusing), client read() latency has to stay
// bounded by engine compute while the server keeps writing and the
// transport layer churns through connect attempts.
TEST(ServerTest, ReadLatencyBoundedWhilePeerUnreachable) {
  REQUIRE_LOOPBACK();
  // A loopback port with no listener: connects fail fast (ECONNREFUSED).
  const std::uint16_t dead_port = [] {
    const TcpListener probe = TcpListener::bind_loopback(0);
    return probe.port();
  }();  // listener destroyed; port closed

  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.005;  // aggressive timers -> constant send churn
  cfg.reconnect_backoff_min = 0.001;
  ReplicaServer server(std::move(cfg));
  server.set_peers({PeerAddress{1, "127.0.0.1", dead_port}});
  server.start();

  EmpiricalCdf read_ms;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  std::uint64_t i = 0;
  while (std::chrono::steady_clock::now() < until) {
    server.write("key" + std::to_string(i), "v");
    const auto before = std::chrono::steady_clock::now();
    (void)server.read("key" + std::to_string(i));
    read_ms.add(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - before)
                    .count());
    ++i;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const NetStats net = server.net_stats();
  server.stop();
  EXPECT_TRUE(server.running() == false);
  // Generous bound on a robust statistic: reads copy a value under the
  // engine mutex and must never wait on connect/send syscalls to a dead
  // peer. The p95 (not the max) keeps an unlucky scheduler preemption of
  // the *client* thread from failing the test on a loaded CI box.
  ASSERT_GE(read_ms.count(), 20u);
  EXPECT_LT(read_ms.quantile(0.95), 50.0);
  EXPECT_GE(net.connect_attempts, 1u);
  ASSERT_EQ(net.peers.size(), 1u);
  EXPECT_EQ(net.peers[0].peer, 1u);
  EXPECT_FALSE(net.peers[0].connected);
}

// Consecutive connect failures must back the link off (doubling toward the
// max) and drop frames instead of buffering unboundedly.
TEST(ServerTest, BackoffGrowsWhilePeerRefusesConnections) {
  REQUIRE_LOOPBACK();
  const std::uint16_t dead_port = [] {
    const TcpListener probe = TcpListener::bind_loopback(0);
    return probe.port();
  }();

  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.005;
  cfg.reconnect_backoff_min = 0.002;
  cfg.reconnect_backoff_max = 0.5;
  ReplicaServer server(std::move(cfg));
  server.set_peers({PeerAddress{1, "127.0.0.1", dead_port}});
  server.start();

  NetStats net;
  for (int i = 0; i < 200; ++i) {
    server.write("k" + std::to_string(i), "v");
    net = server.net_stats();
    if (net.connect_failures >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  ASSERT_GE(net.connect_failures, 3u);
  ASSERT_EQ(net.peers.size(), 1u);
  EXPECT_GT(net.peers[0].current_backoff_seconds, 0.002);
  EXPECT_LE(net.peers[0].current_backoff_seconds, 0.5);
  EXPECT_GE(net.frames_dropped, 1u);
}

// After a peer restarts at the same address, the link must reconnect and
// the fresh inbound connection must decode frames from a clean boundary
// (each connection gets its own FrameReader).
TEST(ServerTest, ReconnectsAfterPeerRestartAndResyncs) {
  REQUIRE_LOOPBACK();
  ServerConfig a_cfg;
  a_cfg.self = 0;
  a_cfg.protocol = ProtocolConfig::fast();
  a_cfg.seconds_per_unit = 0.02;
  a_cfg.reconnect_backoff_min = 0.005;
  ReplicaServer a(std::move(a_cfg));

  const auto make_b = [&a] {
    ServerConfig b_cfg;
    b_cfg.self = 1;
    b_cfg.protocol = ProtocolConfig::fast();
    b_cfg.seconds_per_unit = 0.02;
    auto b = std::make_unique<ReplicaServer>(std::move(b_cfg));
    b->set_peers({PeerAddress{0, "127.0.0.1", a.port()}});
    return b;
  };

  auto b = make_b();
  const std::uint16_t b_port = b->port();
  a.set_peers({PeerAddress{1, "127.0.0.1", b_port}});
  a.start();
  b->start();
  a.write("before", "restart");
  // Wait until b holds the first write.
  for (int i = 0; i < 500 && !b->read("before"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(b->read("before").has_value());

  b->stop();
  b.reset();
  // Let a notice: sends fail, the link cycles through failures.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // New process at the same port (fresh engine, fresh frame reader).
  ServerConfig b2_cfg;
  b2_cfg.self = 1;
  b2_cfg.protocol = ProtocolConfig::fast();
  b2_cfg.seconds_per_unit = 0.02;
  b2_cfg.listen_port = b_port;
  auto b2 = std::make_unique<ReplicaServer>(std::move(b2_cfg));
  b2->set_peers({PeerAddress{0, "127.0.0.1", a.port()}});
  b2->start();

  a.write("after", "restart");
  std::optional<std::string> before;
  std::optional<std::string> after;
  for (int i = 0; i < 1000 && (!before || !after); ++i) {
    before = b2->read("before");
    after = b2->read("after");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const NetStats net = a.net_stats();
  b2->stop();
  a.stop();
  // The restarted peer recovered the old write (anti-entropy) and saw the
  // new one; a's link survived the disconnect/reconnect cycle.
  EXPECT_EQ(before, "restart");
  EXPECT_EQ(after, "restart");
  EXPECT_GE(net.connect_attempts, 2u);
}

TEST(ServerTest, NetStatsCountTraffic) {
  REQUIRE_LOOPBACK();
  Rng rng(12);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("k", "v");
  ASSERT_TRUE(cluster.wait_for_convergence(10.0));
  // Let at least one full session round-trip accumulate counters on both
  // sides.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const NetStats n0 = cluster.server(0).net_stats();
  const NetStats n1 = cluster.server(1).net_stats();
  cluster.stop();
  EXPECT_GT(n0.frames_sent, 0u);
  EXPECT_GT(n0.bytes_sent, 0u);
  EXPECT_GT(n1.frames_received, 0u);
  EXPECT_GT(n1.bytes_received, 0u);
  EXPECT_GE(n1.inbound_accepted, 1u);
  EXPECT_EQ(n0.codec_errors, 0u);
  ASSERT_EQ(n0.peers.size(), 1u);
  EXPECT_TRUE(n0.peers[0].connected);
  EXPECT_EQ(n0.peers[0].peer, 1u);
}

// ------------------------------------------------------------- run_load ----

TEST(ClusterTest, RunLoadReportsThroughputAndVisibility) {
  REQUIRE_LOOPBACK();
  Rng rng(21);
  const Graph g = make_line(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 5.0, 9.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  const LoadReport report = cluster.run_load(0, 100.0, 0.4, 20.0);
  cluster.stop();
  EXPECT_GT(report.writes_issued, 10u);
  EXPECT_EQ(report.writes_confirmed, report.writes_issued);
  EXPECT_GT(report.achieved_writes_per_sec, 0.0);
  EXPECT_GT(report.issue_seconds, 0.0);
  ASSERT_EQ(report.visibility_latency_ms.count(), report.writes_confirmed);
  EXPECT_GT(report.visibility_latency_ms.quantile(0.5), 0.0);
  EXPECT_GE(report.visibility_latency_ms.quantile(0.99),
            report.visibility_latency_ms.quantile(0.5));
}

TEST(ClusterTest, RunLoadValidatesArguments) {
  REQUIRE_LOOPBACK();
  Rng rng(22);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.seconds_per_unit = 0.02;
  LocalCluster cluster(g, cfg);
  cluster.start();
  EXPECT_THROW(cluster.run_load(0, 0.0, 1.0), ConfigError);
  EXPECT_THROW(cluster.run_load(0, 10.0, 0.0), ConfigError);
  cluster.stop();
}

// ----------------------------------------------------------- fault hooks ----
// Live mirror of the simulator's FaultPlan: kill/restart a server (crash
// with state wipe — live state is in-memory only) and drop outbound frames
// through the transport shim. The TSan CI leg runs the crash/restart test
// specifically, so keep its name stable.

TEST(ClusterTest, KillRestartRecoversAcknowledgedWrites) {
  REQUIRE_LOOPBACK();
  Rng rng(31);
  const Graph g = make_ring(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {2.0, 5.0, 3.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("before", "crash");
  ASSERT_TRUE(cluster.wait_for_convergence(10.0));

  cluster.kill(1);
  EXPECT_FALSE(cluster.alive(1));
  // A write acknowledged while the node is down must reach it after the
  // restart all the same.
  cluster.server(0).write("during", "crash");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  cluster.restart(1);
  EXPECT_TRUE(cluster.alive(1));
  // The reborn node starts empty (a live crash is always a wipe) and must
  // anti-entropy both writes back from its peers.
  const bool converged = cluster.wait_for_convergence(15.0, 2);
  const auto before = cluster.server(1).read("before");
  const auto during = cluster.server(1).read("during");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(before, "crash");
  EXPECT_EQ(during, "crash");
}

// ------------------------------------------------------- durable clusters ----
// Crash-consistency over real sockets and a real data directory: a durable
// node killed mid-burst must come back with its pre-crash state from
// checkpoint + WAL and end byte-equal (kv digest) with a surviving peer.

namespace fsys = std::filesystem;

/// Scratch directory in the build tree, wiped on both ends of the test.
struct DurableScratch {
  explicit DurableScratch(const std::string& name)
      : path(fsys::path("net-test-durable-scratch") / name) {
    fsys::remove_all(path);
    fsys::create_directories(path);
  }
  ~DurableScratch() { fsys::remove_all(path); }
  fsys::path path;
};

TEST(ClusterTest, DurableKillRestartRecoversFromDiskMidBurst) {
  REQUIRE_LOOPBACK();
  const DurableScratch scratch("mid-burst");
  Rng rng(33);
  const Graph g = make_line(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {5.0, 2.0, 4.0};
  cfg.durability_dir = scratch.path.string();
  cfg.checkpoint_every = 0;  // pure WAL: recovery must replay every record
  LocalCluster cluster(g, cfg);
  cluster.start();

  // A write burst through the soon-to-die node; kill it mid-stream.
  for (int i = 0; i < 20; ++i) {
    cluster.server(1).write("burst/" + std::to_string(i), "v");
  }
  ASSERT_TRUE(cluster.wait_for_convergence(10.0, 20));
  for (int i = 20; i < 30; ++i) {
    cluster.server(1).write("burst/" + std::to_string(i), "v");
  }
  cluster.kill(1);
  // A write acknowledged elsewhere while the node is down. write() only
  // enqueues — wait until node 0 has applied it, or the convergence check
  // below could be satisfied by a pre-write state that omits it.
  cluster.server(0).write("while-down", "w");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!cluster.server(0).read("while-down").has_value()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  cluster.restart(1, RestartMode::recover);
  const RecoveryInfo& rec = cluster.server(1).recovery_info();
  EXPECT_TRUE(rec.attempted);
  EXPECT_TRUE(rec.recovered_from_disk);
  // Everything durably logged before the kill is back WITHOUT a resync:
  // at minimum the 20 converged writes (the burst tail may or may not have
  // hit the log before the crash — that window is what anti-entropy fills).
  EXPECT_GE(rec.restored_updates, 20u);
  EXPECT_GE(rec.wal_records, 20u);

  // The burst tail was buried in node 1's command queue at kill time and
  // died with it; only updates that reached another replica (or the WAL)
  // can exist afterwards. Converge on what survived and compare digests.
  std::uint64_t survivors = cluster.server(0).summary().total();
  survivors = std::max(survivors, cluster.server(1).summary().total());
  const bool converged = cluster.wait_for_convergence(15.0, survivors);
  const std::uint64_t victim_digest = cluster.server(1).kv_digest();
  const std::uint64_t peer_digest = cluster.server(0).kv_digest();
  const auto recovered = cluster.server(1).read("burst/0");
  const auto while_down = cluster.server(1).read("while-down");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(victim_digest, peer_digest);
  EXPECT_EQ(recovered, "v");
  EXPECT_EQ(while_down, "w");
}

TEST(ClusterTest, RestartModePinsRecoverVersusWipe) {
  // Pins the LocalCluster::restart contract both ways: recover reloads the
  // durable directory, wipe deletes it and comes back empty (the
  // pre-durability behaviour, kept as the full-resync control).
  REQUIRE_LOOPBACK();
  const DurableScratch scratch("restart-mode");
  Rng rng(34);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 2.0};
  cfg.durability_dir = scratch.path.string();
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(1).write("k", "v");
  ASSERT_TRUE(cluster.wait_for_convergence(10.0));

  cluster.kill(1);
  cluster.restart(1, RestartMode::recover);
  EXPECT_TRUE(cluster.server(1).recovery_info().recovered_from_disk);
  EXPECT_EQ(cluster.server(1).recovery_info().restored_updates, 1u);
  EXPECT_EQ(cluster.server(1).read("k"), "v");  // no peer help needed

  cluster.kill(1);
  cluster.restart(1, RestartMode::wipe);
  const RecoveryInfo& wiped = cluster.server(1).recovery_info();
  EXPECT_TRUE(wiped.attempted);
  EXPECT_FALSE(wiped.recovered_from_disk);
  EXPECT_EQ(wiped.restored_updates, 0u);
  // Empty after the wipe, repopulated only by anti-entropy.
  const bool converged = cluster.wait_for_convergence(15.0);
  const auto value = cluster.server(1).read("k");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(value, "v");
}

TEST(ClusterTest, OutboundFaultShimDropsAndRecovers) {
  REQUIRE_LOOPBACK();
  Rng rng(32);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  auto drop_all = std::make_shared<std::atomic<bool>>(true);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 5.0};
  cfg.outbound_fault = [drop_all](NodeId, NodeId) { return drop_all->load(); };
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("k", "v");
  // With every frame dropped on both servers, nothing can spread.
  EXPECT_FALSE(cluster.wait_for_convergence(0.4));
  const NetStats lossy = cluster.server(0).net_stats();
  EXPECT_GT(lossy.frames_dropped, 0u);
  EXPECT_FALSE(cluster.server(1).read("k").has_value());

  drop_all->store(false);  // the network heals
  const bool converged = cluster.wait_for_convergence(10.0);
  const auto value = cluster.server(1).read("k");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(value, "v");
}

// ------------------------------------------------ peer health & jitter ----

// Two servers with different seeds retrying the same dead port must settle
// on different backoff waits: decorrelated jitter decorrelates the retry
// storm a deterministic doubling schedule would synchronize.
TEST(ServerTest, ReconnectBackoffSchedulesDiverge) {
  REQUIRE_LOOPBACK();
  const std::uint16_t dead_port = [] {
    const TcpListener probe = TcpListener::bind_loopback(0);
    return probe.port();
  }();

  auto make_server = [&](NodeId self, std::uint64_t seed) {
    ServerConfig cfg;
    cfg.self = self;
    cfg.protocol = ProtocolConfig::fast();
    cfg.seconds_per_unit = 0.005;
    cfg.reconnect_backoff_min = 0.002;
    cfg.reconnect_backoff_max = 0.5;
    cfg.seed = seed;
    auto server = std::make_unique<ReplicaServer>(std::move(cfg));
    server->set_peers({PeerAddress{9, "127.0.0.1", dead_port}});
    return server;
  };
  const auto a = make_server(0, 1);
  const auto b = make_server(1, 2);
  a->start();
  b->start();

  NetStats na, nb;
  for (int i = 0; i < 400; ++i) {
    a->write("k" + std::to_string(i), "v");
    b->write("k" + std::to_string(i), "v");
    na = a->net_stats();
    nb = b->net_stats();
    if (na.connect_failures >= 4 && nb.connect_failures >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  a->stop();
  b->stop();
  ASSERT_GE(na.connect_failures, 4u);
  ASSERT_GE(nb.connect_failures, 4u);
  ASSERT_EQ(na.peers.size(), 1u);
  ASSERT_EQ(nb.peers.size(), 1u);
  // Both grew past the floor and stayed under the cap...
  EXPECT_GT(na.peers[0].current_backoff_seconds, 0.002);
  EXPECT_GT(nb.peers[0].current_backoff_seconds, 0.002);
  EXPECT_LE(na.peers[0].current_backoff_seconds, 0.5);
  EXPECT_LE(nb.peers[0].current_backoff_seconds, 0.5);
  // ...but on different schedules: each draw is uniform over a widening
  // interval from a per-server seeded stream, so two servers agreeing to
  // the last bit would need a 1-in-2^52 collision.
  EXPECT_NE(na.peers[0].current_backoff_seconds,
            nb.peers[0].current_backoff_seconds);
}

// Graceful stop writes a final checkpoint, so the next start recovers from
// the checkpoint alone: zero WAL records to replay (satellite pin for the
// clean-shutdown path; LocalCluster::kill keeps exercising real replay).
TEST(ServerTest, GracefulStopRecoversWithZeroWalReplay) {
  REQUIRE_LOOPBACK();
  const DurableScratch scratch("graceful-stop");
  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.005;
  cfg.durability.dir = (scratch.path / "node-0").string();
  cfg.durability.checkpoint_every = 1000;  // far beyond this test's writes

  {
    ReplicaServer server(cfg);
    server.start();
    for (int i = 0; i < 20; ++i) {
      server.write("k" + std::to_string(i), "v" + std::to_string(i));
    }
    // Wait until the writes are applied (and thus WAL-bound).
    for (int i = 0; i < 400 && !server.read("k19").has_value(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(server.read("k19").has_value());
    server.stop();  // graceful: flush + final checkpoint
  }

  ReplicaServer reborn(cfg);
  reborn.start();
  const RecoveryInfo& rec = reborn.recovery_info();
  EXPECT_TRUE(rec.recovered_from_disk);
  EXPECT_TRUE(rec.had_checkpoint);
  EXPECT_EQ(rec.wal_records, 0u);  // the checkpoint already covers everything
  EXPECT_EQ(rec.restored_updates, 20u);
  EXPECT_EQ(reborn.read("k7"), "v7");
  reborn.stop();
}

// Live health lifecycle: kill -> peers mark the node suspect then down ->
// restart -> first contact re-promotes it and demand pushes resume.
TEST(ClusterTest, KilledPeerTurnsSuspectAndRepromotesOnRestart) {
  REQUIRE_LOOPBACK();
  Rng rng(35);
  const Graph g = make_ring(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.25;
  cfg.protocol.health.enabled = true;
  cfg.seconds_per_unit = 0.005;
  cfg.demands = {1.0, 2.0, 50.0};  // node 2 is everyone's push target
  LocalCluster cluster(g, cfg);
  cluster.start();
  ASSERT_TRUE(cluster.wait_for_peer_health(10.0));

  cluster.kill(2);
  // Node 0 must degrade its view of peer 2 on silence alone (suspect at
  // 1.5 units = 7.5ms here, down at 4). Poll health introspection, not
  // sleeps.
  PeerHealth seen = PeerHealth::up;
  for (int i = 0; i < 2000 && seen != PeerHealth::down; ++i) {
    for (const PeerNetStats& peer : cluster.server(0).net_stats().peers) {
      if (peer.peer == 2 && peer.health > seen) {
        seen = peer.health;
        if (seen >= PeerHealth::suspect) {
          EXPECT_GT(peer.health_suspect_since_units, 0.0);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(seen, PeerHealth::down);

  cluster.restart(2);
  // Health introspection replaces fixed post-restart sleeps: the advert
  // channel is not health-gated, so the reborn node's first advert
  // re-promotes it everywhere.
  EXPECT_TRUE(cluster.wait_for_peer_health(10.0));
  EXPECT_TRUE(cluster.all_peers_up());

  // Demand pushes resume toward the re-promoted peer: a fresh write must
  // reach node 2 again.
  cluster.server(0).write("after-revival", "yes");
  const bool converged = cluster.wait_for_convergence(10.0);
  const auto read_back = cluster.server(2).read("after-revival");
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_EQ(read_back, "yes");
}

// SIGTERM against a real durable fastconsd process must shut down
// gracefully: exit 0, WAL flushed, final checkpoint written — so the next
// start replays zero WAL records (the satellite-2 end-to-end pin; the
// in-process half is GracefulStopRecoversWithZeroWalReplay above).
#ifdef FASTCONS_FASTCONSD_BIN
TEST(DaemonTest, SigtermShutsDownGracefullyWithFinalCheckpoint) {
  REQUIRE_LOOPBACK();
  const DurableScratch scratch("fastconsd-sigterm");
  const std::string data_dir = (scratch.path / "node-0").string();
  const std::string port = [] {
    const TcpListener probe = TcpListener::bind_loopback(0);
    return std::to_string(probe.port());
  }();

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: a writing durable daemon that would run for a minute if the
    // signal did not stop it first.
    execl(FASTCONS_FASTCONSD_BIN, FASTCONS_FASTCONSD_BIN, "--id", "0",
          "--port", port.c_str(), "--data-dir", data_dir.c_str(),
          "--period-ms", "50", "--run-seconds", "60", "--write", "stable=yes",
          "--write", "k2=v2", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // Wait until the daemon has applied its startup writes to disk: the WAL
  // file appears once the first record is group-committed.
  const fsys::path wal = fsys::path(data_dir) / "wal.log";
  bool wal_written = false;
  for (int i = 0; i < 1000; ++i) {
    std::error_code ec;
    if (fsys::exists(wal, ec) && fsys::file_size(wal, ec) > 0) {
      wal_written = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(wal_written) << "daemon never wrote its WAL";

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Recover in-process from the daemon's directory: the final checkpoint
  // must cover everything, leaving nothing in the WAL to replay.
  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.005;
  cfg.durability.dir = data_dir;
  ReplicaServer reborn(std::move(cfg));
  reborn.start();
  const RecoveryInfo& rec = reborn.recovery_info();
  EXPECT_TRUE(rec.recovered_from_disk);
  EXPECT_TRUE(rec.had_checkpoint);
  EXPECT_EQ(rec.wal_records, 0u);
  EXPECT_EQ(reborn.read("stable"), "yes");
  EXPECT_EQ(reborn.read("k2"), "v2");
  reborn.stop();
}
#endif  // FASTCONS_FASTCONSD_BIN

// A short chaos soak is part of tier-1: seeded nemesis over a durable
// cluster with continuous invariant checks (net/soak.hpp). CI runs the
// long version via fastcons_soak; this pins the harness itself.
TEST(SoakTest, ShortSoakPassesAllInvariants) {
  REQUIRE_LOOPBACK();
  const DurableScratch scratch("soak-smoke");
  SoakConfig config;
  config.nodes = 4;
  config.seed = 11;
  config.duration_seconds = 1.5;
  config.seconds_per_unit = 0.01;
  config.write_rate = 40.0;
  config.nemesis_period_seconds = 0.2;
  config.data_dir = scratch.path.string();
  config.quiesce_timeout_seconds = 20.0;
  const SoakReport report = run_soak(config);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << "soak violation: " << violation;
  }
  EXPECT_TRUE(report.all_peers_up);
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.digests_agree);
  EXPECT_GT(report.writes_issued, 0u);
  EXPECT_GT(report.checks, 0u);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace fastcons
