// Real-socket integration tests. Environments without loopback networking
// skip gracefully (GTEST_SKIP on bind failure).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/cluster.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

bool loopback_available() {
  try {
    const TcpListener listener = TcpListener::bind_loopback(0);
    return listener.valid();
  } catch (const TransportError&) {
    return false;
  }
}

#define REQUIRE_LOOPBACK()                                     \
  do {                                                          \
    if (!loopback_available()) {                                \
      GTEST_SKIP() << "loopback networking unavailable";        \
    }                                                           \
  } while (0)

TEST(SocketTest, ListenerGetsEphemeralPort) {
  REQUIRE_LOOPBACK();
  const TcpListener a = TcpListener::bind_loopback(0);
  const TcpListener b = TcpListener::bind_loopback(0);
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(SocketTest, ConnectSendReceive) {
  REQUIRE_LOOPBACK();
  TcpListener listener = TcpListener::bind_loopback(0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.port());
  // Accept may need a moment for the non-blocking handshake.
  std::optional<TcpConnection> serverside;
  for (int i = 0; i < 100 && !serverside; ++i) {
    serverside = listener.accept();
    if (!serverside) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(serverside.has_value());
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  // Flush until the kernel accepts everything.
  for (int i = 0; i < 100 && client.send(payload) == IoStatus::would_block;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::vector<std::uint8_t> received;
  for (int i = 0; i < 200 && received.size() < payload.size(); ++i) {
    serverside->read_available(received);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received, payload);
}

TEST(SocketTest, InvalidAddressThrows) {
  REQUIRE_LOOPBACK();
  EXPECT_THROW(TcpConnection::connect("not-an-ip", 1234), TransportError);
}

TEST(SocketTest, WakePipeWakesAndDrains) {
  WakePipe pipe;
  pipe.wake();
  pipe.wake();
  std::uint8_t buf[8];
  // After draining, the read end is empty (non-blocking read returns <= 0).
  pipe.drain();
  EXPECT_LE(::read(pipe.read_fd(), buf, sizeof(buf)), 0);
}

TEST(ServerTest, LocalWriteIsReadable) {
  REQUIRE_LOOPBACK();
  ServerConfig cfg;
  cfg.self = 0;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  ReplicaServer server(std::move(cfg));
  server.start();
  server.write("city", "tokyo");
  std::optional<std::string> value;
  for (int i = 0; i < 200 && !value; ++i) {
    value = server.read("city");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "tokyo");
}

TEST(ServerTest, TwoServersSyncViaSessions) {
  REQUIRE_LOOPBACK();
  Rng rng(1);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 5.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("k", "v");
  const bool converged = cluster.wait_for_convergence(10.0);
  const auto value = cluster.server(1).read("k");
  cluster.stop();
  ASSERT_TRUE(converged);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "v");
}

TEST(ServerTest, FiveNodeClusterConvergesWithMultipleWriters) {
  REQUIRE_LOOPBACK();
  Rng rng(2);
  const Graph g = make_ring(5, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {4.0, 6.0, 3.0, 8.0, 7.0};
  cfg.seed = 3;
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("a", "1");
  cluster.server(2).write("b", "2");
  cluster.server(4).write("c", "3");
  const bool converged = cluster.wait_for_convergence(15.0, 3);
  std::vector<std::optional<std::string>> values;
  for (NodeId n = 0; n < 5; ++n) values.push_back(cluster.server(n).read("a"));
  cluster.stop();
  ASSERT_TRUE(converged);
  for (NodeId n = 0; n < 5; ++n) {
    ASSERT_TRUE(values[n].has_value()) << "node " << n;
    EXPECT_EQ(*values[n], "1");
  }
}

TEST(ServerTest, FastPushBeatsSessionsToHighDemandPeer) {
  REQUIRE_LOOPBACK();
  // Writer with one very-high-demand neighbour: the fast push should land
  // well before the first session period elapses.
  Rng rng(3);
  const Graph g = make_line(2, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.session_period = 1.0;
  cfg.seconds_per_unit = 0.5;  // one session = 500ms of wall clock
  cfg.demands = {1.0, 100.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  // Give adverts a moment to prime the demand tables.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto started = std::chrono::steady_clock::now();
  cluster.server(0).write("hot", "content");
  std::optional<std::string> value;
  while (!value &&
         std::chrono::steady_clock::now() - started < std::chrono::seconds(5)) {
    value = cluster.server(1).read("hot");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const auto stats = cluster.server(0).stats();
  cluster.stop();
  ASSERT_TRUE(value.has_value());
  EXPECT_GE(stats.offers_sent, 1u);
  // Arrived via push (milliseconds), not via a session (>= ~250ms).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            250);
}

TEST(ServerTest, SurvivesPeerRestart) {
  REQUIRE_LOOPBACK();
  // Peer goes away mid-run; the survivor keeps running and re-syncs when a
  // new peer appears at the same port... (we approximate by stopping and
  // asserting the survivor stays healthy and writable).
  ServerConfig a_cfg;
  a_cfg.self = 0;
  a_cfg.protocol = ProtocolConfig::fast();
  a_cfg.seconds_per_unit = 0.02;
  ReplicaServer a(std::move(a_cfg));

  ServerConfig b_cfg;
  b_cfg.self = 1;
  b_cfg.protocol = ProtocolConfig::fast();
  b_cfg.seconds_per_unit = 0.02;
  auto b = std::make_unique<ReplicaServer>(std::move(b_cfg));

  a.set_peers({PeerAddress{1, "127.0.0.1", b->port()}});
  b->set_peers({PeerAddress{0, "127.0.0.1", a.port()}});
  a.start();
  b->start();
  a.write("k1", "v1");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  b->stop();
  b.reset();  // peer gone: sends now fail, server must tolerate it
  a.write("k2", "v2");
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(a.read("k2"), "v2");
  EXPECT_TRUE(a.running());
  a.stop();
}

TEST(ClusterTest, DemandVectorSizeValidated) {
  REQUIRE_LOOPBACK();
  Rng rng(4);
  const Graph g = make_line(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.demands = {1.0};  // wrong size
  EXPECT_THROW(LocalCluster(g, cfg), ConfigError);
}

}  // namespace
}  // namespace fastcons
