// Step-by-step protocol tests: two or three ReplicaEngines driven by hand,
// with every message routed manually so each paper step is observable.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

namespace fastcons {
namespace {

ProtocolConfig fast_config() {
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;  // drive adverts manually in these tests
  return cfg;
}

/// Tiny synchronous router: repeatedly delivers queued messages until no
/// engine has anything left to say. Zero latency, deterministic order.
class Router {
 public:
  void add(ReplicaEngine* engine) { engines_[engine->self()] = engine; }

  void enqueue(NodeId from, std::vector<Outbound> msgs) {
    for (Outbound& m : msgs) queue_.push_back({from, std::move(m)});
  }

  /// Delivers everything; returns the number of messages routed.
  std::size_t drain(SimTime now) {
    std::size_t count = 0;
    while (!queue_.empty()) {
      auto [from, out] = std::move(queue_.front());
      queue_.pop_front();
      ++count;
      auto it = engines_.find(out.to);
      EXPECT_TRUE(it != engines_.end()) << "message to unknown node " << out.to;
      if (it == engines_.end()) continue;
      enqueue(out.to, it->second->handle(from, out.msg, now));
    }
    return count;
  }

  std::size_t pending() const { return queue_.size(); }

  /// Drops every queued message (partition simulation).
  void drop_all() { queue_.clear(); }

 private:
  std::map<NodeId, ReplicaEngine*> engines_;
  std::deque<std::pair<NodeId, Outbound>> queue_;
};

TEST(EngineTest, LocalWriteAppliesImmediately) {
  ReplicaEngine e(0, {}, fast_config(), 1);
  const auto out = e.local_write("k", "v", 0.0);
  EXPECT_TRUE(out.empty());  // no neighbours to push to
  EXPECT_EQ(e.read("k"), "v");
  EXPECT_TRUE(e.summary().contains(UpdateId{0, 1}));
  EXPECT_EQ(e.stats().updates_applied, 1u);
}

TEST(EngineTest, LocalWritesNumberSequentially) {
  ReplicaEngine e(5, {}, fast_config(), 1);
  e.local_write("a", "1", 0.0);
  e.local_write("b", "2", 0.0);
  EXPECT_TRUE(e.summary().contains(UpdateId{5, 1}));
  EXPECT_TRUE(e.summary().contains(UpdateId{5, 2}));
  EXPECT_EQ(e.summary().watermark(5), 2u);
}

TEST(EngineTest, FullSessionHandshakeConverges) {
  // Steps 1-12 between two engines, message by message.
  ProtocolConfig cfg = fast_config();
  cfg.fast_push = false;
  ReplicaEngine e(0, {1}, cfg, 1);  // initiator ("E" in the paper)
  ReplicaEngine b(1, {0}, cfg, 2);  // responder ("B")
  e.prime_neighbour_demand(1, 6.0, 0.0);
  b.prime_neighbour_demand(0, 7.0, 0.0);
  e.local_write("x", "from-e", 0.0);
  b.local_write("y", "from-b", 0.0);

  // Step 1-2: E selects B and requests a session.
  auto out = e.on_session_timer(0.1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1u);
  ASSERT_TRUE(std::holds_alternative<SessionRequest>(out[0].msg));

  // Step 3-4: B answers with its summary vector.
  auto reply = b.handle(0, out[0].msg, 0.1);
  ASSERT_EQ(reply.size(), 1u);
  ASSERT_TRUE(std::holds_alternative<SessionSummary>(reply[0].msg));

  // Steps 5-8: E sends its summary plus what B lacks.
  auto push = e.handle(1, reply[0].msg, 0.1);
  ASSERT_EQ(push.size(), 1u);
  const auto& push_msg = std::get<SessionPush>(push[0].msg);
  ASSERT_EQ(push_msg.updates.size(), 1u);
  EXPECT_EQ(push_msg.updates[0].id, (UpdateId{0, 1}));

  // Steps 9-12: B applies, replies with what E lacks.
  auto back = b.handle(0, push[0].msg, 0.1);
  ASSERT_EQ(back.size(), 1u);
  const auto& reply_msg = std::get<SessionReply>(back[0].msg);
  ASSERT_EQ(reply_msg.updates.size(), 1u);
  EXPECT_EQ(reply_msg.updates[0].id, (UpdateId{1, 1}));

  auto done = e.handle(1, back[0].msg, 0.1);
  EXPECT_TRUE(done.empty());

  // "At the end of the session both servers will have the same mutually
  // consistent content."
  EXPECT_EQ(e.summary(), b.summary());
  EXPECT_EQ(e.read("y"), "from-b");
  EXPECT_EQ(b.read("x"), "from-e");
  EXPECT_EQ(e.stats().sessions_completed, 1u);
  EXPECT_EQ(b.stats().sessions_responded, 1u);
  EXPECT_EQ(e.inflight_sessions(), 0u);
}

TEST(EngineTest, SessionTimerWithoutNeighboursIsNoop) {
  ReplicaEngine e(0, {}, fast_config(), 1);
  EXPECT_TRUE(e.on_session_timer(1.0).empty());
  EXPECT_EQ(e.stats().sessions_initiated, 0u);
}

TEST(EngineTest, StaleSessionSummaryIgnored) {
  ReplicaEngine e(0, {1}, fast_config(), 1);
  e.prime_neighbour_demand(1, 1.0, 0.0);
  // A summary for a session we never started must be dropped.
  const auto out = e.handle(1, SessionSummary{0xdead, SummaryVector{}}, 0.0);
  EXPECT_TRUE(out.empty());
}

TEST(EngineTest, SessionSummaryFromWrongPeerIgnored) {
  ReplicaEngine e(0, {1, 2}, fast_config(), 1);
  e.prime_neighbour_demand(1, 2.0, 0.0);
  e.prime_neighbour_demand(2, 1.0, 0.0);
  auto out = e.on_session_timer(0.0);
  ASSERT_EQ(out.size(), 1u);
  const auto session_id = std::get<SessionRequest>(out[0].msg).session_id;
  // Peer 2 tries to hijack peer 1's session.
  EXPECT_TRUE(e.handle(2, SessionSummary{session_id, SummaryVector{}}, 0.0)
                  .empty());
}

TEST(EngineTest, SessionExpiresAfterTimeout) {
  ProtocolConfig cfg = fast_config();
  cfg.session_timeout = 0.5;
  ReplicaEngine e(0, {1}, cfg, 1);
  e.prime_neighbour_demand(1, 1.0, 0.0);
  e.on_session_timer(0.0);
  EXPECT_EQ(e.inflight_sessions(), 1u);
  e.expire_inflight(1.0);
  EXPECT_EQ(e.inflight_sessions(), 0u);
  EXPECT_EQ(e.stats().sessions_expired, 1u);
  // A very late summary is now ignored.
  EXPECT_TRUE(e.handle(1, SessionSummary{(0ull << 32) | 1, SummaryVector{}}, 1.0)
                  .empty());
}

TEST(EngineTest, FastPushTargetsHigherDemandNeighbour) {
  // Paper steps 13-18: B(6) gains an update and must offer it to D(8),
  // not to C(3).
  ReplicaEngine b(1, {2 /*C*/, 3 /*D*/}, fast_config(), 1);
  b.set_own_demand(6.0);
  b.prime_neighbour_demand(2, 3.0, 0.0);
  b.prime_neighbour_demand(3, 8.0, 0.0);
  const auto out = b.local_write("k", "v", 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 3u);
  const auto& offer = std::get<FastOffer>(out[0].msg);
  ASSERT_EQ(offer.offered.size(), 1u);
  EXPECT_EQ(offer.offered[0].id, (UpdateId{1, 1}));
  EXPECT_EQ(b.stats().offers_sent, 1u);
}

TEST(EngineTest, GradientRuleStopsAtLocalMaximum) {
  // A node whose neighbours all have lower demand must not push (it is the
  // bottom of the demand valley).
  ReplicaEngine d(3, {1, 2}, fast_config(), 1);
  d.set_own_demand(8.0);
  d.prime_neighbour_demand(1, 6.0, 0.0);
  d.prime_neighbour_demand(2, 3.0, 0.0);
  EXPECT_TRUE(d.local_write("k", "v", 0.0).empty());
}

TEST(EngineTest, EqualDemandDegeneratesToWeak) {
  // "The worst case would be when all the replicas possess the same demand;
  // in such a situation the algorithm behaves like a normal weak
  // consistency algorithm" — no pushes at all.
  ReplicaEngine e(0, {1, 2}, fast_config(), 1);
  e.set_own_demand(5.0);
  e.prime_neighbour_demand(1, 5.0, 0.0);
  e.prime_neighbour_demand(2, 5.0, 0.0);
  EXPECT_TRUE(e.local_write("k", "v", 0.0).empty());
}

TEST(EngineTest, UnconstrainedRulePushesDownhillToo) {
  ProtocolConfig cfg = fast_config();
  cfg.push_rule = FastPushRule::unconstrained;
  ReplicaEngine d(3, {2}, cfg, 1);
  d.set_own_demand(8.0);
  d.prime_neighbour_demand(2, 3.0, 0.0);
  EXPECT_EQ(d.local_write("k", "v", 0.0).size(), 1u);
}

TEST(EngineTest, FastOfferAnsweredYesWhenMissing) {
  ReplicaEngine d(3, {1}, fast_config(), 1);
  FastOffer offer{7, {OfferedId{UpdateId{0, 1}, 0.0}}};
  const auto out = d.handle(1, Message{offer}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<FastAck>(out[0].msg);
  EXPECT_TRUE(ack.yes);  // step 15: "If D does not have the messages, YES"
  EXPECT_TRUE(ack.wanted.empty());  // yes_no mode carries no id list
  EXPECT_EQ(d.stats().offers_accepted, 1u);
}

TEST(EngineTest, FastOfferAnsweredNoWhenAlreadyKnown) {
  ReplicaEngine d(3, {1}, fast_config(), 1);
  d.set_own_demand(1.0);
  d.handle(1, Message{FastData{1, {Update{UpdateId{0, 1}, 0.0, "k", "v"}}}},
           0.0);
  FastOffer offer{7, {OfferedId{UpdateId{0, 1}, 0.0}}};
  const auto out = d.handle(1, Message{offer}, 0.0);
  const auto& ack = std::get<FastAck>(out[0].msg);
  EXPECT_FALSE(ack.yes);  // "Else answer with NO."
  EXPECT_EQ(d.stats().offers_declined, 1u);
}

TEST(EngineTest, SubsetAckListsExactlyMissingIds) {
  ProtocolConfig cfg = fast_config();
  cfg.ack_mode = FastAckMode::subset;
  ReplicaEngine d(3, {1}, cfg, 1);
  d.handle(1, Message{FastData{1, {Update{UpdateId{0, 1}, 0.0, "k", "v"}}}},
           0.0);
  FastOffer offer{7, {OfferedId{UpdateId{0, 1}, 0.0},
                      OfferedId{UpdateId{0, 2}, 0.0}}};
  const auto out = d.handle(1, Message{offer}, 0.0);
  const auto& ack = std::get<FastAck>(out[0].msg);
  EXPECT_TRUE(ack.yes);
  EXPECT_EQ(ack.wanted, (std::vector<UpdateId>{UpdateId{0, 2}}));
}

TEST(EngineTest, FullFastExchangeDeliversPayload) {
  Router router;
  ReplicaEngine b(1, {3}, fast_config(), 1);
  ReplicaEngine d(3, {1}, fast_config(), 2);
  router.add(&b);
  router.add(&d);
  b.set_own_demand(6.0);
  d.set_own_demand(8.0);
  b.prime_neighbour_demand(3, 8.0, 0.0);
  d.prime_neighbour_demand(1, 6.0, 0.0);
  router.enqueue(1, b.local_write("k", "v", 0.0));
  router.drain(0.0);
  EXPECT_EQ(d.read("k"), "v");
  EXPECT_EQ(d.stats().updates_applied, 1u);
  EXPECT_EQ(b.inflight_offers(), 0u);
}

TEST(EngineTest, FastChainFollowsDemandGradient) {
  // Line A(2) - B(4) - C(9): a write at A must chain A->B->C through two
  // offers, flooding the valley at C.
  Router router;
  ProtocolConfig cfg = fast_config();
  ReplicaEngine a(0, {1}, cfg, 1);
  ReplicaEngine b(1, {0, 2}, cfg, 2);
  ReplicaEngine c(2, {1}, cfg, 3);
  router.add(&a);
  router.add(&b);
  router.add(&c);
  a.set_own_demand(2.0);
  b.set_own_demand(4.0);
  c.set_own_demand(9.0);
  a.prime_neighbour_demand(1, 4.0, 0.0);
  b.prime_neighbour_demand(0, 2.0, 0.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  c.prime_neighbour_demand(1, 4.0, 0.0);
  router.enqueue(0, a.local_write("k", "v", 0.0));
  router.drain(0.0);
  EXPECT_EQ(b.read("k"), "v");
  EXPECT_EQ(c.read("k"), "v");
}

TEST(EngineTest, NoOfferLoopsBetweenPeers) {
  // After a full exchange both peers know the other has the update; no
  // message may circulate forever.
  Router router;
  ReplicaEngine a(0, {1}, fast_config(), 1);
  ReplicaEngine b(1, {0}, fast_config(), 2);
  router.add(&a);
  router.add(&b);
  a.set_own_demand(1.0);
  b.set_own_demand(2.0);
  a.prime_neighbour_demand(1, 2.0, 0.0);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  router.enqueue(0, a.local_write("k", "v", 0.0));
  const std::size_t routed = router.drain(0.0);
  // offer + ack + data and nothing more.
  EXPECT_EQ(routed, 3u);
}

TEST(EngineTest, RepeatedGainDoesNotReofferToKnowingPeer) {
  ReplicaEngine b(1, {3}, fast_config(), 1);
  b.set_own_demand(6.0);
  b.prime_neighbour_demand(3, 8.0, 0.0);
  const auto first = b.local_write("k", "v1", 0.0);
  ASSERT_EQ(first.size(), 1u);
  // D declines: it already has the update (e.g. via another path).
  const auto offer_id = std::get<FastOffer>(first[0].msg).offer_id;
  b.handle(3, Message{FastAck{offer_id, false, {}}}, 0.0);
  // B writes something new: the new offer must contain only the new id.
  const auto second = b.local_write("k", "v2", 0.0);
  ASSERT_EQ(second.size(), 1u);
  const auto& offer = std::get<FastOffer>(second[0].msg);
  ASSERT_EQ(offer.offered.size(), 1u);
  EXPECT_EQ(offer.offered[0].id, (UpdateId{1, 2}));
}

TEST(EngineTest, FanoutTwoOffersToTwoValleys) {
  ProtocolConfig cfg = fast_config();
  cfg.fast_fanout = 2;
  ReplicaEngine b(1, {2, 3, 4}, cfg, 1);
  b.set_own_demand(5.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  b.prime_neighbour_demand(3, 7.0, 0.0);
  b.prime_neighbour_demand(4, 1.0, 0.0);  // below own demand: ineligible
  const auto out = b.local_write("k", "v", 0.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, 2u);
  EXPECT_EQ(out[1].to, 3u);
}

TEST(EngineTest, PushOnAnyGainDisabledSuppressesSessionPushes) {
  ProtocolConfig cfg = fast_config();
  cfg.push_on_any_gain = false;
  ReplicaEngine b(1, {2, 3}, cfg, 1);
  b.set_own_demand(5.0);
  b.prime_neighbour_demand(2, 9.0, 0.0);
  b.prime_neighbour_demand(3, 7.0, 0.0);
  // Updates arriving via fast data do NOT re-push in this ablation...
  const auto out = b.handle(
      3, Message{FastData{1, {Update{UpdateId{0, 1}, 0.0, "k", "v"}}}}, 0.0);
  EXPECT_TRUE(out.empty());
  // ...but local writes still do.
  EXPECT_FALSE(b.local_write("k2", "v2", 0.0).empty());
}

TEST(EngineTest, DisabledFastPushNeverOffers) {
  ProtocolConfig cfg = ProtocolConfig::weak();
  cfg.advert_period = 0.0;
  ReplicaEngine b(1, {2}, cfg, 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(2, 100.0, 0.0);
  EXPECT_TRUE(b.local_write("k", "v", 0.0).empty());
}

TEST(EngineTest, AdvertTimerBroadcastsOwnDemand) {
  ReplicaEngine b(1, {2, 3}, fast_config(), 1);
  b.set_own_demand(42.0);
  const auto out = b.on_advert_timer(0.0);
  ASSERT_EQ(out.size(), 2u);
  for (const Outbound& o : out) {
    EXPECT_DOUBLE_EQ(std::get<DemandAdvert>(o.msg).demand, 42.0);
  }
}

TEST(EngineTest, AdvertUpdatesNeighbourTable) {
  ReplicaEngine b(1, {2}, fast_config(), 1);
  b.handle(2, Message{DemandAdvert{17.0}}, 1.0);
  EXPECT_EQ(b.demand_table().demand_of(2), 17.0);
}

TEST(EngineTest, AnyMessageRefreshesLiveness) {
  ProtocolConfig cfg = fast_config();
  cfg.liveness_window = 1.0;
  ReplicaEngine b(1, {2}, cfg, 1);
  b.prime_neighbour_demand(2, 5.0, 0.0);
  EXPECT_FALSE(b.demand_table().is_alive(2, 5.0));
  b.handle(2, Message{SessionRequest{99}}, 5.0);
  EXPECT_TRUE(b.demand_table().is_alive(2, 5.5));
}

TEST(EngineTest, AdvertTimerSkipsDeadNeighboursButProbesOne) {
  ProtocolConfig cfg = fast_config();
  cfg.liveness_window = 1.0;
  ReplicaEngine b(1, {2, 3, 4}, cfg, 1);
  b.set_own_demand(42.0);
  b.prime_neighbour_demand(2, 5.0, 0.0);
  b.prime_neighbour_demand(3, 5.0, 0.0);
  b.prime_neighbour_demand(4, 5.0, 0.0);
  // Node 2 spoke recently; nodes 3 and 4 have been silent past the window.
  b.handle(2, Message{DemandAdvert{5.0}}, 4.5);
  const auto out = b.on_advert_timer(5.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, 2u);
  EXPECT_EQ(out[1].to, 3u);  // one dead neighbour probed for revival
  EXPECT_EQ(b.stats().adverts_skipped_dead, 1u);
  EXPECT_EQ(b.stats().adverts_probed_dead, 1u);
  // The next tick rotates the probe to the other dead neighbour, so a
  // silent peer is never starved of the traffic that could revive it.
  const auto next = b.on_advert_timer(5.1);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[1].to, 4u);
  EXPECT_EQ(b.stats().adverts_skipped_dead, 2u);
}

TEST(EngineTest, AdvertTimerWithoutLivenessBroadcastsToAll) {
  ReplicaEngine b(1, {2, 3}, fast_config(), 1);  // liveness disabled
  EXPECT_EQ(b.on_advert_timer(100.0).size(), 2u);
  EXPECT_EQ(b.stats().adverts_skipped_dead, 0u);
}

TEST(EngineTest, OverlayNeighbourBecomesEligibleTarget) {
  ReplicaEngine b(1, {}, fast_config(), 1);
  b.set_own_demand(2.0);
  b.add_overlay_neighbour(9, 0.0);
  b.prime_neighbour_demand(9, 50.0, 0.0);
  const auto out = b.local_write("k", "v", 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 9u);
}

TEST(EngineTest, DeliveryHookFiresOncePerUpdate) {
  ReplicaEngine b(1, {2}, fast_config(), 1);
  int deliveries = 0;
  DeliveryPath last_path{};
  EngineHooks hooks;
  hooks.on_delivery = [&](const Update&, DeliveryPath path, SimTime) {
    ++deliveries;
    last_path = path;
  };
  b.set_hooks(std::move(hooks));
  const Update u{UpdateId{0, 1}, 0.0, "k", "v"};
  b.handle(2, Message{FastData{1, {u}}}, 0.0);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(last_path, DeliveryPath::fast_push);
  b.handle(2, Message{FastData{2, {u}}}, 0.0);  // duplicate
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(b.stats().duplicate_updates, 1u);
}

TEST(EngineTest, CountersTrackClassesAndBytes) {
  ReplicaEngine b(1, {3}, fast_config(), 1);
  b.set_own_demand(1.0);
  b.prime_neighbour_demand(3, 9.0, 0.0);
  b.local_write("k", "v", 0.0);
  EXPECT_EQ(b.counters().messages(TrafficClass::fast_control), 1u);
  EXPECT_GT(b.counters().bytes(TrafficClass::fast_control), 0u);
  b.on_advert_timer(0.0);
  EXPECT_EQ(b.counters().messages(TrafficClass::demand_advert), 1u);
}

TEST(EngineTest, PresetConfigsMatchTheThreeAlgorithms) {
  const ProtocolConfig weak = ProtocolConfig::weak();
  EXPECT_EQ(weak.selection, PartnerSelection::uniform_random);
  EXPECT_FALSE(weak.fast_push);
  const ProtocolConfig mid = ProtocolConfig::demand_order_only();
  EXPECT_EQ(mid.selection, PartnerSelection::demand_dynamic);
  EXPECT_FALSE(mid.fast_push);
  const ProtocolConfig fast = ProtocolConfig::fast();
  EXPECT_EQ(fast.selection, PartnerSelection::demand_dynamic);
  EXPECT_TRUE(fast.fast_push);
  EXPECT_EQ(fast.fast_fanout, 1u);  // paper: one neighbour per push
  EXPECT_EQ(fast.ack_mode, FastAckMode::yes_no);
  EXPECT_EQ(fast.push_rule, FastPushRule::gradient);
  EXPECT_TRUE(fast.push_on_any_gain);
  EXPECT_FALSE(fast.auto_truncate);
}

TEST(EngineTest, SelectionNamesAreDistinct) {
  EXPECT_NE(selection_name(PartnerSelection::uniform_random),
            selection_name(PartnerSelection::demand_static));
  EXPECT_NE(selection_name(PartnerSelection::demand_static),
            selection_name(PartnerSelection::demand_dynamic));
}

TEST(EngineTest, DeliveryPathNamesAreDistinct) {
  EXPECT_NE(delivery_path_name(DeliveryPath::local_write),
            delivery_path_name(DeliveryPath::session));
  EXPECT_NE(delivery_path_name(DeliveryPath::session),
            delivery_path_name(DeliveryPath::fast_push));
}

TEST(EngineTest, SessionCarriesMultipleUpdatesBothWays) {
  ProtocolConfig cfg = fast_config();
  cfg.fast_push = false;
  ReplicaEngine a(0, {1}, cfg, 1);
  ReplicaEngine b(1, {0}, cfg, 2);
  a.prime_neighbour_demand(1, 1.0, 0.0);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  for (int i = 0; i < 5; ++i) {
    a.local_write("a" + std::to_string(i), "x", 0.0);
    b.local_write("b" + std::to_string(i), "y", 0.0);
  }
  auto m1 = a.on_session_timer(0.1);
  auto m2 = b.handle(0, m1[0].msg, 0.1);
  auto m3 = a.handle(1, m2[0].msg, 0.1);
  EXPECT_EQ(std::get<SessionPush>(m3[0].msg).updates.size(), 5u);
  auto m4 = b.handle(0, m3[0].msg, 0.1);
  EXPECT_EQ(std::get<SessionReply>(m4[0].msg).updates.size(), 5u);
  a.handle(1, m4[0].msg, 0.1);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.summary().total(), 10u);
}

TEST(EngineTest, MessageNamesAndClasses) {
  EXPECT_EQ(message_name(Message{SessionRequest{}}), "SessionRequest");
  EXPECT_EQ(message_name(Message{FastData{}}), "FastData");
  EXPECT_EQ(traffic_class_of(Message{DemandAdvert{}}),
            TrafficClass::demand_advert);
  EXPECT_EQ(traffic_class_of(Message{FastOffer{}}),
            TrafficClass::fast_control);
  EXPECT_GT(estimated_wire_size(Message{SessionRequest{}}), 0u);
}

}  // namespace
}  // namespace fastcons
