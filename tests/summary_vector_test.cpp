#include "replication/summary_vector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fastcons {
namespace {

UpdateId id(NodeId origin, SeqNo seq) { return UpdateId{origin, seq}; }

TEST(SummaryVectorTest, EmptyContainsNothing) {
  SummaryVector sv;
  EXPECT_FALSE(sv.contains(id(0, 1)));
  EXPECT_EQ(sv.total(), 0u);
  EXPECT_EQ(sv.watermark(0), 0u);
}

TEST(SummaryVectorTest, ContiguousAddsRaiseWatermark) {
  SummaryVector sv;
  sv.add(id(3, 1));
  sv.add(id(3, 2));
  sv.add(id(3, 3));
  EXPECT_EQ(sv.watermark(3), 3u);
  EXPECT_TRUE(sv.extras().empty());
  EXPECT_EQ(sv.total(), 3u);
}

TEST(SummaryVectorTest, OutOfOrderAddsGoToExtras) {
  SummaryVector sv;
  sv.add(id(1, 5));  // gap: 1..4 unseen
  EXPECT_EQ(sv.watermark(1), 0u);
  EXPECT_TRUE(sv.contains(id(1, 5)));
  EXPECT_FALSE(sv.contains(id(1, 4)));
  EXPECT_EQ(sv.total(), 1u);
}

TEST(SummaryVectorTest, FillingGapAbsorbsExtras) {
  SummaryVector sv;
  sv.add(id(1, 3));
  sv.add(id(1, 2));
  EXPECT_EQ(sv.watermark(1), 0u);
  sv.add(id(1, 1));  // closes the gap: watermark jumps to 3
  EXPECT_EQ(sv.watermark(1), 3u);
  EXPECT_TRUE(sv.extras().empty());
}

TEST(SummaryVectorTest, AddIsIdempotent) {
  SummaryVector sv;
  sv.add(id(0, 1));
  sv.add(id(0, 1));
  EXPECT_EQ(sv.total(), 1u);
}

TEST(SummaryVectorTest, IndependentOrigins) {
  SummaryVector sv;
  sv.add(id(0, 1));
  sv.add(id(7, 1));
  sv.add(id(7, 2));
  EXPECT_EQ(sv.watermark(0), 1u);
  EXPECT_EQ(sv.watermark(7), 2u);
  EXPECT_FALSE(sv.contains(id(1, 1)));
  EXPECT_EQ(sv.origins().size(), 2u);
}

TEST(SummaryVectorTest, MergeUnionsCoverage) {
  SummaryVector a, b;
  a.add(id(0, 1));
  a.add(id(0, 2));
  b.add(id(0, 4));
  b.add(id(1, 1));
  a.merge(b);
  EXPECT_TRUE(a.contains(id(0, 1)));
  EXPECT_TRUE(a.contains(id(0, 2)));
  EXPECT_FALSE(a.contains(id(0, 3)));
  EXPECT_TRUE(a.contains(id(0, 4)));
  EXPECT_TRUE(a.contains(id(1, 1)));
  EXPECT_EQ(a.total(), 4u);
}

TEST(SummaryVectorTest, MergeAbsorbsAcrossWatermarkAndExtras) {
  SummaryVector a, b;
  a.add(id(0, 1));
  b.add(id(0, 2));
  b.add(id(0, 3));
  a.merge(b);  // b's extras {2,3} complete a's prefix {1}
  EXPECT_EQ(a.watermark(0), 3u);
  EXPECT_TRUE(a.extras().empty());
}

TEST(SummaryVectorTest, CoversIsReflexiveAndDetectsGaps) {
  SummaryVector a;
  a.add(id(0, 1));
  a.add(id(0, 3));
  EXPECT_TRUE(a.covers(a));
  SummaryVector b;
  b.add(id(0, 2));
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  a.add(id(0, 2));
  EXPECT_TRUE(a.covers(b));
}

TEST(SummaryVectorTest, CoversEmpty) {
  SummaryVector a, empty;
  a.add(id(0, 1));
  EXPECT_TRUE(a.covers(empty));
  EXPECT_FALSE(empty.covers(a));
  EXPECT_TRUE(empty.covers(empty));
}

TEST(SummaryVectorTest, MissingFromListsExactDifference) {
  SummaryVector a, b;
  a.add(id(0, 1));
  a.add(id(0, 2));
  a.add(id(1, 7));
  b.add(id(0, 1));
  const auto missing = a.missing_from(b);
  EXPECT_EQ(missing, (std::vector<UpdateId>{id(0, 2), id(1, 7)}));
}

TEST(SummaryVectorTest, MissingFromSelfIsEmpty) {
  SummaryVector a;
  a.add(id(0, 1));
  a.add(id(2, 9));
  EXPECT_TRUE(a.missing_from(a).empty());
}

TEST(SummaryVectorTest, FromPartsNormalises) {
  std::map<NodeId, SeqNo> marks{{0, 2}};
  std::map<NodeId, std::set<SeqNo>> extras{{0, {3, 4, 7}}, {1, {}}};
  const SummaryVector sv = SummaryVector::from_parts(marks, extras);
  EXPECT_EQ(sv.watermark(0), 4u);  // 3 and 4 absorbed
  EXPECT_TRUE(sv.contains(id(0, 7)));
  EXPECT_FALSE(sv.contains(id(0, 5)));
  // Structural equality with an equivalently built vector.
  SummaryVector direct;
  for (const SeqNo s : {1, 2, 3, 4, 7}) direct.add(id(0, s));
  EXPECT_EQ(sv, direct);
}

TEST(SummaryVectorTest, FromPartsDropsZeroWatermarks) {
  const SummaryVector sv =
      SummaryVector::from_parts({{5, 0}}, {});
  EXPECT_EQ(sv, SummaryVector{});
}

// ---------------------------------------------------------------------------
// Property tests: SummaryVector is a join-semilattice under merge().

SummaryVector random_summary(Rng& rng) {
  SummaryVector sv;
  const std::size_t adds = rng.index(30);
  for (std::size_t i = 0; i < adds; ++i) {
    sv.add(id(static_cast<NodeId>(rng.index(4)), rng.uniform_u64(1, 12)));
  }
  return sv;
}

class SummaryLatticeProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SummaryLatticeProperty, MergeIsCommutative) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    SummaryVector ab = a;
    ab.merge(b);
    SummaryVector ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
  }
}

TEST_P(SummaryLatticeProperty, MergeIsAssociative) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    const SummaryVector c = random_summary(rng);
    SummaryVector left = a;
    {
      SummaryVector bc = b;
      bc.merge(c);
      left.merge(bc);
    }
    SummaryVector right = a;
    right.merge(b);
    right.merge(c);
    EXPECT_EQ(left, right);
  }
}

TEST_P(SummaryLatticeProperty, MergeIsIdempotent) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    SummaryVector aa = a;
    aa.merge(a);
    EXPECT_EQ(aa, a);
  }
}

TEST_P(SummaryLatticeProperty, MergeIsLeastUpperBound) {
  Rng rng(GetParam() + 3000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    SummaryVector join = a;
    join.merge(b);
    EXPECT_TRUE(join.covers(a));
    EXPECT_TRUE(join.covers(b));
    // Least: the join contains exactly the union, nothing more.
    EXPECT_EQ(join.total(), a.total() + b.missing_from(a).size());
  }
}

TEST_P(SummaryLatticeProperty, MissingFromIsExactComplement) {
  Rng rng(GetParam() + 4000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    SummaryVector patched = b;
    for (const UpdateId missing : a.missing_from(b)) {
      EXPECT_FALSE(b.contains(missing));
      EXPECT_TRUE(a.contains(missing));
      patched.add(missing);
    }
    EXPECT_TRUE(patched.covers(a));
  }
}

TEST_P(SummaryLatticeProperty, CoversIsPartialOrder) {
  Rng rng(GetParam() + 5000);
  for (int round = 0; round < 30; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    const SummaryVector c = random_summary(rng);
    // Antisymmetry.
    if (a.covers(b) && b.covers(a)) {
      EXPECT_EQ(a, b);
    }
    // Transitivity via the join.
    SummaryVector ab = a;
    ab.merge(b);
    SummaryVector abc = ab;
    abc.merge(c);
    EXPECT_TRUE(abc.covers(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryLatticeProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// meet(): the greatest lower bound completing the lattice.

TEST(SummaryMeetTest, MeetOfDisjointIsEmpty) {
  SummaryVector a, b;
  a.add(id(0, 1));
  b.add(id(1, 1));
  EXPECT_EQ(SummaryVector::meet(a, b), SummaryVector{});
}

TEST(SummaryMeetTest, MeetKeepsCommonPrefix) {
  SummaryVector a, b;
  for (SeqNo s = 1; s <= 5; ++s) a.add(id(0, s));
  for (SeqNo s = 1; s <= 3; ++s) b.add(id(0, s));
  const SummaryVector m = SummaryVector::meet(a, b);
  EXPECT_EQ(m.watermark(0), 3u);
  EXPECT_EQ(m.total(), 3u);
}

TEST(SummaryMeetTest, MeetHandlesExtrasAcrossWatermarks) {
  // a covers {1..5}; b covers {1..3, 5}; meet must be {1..3, 5}.
  SummaryVector a, b;
  for (SeqNo s = 1; s <= 5; ++s) a.add(id(0, s));
  for (SeqNo s = 1; s <= 3; ++s) b.add(id(0, s));
  b.add(id(0, 5));
  const SummaryVector m = SummaryVector::meet(a, b);
  EXPECT_EQ(m.watermark(0), 3u);
  EXPECT_TRUE(m.contains(id(0, 5)));
  EXPECT_FALSE(m.contains(id(0, 4)));
  EXPECT_EQ(m, SummaryVector::meet(b, a));
}

class SummaryMeetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryMeetProperty, MeetIsExactIntersection) {
  Rng rng(GetParam() + 6000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    const SummaryVector m = SummaryVector::meet(a, b);
    // Everything in the meet is in both; nothing of a∩b is missing.
    for (const UpdateId x : m.missing_from(SummaryVector{})) {
      EXPECT_TRUE(a.contains(x));
      EXPECT_TRUE(b.contains(x));
    }
    for (const UpdateId x : a.missing_from(m)) {
      EXPECT_FALSE(b.contains(x) && !m.contains(x));
    }
    EXPECT_TRUE(a.covers(m));
    EXPECT_TRUE(b.covers(m));
  }
}

TEST_P(SummaryMeetProperty, MeetCommutativeIdempotent) {
  Rng rng(GetParam() + 7000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    EXPECT_EQ(SummaryVector::meet(a, b), SummaryVector::meet(b, a));
    EXPECT_EQ(SummaryVector::meet(a, a), a);
  }
}

TEST_P(SummaryMeetProperty, AbsorptionLaws) {
  // a ∧ (a ∨ b) == a and a ∨ (a ∧ b) == a: meet/merge form a lattice.
  Rng rng(GetParam() + 8000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    SummaryVector join = a;
    join.merge(b);
    EXPECT_EQ(SummaryVector::meet(a, join), a);
    SummaryVector back = a;
    back.merge(SummaryVector::meet(a, b));
    EXPECT_EQ(back, a);
  }
}

TEST_P(SummaryMeetProperty, MeetIsAssociative) {
  Rng rng(GetParam() + 9000);
  for (int round = 0; round < 30; ++round) {
    const SummaryVector a = random_summary(rng);
    const SummaryVector b = random_summary(rng);
    const SummaryVector c = random_summary(rng);
    EXPECT_EQ(SummaryVector::meet(SummaryVector::meet(a, b), c),
              SummaryVector::meet(a, SummaryVector::meet(b, c)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryMeetProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Flat-representation invariants and from_parts round-trips.

/// Rebuilds the wire-shaped parts from the flat accessors, as net/wire.cpp
/// encodes them.
std::pair<std::map<NodeId, SeqNo>, std::map<NodeId, std::set<SeqNo>>>
to_parts(const SummaryVector& sv) {
  std::map<NodeId, SeqNo> marks(sv.watermarks().begin(),
                                sv.watermarks().end());
  std::map<NodeId, std::set<SeqNo>> extras;
  for (const UpdateId id : sv.extras()) extras[id.origin].insert(id.seq);
  return {std::move(marks), std::move(extras)};
}

class SummaryFlatProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryFlatProperty, CanonicalFormInvariants) {
  Rng rng(GetParam() + 10000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector sv = random_summary(rng);
    // Watermarks sorted by origin, all > 0.
    for (std::size_t i = 0; i < sv.watermarks().size(); ++i) {
      EXPECT_GT(sv.watermarks()[i].second, 0u);
      if (i > 0) {
        EXPECT_LT(sv.watermarks()[i - 1].first, sv.watermarks()[i].first);
      }
    }
    // Extras sorted, unique, strictly above watermark + 1 (else they would
    // have been absorbed).
    for (std::size_t i = 0; i < sv.extras().size(); ++i) {
      if (i > 0) {
        EXPECT_LT(sv.extras()[i - 1], sv.extras()[i]);
      }
      EXPECT_GT(sv.extras()[i].seq, sv.watermark(sv.extras()[i].origin) + 1);
    }
  }
}

TEST_P(SummaryFlatProperty, FromPartsRoundTrip) {
  Rng rng(GetParam() + 11000);
  for (int round = 0; round < 50; ++round) {
    const SummaryVector sv = random_summary(rng);
    auto [marks, extras] = to_parts(sv);
    const SummaryVector rebuilt =
        SummaryVector::from_parts(std::move(marks), std::move(extras));
    EXPECT_EQ(rebuilt, sv);
  }
}

TEST_P(SummaryFlatProperty, EqualCoverageImpliesStructuralEquality) {
  // Build the same coverage through two different add() orders; canonical
  // form must make them structurally identical.
  Rng rng(GetParam() + 12000);
  for (int round = 0; round < 30; ++round) {
    std::vector<UpdateId> ids;
    const std::size_t n = 1 + rng.index(25);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(id(static_cast<NodeId>(rng.index(4)),
                       rng.uniform_u64(1, 10)));
    }
    SummaryVector forward;
    for (const UpdateId x : ids) forward.add(x);
    SummaryVector backward;
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) backward.add(*it);
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward.watermarks(), backward.watermarks());
    EXPECT_EQ(forward.extras(), backward.extras());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryFlatProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fastcons
