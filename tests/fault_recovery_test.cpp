// Model-based crash/recovery property tests: random churn schedules (drawn
// by the FaultPlan itself) run against a reference model of the surviving
// WriteLogs — the union of what any replica still holds once churn ends.
// The properties: anti-entropy catch-up never loses a write that survived
// on at least one replica, never partially replicates (after convergence
// every issued write is on every replica or on none), never invents ids,
// and restores SummaryVector coverage to agreement on every node.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

struct ChurnRun {
  SimNetwork net;
  std::set<UpdateId> ever_applied;   // every id any replica ever applied
  std::vector<UpdateId> issued;      // every write scheduled
  std::set<UpdateId> survivors;      // held somewhere when churn ended
  std::uint64_t crashes = 0;
  std::uint64_t wipes = 0;
  bool consistent = false;

  ChurnRun(Graph graph, std::shared_ptr<const DemandModel> demand,
           SimConfig config)
      : net(std::move(graph), std::move(demand), std::move(config)) {}
};

std::unique_ptr<ChurnRun> run_churn_schedule(std::uint64_t seed,
                                             bool wipe_on_restart) {
  Rng build(seed);
  Graph graph = make_barabasi_albert(12, 2, {0.01, 0.05}, build);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(12, 0.0, 100.0, build));

  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = seed;
  cfg.faults.crash_rate = 0.2;       // aggressive: ~2.4 crashes per unit
  cfg.faults.downtime_mean = 0.4;
  cfg.faults.wipe_on_restart = wipe_on_restart;
  cfg.faults.churn_until = 8.0;      // then the network may catch up

  auto run = std::make_unique<ChurnRun>(std::move(graph), demand, cfg);
  ChurnRun& r = *run;
  r.net.on_delivery = [&r](NodeId, const Update& u, DeliveryPath, SimTime) {
    r.ever_applied.insert(u.id);
  };
  r.net.on_crash = [&r](NodeId, bool wiped, SimTime) {
    ++r.crashes;
    if (wiped) ++r.wipes;
  };

  // Writes spread through the churn window from rotating origins; some
  // writers will be down at their write time (the deferral path).
  Rng writers(seed ^ 0x5eedu);
  for (int i = 0; i < 10; ++i) {
    const auto node = static_cast<NodeId>(writers.index(r.net.size()));
    const SimTime at = 0.5 + 0.7 * static_cast<double>(i);
    r.issued.push_back(r.net.schedule_write(
        node, "k" + std::to_string(i), "v" + std::to_string(i), at));
  }

  r.net.run_until(8.5);  // every write fired; no further crash can occur
  // The reference model: what survived the churn. Wipes happen at crash
  // time, so every loss has already been inflicted; a write lives iff some
  // replica's log still holds it (a message still in flight may later
  // RE-ADD an id, never remove one — hence "survivors ⊆ final", below).
  for (const UpdateId& id : r.issued) {
    for (NodeId node = 0; node < r.net.size(); ++node) {
      if (r.net.engine(node).log().contains(id)) {
        r.survivors.insert(id);
        break;
      }
    }
  }
  r.consistent = r.net.run_until_consistent(120.0);
  return run;
}

TEST(FaultRecovery, CatchUpRestoresEverySurvivingWriteEverywhere) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const auto run = run_churn_schedule(seed, /*wipe_on_restart=*/true);
    // Non-vacuous: the schedule really crashed and wiped replicas, and
    // every issued write was acknowledged (applied at its origin) first.
    EXPECT_GT(run->crashes, 0u) << seed;
    EXPECT_EQ(run->wipes, run->crashes) << seed;
    EXPECT_EQ(run->ever_applied.size(), run->issued.size()) << seed;
    EXPECT_FALSE(run->survivors.empty()) << seed;
    ASSERT_TRUE(run->consistent) << seed;

    // After convergence every issued write is all-or-none: a survivor is
    // on EVERY replica (anti-entropy never loses it), a wiped-everywhere
    // write is on none or resurrected onto all (an in-flight copy may
    // re-seed it), and partial replication never persists.
    std::size_t everywhere = 0;
    for (const UpdateId& id : run->issued) {
      std::size_t holders = 0;
      for (NodeId node = 0; node < run->net.size(); ++node) {
        if (run->net.engine(node).log().contains(id)) ++holders;
      }
      const char* what = run->survivors.count(id) ? "survivor" : "wiped";
      EXPECT_TRUE(holders == 0 || holders == run->net.size())
          << seed << " " << what << " " << id.origin << ":" << id.seq
          << " on " << holders << "/" << run->net.size();
      if (run->survivors.count(id)) {
        EXPECT_EQ(holders, run->net.size())
            << seed << " lost survivor " << id.origin << ":" << id.seq;
      }
      if (holders == run->net.size()) ++everywhere;
    }
    // Coverage is restored to agreement — and to nothing but issued ids.
    for (NodeId node = 0; node < run->net.size(); ++node) {
      EXPECT_EQ(run->net.engine(node).summary().total(), everywhere)
          << seed << " node " << node;
    }
    EXPECT_GE(everywhere, run->survivors.size()) << seed;
  }
}

TEST(FaultRecovery, RetentiveRestartsLoseNothingEver) {
  // wipe_on_restart=false models a node that was merely unreachable: its
  // log survives, so after churn every single issued write must be
  // everywhere — including writes deferred past their writer's downtime.
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const auto run = run_churn_schedule(seed, /*wipe_on_restart=*/false);
    EXPECT_GT(run->crashes, 0u) << seed;
    EXPECT_EQ(run->wipes, 0u) << seed;
    ASSERT_TRUE(run->consistent) << seed;
    for (NodeId node = 0; node < run->net.size(); ++node) {
      const ReplicaEngine& engine = run->net.engine(node);
      for (const UpdateId& id : run->issued) {
        EXPECT_TRUE(engine.log().contains(id))
            << seed << " node " << node << " update " << id.origin << ":"
            << id.seq;
      }
      EXPECT_EQ(engine.summary().total(), run->issued.size())
          << seed << " node " << node;
    }
  }
}

TEST(FaultRecovery, SnapshotRestoreIsLosslessAfterChurn) {
  // The durability layer's core assumption, checked against engines that
  // just survived an adversarial churn schedule (not hand-built fixtures):
  // snapshot() -> restore() into a fresh engine reproduces the summary,
  // the materialised kv state and the origin write counter exactly. This
  // is the sim-path mirror of the on-disk checkpoint round-trip.
  for (const std::uint64_t seed : {41u, 42u}) {
    const auto run = run_churn_schedule(seed, /*wipe_on_restart=*/false);
    ASSERT_TRUE(run->consistent) << seed;
    for (NodeId node = 0; node < run->net.size(); ++node) {
      const ReplicaEngine& original = run->net.engine(node);
      const EngineSnapshot snapshot = original.snapshot();
      std::vector<NodeId> neighbours;
      for (const Edge& e : run->net.graph().neighbours(node)) {
        neighbours.push_back(e.peer);
      }
      ReplicaEngine restored(node, neighbours, original.config(),
                             seed ^ 0xFFu);
      restored.restore(snapshot, 9.0);
      EXPECT_EQ(restored.summary(), original.summary())
          << seed << " node " << node;
      EXPECT_EQ(restored.log().kv_digest(), original.log().kv_digest())
          << seed << " node " << node;
      EXPECT_EQ(restored.write_seq(), original.write_seq())
          << seed << " node " << node;
      for (const UpdateId& id : run->issued) {
        EXPECT_EQ(restored.log().contains(id), original.log().contains(id))
            << seed << " node " << node;
      }
    }
  }
}

}  // namespace
}  // namespace fastcons
