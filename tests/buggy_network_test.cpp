// Deterministic buggy-network regression tests (the FakeTMsgBuggyNetwork
// idea): a fixed seed matrix of loss rates, duplication/reordering and
// topologies, each asserting that the protocol still converges, that every
// replica materialises the identical key-value state, and that the whole
// run is byte-identical run-to-run and across --jobs counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

// FNV-1a over the materialised key-value state, in key order. Two replicas
// with equal digests (given distinct keys) hold the same data.
std::uint64_t kv_digest(const ReplicaEngine& engine) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xffu;  // separator
    h *= 1099511628211ull;
  };
  for (const std::string& key : engine.log().keys()) {
    mix(key);
    mix(engine.log().read(key).value_or(""));
  }
  return h;
}

struct BuggyCase {
  const char* topo;
  double loss;
  bool chaos;  // duplication + reordering on
};

Graph build_topology(const std::string& topo, std::uint64_t seed) {
  Rng rng(seed);
  const LatencyRange lat{0.01, 0.05};
  if (topo == "ring") return make_ring(16, lat, rng);
  if (topo == "grid") return make_grid(4, 4, lat, rng);
  return make_barabasi_albert(16, 2, lat, rng);
}

SimConfig buggy_config(const BuggyCase& c, std::uint64_t seed) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = seed;
  cfg.faults.loss = c.loss;
  if (c.chaos) {
    cfg.faults.duplicate = 0.1;
    cfg.faults.reorder = 0.3;
    cfg.faults.reorder_delay_max = 0.5;
  }
  return cfg;
}

/// Everything one run observes; equality means the runs were identical.
struct RunObservation {
  bool consistent = false;
  std::vector<std::uint64_t> digests;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  FaultStats faults;

  friend bool operator==(const RunObservation&,
                         const RunObservation&) = default;
};

RunObservation run_buggy(const BuggyCase& c, std::uint64_t seed) {
  Graph graph = build_topology(c.topo, seed);
  const std::size_t n = graph.size();
  Rng demand_rng(seed + 1);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(n, 0.0, 100.0, demand_rng));
  SimNetwork net(std::move(graph), demand, buggy_config(c, seed));

  // Three writers, staggered: converging now needs real anti-entropy, not
  // just one lucky fast-push tree.
  net.schedule_write(0, "alpha", "1", 0.6);
  net.schedule_write(static_cast<NodeId>(n / 2), "beta", "2", 0.9);
  net.schedule_write(static_cast<NodeId>(n - 1), "alpha", "3", 1.2);

  RunObservation obs;
  net.run_until(1.5);  // all writes issued
  obs.consistent = net.run_until_consistent(180.0);
  for (NodeId node = 0; node < n; ++node) {
    obs.digests.push_back(kv_digest(net.engine(node)));
  }
  obs.events = net.events_executed();
  obs.messages = net.total_traffic().total_messages();
  obs.dropped = net.messages_dropped();
  obs.faults = net.fault_stats();
  return obs;
}

TEST(BuggyNetwork, SeedMatrixConvergesToIdenticalStateReproducibly) {
  const std::vector<BuggyCase> cases = {
      {"ring", 0.0, false}, {"ring", 0.1, true},  {"ring", 0.3, false},
      {"grid", 0.0, true},  {"grid", 0.1, false}, {"grid", 0.3, true},
      {"ba", 0.0, false},   {"ba", 0.1, true},    {"ba", 0.3, true},
  };
  for (const BuggyCase& c : cases) {
    const std::string where = std::string(c.topo) + " loss=" +
                              std::to_string(c.loss) +
                              (c.chaos ? " chaos" : "");
    const RunObservation first = run_buggy(c, 1234);
    // Converges despite the abuse...
    EXPECT_TRUE(first.consistent) << where;
    // ...to the identical materialised KV state on every replica...
    for (std::size_t node = 1; node < first.digests.size(); ++node) {
      EXPECT_EQ(first.digests[node], first.digests[0])
          << where << " node " << node;
    }
    // ...the faults actually fired when configured...
    if (c.loss > 0.0) {
      EXPECT_GT(first.faults.messages_lost, 0u) << where;
    }
    if (c.chaos) {
      EXPECT_GT(first.faults.messages_duplicated, 0u) << where;
      EXPECT_GT(first.faults.messages_delayed, 0u) << where;
    }
    if (c.loss == 0.0 && !c.chaos) {
      EXPECT_EQ(first.faults, FaultStats{}) << where;
    }
    // ...and the entire run replays event-for-event on the same seed.
    EXPECT_EQ(run_buggy(c, 1234), first) << where;
  }
}

TEST(BuggyNetwork, FaultsScenarioIsByteIdenticalAcrossJobsCounts) {
  // The --jobs 1 vs 4 half of the acceptance criterion, pinned in-process:
  // the serialised faults scenario (timing stripped, as the digests are
  // computed) must not depend on worker count or on rerunning.
  const harness::ScenarioRegistry registry = harness::builtin_registry();
  const harness::ScenarioSpec& spec = registry.get("faults");
  harness::RunOptions options;
  options.smoke = true;
  options.jobs = 1;
  const std::string serial =
      harness::scenario_to_json(harness::run_scenario(spec, options)).dump();
  options.jobs = 4;
  const std::string parallel =
      harness::scenario_to_json(harness::run_scenario(spec, options)).dump();
  EXPECT_EQ(serial, parallel);
  const std::string again =
      harness::scenario_to_json(harness::run_scenario(spec, options)).dump();
  EXPECT_EQ(parallel, again);
}

}  // namespace
}  // namespace fastcons
