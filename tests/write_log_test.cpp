#include "replication/write_log.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fastcons {
namespace {

Update make_update(NodeId origin, SeqNo seq, SimTime at = 0.0,
                   std::string key = "k", std::string value = "v") {
  return Update{UpdateId{origin, seq}, at, std::move(key), std::move(value)};
}

TEST(WriteLogTest, ApplyIsIdempotent) {
  WriteLog log;
  EXPECT_TRUE(log.apply(make_update(0, 1)));
  EXPECT_FALSE(log.apply(make_update(0, 1)));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.applied_total(), 1u);
}

TEST(WriteLogTest, ContainsAndGet) {
  WriteLog log;
  const Update u = make_update(2, 1, 1.5, "city", "barcelona");
  log.apply(u);
  EXPECT_TRUE(log.contains(u.id));
  EXPECT_FALSE(log.contains(UpdateId{2, 2}));
  const auto got = log.get(u.id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, u);
  EXPECT_FALSE(log.get(UpdateId{9, 9}).has_value());
}

TEST(WriteLogTest, UpdatesForReturnsDifferenceInOrder) {
  WriteLog log;
  log.apply(make_update(0, 1));
  log.apply(make_update(0, 2));
  log.apply(make_update(1, 1));
  SummaryVector theirs;
  theirs.add(UpdateId{0, 1});
  const auto missing = log.updates_for(theirs);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].id, (UpdateId{0, 2}));
  EXPECT_EQ(missing[1].id, (UpdateId{1, 1}));
}

TEST(WriteLogTest, UpdatesForSelfSummaryIsEmpty) {
  WriteLog log;
  log.apply(make_update(0, 1));
  log.apply(make_update(3, 4));
  EXPECT_TRUE(log.updates_for(log.summary()).empty());
}

TEST(WriteLogTest, LastWriterWinsByTimestamp) {
  WriteLog log;
  log.apply(make_update(0, 1, 1.0, "x", "old"));
  log.apply(make_update(1, 1, 2.0, "x", "new"));
  EXPECT_EQ(log.read("x"), "new");
  // A late-arriving older write must not clobber the newer value.
  log.apply(make_update(2, 1, 0.5, "x", "ancient"));
  EXPECT_EQ(*log.read("x"), "new");
}

TEST(WriteLogTest, TimestampTiesBreakDeterministically) {
  // Same created_at: the higher (origin, seq) wins, in both arrival orders.
  WriteLog a, b;
  const Update u1 = make_update(1, 1, 5.0, "x", "from-1");
  const Update u2 = make_update(2, 1, 5.0, "x", "from-2");
  a.apply(u1);
  a.apply(u2);
  b.apply(u2);
  b.apply(u1);
  ASSERT_TRUE(a.read("x").has_value());
  EXPECT_EQ(*a.read("x"), *b.read("x"));
  EXPECT_EQ(*a.read("x"), "from-2");
}

TEST(WriteLogTest, ReadMissingKey) {
  WriteLog log;
  EXPECT_FALSE(log.read("nope").has_value());
}

TEST(WriteLogTest, KeysListsMaterialisedKeys) {
  WriteLog log;
  log.apply(make_update(0, 1, 0.0, "a", "1"));
  log.apply(make_update(0, 2, 1.0, "b", "2"));
  log.apply(make_update(0, 3, 2.0, "a", "3"));
  const auto keys = log.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(WriteLogTest, AllRetainedSortedById) {
  WriteLog log;
  log.apply(make_update(1, 2));
  log.apply(make_update(0, 1));
  log.apply(make_update(1, 1));
  const auto all = log.all_retained();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, (UpdateId{0, 1}));
  EXPECT_EQ(all[1].id, (UpdateId{1, 1}));
  EXPECT_EQ(all[2].id, (UpdateId{1, 2}));
}

TEST(WriteLogTest, TruncationDiscardsPayloadsButKeepsSummary) {
  WriteLog log;
  log.apply(make_update(0, 1));
  log.apply(make_update(0, 2));
  log.apply(make_update(0, 3));
  SummaryVector stable;
  stable.add(UpdateId{0, 1});
  stable.add(UpdateId{0, 2});
  EXPECT_EQ(log.truncate_below(stable), 2u);
  EXPECT_EQ(log.size(), 1u);
  // Summary still covers the truncated ids: re-applying stays a no-op.
  EXPECT_TRUE(log.contains(UpdateId{0, 1}));
  EXPECT_FALSE(log.apply(make_update(0, 1)));
  EXPECT_FALSE(log.get(UpdateId{0, 1}).has_value());
}

TEST(WriteLogTest, UpdatesForReportsTruncatedIds) {
  WriteLog log;
  log.apply(make_update(0, 1));
  log.apply(make_update(0, 2));
  SummaryVector stable;
  stable.add(UpdateId{0, 1});
  log.truncate_below(stable);
  const SummaryVector empty;
  std::vector<UpdateId> truncated;
  const auto sendable = log.updates_for(empty, &truncated);
  ASSERT_EQ(sendable.size(), 1u);
  EXPECT_EQ(sendable[0].id, (UpdateId{0, 2}));
  ASSERT_EQ(truncated.size(), 1u);
  EXPECT_EQ(truncated[0], (UpdateId{0, 1}));
}

TEST(WriteLogTest, PairwiseExchangeConverges) {
  // The algebra behind an anti-entropy session: exchanging summary
  // differences makes two random logs identical.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    WriteLog a, b;
    for (int i = 0; i < 40; ++i) {
      const auto origin = static_cast<NodeId>(rng.index(3));
      const auto seq = rng.uniform_u64(1, 10);
      const auto u = make_update(origin, seq, rng.uniform(0.0, 5.0));
      if (rng.bernoulli(0.5)) a.apply(u);
      if (rng.bernoulli(0.5)) b.apply(u);
    }
    for (const Update& u : a.updates_for(b.summary())) b.apply(u);
    for (const Update& u : b.updates_for(a.summary())) a.apply(u);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.all_retained().size(), b.all_retained().size());
  }
}

}  // namespace
}  // namespace fastcons
