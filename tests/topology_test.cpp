#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "topology/generators.hpp"
#include "topology/graph.hpp"
#include "topology/metrics.hpp"

namespace fastcons {
namespace {

LatencyRange kLat{0.01, 0.05};

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.size(), 3u);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 0.25);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.latency(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.latency(1, 0), 0.5);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, AddNodeGrows) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.size(), 2u);
}

TEST(GraphTest, DuplicateEdgeThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), ConfigError);
  EXPECT_THROW(g.add_edge(1, 0), ConfigError);
}

TEST(GraphTest, MissingEdgeLatencyThrows) {
  Graph g(2);
  EXPECT_THROW(g.latency(0, 1), ConfigError);
  EXPECT_THROW(g.set_latency(0, 1, 0.5), ConfigError);
}

TEST(GraphTest, SetLatencyUpdatesBothDirections) {
  Graph g(2);
  g.add_edge(0, 1, 0.1);
  g.set_latency(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(g.latency(0, 1), 0.9);
}

TEST(GeneratorTest, LineShape) {
  Rng rng(1);
  const Graph g = make_line(5, kLat, rng);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(GeneratorTest, SingleNodeLine) {
  Rng rng(1);
  const Graph g = make_line(1, kLat, rng);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(diameter(g), 0u);
}

TEST(GeneratorTest, RingShape) {
  Rng rng(2);
  const Graph g = make_ring(8, kLat, rng);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(diameter(g), 4u);
  for (NodeId n = 0; n < g.size(); ++n) EXPECT_EQ(g.degree(n), 2u);
}

TEST(GeneratorTest, RingTooSmallThrows) {
  Rng rng(2);
  EXPECT_THROW(make_ring(2, kLat, rng), ConfigError);
}

TEST(GeneratorTest, GridShape) {
  Rng rng(3);
  const Graph g = make_grid(4, 3, kLat, rng);
  EXPECT_EQ(g.size(), 12u);
  // 4x3 grid: horizontal 3*3 + vertical 4*2 = 17 edges.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(diameter(g), 5u);  // (4-1)+(3-1)
  EXPECT_EQ(g.degree(0), 2u);  // corner
}

TEST(GeneratorTest, StarShape) {
  Rng rng(4);
  const Graph g = make_star(6, kLat, rng);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(diameter(g), 2u);
  for (NodeId n = 1; n < g.size(); ++n) EXPECT_EQ(g.degree(n), 1u);
}

TEST(GeneratorTest, CompleteShape) {
  Rng rng(5);
  const Graph g = make_complete(6, kLat, rng);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(GeneratorTest, BinaryTreeShape) {
  Rng rng(6);
  const Graph g = make_binary_tree(7, kLat, rng);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(diameter(g), 4u);  // leaf-to-leaf through the root
}

TEST(GeneratorTest, BarabasiAlbertBasicProperties) {
  Rng rng(7);
  const Graph g = make_barabasi_albert(100, 2, kLat, rng);
  EXPECT_EQ(g.size(), 100u);
  // m0 = 3 clique (3 edges) + 97 nodes * 2 edges.
  EXPECT_EQ(g.edge_count(), 3u + 97u * 2u);
  EXPECT_TRUE(is_connected(g));
  // Every node has degree >= m.
  for (NodeId n = 0; n < g.size(); ++n) EXPECT_GE(g.degree(n), 2u);
}

TEST(GeneratorTest, BarabasiAlbertRejectsBadParams) {
  Rng rng(8);
  EXPECT_THROW(make_barabasi_albert(5, 0, kLat, rng), ConfigError);
  EXPECT_THROW(make_barabasi_albert(2, 2, kLat, rng), ConfigError);
}

TEST(GeneratorTest, BarabasiAlbertFollowsPowerLaw) {
  // Faloutsos et al.'s rank-degree power law: log(degree) vs log(rank) is
  // close to linear with negative slope. This is the property the paper
  // uses BRITE for; we verify our replacement generator satisfies it.
  Rng rng(9);
  const Graph g = make_barabasi_albert(400, 2, kLat, rng);
  const PowerLawFit fit = degree_rank_fit(g);
  EXPECT_LT(fit.slope, -0.3);
  EXPECT_GT(fit.r_squared, 0.75);
}

TEST(GeneratorTest, BarabasiAlbertHasHubs) {
  Rng rng(10);
  const Graph g = make_barabasi_albert(300, 2, kLat, rng);
  const auto degrees = degree_sequence(g);
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GE(degrees.front(), 15u);
  // ...and many low-degree leaves.
  EXPECT_LE(degrees.back(), 3u);
}

TEST(GeneratorTest, ErdosRenyiConnectedAndSized) {
  Rng rng(11);
  const Graph g = make_erdos_renyi(80, 0.05, kLat, rng);
  EXPECT_EQ(g.size(), 80u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GeneratorTest, ErdosRenyiZeroProbabilityStillConnected) {
  Rng rng(12);
  // p=0 samples no edges; the connectivity repair must chain everything.
  const Graph g = make_erdos_renyi(20, 0.0, kLat, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.edge_count(), 19u);
}

TEST(GeneratorTest, WaxmanConnectedWithDistanceLatencies) {
  Rng rng(13);
  const Graph g = make_waxman(60, 0.6, 0.3, kLat, rng);
  EXPECT_TRUE(is_connected(g));
  for (NodeId n = 0; n < g.size(); ++n) {
    for (const Edge& e : g.neighbours(n)) {
      EXPECT_GE(e.latency, kLat.lo - 1e-12);
      EXPECT_LE(e.latency, kLat.hi + 1e-12);
    }
  }
}

TEST(GeneratorTest, DumbbellShape) {
  Rng rng(14);
  const Graph g = make_dumbbell(5, 3, kLat, rng);
  EXPECT_EQ(g.size(), 13u);
  EXPECT_TRUE(is_connected(g));
  // Each clique contributes C(5,2)=10 edges; the bridge path 0 - b0 - b1 -
  // b2 - node k adds 4.
  EXPECT_EQ(g.edge_count(), 24u);
  // Bridge nodes have degree 2.
  EXPECT_EQ(g.degree(10), 2u);
}

TEST(MetricsTest, BfsHopsLine) {
  Rng rng(15);
  const Graph g = make_line(5, kLat, rng);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(MetricsTest, ShortestLatenciesTakeCheapPath) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  const auto d = shortest_latencies(g, 0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);  // via node 1, not the direct heavy edge
}

TEST(MetricsTest, ComponentsOfDisconnectedGraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(comps[2], (std::vector<NodeId>{4}));
  EXPECT_FALSE(is_connected(g));
}

TEST(MetricsTest, DiameterOfDisconnectedThrows) {
  Graph g(2);
  EXPECT_THROW(diameter(g), ConfigError);
}

TEST(MetricsTest, MeanPathLengthRing) {
  Rng rng(16);
  const Graph g = make_ring(4, kLat, rng);
  // Ring of 4: distances from any node are {1, 2, 1}; mean = 4/3.
  EXPECT_NEAR(mean_path_length(g), 4.0 / 3.0, 1e-12);
}

TEST(MetricsTest, DegreeRankFitOnRegularGraphIsFlat) {
  Rng rng(17);
  const Graph g = make_ring(50, kLat, rng);
  const PowerLawFit fit = degree_rank_fit(g);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);  // all degrees equal -> flat line
}

class TopologyFamilySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TopologyFamilySweep, AllGeneratorsYieldConnectedSimpleGraphs) {
  const auto [family, seed] = GetParam();
  Rng rng(seed);
  Graph g = [&]() -> Graph {
    switch (family) {
      case 0: return make_line(17, kLat, rng);
      case 1: return make_ring(17, kLat, rng);
      case 2: return make_grid(5, 4, kLat, rng);
      case 3: return make_star(17, kLat, rng);
      case 4: return make_complete(9, kLat, rng);
      case 5: return make_binary_tree(17, kLat, rng);
      case 6: return make_barabasi_albert(40, 2, kLat, rng);
      case 7: return make_erdos_renyi(40, 0.08, kLat, rng);
      case 8: return make_waxman(40, 0.7, 0.3, kLat, rng);
      default: return make_dumbbell(6, 4, kLat, rng);
    }
  }();
  EXPECT_TRUE(is_connected(g));
  // Simplicity: neighbour lists contain no duplicates and no self-loops.
  for (NodeId n = 0; n < g.size(); ++n) {
    std::set<NodeId> seen;
    for (const Edge& e : g.neighbours(n)) {
      EXPECT_NE(e.peer, n);
      EXPECT_TRUE(seen.insert(e.peer).second);
      EXPECT_GE(e.latency, 0.0);
    }
  }
  // Handshake lemma: degree sum equals twice the edge count.
  std::size_t degree_sum = 0;
  for (NodeId n = 0; n < g.size(); ++n) degree_sum += g.degree(n);
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, TopologyFamilySweep,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace fastcons
