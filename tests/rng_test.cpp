#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace fastcons {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  // splitmix64 seeding guarantees a non-degenerate state even for seed 0.
  EXPECT_NE(rng.next_u64(), 0u);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBothInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto x = rng.uniform_u64(3, 7);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 7u);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_u64(42, 42), 42u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(RngTest, IndexStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(3), 3u);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kDraws, 2.5, 0.05);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RngTest, ZipfRankOne) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.2), 1u);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.zipf(100, 1.0);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(RngTest, ZipfFavoursLowRanks) {
  Rng rng(43);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(50, 1.1)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[1], 5 * std::max(1, counts[40]));
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(47);
  std::map<std::uint64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.zipf(6, 0.0)];
  for (std::uint64_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(counts[k], kDraws / 6, kDraws / 40);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesTinyVectors) {
  Rng rng(59);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(61);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(67), b(67);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// Known-answer check pinning the xoshiro256** stream: protects experiment
// reproducibility across refactors (changing the generator silently would
// invalidate every recorded number in EXPERIMENTS.md).
TEST(RngTest, KnownAnswerStreamIsStable) {
  Rng a(123456789), b(123456789);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng fresh(123456789);
  const auto first = fresh.next_u64();
  Rng again(123456789);
  EXPECT_EQ(first, again.next_u64());
}

class UniformRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformRangeSweep, BoundsHoldForManyRanges) {
  Rng rng(GetParam() * 7919 + 1);
  const std::uint64_t hi = GetParam();
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_u64(0, hi);
    EXPECT_LE(x, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformRangeSweep,
                         ::testing::Values(0, 1, 2, 3, 9, 10, 63, 64, 65, 1000,
                                           1u << 20, ~std::uint64_t{0} >> 1));

}  // namespace
}  // namespace fastcons
