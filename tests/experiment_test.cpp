#include "experiment/propagation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

PropagationExperiment small_experiment(ProtocolConfig protocol,
                                       std::size_t reps = 40) {
  PropagationExperiment exp;
  exp.topology = [](Rng& rng) {
    return make_barabasi_albert(20, 2, {0.01, 0.05}, rng);
  };
  exp.demand = [](const Graph& g, Rng& rng) {
    return std::make_shared<StaticDemand>(
        make_uniform_random_demand(g.size(), 0.0, 100.0, rng));
  };
  protocol.advert_period = 0.0;  // static demand: primed tables suffice
  exp.sim.protocol = protocol;
  exp.repetitions = reps;
  exp.seed = 2024;
  return exp;
}

TEST(PropagationTest, RejectsMissingFactories) {
  PropagationExperiment exp;
  EXPECT_THROW(run_propagation(exp), ConfigError);
}

TEST(PropagationTest, RejectsZeroRepetitions) {
  auto exp = small_experiment(ProtocolConfig::fast());
  exp.repetitions = 0;
  EXPECT_THROW(run_propagation(exp), ConfigError);
}

TEST(PropagationTest, RejectsBadFraction) {
  auto exp = small_experiment(ProtocolConfig::fast());
  exp.high_demand_fraction = 0.0;
  EXPECT_THROW(run_propagation(exp), ConfigError);
}

TEST(PropagationTest, SampleCountsMatchTopologySize) {
  auto exp = small_experiment(ProtocolConfig::fast(), 10);
  const auto result = run_propagation(exp);
  // 19 non-writer replicas per repetition.
  EXPECT_EQ(result.all.count(), 10u * 19u);
  EXPECT_EQ(result.time_to_full.count(), 10u);
  EXPECT_EQ(result.reps_total, 10u);
  // Top 10% of 20 nodes = 2 nodes; the writer may occupy one of them.
  EXPECT_GE(result.high_demand.count(), 10u);
  EXPECT_LE(result.high_demand.count(), 20u);
}

TEST(PropagationTest, AllRepetitionsConverge) {
  const auto result = run_propagation(small_experiment(ProtocolConfig::fast()));
  EXPECT_EQ(result.reps_converged, result.reps_total);
  EXPECT_EQ(result.censored_samples, 0u);
}

TEST(PropagationTest, DeterministicForSameSeed) {
  const auto a = run_propagation(small_experiment(ProtocolConfig::fast(), 10));
  const auto b = run_propagation(small_experiment(ProtocolConfig::fast(), 10));
  EXPECT_EQ(a.all.mean(), b.all.mean());
  EXPECT_EQ(a.time_to_full.mean(), b.time_to_full.mean());
  EXPECT_EQ(a.traffic.total_messages(), b.traffic.total_messages());
}

TEST(PropagationTest, FastBeatsWeakOnAllThreeHeadlineMetrics) {
  // The paper's central claim, as a regression test with adequate margins.
  const auto weak = run_propagation(small_experiment(ProtocolConfig::weak(), 60));
  const auto fast = run_propagation(small_experiment(ProtocolConfig::fast(), 60));
  // 1. Mean sessions over all replicas improves.
  EXPECT_LT(fast.all.mean(), weak.all.mean() * 0.85);
  // 2. High-demand replicas converge in about one session.
  EXPECT_LT(fast.high_demand.mean(), 2.0);
  EXPECT_LT(fast.high_demand.mean(), weak.high_demand.mean() * 0.6);
  // 3. Time to full consistency improves.
  EXPECT_LT(fast.time_to_full.mean(), weak.time_to_full.mean());
}

TEST(PropagationTest, HighDemandSubsetBeatsPopulationUnderFast) {
  const auto fast = run_propagation(small_experiment(ProtocolConfig::fast(), 60));
  EXPECT_LT(fast.high_demand.mean(), fast.all.mean());
  // Under weak consistency the subset enjoys no advantage.
  const auto weak = run_propagation(small_experiment(ProtocolConfig::weak(), 60));
  EXPECT_NEAR(weak.high_demand.mean(), weak.all.mean(),
              0.35 * weak.all.mean());
}

TEST(PropagationTest, CdfIsProperDistribution) {
  const auto result = run_propagation(small_experiment(ProtocolConfig::fast(), 20));
  EXPECT_DOUBLE_EQ(result.all.at(result.all.max()), 1.0);
  EXPECT_GE(result.all.min(), 0.0);
  const auto curve = result.all.curve(0.0, 12.0, 13);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(PropagationTest, DemandOnlySitsBetweenWeakAndFast) {
  const auto weak = run_propagation(small_experiment(ProtocolConfig::weak(), 60));
  const auto mid =
      run_propagation(small_experiment(ProtocolConfig::demand_order_only(), 60));
  const auto fast = run_propagation(small_experiment(ProtocolConfig::fast(), 60));
  EXPECT_LT(mid.all.mean(), weak.all.mean());
  EXPECT_LT(fast.all.mean(), mid.all.mean());
}

}  // namespace
}  // namespace fastcons
