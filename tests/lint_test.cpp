// Exercises the fastcons_lint library (tools/fastcons_lint) as ordinary
// ctest cases: the lexer, the indexer/call-graph, one end-to-end violation
// per rule, and the allowlist machinery. The lint tool also carries its own
// embedded self-test corpus (--self-test); these tests cover the library
// API surface the way external callers — the CLI and the determinism_lint
// alias — consume it.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "tools/fastcons_lint/lint.hpp"

namespace fastcons::lint {
namespace {

const Function* find_function(const ProgramIndex& index, const std::string& name) {
  const auto it = index.by_name.find(name);
  if (it == index.by_name.end() || it->second.empty()) return nullptr;
  return &index.functions[it->second.front()];
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

// ------------------------------------------------------------------ lexer

TEST(LintLexer, BlanksCommentsAndStringsButKeepsLineStructure) {
  const StrippedSource s = strip_source(
      "int a; // trailing ::send(x)\n"
      "/* block\n   spanning */ int b;\n"
      "const char* c = \"::recv(y) \\\" quoted\";\n");
  EXPECT_EQ(std::count(s.text.begin(), s.text.end(), '\n'), 4);
  EXPECT_EQ(s.text.find("send"), std::string::npos);
  EXPECT_EQ(s.text.find("recv"), std::string::npos);
  EXPECT_NE(s.text.find("int b;"), std::string::npos);
}

TEST(LintLexer, RawStringsWithCustomDelimiterDoNotLeak) {
  const StrippedSource s = strip_source(
      "auto r = R\"ab(contents ::poll(fd) )\" still inside)ab\"; int after;\n");
  EXPECT_EQ(s.text.find("poll"), std::string::npos);
  EXPECT_NE(s.text.find("int after;"), std::string::npos);
}

TEST(LintLexer, ExtractsIncludeTargetsBeforeBlankingDirectives) {
  const StrippedSource s = strip_source(
      "#include \"core/engine.hpp\"\n"
      "#include <vector>\n"
      "#define NOT_AN_INCLUDE \\\n  include \"fake.hpp\"\n"
      "int x;\n");
  ASSERT_EQ(s.includes.size(), 2u);
  EXPECT_EQ(s.includes[0].target, "core/engine.hpp");
  EXPECT_EQ(s.includes[0].line, 1u);
  EXPECT_EQ(s.includes[1].target, "vector");
  EXPECT_EQ(s.text.find("fake.hpp"), std::string::npos);
}

// ------------------------------------------------------------- call graph

TEST(LintIndex, BuildsCallGraphWithQualifiersLocksAndTryRegions) {
  const std::vector<SourceFile> sources = {{
      "src/core/sample.cpp",
      "namespace fastcons {\n"
      "void helper() { ::fsync(3); }\n"
      "void Engine::tick() {\n"
      "  const MutexLock lock(engine_mutex_);\n"
      "  helper();\n"
      "  try { risky(); } catch (...) {}\n"
      "}\n"
      "}  // namespace\n",
  }};
  const ProgramIndex index = index_sources(sources);

  const Function* helper = find_function(index, "helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->layer, "core");
  ASSERT_EQ(helper->calls.size(), 1u);
  EXPECT_EQ(helper->calls[0].name, "fsync");
  EXPECT_TRUE(helper->calls[0].global_qualified);

  const Function* tick = find_function(index, "tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->qualified, "fastcons::Engine::tick");
  ASSERT_EQ(tick->calls.size(), 2u);
  EXPECT_EQ(tick->calls[0].name, "helper");
  ASSERT_EQ(tick->calls[0].locked.size(), 1u);
  EXPECT_EQ(tick->calls[0].locked[0], "engine_mutex_");
  EXPECT_FALSE(tick->calls[0].in_try);
  EXPECT_EQ(tick->calls[1].name, "risky");
  EXPECT_TRUE(tick->calls[1].in_try);
}

TEST(LintIndex, DeclarationsAndLocalLambdasAreNotCalls) {
  const std::vector<SourceFile> sources = {{
      "src/core/decls.cpp",
      "void consumer() {\n"
      "  const std::string value(source());\n"
      "  const auto mix = [&](int x) { return x; };\n"
      "  mix(7);\n"
      "}\n",
  }};
  const ProgramIndex index = index_sources(sources);
  const Function* consumer = find_function(index, "consumer");
  ASSERT_NE(consumer, nullptr);
  // `value` is a paren-initialised declaration and `mix` a body-local
  // lambda; only the initialiser's inner call survives as a graph edge.
  ASSERT_EQ(consumer->calls.size(), 1u);
  EXPECT_EQ(consumer->calls[0].name, "source");
}

// --------------------------------------------- one violation per rule

TEST(LintRules, BlockingUnderLockReportsChainToSyscall) {
  const std::vector<SourceFile> sources = {{
      "src/net/locked.cpp",
      "void flush_fd(int fd) { ::fdatasync(fd); }\n"
      "void Locked::update() {\n"
      "  const MutexLock lock(engine_mutex_);\n"
      "  flush_fd(4);\n"
      "}\n",
  }};
  std::vector<Violation> out;
  rule_blocking_under_lock(index_sources(sources), "engine_mutex_", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, kRuleBlocking);
  EXPECT_EQ(out[0].file, "src/net/locked.cpp");
  EXPECT_NE(out[0].message.find("fdatasync"), std::string::npos);
  EXPECT_FALSE(out[0].chain.empty());
}

TEST(LintRules, LayerDagRejectsDownwardInclude) {
  std::istringstream layers("common:\nnet: common\n");
  LayerGraph graph;
  std::string err;
  ASSERT_TRUE(parse_layer_graph(layers, graph, err)) << err;

  const std::vector<SourceFile> sources = {
      {"src/common/base.hpp", "#include \"net/wire.hpp\"\n"},
      {"src/net/wire.hpp", "#include \"common/base.hpp\"\n"},
  };
  std::vector<Violation> out;
  rule_layer_dag(index_sources(sources), graph, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, kRuleLayers);
  EXPECT_EQ(out[0].file, "src/common/base.hpp");
}

TEST(LintRules, ThrowContractCatchesUnguardedThrowThroughCallee) {
  std::istringstream contracts("decode_all\n");
  std::vector<ThrowContract> parsed;
  std::string err;
  ASSERT_TRUE(parse_contracts(contracts, parsed, err)) << err;

  const std::vector<SourceFile> sources = {{
      "src/durability/decode.cpp",
      "void inner() { throw CodecError(\"x\"); }\n"
      "void decode_all() { inner(); }\n",
  }};
  std::vector<Violation> out;
  rule_throw_contracts(index_sources(sources), parsed, out);
  ASSERT_TRUE(has_rule(out, kRuleThrow));
}

TEST(LintRules, DeterminismFlagsUnorderedContainerInDigestLayer) {
  const std::vector<SourceFile> sources = {
      {"src/core/state.hpp", "std::unordered_map<int, int> m;\n"},
      // The same text outside the digest layers is none of the rule's
      // business (the transport may hash freely).
      {"src/net/other.hpp", "std::unordered_map<int, int> m;\n"},
  };
  std::vector<Violation> out;
  rule_determinism(sources, out);
  ASSERT_EQ(out.size(), 1u);
  // Determinism violations carry the historical sub-rule name so the
  // determinism allowlist's `<path>:<sub-rule>` entries keep working.
  EXPECT_EQ(out[0].rule, "unordered-container");
  EXPECT_EQ(out[0].file, "src/core/state.hpp");
}

TEST(LintRules, DigestPurityFlagsWallClockRead) {
  const std::vector<SourceFile> sources = {{
      "src/replication/digesty.cpp",
      "double stamp() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n",
  }};
  std::vector<Violation> out;
  rule_digest_purity(index_sources(sources), out);
  ASSERT_TRUE(has_rule(out, kRuleDigest));
}

// -------------------------------------------------------------- allowlist

TEST(LintAllowlist, SuppressesByRootOrSinkAndTracksUsage) {
  std::istringstream in(
      "src/net/locked.cpp:blocking-under-lock # sanctioned flush path\n");
  Allowlist list;
  std::string err;
  ASSERT_TRUE(parse_allowlist(in, list, err)) << err;

  Violation by_root;
  by_root.file = "src/net/locked.cpp";
  by_root.rule = kRuleBlocking;
  EXPECT_TRUE(list.allowed(by_root));

  Violation by_sink;
  by_sink.file = "src/core/engine.cpp";
  by_sink.sink_file = "src/net/locked.cpp";
  by_sink.rule = kRuleBlocking;
  EXPECT_TRUE(list.allowed(by_sink));

  Violation other_rule = by_root;
  other_rule.rule = kRuleThrow;
  EXPECT_FALSE(list.allowed(other_rule));
  EXPECT_TRUE(list.entries.at(0).used);
}

TEST(LintAllowlist, ReasonIsMandatory) {
  std::istringstream in("src/net/locked.cpp:blocking-under-lock\n");
  Allowlist list;
  std::string err;
  EXPECT_FALSE(parse_allowlist(in, list, err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace fastcons::lint
