#include "sim_runtime/sim_network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

std::shared_ptr<const DemandModel> static_demand(std::vector<double> d) {
  return std::make_shared<StaticDemand>(std::move(d));
}

SimConfig fast_sim(std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seed = seed;
  return cfg;
}

Graph line5(std::uint64_t seed = 10) {
  Rng rng(seed);
  return make_line(5, {0.01, 0.05}, rng);
}

TEST(SimNetworkTest, RejectsMismatchedDemandSize) {
  EXPECT_THROW(SimNetwork(line5(), static_demand({1.0, 2.0}), fast_sim()),
               ConfigError);
}

TEST(SimNetworkTest, RejectsBadLossRate) {
  SimConfig cfg = fast_sim();
  cfg.loss_rate = 1.0;
  EXPECT_THROW(SimNetwork(line5(), static_demand({1, 1, 1, 1, 1}), cfg),
               ConfigError);
}

TEST(SimNetworkTest, SingleWritePropagatesEverywhere) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 40.0));
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_EQ(net.engine(n).read("k"), "v") << "node " << n;
    EXPECT_TRUE(net.first_delivery(n, id).has_value());
  }
  EXPECT_EQ(net.nodes_holding(id), 5u);
}

TEST(SimNetworkTest, WriterDeliveryTimeIsWriteTime) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  const UpdateId id = net.schedule_write(2, "k", "v", 1.25);
  net.run_until(2.0);
  const auto at = net.first_delivery(2, id);
  ASSERT_TRUE(at.has_value());
  EXPECT_DOUBLE_EQ(*at, 1.25);
}

TEST(SimNetworkTest, DeliveryTimesRespectCausality) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  ASSERT_TRUE(net.run_until_update_everywhere(id, 40.0));
  // Nothing can hold the update before it was written.
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_GE(*net.first_delivery(n, id), 0.5);
  }
}

TEST(SimNetworkTest, MultipleWritersConvergeToIdenticalState) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim(7));
  net.schedule_write(0, "a", "1", 0.3);
  net.schedule_write(4, "b", "2", 0.6);
  net.schedule_write(2, "a", "3", 0.9);  // conflicting key
  net.run_until(1.0);  // past the writes, so "consistent" is non-trivial
  EXPECT_TRUE(net.run_until_consistent(60.0));
  for (NodeId n = 1; n < net.size(); ++n) {
    EXPECT_EQ(net.engine(n).summary(), net.engine(0).summary());
    EXPECT_EQ(net.engine(n).read("a"), net.engine(0).read("a"));
    EXPECT_EQ(net.engine(n).read("b"), net.engine(0).read("b"));
  }
  // Last-writer-wins: the t=0.9 write to "a" is newest everywhere.
  EXPECT_EQ(net.engine(0).read("a"), "3");
}

TEST(SimNetworkTest, PredictedWriteIdsAreSequentialPerNode) {
  SimNetwork net(line5(), static_demand({1, 1, 1, 1, 1}), fast_sim());
  const UpdateId first = net.schedule_write(1, "x", "1", 0.1);
  const UpdateId second = net.schedule_write(1, "y", "2", 0.2);
  EXPECT_EQ(first, (UpdateId{1, 1}));
  EXPECT_EQ(second, (UpdateId{1, 2}));
}

TEST(SimNetworkTest, DeterministicForSameSeed) {
  const auto run = [](std::uint64_t seed) {
    SimNetwork net(line5(42), static_demand({4, 6, 3, 8, 7}), fast_sim(seed));
    const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
    net.run_until_update_everywhere(id, 40.0);
    std::vector<double> times;
    for (NodeId n = 0; n < net.size(); ++n) {
      times.push_back(net.first_delivery(n, id).value_or(-1.0));
    }
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

/// Ground truth the incremental convergence tracker must agree with.
bool brute_force_consistent(const SimNetwork& net) {
  for (NodeId n = 1; n < net.size(); ++n) {
    if (!(net.engine(n).summary() == net.engine(0).summary())) return false;
  }
  return true;
}

TEST(SimNetworkTest, IncrementalConsistencyTrackerAgreesWithBruteForce) {
  SimNetwork net(line5(), static_demand({3, 1, 4, 1, 5}), fast_sim(7));
  net.schedule_write(0, "a", "1", 0.3);
  net.schedule_write(4, "b", "2", 0.7);
  // Step through the run in slices and cross-check at every boundary,
  // including repeated polls at the same revision (the cached path).
  bool saw_inconsistent = false;
  for (int slice = 1; slice <= 120; ++slice) {
    net.run_until(0.1 * slice);
    const bool expected = brute_force_consistent(net);
    EXPECT_EQ(net.all_consistent(), expected) << "at t=" << 0.1 * slice;
    EXPECT_EQ(net.all_consistent(), expected) << "cached poll diverged";
    if (!expected) saw_inconsistent = true;
  }
  EXPECT_TRUE(saw_inconsistent);  // the check exercised both outcomes
  EXPECT_TRUE(net.all_consistent());
  EXPECT_GT(net.events_executed(), 0u);
}

TEST(SimNetworkTest, RunUntilConsistentMatchesTracker) {
  SimNetwork net(line5(), static_demand({2, 2, 2, 2, 2}), fast_sim(9));
  net.schedule_write(2, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_consistent(40.0));
  EXPECT_TRUE(brute_force_consistent(net));
}

TEST(SimNetworkTest, LossySimulationStillConverges) {
  SimConfig cfg = fast_sim(3);
  cfg.loss_rate = 0.2;
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), cfg);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 50.0));
  EXPECT_GT(net.messages_dropped(), 0u);
}

TEST(SimNetworkTest, PartitionHealsAndConverges) {
  // Cut the only link between nodes 1-2 of the line for 5 time units: the
  // far side cannot learn the update until the link heals.
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim(4));
  net.add_link_failure(1, 2, 0.0, 5.0);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  net.run_until(5.0);
  EXPECT_LT(net.nodes_holding(id), 5u);
  EXPECT_FALSE(net.first_delivery(4, id).has_value());
  EXPECT_TRUE(net.run_until_update_everywhere(id, 60.0));
  EXPECT_GE(*net.first_delivery(4, id), 5.0);
}

TEST(SimNetworkTest, OverlayLinkShortcutsPropagation) {
  // Long line; an overlay link between the endpoints lets a fast push jump
  // across if demand pulls that way.
  Rng rng(8);
  Graph g = make_line(30, {0.01, 0.02}, rng);
  std::vector<double> demand(30, 1.0);
  demand[29] = 100.0;  // far end is the hot replica
  SimConfig cfg = fast_sim(9);
  SimNetwork net(std::move(g), static_demand(demand), cfg);
  net.add_overlay_link(0, 29, 0.05);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  net.run_until(1.0);
  // The overlay target got it almost immediately via the gradient push.
  ASSERT_TRUE(net.first_delivery(29, id).has_value());
  EXPECT_LT(*net.first_delivery(29, id), 0.7);
}

TEST(SimNetworkTest, TrafficCountersAccumulate) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  net.run_until_update_everywhere(id, 40.0);
  const TrafficCounters traffic = net.total_traffic();
  EXPECT_GT(traffic.total_messages(), 0u);
  EXPECT_GT(traffic.bytes(TrafficClass::session_control), 0u);
  EXPECT_GT(traffic.messages(TrafficClass::demand_advert), 0u);
  const EngineStats stats = net.total_stats();
  EXPECT_GT(stats.sessions_initiated, 0u);
  EXPECT_EQ(stats.updates_applied, 5u);
}

TEST(SimNetworkTest, OnDeliveryObserverSeesEveryNodeOnce) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  std::vector<int> seen(5, 0);
  net.on_delivery = [&](NodeId n, const Update& u, DeliveryPath, SimTime) {
    EXPECT_EQ(u.key, "k");
    ++seen[n];
  };
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  net.run_until_update_everywhere(id, 40.0);
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(seen[n], 1) << "node " << n;
}

TEST(SimNetworkTest, WeakConfigSendsNoFastTraffic) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::weak();
  cfg.seed = 11;
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), cfg);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 50.0));
  const TrafficCounters traffic = net.total_traffic();
  EXPECT_EQ(traffic.messages(TrafficClass::fast_control), 0u);
  EXPECT_EQ(traffic.messages(TrafficClass::fast_payload), 0u);
}

TEST(SimNetworkTest, DemandNowTracksDynamicModels) {
  Rng rng(21);
  Graph g = make_line(2, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StepDemand>(std::vector<std::map<SimTime, double>>{
      {{0.0, 1.0}, {3.0, 9.0}},
      {{0.0, 2.0}},
  });
  SimNetwork net(std::move(g), demand, fast_sim());
  EXPECT_EQ(net.demand_now()[0], 1.0);
  net.run_until(3.5);
  EXPECT_EQ(net.demand_now()[0], 9.0);
  EXPECT_EQ(net.demand_now()[1], 2.0);
}

TEST(SimNetworkTest, OverlayLinkLatencyIsHonoured) {
  Rng rng(22);
  Graph g = make_line(3, {0.01, 0.011}, rng);
  std::vector<double> demand{1.0, 2.0, 50.0};
  SimNetwork net(std::move(g), static_demand(demand), fast_sim(23));
  net.add_overlay_link(0, 2, 0.2);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  net.run_until(1.15);
  // The gradient push to node 2 travelled the overlay; the offer/ack/data
  // exchange is three one-way trips, so arrival is at least 3 latencies
  // after the write.
  const auto at = net.first_delivery(2, id);
  ASSERT_TRUE(at.has_value());
  EXPECT_GE(*at, 0.5 + 3 * 0.2 - 1e-9);
}

TEST(SimNetworkTest, FailureOnOverlayLinkDropsMessages) {
  Rng rng(24);
  Graph g = make_line(3, {0.01, 0.011}, rng);
  std::vector<double> demand{1.0, 2.0, 50.0};
  SimNetwork net(std::move(g), static_demand(demand), fast_sim(25));
  net.add_overlay_link(0, 2, 0.05);
  net.add_link_failure(0, 2, 0.0, 100.0);  // overlay permanently down
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 60.0));
  EXPECT_GT(net.messages_dropped(), 0u);
}

TEST(SimNetworkTest, PeriodicTimingAlsoConverges) {
  SimConfig cfg = fast_sim(26);
  cfg.timing = SimConfig::Timing::periodic;
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), cfg);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 40.0));
}

TEST(SimNetworkTest, UnprimedTablesStillConvergeViaAdverts) {
  // prime_tables=false: nodes start ignorant of neighbour demand; the
  // advert protocol fills the tables and everything still works.
  SimConfig cfg = fast_sim(27);
  cfg.prime_tables = false;
  cfg.protocol.advert_period = 0.25;
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), cfg);
  const UpdateId id = net.schedule_write(0, "k", "v", 1.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 40.0));
  // By now the tables carry the true demands.
  EXPECT_NEAR(*net.engine(1).demand_table().demand_of(2), 3.0, 1e-9);
}

TEST(SimNetworkTest, AllConsistentDetectsDivergence) {
  SimNetwork net(line5(), static_demand({4, 6, 3, 8, 7}), fast_sim());
  EXPECT_TRUE(net.all_consistent());  // empty logs everywhere
  net.schedule_write(0, "k", "v", 0.5);
  net.run_until(0.6);
  EXPECT_FALSE(net.all_consistent());
}

}  // namespace
}  // namespace fastcons
