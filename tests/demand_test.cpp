#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "demand/demand_model.hpp"
#include "demand/demand_table.hpp"

namespace fastcons {
namespace {

TEST(StaticDemandTest, ReturnsGivenValues) {
  const StaticDemand d({4.0, 6.0, 3.0, 8.0, 7.0});  // paper §2's table
  EXPECT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d.demand_at(0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(d.demand_at(3, 100.0), 8.0);
  EXPECT_FALSE(d.is_dynamic());
}

TEST(StaticDemandTest, RejectsNegative) {
  EXPECT_THROW(StaticDemand({1.0, -2.0}), ConfigError);
}

TEST(UniformRandomDemandTest, StaysInRange) {
  Rng rng(1);
  const StaticDemand d = make_uniform_random_demand(200, 10.0, 20.0, rng);
  for (NodeId n = 0; n < 200; ++n) {
    EXPECT_GE(d.demand_at(n, 0.0), 10.0);
    EXPECT_LE(d.demand_at(n, 0.0), 20.0);
  }
}

TEST(UniformRandomDemandTest, RejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(make_uniform_random_demand(5, 5.0, 1.0, rng), ConfigError);
  EXPECT_THROW(make_uniform_random_demand(5, -1.0, 1.0, rng), ConfigError);
}

TEST(ZipfDemandTest, HasHeavyHeadAndLightTail) {
  Rng rng(2);
  const StaticDemand d = make_zipf_demand(100, 1.0, 100.0, rng);
  double max_d = 0.0, min_d = 1e18;
  for (NodeId n = 0; n < 100; ++n) {
    max_d = std::max(max_d, d.demand_at(n, 0.0));
    min_d = std::min(min_d, d.demand_at(n, 0.0));
  }
  EXPECT_DOUBLE_EQ(max_d, 100.0);  // rank 1
  EXPECT_DOUBLE_EQ(min_d, 1.0);    // rank 100
}

TEST(StepDemandTest, Figure4Schedule) {
  // Fig. 4: A: 2 -> 0 and C: 0 -> 9 at t=2; B=6, D=13 constant.
  const StepDemand d({
      /*A*/ {{0.0, 2.0}, {2.0, 0.0}},
      /*B*/ {{0.0, 6.0}},
      /*C*/ {{0.0, 0.0}, {2.0, 9.0}},
      /*D*/ {{0.0, 13.0}},
  });
  EXPECT_TRUE(d.is_dynamic());
  EXPECT_DOUBLE_EQ(d.demand_at(0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(d.demand_at(0, 2.0), 0.0);  // boundary belongs to new step
  EXPECT_DOUBLE_EQ(d.demand_at(2, 1.99), 0.0);
  EXPECT_DOUBLE_EQ(d.demand_at(2, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(d.demand_at(3, 50.0), 13.0);
}

TEST(StepDemandTest, NegativeTimeClampsToFirstSlot) {
  // Callers with skewed clocks can ask fractionally before the epoch; that
  // must read the t=0 slot, not abort.
  const StepDemand d(
      std::vector<std::map<SimTime, double>>{{{0.0, 2.0}, {2.0, 7.0}}});
  EXPECT_DOUBLE_EQ(d.demand_at(0, -1e-9), 2.0);
  EXPECT_DOUBLE_EQ(d.demand_at(0, -5.0), 2.0);
}

TEST(StepDemandTest, RequiresTimeZeroEntry) {
  std::vector<std::map<SimTime, double>> missing_zero{{{1.0, 2.0}}};
  EXPECT_THROW(StepDemand(std::move(missing_zero)), ConfigError);
  std::vector<std::map<SimTime, double>> empty_schedule(1);
  EXPECT_THROW(StepDemand(std::move(empty_schedule)), ConfigError);
}

TEST(RandomWalkDemandTest, StaysWithinBounds) {
  Rng rng(3);
  const RandomWalkDemand d(10, 50.0, 2.0, 1.0, 100.0, 0.5, 20.0, rng);
  for (NodeId n = 0; n < 10; ++n) {
    for (double t = 0.0; t <= 20.0; t += 0.25) {
      const double v = d.demand_at(n, t);
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

TEST(RandomWalkDemandTest, ActuallyMoves) {
  Rng rng(4);
  const RandomWalkDemand d(1, 50.0, 2.0, 1.0, 100.0, 0.5, 20.0, rng);
  bool moved = false;
  for (double t = 0.5; t <= 20.0; t += 0.5) {
    if (d.demand_at(0, t) != d.demand_at(0, 0.0)) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(MigratingHotspotTest, PeakMovesAtSwitchTime) {
  // Node 0 is centre A (0 hops), node 1 is centre B.
  const MigratingHotspotDemand d({0, 3}, {3, 0}, 5.0, 100.0, 4.0);
  EXPECT_DOUBLE_EQ(d.demand_at(0, 0.0), 100.0);
  EXPECT_GT(d.demand_at(0, 0.0), d.demand_at(1, 0.0));
  EXPECT_DOUBLE_EQ(d.demand_at(1, 5.0), 100.0);
  EXPECT_GT(d.demand_at(1, 6.0), d.demand_at(0, 6.0));
  // Far nodes decay toward the base demand.
  EXPECT_NEAR(d.demand_at(1, 0.0), 4.0 + 96.0 / 8.0, 1e-12);
}

TEST(DiurnalDemandTest, OscillatesBetweenBaseAndPeak) {
  Rng rng(5);
  const DiurnalDemand d(4, 10.0, 30.0, 8.0, rng);
  for (NodeId n = 0; n < 4; ++n) {
    double lo = 1e18, hi = -1e18;
    for (double t = 0.0; t <= 16.0; t += 0.05) {
      const double v = d.demand_at(n, t);
      EXPECT_GE(v, 10.0 - 1e-9);
      EXPECT_LE(v, 40.0 + 1e-9);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_NEAR(lo, 10.0, 0.5);  // night floor
    EXPECT_NEAR(hi, 40.0, 0.5);  // midday peak
  }
}

TEST(DiurnalDemandTest, PhasesDiffer) {
  Rng rng(6);
  const DiurnalDemand d(8, 0.0, 10.0, 4.0, rng);
  // Not all nodes peak together.
  bool differ = false;
  for (NodeId n = 1; n < 8; ++n) {
    if (d.demand_at(n, 1.0) != d.demand_at(0, 1.0)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(DiurnalDemandTest, RejectsBadParams) {
  Rng rng(7);
  EXPECT_THROW(DiurnalDemand(2, -1.0, 1.0, 1.0, rng), ConfigError);
  EXPECT_THROW(DiurnalDemand(2, 1.0, 1.0, 0.0, rng), ConfigError);
}

TEST(DemandSnapshotTest, SamplesEveryNode) {
  const StaticDemand d({1.0, 2.0, 3.0});
  const auto snap = demand_snapshot(d, 0.0);
  EXPECT_EQ(snap, (std::vector<double>{1.0, 2.0, 3.0}));
}

// ---------------------------------------------------------------------------

TEST(DemandTableTest, UpdateAndQuery) {
  DemandTable table({1, 2, 3});
  table.update(2, 9.0, 1.0);
  EXPECT_EQ(table.demand_of(2), 9.0);
  EXPECT_EQ(table.demand_of(1), 0.0);
  EXPECT_FALSE(table.demand_of(99).has_value());
}

TEST(DemandTableTest, UnknownPeerUpdateIgnored) {
  DemandTable table({1});
  table.update(42, 5.0, 1.0);
  EXPECT_FALSE(table.demand_of(42).has_value());
}

TEST(DemandTableTest, OrderByDemandWithIdTieBreak) {
  DemandTable table({1, 2, 3, 4});
  table.update(1, 5.0, 0.0);
  table.update(2, 8.0, 0.0);
  table.update(3, 5.0, 0.0);
  table.update(4, 1.0, 0.0);
  EXPECT_EQ(table.by_demand_desc(0.0), (std::vector<NodeId>{2, 1, 3, 4}));
}

TEST(DemandTableTest, PaperSection2Ordering) {
  // B's neighbours A(4), C(3), D(8), E(7) must order D, E, A, C — the
  // paper's "best case" session order.
  DemandTable table({0 /*A*/, 2 /*C*/, 3 /*D*/, 4 /*E*/});
  table.update(0, 4.0, 0.0);
  table.update(2, 3.0, 0.0);
  table.update(3, 8.0, 0.0);
  table.update(4, 7.0, 0.0);
  EXPECT_EQ(table.by_demand_desc(0.0), (std::vector<NodeId>{3, 4, 0, 2}));
}

TEST(DemandTableTest, LivenessWindowExpiresSilentPeers) {
  DemandTable table({1, 2}, /*liveness_window=*/1.0);
  table.update(1, 5.0, 0.0);
  table.update(2, 3.0, 0.0);
  EXPECT_TRUE(table.is_alive(1, 0.5));
  EXPECT_TRUE(table.is_alive(1, 1.0));   // boundary inclusive
  EXPECT_FALSE(table.is_alive(1, 1.01));
  table.touch(1, 1.5);
  EXPECT_TRUE(table.is_alive(1, 2.0));
  EXPECT_FALSE(table.is_alive(2, 2.0));
  EXPECT_EQ(table.by_demand_desc(2.0), (std::vector<NodeId>{1}));
  EXPECT_EQ(table.alive(2.0), (std::vector<NodeId>{1}));
}

TEST(DemandTableTest, DisabledLivenessKeepsEveryoneAlive) {
  DemandTable table({1}, /*liveness_window=*/0.0);
  EXPECT_TRUE(table.is_alive(1, 1e9));
}

TEST(DemandTableTest, TouchDoesNotChangeDemand) {
  DemandTable table({1}, 1.0);
  table.update(1, 7.0, 0.0);
  table.touch(1, 10.0);
  EXPECT_EQ(table.demand_of(1), 7.0);
  EXPECT_TRUE(table.is_alive(1, 10.5));
}

TEST(DemandTableTest, AddNeighbourIsIdempotent) {
  DemandTable table({1});
  table.add_neighbour(5, 2.0);
  table.add_neighbour(5, 3.0);
  EXPECT_EQ(table.entries().size(), 2u);
  EXPECT_TRUE(table.demand_of(5).has_value());
}

TEST(DemandTableTest, IsAliveUnknownPeer) {
  DemandTable table({1});
  EXPECT_FALSE(table.is_alive(9, 0.0));
}

}  // namespace
}  // namespace fastcons
