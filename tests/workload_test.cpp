#include "experiment/workload.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "sim_runtime/trace.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

WorkloadConfig small_workload() {
  WorkloadConfig w;
  w.keys = 3;
  w.write_interval = 2.0;
  w.duration = 30.0;
  w.warmup = 4.0;
  w.seed = 11;
  return w;
}

std::shared_ptr<const DemandModel> uniform_demand(std::size_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<StaticDemand>(
      make_uniform_random_demand(n, 5.0, 50.0, rng));
}

TEST(WorkloadTest, ValidatesConfig) {
  Rng rng(1);
  const Graph g = make_ring(5, {0.01, 0.02}, rng);
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  WorkloadConfig bad = small_workload();
  bad.keys = 0;
  EXPECT_THROW(run_workload(Graph(g), uniform_demand(5, 2), sim, bad),
               ConfigError);
  bad = small_workload();
  bad.write_interval = 0.0;
  EXPECT_THROW(run_workload(Graph(g), uniform_demand(5, 2), sim, bad),
               ConfigError);
  bad = small_workload();
  bad.warmup = bad.duration;
  EXPECT_THROW(run_workload(Graph(g), uniform_demand(5, 2), sim, bad),
               ConfigError);
}

TEST(WorkloadTest, ProducesReadsAndWrites) {
  Rng rng(2);
  Graph g = make_barabasi_albert(12, 2, {0.01, 0.05}, rng);
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  sim.seed = 3;
  const WorkloadResult result =
      run_workload(std::move(g), uniform_demand(12, 4), sim, small_workload());
  EXPECT_GT(result.writes, 5u);
  // ~12 nodes * ~27 demand * 26 effective units of reads ≈ thousands.
  EXPECT_GT(result.reads, 1000u);
  EXPECT_GT(result.fresh_reads, 0u);
  EXPECT_LE(result.fresh_reads, result.reads);
  EXPECT_GE(result.fresh_fraction(), 0.0);
  EXPECT_LE(result.fresh_fraction(), 1.0);
}

TEST(WorkloadTest, DeterministicForSameSeeds) {
  const auto run = [] {
    Rng rng(5);
    Graph g = make_ring(8, {0.01, 0.02}, rng);
    SimConfig sim;
    sim.protocol = ProtocolConfig::fast();
    sim.seed = 6;
    return run_workload(std::move(g), uniform_demand(8, 7), sim,
                        small_workload());
  };
  const WorkloadResult a = run();
  const WorkloadResult b = run();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.fresh_reads, b.fresh_reads);
  EXPECT_EQ(a.writes, b.writes);
}

TEST(WorkloadTest, FastServesFresherThanWeak) {
  // The paper's bottom line from the client's point of view: under the same
  // workload, fast consistency serves a larger fraction of reads with the
  // newest content.
  const auto run = [](ProtocolConfig protocol) {
    Rng rng(8);
    Graph g = make_barabasi_albert(25, 2, {0.01, 0.05}, rng);
    SimConfig sim;
    sim.protocol = protocol;
    sim.seed = 9;
    WorkloadConfig w = small_workload();
    w.duration = 60.0;
    w.write_interval = 1.5;
    w.seed = 10;
    return run_workload(std::move(g), uniform_demand(25, 11), sim, w);
  };
  const WorkloadResult weak = run(ProtocolConfig::weak());
  const WorkloadResult fast = run(ProtocolConfig::fast());
  EXPECT_GT(fast.fresh_fraction(), weak.fresh_fraction());
  // Stale reads that do happen are also younger under fast consistency.
  EXPECT_LT(fast.stale_age.mean(), weak.stale_age.mean());
}

TEST(WorkloadTest, NoWritesMeansAllReadsFresh) {
  Rng rng(12);
  Graph g = make_ring(6, {0.01, 0.02}, rng);
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  WorkloadConfig w = small_workload();
  w.write_interval = 1e9;  // effectively never writes
  const WorkloadResult result =
      run_workload(std::move(g), uniform_demand(6, 13), sim, w);
  EXPECT_EQ(result.writes, 0u);
  EXPECT_EQ(result.fresh_reads, result.reads);
  EXPECT_DOUBLE_EQ(result.fresh_fraction(), 1.0);
}

TEST(WorkloadTest, ZeroDemandNodesIssueNoReads) {
  Rng rng(14);
  Graph g = make_line(4, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(std::vector<double>{0, 0, 0, 0});
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  const WorkloadResult result =
      run_workload(std::move(g), demand, sim, small_workload());
  EXPECT_EQ(result.reads, 0u);
}

// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsEveryDeliveryOnce) {
  Rng rng(15);
  Graph g = make_ring(6, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(6, 0.0, 50.0, rng));
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  sim.seed = 16;
  SimNetwork net(std::move(g), demand, sim);
  TraceRecorder trace(net);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  ASSERT_TRUE(net.run_until_update_everywhere(id, 40.0));
  const auto events = trace.for_update(id);
  EXPECT_EQ(events.size(), 6u);
  // First event is the local write at the origin.
  EXPECT_EQ(events.front().node, 0u);
  EXPECT_EQ(events.front().path, DeliveryPath::local_write);
  // Timestamps are non-decreasing (delivery order).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
  EXPECT_EQ(trace.count_path(DeliveryPath::local_write), 1u);
  EXPECT_EQ(trace.count_path(DeliveryPath::session) +
                trace.count_path(DeliveryPath::fast_push),
            5u);
}

TEST(TraceTest, DescribeMentionsEveryNode) {
  Rng rng(17);
  Graph g = make_line(3, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(std::vector<double>{1, 5, 9});
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  sim.seed = 18;
  SimNetwork net(std::move(g), demand, sim);
  TraceRecorder trace(net);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  ASSERT_TRUE(net.run_until_update_everywhere(id, 30.0));
  const std::string description = trace.describe(id);
  EXPECT_NE(description.find("->"), std::string::npos);
  EXPECT_NE(description.find("local-write"), std::string::npos);
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  Rng rng(19);
  Graph g = make_line(3, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(std::vector<double>{1, 2, 3});
  SimConfig sim;
  sim.protocol = ProtocolConfig::fast();
  sim.seed = 20;
  SimNetwork net(std::move(g), demand, sim);
  TraceRecorder trace(net);
  const UpdateId id = net.schedule_write(1, "k", "v", 0.5);
  ASSERT_TRUE(net.run_until_update_everywhere(id, 30.0));
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("at,node,origin,seq,path"), std::string::npos);
  EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 4);
}

}  // namespace
}  // namespace fastcons
