// Replays the committed fuzz seed corpus through the fuzz targets as plain
// ctest cases, so the corpus inputs — including every fuzzer-found crash
// committed as a regression — are exercised even in builds without a fuzzer
// (GCC, sanitizer tiers, the primary CI matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tests/fuzz/fuzz_targets.hpp"

namespace fastcons {
namespace {

namespace fs = std::filesystem;

// Set by tests/CMakeLists.txt to <repo>/tests/fuzz/corpus.
const fs::path kCorpusRoot = FASTCONS_FUZZ_CORPUS_DIR;

std::vector<fs::path> corpus_files(const std::string& target) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(kCorpusRoot / target)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string s = buffer.str();
  return {s.begin(), s.end()};
}

using FuzzTarget = int (*)(const std::uint8_t*, std::size_t);

void replay_all(const std::string& name, FuzzTarget target) {
  const std::vector<fs::path> files = corpus_files(name);
  // A missing or empty corpus means the committed seeds were lost, which
  // would silently turn the CI fuzz-smoke into a from-scratch run.
  ASSERT_GE(files.size(), 5u) << "seed corpus " << name << " missing";
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::vector<std::uint8_t> bytes = read_bytes(file);
    // The target aborts on any property violation and lets non-CodecError
    // exceptions escape; reaching the return is the assertion.
    EXPECT_EQ(0, target(bytes.data(), bytes.size()));
  }
}

TEST(FuzzCorpus, WireSeedsReplayCleanly) {
  replay_all("wire", &fuzz::wire_input);
}

TEST(FuzzCorpus, SummarySeedsReplayCleanly) {
  replay_all("summary", &fuzz::summary_input);
}

TEST(FuzzCorpus, WalSeedsReplayCleanly) {
  replay_all("wal", &fuzz::wal_input);
}

TEST(FuzzCorpus, CheckpointSeedsReplayCleanly) {
  replay_all("checkpoint", &fuzz::checkpoint_input);
}

// The corpus regenerator (corpus_gen.cpp) encodes one seed per message tag;
// if a new Message alternative is added without a seed, the fuzzers start
// blind on it. Count enforced here instead of in corpus_gen so the failure
// appears in ctest, next to the code change that caused it.
TEST(FuzzCorpus, WireCorpusCoversEveryMessageTag) {
  std::vector<std::uint8_t> tags;
  for (const fs::path& file : corpus_files("wire")) {
    const std::vector<std::uint8_t> bytes = read_bytes(file);
    if (bytes.size() >= 5) tags.push_back(bytes[4]);  // tag follows the u32 length
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  std::size_t known = 0;
  for (const std::uint8_t tag : tags) {
    if (tag >= 1 && tag <= 8) ++known;
  }
  EXPECT_EQ(known, 8u) << "corpus lacks a seed for some message tag";
}

}  // namespace
}  // namespace fastcons
