#include "net/wire.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fastcons {
namespace {

WireFrame roundtrip(NodeId sender, const Message& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(sender, msg);
  // Strip the 4-byte length prefix for decode_body.
  return decode_body(std::span(frame).subspan(4));
}

SummaryVector sample_summary() {
  SummaryVector sv;
  sv.add(UpdateId{0, 1});
  sv.add(UpdateId{0, 2});
  sv.add(UpdateId{3, 7});  // out-of-order extra
  return sv;
}

Update sample_update(SeqNo seq = 1) {
  return Update{UpdateId{2, seq}, 1.25, "key-" + std::to_string(seq),
                "value-" + std::to_string(seq)};
}

TEST(WireTest, SessionRequestRoundtrip) {
  const WireFrame frame = roundtrip(5, Message{SessionRequest{42}});
  EXPECT_EQ(frame.sender, 5u);
  EXPECT_EQ(std::get<SessionRequest>(frame.msg).session_id, 42u);
}

TEST(WireTest, SessionSummaryRoundtrip) {
  const SessionSummary msg{7, sample_summary()};
  const WireFrame frame = roundtrip(1, Message{msg});
  const auto& decoded = std::get<SessionSummary>(frame.msg);
  EXPECT_EQ(decoded.session_id, 7u);
  EXPECT_EQ(decoded.summary, msg.summary);
}

TEST(WireTest, SessionPushRoundtrip) {
  SessionPush msg;
  msg.session_id = 9;
  msg.summary = sample_summary();
  msg.updates = {sample_update(1), sample_update(2)};
  const WireFrame frame = roundtrip(3, Message{msg});
  const auto& decoded = std::get<SessionPush>(frame.msg);
  EXPECT_EQ(decoded.summary, msg.summary);
  EXPECT_EQ(decoded.updates, msg.updates);
}

TEST(WireTest, SessionReplyRoundtrip) {
  SessionReply msg{11, {sample_update(3)}};
  const WireFrame frame = roundtrip(3, Message{msg});
  EXPECT_EQ(std::get<SessionReply>(frame.msg).updates, msg.updates);
}

TEST(WireTest, FastOfferRoundtrip) {
  FastOffer msg{13, {OfferedId{UpdateId{1, 5}, 2.5},
                     OfferedId{UpdateId{2, 9}, 3.5}}};
  const WireFrame frame = roundtrip(4, Message{msg});
  const auto& decoded = std::get<FastOffer>(frame.msg);
  EXPECT_EQ(decoded.offer_id, 13u);
  EXPECT_EQ(decoded.offered, msg.offered);
}

TEST(WireTest, FastAckRoundtripBothModes) {
  {
    const WireFrame yes = roundtrip(1, Message{FastAck{1, true, {}}});
    EXPECT_TRUE(std::get<FastAck>(yes.msg).yes);
    EXPECT_TRUE(std::get<FastAck>(yes.msg).wanted.empty());
  }
  {
    FastAck subset{2, true, {UpdateId{0, 1}, UpdateId{3, 4}}};
    const WireFrame frame = roundtrip(1, Message{subset});
    EXPECT_EQ(std::get<FastAck>(frame.msg).wanted, subset.wanted);
  }
}

TEST(WireTest, FastDataRoundtrip) {
  FastData msg{17, {sample_update(4)}};
  const WireFrame frame = roundtrip(6, Message{msg});
  EXPECT_EQ(std::get<FastData>(frame.msg).updates, msg.updates);
}

TEST(WireTest, DemandAdvertRoundtrip) {
  const WireFrame frame = roundtrip(8, Message{DemandAdvert{123.456}});
  EXPECT_DOUBLE_EQ(std::get<DemandAdvert>(frame.msg).demand, 123.456);
}

TEST(WireTest, EmptyStringsAndValuesSurvive) {
  FastData msg{1, {Update{UpdateId{0, 1}, 0.0, "", ""}}};
  const WireFrame frame = roundtrip(0, Message{msg});
  const auto& u = std::get<FastData>(frame.msg).updates[0];
  EXPECT_EQ(u.key, "");
  EXPECT_EQ(u.value, "");
}

TEST(WireTest, BinaryPayloadSurvives) {
  std::string value;
  for (int i = 0; i < 256; ++i) value.push_back(static_cast<char>(i));
  FastData msg{1, {Update{UpdateId{0, 1}, 0.0, std::string("\0k\0", 3), value}}};
  const WireFrame frame = roundtrip(0, Message{msg});
  EXPECT_EQ(std::get<FastData>(frame.msg).updates[0].value, value);
  EXPECT_EQ(std::get<FastData>(frame.msg).updates[0].key.size(), 3u);
}

TEST(WireTest, UnknownTagThrows) {
  std::vector<std::uint8_t> body{99, 0, 0, 0, 0};
  EXPECT_THROW(decode_body(body), CodecError);
}

TEST(WireTest, TruncatedBodyThrows) {
  const std::vector<std::uint8_t> frame =
      encode_frame(1, Message{SessionRequest{7}});
  const std::span<const std::uint8_t> body = std::span(frame).subspan(4);
  EXPECT_THROW(decode_body(body.subspan(0, body.size() - 1)), CodecError);
}

TEST(WireTest, TrailingBytesThrow) {
  std::vector<std::uint8_t> frame = encode_frame(1, Message{SessionRequest{7}});
  frame.push_back(0);
  EXPECT_THROW(decode_body(std::span(frame).subspan(4)), CodecError);
}

TEST(WireTest, EstimatedSizeMatchesEncodedSizeExactly) {
  // estimated_wire_size (core) mirrors the codec (net); randomised check
  // that they can never drift apart.
  Rng rng(77);
  for (int round = 0; round < 300; ++round) {
    Message msg;
    switch (rng.index(8)) {
      case 0: msg = SessionRequest{rng.next_u64()}; break;
      case 1: msg = SessionSummary{rng.next_u64(), sample_summary()}; break;
      case 2: {
        SessionPush m;
        m.session_id = rng.next_u64();
        m.summary = sample_summary();
        const std::size_t n = rng.index(4);
        for (std::size_t i = 0; i < n; ++i) m.updates.push_back(sample_update(i + 1));
        msg = std::move(m);
        break;
      }
      case 3: {
        SessionReply m;
        m.session_id = rng.next_u64();
        const std::size_t n = rng.index(4);
        for (std::size_t i = 0; i < n; ++i) m.updates.push_back(sample_update(i + 1));
        msg = std::move(m);
        break;
      }
      case 4: {
        FastOffer m;
        m.offer_id = rng.next_u64();
        const std::size_t n = rng.index(5);
        for (std::size_t i = 0; i < n; ++i) {
          m.offered.push_back(OfferedId{UpdateId{static_cast<NodeId>(i), i + 1},
                                        rng.next_double()});
        }
        msg = std::move(m);
        break;
      }
      case 5: {
        FastAck m;
        m.offer_id = rng.next_u64();
        m.yes = rng.bernoulli(0.5);
        const std::size_t n = rng.index(5);
        for (std::size_t i = 0; i < n; ++i) {
          m.wanted.push_back(UpdateId{static_cast<NodeId>(i), i + 1});
        }
        msg = std::move(m);
        break;
      }
      case 6: {
        FastData m;
        m.offer_id = rng.next_u64();
        const std::size_t n = rng.index(4);
        for (std::size_t i = 0; i < n; ++i) m.updates.push_back(sample_update(i + 1));
        msg = std::move(m);
        break;
      }
      default: msg = DemandAdvert{rng.next_double()}; break;
    }
    EXPECT_EQ(encode_frame(1, msg).size(), estimated_wire_size(msg))
        << "type " << message_name(msg);
  }
}

TEST(FrameReaderTest, SingleFrame) {
  FrameReader reader;
  reader.feed(encode_frame(4, Message{SessionRequest{1}}));
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 4u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, ByteAtATimeDelivery) {
  FrameReader reader;
  const auto frame = encode_frame(2, Message{DemandAdvert{7.5}});
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(std::span(&frame[i], 1));
    EXPECT_FALSE(reader.next().has_value()) << "at byte " << i;
  }
  reader.feed(std::span(&frame.back(), 1));
  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(std::get<DemandAdvert>(decoded->msg).demand, 7.5);
}

TEST(FrameReaderTest, MultipleFramesInOneChunk) {
  FrameReader reader;
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto f = encode_frame(1, Message{SessionRequest{i}});
    bytes.insert(bytes.end(), f.begin(), f.end());
  }
  reader.feed(bytes);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(std::get<SessionRequest>(frame->msg).session_id, i);
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReaderTest, OversizedAnnouncedLengthThrows) {
  FrameReader reader;
  std::vector<std::uint8_t> evil{0xff, 0xff, 0xff, 0xff};
  reader.feed(evil);
  EXPECT_THROW(reader.next(), CodecError);
}

TEST(FrameReaderTest, ZeroLengthFrameThrows) {
  FrameReader reader;
  std::vector<std::uint8_t> evil{0, 0, 0, 0};
  reader.feed(evil);
  EXPECT_THROW(reader.next(), CodecError);
}

// ---------------------------------------------------------------------------
// Fuzzing: arbitrary bytes must never crash the decoder — only CodecError.

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBodiesNeverCrash) {
  Rng rng(GetParam() * 2654435761u + 1);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> body(rng.index(200) + 1);
    for (auto& byte : body) byte = static_cast<std::uint8_t>(rng.index(256));
    try {
      const WireFrame frame = decode_body(body);
      // Decoding random bytes can legitimately succeed; the result must at
      // least re-encode without crashing.
      (void)encode_frame(frame.sender, frame.msg);
    } catch (const CodecError&) {
      // expected for most inputs
    }
  }
}

TEST_P(WireFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(GetParam() * 40503u + 7);
  SessionPush push;
  push.session_id = 5;
  push.summary = sample_summary();
  push.updates = {sample_update(1), sample_update(2)};
  const std::vector<std::uint8_t> frame = encode_frame(2, Message{push});
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> mutated(frame.begin() + 4, frame.end());
    const std::size_t flips = rng.index(4) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    try {
      (void)decode_body(mutated);
    } catch (const CodecError&) {
    }
  }
}

TEST_P(WireFuzz, TruncationsAtEveryLengthNeverCrash) {
  Rng rng(GetParam());
  SessionSummary msg{9, sample_summary()};
  const std::vector<std::uint8_t> frame = encode_frame(1, Message{msg});
  for (std::size_t len = 0; len + 4 < frame.size(); ++len) {
    const std::span<const std::uint8_t> body(frame.data() + 4, len);
    if (len + 4 == frame.size()) continue;  // full frame decodes fine
    try {
      (void)decode_body(body);
    } catch (const CodecError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range<std::uint64_t>(1, 6));

TEST(FrameReaderTest, ManyFramesCompactBuffer) {
  FrameReader reader;
  // Stream enough frames to trigger internal compaction repeatedly.
  for (int i = 0; i < 2000; ++i) {
    reader.feed(encode_frame(1, Message{SessionRequest{static_cast<std::uint64_t>(i)}}));
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(std::get<SessionRequest>(frame->msg).session_id,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace fastcons
