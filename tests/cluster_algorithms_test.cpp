// LocalCluster integration across protocol variants: every named algorithm
// and the truncation/fanout options must also converge over real TCP, not
// just in simulation. Skips gracefully without loopback networking.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/cluster.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

bool loopback_available() {
  try {
    return TcpListener::bind_loopback(0).valid();
  } catch (const TransportError&) {
    return false;
  }
}

#define REQUIRE_LOOPBACK()                               \
  do {                                                    \
    if (!loopback_available()) {                          \
      GTEST_SKIP() << "loopback networking unavailable";  \
    }                                                     \
  } while (0)

struct Variant {
  const char* name;
  ProtocolConfig protocol;
};

std::vector<Variant> variants() {
  ProtocolConfig truncating = ProtocolConfig::fast();
  truncating.auto_truncate = true;
  ProtocolConfig fanout2 = ProtocolConfig::fast();
  fanout2.fast_fanout = 2;
  fanout2.ack_mode = FastAckMode::subset;
  return {
      {"weak", ProtocolConfig::weak()},
      {"demand-order", ProtocolConfig::demand_order_only()},
      {"fast", ProtocolConfig::fast()},
      {"fast+truncate", truncating},
      {"fast+fanout2+subset", fanout2},
  };
}

class ClusterAlgorithmSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterAlgorithmSweep, StarClusterConverges) {
  REQUIRE_LOOPBACK();
  const Variant variant = variants()[GetParam()];
  Rng rng(GetParam() + 1);
  const Graph g = make_star(4, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = variant.protocol;
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {1.0, 9.0, 5.0, 3.0};
  cfg.seed = GetParam() + 10;
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("algo", variant.name);
  const bool converged = cluster.wait_for_convergence(15.0);
  std::vector<std::optional<std::string>> values;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    values.push_back(cluster.server(n).read("algo"));
  }
  cluster.stop();
  ASSERT_TRUE(converged) << variant.name;
  for (NodeId n = 0; n < values.size(); ++n) {
    ASSERT_TRUE(values[n].has_value()) << variant.name << " node " << n;
    EXPECT_EQ(*values[n], variant.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, ClusterAlgorithmSweep,
                         ::testing::Range<std::size_t>(0, 5));

TEST(ClusterAlgorithmsTest, DemandChangeRedirectsLivePushes) {
  REQUIRE_LOOPBACK();
  // Hub with two leaves; leaf 2 becomes the hot one at runtime via
  // set_demand; subsequent writes should reach it via offers.
  Rng rng(9);
  const Graph g = make_star(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.2;
  cfg.seconds_per_unit = 0.05;
  cfg.demands = {1.0, 50.0, 2.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // adverts
  cluster.server(0).write("k1", "v1");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Flip the hot leaf.
  cluster.server(1).set_demand(2.0);
  cluster.server(2).set_demand(50.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // re-advert
  cluster.server(0).write("k2", "v2");
  const bool converged = cluster.wait_for_convergence(15.0, 2);
  const auto offers_to_someone = cluster.server(0).stats().offers_sent;
  cluster.stop();
  ASSERT_TRUE(converged);
  EXPECT_GE(offers_to_someone, 1u);
}

TEST(ClusterAlgorithmsTest, SequentialWritesKeepLastWriterWins) {
  REQUIRE_LOOPBACK();
  Rng rng(11);
  const Graph g = make_line(3, {0.0, 0.0}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.seconds_per_unit = 0.02;
  cfg.demands = {3.0, 2.0, 1.0};
  LocalCluster cluster(g, cfg);
  cluster.start();
  cluster.server(0).write("x", "first");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  cluster.server(2).write("x", "second");
  // Require BOTH updates everywhere: right after the second write() call
  // the update may still be in server 2's command queue, and the cluster
  // can momentarily look converged on the first write alone.
  const bool converged = cluster.wait_for_convergence(15.0, 2);
  std::vector<std::optional<std::string>> values;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    values.push_back(cluster.server(n).read("x"));
  }
  cluster.stop();
  ASSERT_TRUE(converged);
  for (const auto& value : values) {
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, "second");  // later wall-clock write wins everywhere
  }
}

}  // namespace
}  // namespace fastcons
