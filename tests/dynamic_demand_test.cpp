// End-to-end dynamic-demand behaviour (paper §3-4): demand shifts while
// updates propagate; the dynamic algorithm keeps routing consistency toward
// the current hot zones because adverts refresh the neighbour tables.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace fastcons {
namespace {

TEST(DynamicDemandTest, AdvertsPropagateShiftedDemand) {
  // Star around node 0; node 2's demand jumps at t=2. After a few advert
  // periods node 0's table must reflect the jump.
  Rng rng(1);
  Graph g = make_star(4, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StepDemand>(std::vector<std::map<SimTime, double>>{
      {{0.0, 1.0}},
      {{0.0, 5.0}},
      {{0.0, 0.0}, {2.0, 50.0}},
      {{0.0, 3.0}},
  });
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.25;
  cfg.seed = 2;
  SimNetwork net(std::move(g), demand, cfg);
  net.run_until(1.5);
  EXPECT_NEAR(*net.engine(0).demand_table().demand_of(2), 0.0, 1e-9);
  net.run_until(3.0);
  EXPECT_NEAR(*net.engine(0).demand_table().demand_of(2), 50.0, 1e-9);
}

TEST(DynamicDemandTest, HotspotShiftRedirectsFastPushes) {
  // Node 0 writes repeatedly. Before the shift node 1 is hot, after it
  // node 2 is. Fast pushes must chase the hotspot.
  Rng rng(3);
  Graph g = make_star(3, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StepDemand>(std::vector<std::map<SimTime, double>>{
      {{0.0, 1.0}},                  // hub / writer
      {{0.0, 40.0}, {5.0, 2.0}},     // hot early
      {{0.0, 2.0}, {5.0, 40.0}},     // hot late
  });
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.2;
  cfg.seed = 4;
  SimNetwork net(std::move(g), demand, cfg);

  const UpdateId early = net.schedule_write(0, "early", "1", 1.0);
  const UpdateId late = net.schedule_write(0, "late", "2", 6.0);
  net.run_until(1.5);
  // The early write was pushed to the then-hot node 1 immediately.
  ASSERT_TRUE(net.first_delivery(1, early).has_value());
  EXPECT_LT(*net.first_delivery(1, early) - 1.0, 0.1);
  net.run_until(6.5);
  // The late write chased the new hotspot at node 2.
  ASSERT_TRUE(net.first_delivery(2, late).has_value());
  EXPECT_LT(*net.first_delivery(2, late) - 6.0, 0.1);
}

TEST(DynamicDemandTest, StaleTablesWithoutAdvertsMisroute) {
  // Same scenario but adverts disabled: the tables stay primed with t=0
  // demand, so the late write still goes to node 1 first.
  Rng rng(5);
  Graph g = make_star(3, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StepDemand>(std::vector<std::map<SimTime, double>>{
      {{0.0, 1.0}},
      {{0.0, 40.0}, {5.0, 2.0}},
      {{0.0, 2.0}, {5.0, 40.0}},
  });
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;  // static model
  cfg.seed = 6;
  SimNetwork net(std::move(g), demand, cfg);
  const UpdateId late = net.schedule_write(0, "late", "2", 6.0);
  net.run_until(6.3);
  // Misrouted: node 1 (stale table says hot) received the push, node 2 only
  // gets the update via regular sessions later.
  ASSERT_TRUE(net.first_delivery(1, late).has_value());
  const auto at_2 = net.first_delivery(2, late);
  if (at_2.has_value()) {
    EXPECT_GT(*at_2 - 6.0, *net.first_delivery(1, late) - 6.0);
  }
}

TEST(DynamicDemandTest, RandomWalkDemandStillConverges) {
  Rng rng(7);
  Graph g = make_barabasi_albert(20, 2, {0.01, 0.05}, rng);
  Rng walk_rng(8);
  auto demand = std::make_shared<RandomWalkDemand>(20, 10.0, 1.5, 1.0, 100.0,
                                                   0.5, 60.0, walk_rng);
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.25;
  cfg.seed = 9;
  SimNetwork net(std::move(g), demand, cfg);
  const UpdateId id = net.schedule_write(3, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 60.0));
}

TEST(DynamicDemandTest, MigratingHotspotConverges) {
  Rng rng(10);
  Graph g = make_grid(5, 4, {0.01, 0.03}, rng);
  const auto hops_a = bfs_hops(g, 0);
  const auto hops_b = bfs_hops(g, 19);
  auto demand = std::make_shared<MigratingHotspotDemand>(
      hops_a, hops_b, 4.0, 80.0, 2.0);
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.25;
  cfg.seed = 11;
  SimNetwork net(std::move(g), demand, cfg);
  const UpdateId id = net.schedule_write(10, "k", "v", 0.5);
  EXPECT_TRUE(net.run_until_update_everywhere(id, 60.0));
}

}  // namespace
}  // namespace fastcons
