// Golden tests for the deterministic JSON writer (src/stats/json.hpp): the
// harness determinism guarantee is byte-level, so serialisation itself must
// be pinned down to exact strings.
#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fastcons {
namespace {

TEST(Json, ScalarsSerialiseCompactly) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(0).dump(), "0");
  EXPECT_EQ(JsonValue(-17).dump(), "-17");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(JsonValue(0.1).dump(), "0.1");
  EXPECT_EQ(JsonValue(1.0).dump(), "1");
  EXPECT_EQ(JsonValue(-2.5).dump(), "-2.5");
  EXPECT_EQ(JsonValue(3.9261).dump(), "3.9261");
  // Non-finite values have no JSON representation and become null.
  EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonValue("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonValue(std::string("nul\x01")).dump(), "\"nul\\u0001\"");
  EXPECT_EQ(JsonValue("§5 — unicode passes through").dump(),
            "\"§5 — unicode passes through\"");
}

TEST(Json, GoldenDocumentCompact) {
  JsonValue doc = JsonValue::object();
  doc.add("schema_version", 1);
  doc.add("scenario", "fig5");
  JsonValue points = JsonValue::array();
  JsonValue point = JsonValue::object();
  point.add("label", "fast");
  point.add("mean", 3.9261);
  point.add("count", std::uint64_t{10000});
  points.push_back(std::move(point));
  points.push_back(JsonValue());
  doc.add("points", std::move(points));
  doc.add("empty_object", JsonValue::object());
  doc.add("empty_array", JsonValue::array());

  EXPECT_EQ(doc.dump(),
            "{\"schema_version\":1,\"scenario\":\"fig5\",\"points\":"
            "[{\"label\":\"fast\",\"mean\":3.9261,\"count\":10000},null],"
            "\"empty_object\":{},\"empty_array\":[]}");
}

TEST(Json, GoldenDocumentPretty) {
  JsonValue doc = JsonValue::object();
  doc.add("a", 1);
  JsonValue arr = JsonValue::array();
  arr.push_back("x");
  doc.add("b", std::move(arr));

  EXPECT_EQ(doc.dump_pretty(),
            "{\n"
            "  \"a\": 1,\n"
            "  \"b\": [\n"
            "    \"x\"\n"
            "  ]\n"
            "}\n");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.add("z", 1);
  doc.add("a", 2);
  doc.add("m", 3);
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(Json, DigestIsFnv1a64) {
  // FNV-1a offset basis: the digest of the empty string.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(digest_hex(""), "cbf29ce484222325");
  // Any change to the input changes the digest.
  EXPECT_NE(digest_hex("{\"a\":1}"), digest_hex("{\"a\":2}"));
}

}  // namespace
}  // namespace fastcons
