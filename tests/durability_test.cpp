// Unit tests for the durability layer: WAL framing/replay, checkpoint
// encode/decode/atomicity, DurableStore recovery (including the
// checkpoint/WAL overlap a crash between checkpoint-rename and WAL-reset
// leaves behind), and the ReplicaEngine snapshot/restore contract the
// whole layer is built on. Disk tests write under a scratch directory in
// the build tree and clean it per test.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "durability/checkpoint.hpp"
#include "durability/crc32.hpp"
#include "durability/store.hpp"
#include "durability/wal.hpp"

namespace fastcons {
namespace {

namespace fs = std::filesystem;

Update make_update(NodeId origin, SeqNo seq, const std::string& key,
                   const std::string& value) {
  Update u;
  u.id = {origin, seq};
  u.created_at = 0.125 * static_cast<double>(seq);
  u.key = key;
  u.value = value;
  return u;
}

std::vector<std::uint8_t> encode_all(const std::vector<Update>& updates) {
  std::vector<std::uint8_t> image;
  for (const Update& u : updates) encode_wal_record(image, u);
  return image;
}

/// Scratch directory under the test's working directory (the build tree),
/// wiped on construction and destruction so reruns never see stale state.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::path("durability-test-scratch") / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void dump(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------------ WAL ----

TEST(WalTest, EncodeScanRoundTripPreservesOrderAndPayloads) {
  const std::vector<Update> updates = {
      make_update(1, 1, "a", "1"),
      make_update(2, 7, "", std::string(300, 'x')),  // empty key, long value
      make_update(1, 2, "a", "overwrite"),
  };
  const std::vector<std::uint8_t> image = encode_all(updates);
  const WalScanResult scan = scan_wal(image);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, image.size());
  EXPECT_EQ(scan.records, updates.size());
  ASSERT_EQ(scan.updates.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(scan.updates[i].id, updates[i].id) << i;
    EXPECT_EQ(scan.updates[i].key, updates[i].key) << i;
    EXPECT_EQ(scan.updates[i].value, updates[i].value) << i;
    EXPECT_EQ(scan.updates[i].created_at, updates[i].created_at) << i;
  }
}

TEST(WalTest, EmptyAndGarbageImagesScanCleanly) {
  EXPECT_EQ(scan_wal({}).records, 0u);
  EXPECT_FALSE(scan_wal({}).torn_tail);

  std::vector<std::uint8_t> garbage(64, 0xAB);
  const WalScanResult scan = scan_wal(garbage);
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.torn_tail);
}

TEST(WalTest, TornTailKeepsTheValidPrefix) {
  const std::vector<Update> updates = {make_update(1, 1, "k1", "v1"),
                                       make_update(1, 2, "k2", "v2")};
  std::vector<std::uint8_t> image = encode_all(updates);
  const std::size_t full = image.size();
  // Cut the second record anywhere — mid-header or mid-payload — and the
  // first must still replay with the tail flagged torn.
  for (const std::size_t keep :
       {full - 1, full - 5, full / 2 + 9, full / 2 + 3}) {
    std::vector<std::uint8_t> torn(image.begin(),
                                   image.begin() + static_cast<long>(keep));
    const WalScanResult scan = scan_wal(torn);
    EXPECT_TRUE(scan.torn_tail) << keep;
    ASSERT_GE(scan.updates.size(), 1u) << keep;
    EXPECT_EQ(scan.updates[0].id, updates[0].id) << keep;
    EXPECT_LE(scan.valid_bytes, keep) << keep;
  }
}

TEST(WalTest, BitFlipStopsReplayAtTheCorruptRecord) {
  const std::vector<Update> updates = {make_update(1, 1, "k1", "v1"),
                                       make_update(1, 2, "k2", "v2"),
                                       make_update(1, 3, "k3", "v3")};
  std::vector<std::uint8_t> image = encode_all(updates);
  // Flip one payload byte inside the middle record: records after the
  // corruption are unreachable (no resync marker), records before survive.
  const std::size_t first_len = encode_all({updates[0]}).size();
  image[first_len + kWalHeaderBytes + 2] ^= 0x40;
  const WalScanResult scan = scan_wal(image);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_EQ(scan.valid_bytes, first_len);
  ASSERT_EQ(scan.updates.size(), 1u);
  EXPECT_EQ(scan.updates[0].id, updates[0].id);
}

TEST(WalTest, ImplausibleLengthsAreCorruptionNotRecords) {
  for (const std::uint32_t bad_len : {0u, kWalMaxPayload + 1, 0xFFFFFFFFu}) {
    std::vector<std::uint8_t> image = encode_all({make_update(3, 1, "k", "v")});
    for (int i = 0; i < 4; ++i) {
      image.push_back(static_cast<std::uint8_t>(bad_len >> (8 * i)));
    }
    image.resize(image.size() + 4 + 16, 0x00);  // crc + some "payload"
    const WalScanResult scan = scan_wal(image);
    EXPECT_EQ(scan.records, 1u) << bad_len;
    EXPECT_TRUE(scan.torn_tail) << bad_len;
  }
}

TEST(WalTest, UnknownRecordTypesAreSkippedNotFatal) {
  // A CRC-valid record of a future type: replay must skip it and keep
  // decoding what follows (older binaries reading newer logs).
  std::vector<std::uint8_t> image;
  {
    std::vector<std::uint8_t> payload = {0x7F, 0x01, 0x02, 0x03};
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = crc32(payload);
    for (int i = 0; i < 4; ++i)
      image.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    for (int i = 0; i < 4; ++i)
      image.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    image.insert(image.end(), payload.begin(), payload.end());
  }
  encode_wal_record(image, make_update(2, 9, "after", "unknown"));
  const WalScanResult scan = scan_wal(image);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records, 2u);
  ASSERT_EQ(scan.updates.size(), 1u);
  EXPECT_EQ(scan.updates[0].key, "after");
}

// ----------------------------------------------------------- checkpoint ----

EngineSnapshot sample_snapshot(NodeId self) {
  EngineSnapshot s;
  s.self = self;
  s.write_seq = 17;
  s.next_session = 5;
  s.next_offer = 3;
  s.own_demand = 42.5;
  s.updates = {make_update(self, 16, "mine", "x"),
               make_update(self, 17, "mine2", "y"),
               make_update(9, 4, "theirs", "z")};
  for (const Update& u : s.updates) s.summary.add(u.id);
  s.neighbour_demand = {{1, 80.0}, {3, 10.0}};
  return s;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  const EngineSnapshot snapshot = sample_snapshot(2);
  const std::vector<std::uint8_t> bytes = encode_checkpoint(snapshot);
  const std::optional<EngineSnapshot> back = decode_checkpoint(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->self, snapshot.self);
  EXPECT_EQ(back->write_seq, snapshot.write_seq);
  EXPECT_EQ(back->next_session, snapshot.next_session);
  EXPECT_EQ(back->next_offer, snapshot.next_offer);
  EXPECT_EQ(back->own_demand, snapshot.own_demand);
  EXPECT_EQ(back->summary, snapshot.summary);
  ASSERT_EQ(back->updates.size(), snapshot.updates.size());
  for (std::size_t i = 0; i < snapshot.updates.size(); ++i) {
    EXPECT_EQ(back->updates[i].id, snapshot.updates[i].id) << i;
    EXPECT_EQ(back->updates[i].value, snapshot.updates[i].value) << i;
  }
  EXPECT_EQ(back->neighbour_demand, snapshot.neighbour_demand);
}

TEST(CheckpointTest, EveryByteFlipIsRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_snapshot(2));
  // Exhaustive single-bit-of-damage sweep: whatever byte rots — magic,
  // version, a length, a payload, the CRC itself — decode must refuse.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> damaged = bytes;
    damaged[i] ^= 0x01;
    EXPECT_FALSE(decode_checkpoint(damaged).has_value()) << "byte " << i;
  }
}

TEST(CheckpointTest, ShortAndTruncatedImagesAreRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_snapshot(2));
  EXPECT_FALSE(decode_checkpoint({}).has_value());
  for (const std::size_t keep : {std::size_t{1}, std::size_t{3},
                                 bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(decode_checkpoint(cut).has_value()) << keep;
  }
}

TEST(CheckpointTest, AtomicWriteRoundTripsAndLeavesNoTmp) {
  const ScratchDir dir("checkpoint-atomic");
  const std::string path = (dir.path() / "checkpoint.bin").string();
  write_checkpoint_atomic(path, sample_snapshot(4));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::optional<EngineSnapshot> loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->self, 4u);
  // Overwrite with a newer snapshot: the rename must replace, not append.
  EngineSnapshot next = sample_snapshot(4);
  next.write_seq = 99;
  write_checkpoint_atomic(path, next);
  loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->write_seq, 99u);
}

TEST(CheckpointTest, MissingAndCorruptFilesLoadAsNothing) {
  const ScratchDir dir("checkpoint-corrupt");
  EXPECT_FALSE(load_checkpoint((dir.path() / "nope.bin").string()));
  std::vector<std::uint8_t> bytes = encode_checkpoint(sample_snapshot(4));
  bytes[bytes.size() / 2] ^= 0xFF;
  const fs::path path = dir.path() / "checkpoint.bin";
  dump(path, bytes);
  EXPECT_FALSE(load_checkpoint(path.string()).has_value());
}

// --------------------------------------------------------- DurableStore ----

DurabilityConfig store_config(const ScratchDir& dir,
                              std::uint64_t checkpoint_every = 0) {
  DurabilityConfig cfg;
  cfg.dir = dir.str();
  cfg.checkpoint_every = checkpoint_every;
  return cfg;
}

TEST(DurableStoreTest, AppendThenRecoverReturnsEveryUpdate) {
  const ScratchDir dir("store-roundtrip");
  {
    DurableStore store(store_config(dir));
    store.append({make_update(1, 1, "a", "1"), make_update(1, 2, "b", "2")});
    store.append({make_update(5, 1, "c", "3")});
    EXPECT_EQ(store.records_since_checkpoint(), 3u);
  }
  DurableStore reopened(store_config(dir));
  RecoveryStats stats;
  const EngineSnapshot snapshot = reopened.recover(1, stats);
  EXPECT_FALSE(stats.had_checkpoint);
  EXPECT_FALSE(stats.wal_torn_tail);
  EXPECT_EQ(stats.wal_records, 3u);
  ASSERT_EQ(snapshot.updates.size(), 3u);
  EXPECT_EQ(snapshot.updates[2].id, (UpdateId{5, 1}));
  EXPECT_EQ(reopened.records_since_checkpoint(), 3u);
}

TEST(DurableStoreTest, TornTailIsTruncatedOnDiskDuringRecovery) {
  const ScratchDir dir("store-torn");
  {
    DurableStore store(store_config(dir));
    store.append({make_update(1, 1, "a", "1"), make_update(1, 2, "b", "2")});
  }
  // Simulate a crash mid-append: chop bytes off the log's tail.
  const fs::path wal = dir.path() / "wal.log";
  std::vector<std::uint8_t> image = slurp(wal);
  const std::size_t valid = scan_wal(encode_all({make_update(1, 1, "a", "1")}))
                                .valid_bytes;
  image.resize(image.size() - 3);
  dump(wal, image);

  DurableStore reopened(store_config(dir));
  RecoveryStats stats;
  const EngineSnapshot snapshot = reopened.recover(1, stats);
  EXPECT_TRUE(stats.wal_torn_tail);
  EXPECT_EQ(stats.wal_records, 1u);
  ASSERT_EQ(snapshot.updates.size(), 1u);
  // The corrupt tail is gone from disk: the file is back to the valid
  // prefix, so the next append extends replayable state.
  EXPECT_EQ(fs::file_size(wal), valid);
  reopened.append({make_update(1, 3, "after", "torn")});
  DurableStore third(store_config(dir));
  const EngineSnapshot again = third.recover(1, stats);
  EXPECT_FALSE(stats.wal_torn_tail);
  ASSERT_EQ(again.updates.size(), 2u);
  EXPECT_EQ(again.updates[1].key, "after");
}

TEST(DurableStoreTest, CheckpointResetsWalAndRecoverCombinesBoth) {
  const ScratchDir dir("store-checkpoint");
  DurableStore store(store_config(dir, 2));
  store.append({make_update(2, 1, "a", "1")});
  EXPECT_FALSE(store.checkpoint_due());
  store.append({make_update(2, 2, "b", "2")});
  EXPECT_TRUE(store.checkpoint_due());
  EngineSnapshot cp = sample_snapshot(2);
  store.write_checkpoint(cp);
  EXPECT_EQ(store.wal_bytes(), 0u);
  EXPECT_EQ(store.records_since_checkpoint(), 0u);
  EXPECT_FALSE(store.checkpoint_due());
  store.append({make_update(2, 18, "post", "cp")});

  DurableStore reopened(store_config(dir, 2));
  RecoveryStats stats;
  const EngineSnapshot snapshot = reopened.recover(2, stats);
  EXPECT_TRUE(stats.had_checkpoint);
  EXPECT_EQ(stats.checkpoint_updates, cp.updates.size());
  EXPECT_EQ(stats.wal_records, 1u);
  EXPECT_EQ(snapshot.write_seq, cp.write_seq);
  // Checkpoint payloads come first, WAL suffix after.
  ASSERT_EQ(snapshot.updates.size(), cp.updates.size() + 1);
  EXPECT_EQ(snapshot.updates.back().key, "post");
}

TEST(DurableStoreTest, CheckpointWalOverlapIsIdempotentThroughRestore) {
  // A crash between write_checkpoint_atomic's rename and the WAL reset
  // leaves every checkpointed update ALSO in the WAL. Recovery must not
  // double-apply: ReplicaEngine::restore dedupes by id.
  const ScratchDir dir("store-overlap");
  const std::vector<Update> updates = {make_update(1, 1, "k1", "v1"),
                                       make_update(4, 2, "k2", "v2")};
  {
    DurableStore store(store_config(dir));
    store.append(updates);
    EngineSnapshot cp;
    cp.self = 1;
    cp.write_seq = 1;
    cp.updates = updates;
    for (const Update& u : updates) cp.summary.add(u.id);
    // Crash before the WAL reset: write the checkpoint file directly,
    // leaving the log untouched.
    write_checkpoint_atomic((dir.path() / "checkpoint.bin").string(), cp);
  }
  DurableStore reopened(store_config(dir));
  RecoveryStats stats;
  const EngineSnapshot snapshot = reopened.recover(1, stats);
  EXPECT_TRUE(stats.had_checkpoint);
  EXPECT_EQ(stats.wal_records, 2u);
  EXPECT_EQ(snapshot.updates.size(), 4u);  // overlap present pre-restore

  ReplicaEngine engine(1, {4}, ProtocolConfig::fast(), 7);
  engine.restore(snapshot, 0.0);
  EXPECT_EQ(engine.summary().total(), 2u);
  EXPECT_EQ(engine.log().all_retained().size(), 2u);
  EXPECT_EQ(engine.read("k1"), "v1");
  EXPECT_EQ(engine.read("k2"), "v2");
}

TEST(DurableStoreTest, ForeignCheckpointIsIgnored) {
  // A checkpoint recorded by another node id (copied data dir, fat-fingered
  // --data-dir) must not impersonate: recovery treats it as absent.
  const ScratchDir dir("store-foreign");
  write_checkpoint_atomic((dir.path() / "checkpoint.bin").string(),
                          sample_snapshot(8));
  DurableStore store(store_config(dir));
  RecoveryStats stats;
  const EngineSnapshot snapshot = store.recover(2, stats);
  EXPECT_FALSE(stats.had_checkpoint);
  EXPECT_EQ(snapshot.self, 2u);
  EXPECT_TRUE(snapshot.updates.empty());
}

// ------------------------------------------------- engine snapshot hooks ----

TEST(EngineSnapshotTest, SnapshotRestoreReproducesStateAndResumesWriteSeq) {
  ReplicaEngine original(0, {1, 2}, ProtocolConfig::fast(), 11);
  original.set_own_demand(33.0);
  original.prime_neighbour_demand(1, 80.0, 0.0);
  original.prime_neighbour_demand(2, 5.0, 0.0);
  original.local_write("x", "1", 0.1);
  original.local_write("y", "2", 0.2);
  // A remote update so the snapshot covers more than self-origin state.
  Update remote = make_update(2, 1, "z", "3");
  SessionPush push;
  push.session_id = 1;
  push.updates = {remote};
  original.handle(2, Message{push}, 0.3);

  const EngineSnapshot snapshot = original.snapshot();
  EXPECT_EQ(snapshot.write_seq, 2u);
  ASSERT_EQ(snapshot.neighbour_demand.size(), 2u);

  ReplicaEngine restored(0, {1, 2}, ProtocolConfig::fast(), 999);
  restored.restore(snapshot, 1.0);
  EXPECT_EQ(restored.summary(), original.summary());
  EXPECT_EQ(restored.log().kv_digest(), original.log().kv_digest());
  EXPECT_EQ(restored.read("x"), "1");
  EXPECT_EQ(restored.read("z"), "3");
  // The origin counter resumes: the next write must not reuse seq 1 or 2.
  EXPECT_EQ(restored.write_seq(), 2u);
  restored.local_write("w", "4", 1.1);
  EXPECT_TRUE(restored.log().contains({0, 3}));
  // Restored neighbour demand orders catch-up hot-first.
  const std::vector<NodeId> order = restored.demand_table().by_demand_desc(1.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
}

TEST(EngineSnapshotTest, RestoreDoesNotFireDeliveryHooks) {
  ReplicaEngine original(0, {1}, ProtocolConfig::fast(), 3);
  original.local_write("k", "v", 0.0);
  std::size_t deliveries = 0;
  ReplicaEngine restored(0, {1}, ProtocolConfig::fast(), 3);
  EngineHooks hooks;
  hooks.on_delivery = [&deliveries](const Update&, DeliveryPath, SimTime) {
    ++deliveries;
  };
  restored.set_hooks(std::move(hooks));
  restored.restore(original.snapshot(), 0.0);
  // Restored updates were delivered before the crash; replaying the hook
  // would double-count them in any observer (including the WAL appender,
  // which would then re-log every recovered update).
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(restored.read("k"), "v");
}

}  // namespace
}  // namespace fastcons
