#include "islands/islands.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace fastcons {
namespace {

const LatencyRange kLat{0.01, 0.03};

TEST(IslandDetectionTest, FindsSeparatedHighDemandRegions) {
  // Line: hot(0) hot(1) cold(2) cold(3) hot(4).
  Rng rng(1);
  const Graph g = make_line(5, kLat, rng);
  const std::vector<double> demand{10, 12, 1, 1, 20};
  const auto islands = detect_islands(g, demand, 5.0);
  ASSERT_EQ(islands.size(), 2u);
  EXPECT_EQ(islands[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(islands[1], (std::vector<NodeId>{4}));
}

TEST(IslandDetectionTest, NoIslandsBelowThreshold) {
  Rng rng(2);
  const Graph g = make_line(4, kLat, rng);
  EXPECT_TRUE(detect_islands(g, {1, 1, 1, 1}, 5.0).empty());
}

TEST(IslandDetectionTest, WholeGraphOneIsland) {
  Rng rng(3);
  const Graph g = make_ring(6, kLat, rng);
  const auto islands = detect_islands(g, std::vector<double>(6, 9.0), 5.0);
  ASSERT_EQ(islands.size(), 1u);
  EXPECT_EQ(islands[0].size(), 6u);
}

TEST(IslandDetectionTest, ThresholdBoundaryIsInclusive) {
  Rng rng(4);
  const Graph g = make_line(2, kLat, rng);
  const auto islands = detect_islands(g, {5.0, 4.99}, 5.0);
  ASSERT_EQ(islands.size(), 1u);
  EXPECT_EQ(islands[0], (std::vector<NodeId>{0}));
}

TEST(LeaderElectionTest, PicksMaxDemandMember) {
  const std::vector<std::vector<NodeId>> islands{{0, 1, 2}, {5, 6}};
  const std::vector<double> demand{3, 9, 4, 0, 0, 2, 2};
  const auto leaders = elect_leaders(islands, demand);
  ASSERT_EQ(leaders.size(), 2u);
  EXPECT_EQ(leaders[0], 1u);
  EXPECT_EQ(leaders[1], 5u);  // tie at demand 2 -> lower id
}

TEST(FloodElectionTest, AgreesWithCentralisedElection) {
  Rng rng(5);
  const Graph g = make_dumbbell(4, 3, kLat, rng);
  std::vector<double> demand(g.size(), 1.0);
  // Left island: nodes 0-3 hot, peak at 2; right island: 4-7 hot, peak 6.
  for (NodeId n = 0; n < 4; ++n) demand[n] = 10.0 + n;
  for (NodeId n = 4; n < 8; ++n) demand[n] = 20.0 + n;
  std::size_t rounds = 0;
  const auto claims = flood_election(g, demand, 10.0, &rounds);
  const auto islands = detect_islands(g, demand, 10.0);
  const auto leaders = elect_leaders(islands, demand);
  ASSERT_EQ(islands.size(), 2u);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    for (const NodeId member : islands[i]) {
      EXPECT_EQ(claims[member], leaders[i]) << "member " << member;
    }
  }
  // Non-members carry no claim.
  for (NodeId n = 8; n < g.size(); ++n) EXPECT_EQ(claims[n], kInvalidNode);
  // Flooding converges within diameter+1 rounds (plus the quiescence check).
  EXPECT_LE(rounds, diameter(g) + 2);
}

class FloodElectionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloodElectionSweep, MatchesCentralisedOnRandomGraphs) {
  Rng rng(GetParam() * 17 + 3);
  const Graph g = make_erdos_renyi(30, 0.12, kLat, rng);
  std::vector<double> demand(30);
  for (auto& d : demand) d = rng.uniform(0.0, 100.0);
  const double threshold = 60.0;
  const auto claims = flood_election(g, demand, threshold);
  const auto islands = detect_islands(g, demand, threshold);
  const auto leaders = elect_leaders(islands, demand);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    for (const NodeId member : islands[i]) {
      EXPECT_EQ(claims[member], leaders[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodElectionSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(BridgeTest, ConnectsAllLeadersWithMstEdges) {
  Rng rng(6);
  const Graph g = make_line(9, kLat, rng);
  const std::vector<NodeId> leaders{0, 4, 8};
  const auto bridges = compute_bridges(g, leaders);
  ASSERT_EQ(bridges.size(), 2u);  // MST over 3 leaders
  // Every bridge latency equals the shortest-path latency between its ends.
  for (const Bridge& b : bridges) {
    const auto d = shortest_latencies(g, b.a);
    EXPECT_DOUBLE_EQ(b.latency, d[b.b]);
  }
  // The bridges span all leaders.
  std::set<NodeId> touched;
  for (const Bridge& b : bridges) {
    touched.insert(b.a);
    touched.insert(b.b);
  }
  EXPECT_EQ(touched.size(), 3u);
}

TEST(BridgeTest, FewerThanTwoLeadersNoBridges) {
  Rng rng(7);
  const Graph g = make_line(3, kLat, rng);
  EXPECT_TRUE(compute_bridges(g, {}).empty());
  EXPECT_TRUE(compute_bridges(g, {1}).empty());
}

TEST(BridgeTest, DisconnectedUnderlayThrows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(compute_bridges(g, {0, 2}), ConfigError);
}

TEST(IslandOverlayTest, BridgeAcceleratesFarIsland) {
  // Dumbbell: two hot cliques joined by a long cold chain. With the §6
  // overlay the far island's leader hears about the update at fast-push
  // speed instead of session-crawling across the cold bridge.
  const auto run = [&](bool with_overlay) {
    Rng rng(8);
    Graph g = make_dumbbell(5, 8, kLat, rng);
    std::vector<double> demand(g.size(), 1.0);
    for (NodeId n = 0; n < 5; ++n) demand[n] = 50.0 + n;   // left island
    for (NodeId n = 5; n < 10; ++n) demand[n] = 60.0 + n;  // right island
    auto model = std::make_shared<StaticDemand>(demand);
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.seed = 99;
    SimNetwork net(std::move(g), model, cfg);
    if (with_overlay) {
      const auto islands = detect_islands(net.graph(), demand, 40.0);
      const auto leaders = elect_leaders(islands, demand);
      for (const Bridge& b : compute_bridges(net.graph(), leaders)) {
        net.add_overlay_link(b.a, b.b, b.latency);
      }
    }
    const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
    net.run_until_update_everywhere(id, 60.0);
    // Measure arrival at the far island's hottest node (node 9).
    return net.first_delivery(9, id).value_or(1e9) - 0.5;
  };
  const double without = run(false);
  const double with = run(true);
  EXPECT_LT(with, without);
  EXPECT_LT(with, 1.0);  // ~one session for the far high-demand region
}

}  // namespace
}  // namespace fastcons
