// Auto-truncation (Bayou-style, paper §7): logs stay bounded once every
// neighbour provably holds an update, and convergence is unaffected.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

ProtocolConfig truncating_config() {
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.auto_truncate = true;
  cfg.advert_period = 0.0;
  return cfg;
}

TEST(TruncationTest, NoTruncationBeforeEveryNeighbourKnown) {
  // B has two neighbours but has only ever exchanged summaries with one;
  // the frontier must stay empty (the other neighbour contributes bottom).
  ReplicaEngine b(1, {0, 2}, truncating_config(), 1);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  b.prime_neighbour_demand(2, 1.0, 0.0);
  b.local_write("k", "v", 0.0);
  // Teach B that node 0 has everything (a SessionPush carries the
  // initiator's summary; the responder records it as peer knowledge).
  b.handle(0, Message{SessionPush{(0ull << 32) | 9, b.summary(), {}}}, 0.1);
  b.on_session_timer(0.2);
  EXPECT_EQ(b.stats().payloads_truncated, 0u);
  EXPECT_EQ(b.log().size(), 1u);
}

TEST(TruncationTest, TruncationUnblocksOnceLastNeighbourReportsIn) {
  // Companion to the test above: the early-return holds exactly until the
  // last silent neighbour exchanges a summary, then the same timer call
  // truncates.
  ReplicaEngine b(1, {0, 2}, truncating_config(), 1);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  b.prime_neighbour_demand(2, 1.0, 0.0);
  b.local_write("k", "v", 0.0);
  b.handle(0, Message{SessionPush{(0ull << 32) | 9, b.summary(), {}}}, 0.1);
  b.on_session_timer(0.2);
  ASSERT_EQ(b.log().size(), 1u);  // still blocked: node 2 never reported
  b.handle(2, Message{SessionPush{(2ull << 32) | 9, b.summary(), {}}}, 0.3);
  b.on_session_timer(0.4);
  EXPECT_EQ(b.log().size(), 0u);
  EXPECT_EQ(b.stats().payloads_truncated, 1u);
}

TEST(TruncationTest, LateOverlayNeighbourReblocksTruncation) {
  // A bridge neighbour added after sessions began contributes bottom to the
  // frontier until it exchanges summaries, so truncation must stall again
  // even though every original neighbour is fully known.
  ReplicaEngine b(1, {0}, truncating_config(), 1);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  b.local_write("k", "v", 0.0);
  b.handle(0, Message{SessionPush{(0ull << 32) | 9, b.summary(), {}}}, 0.1);
  b.add_overlay_neighbour(7, 0.15);
  b.on_session_timer(0.2);
  EXPECT_EQ(b.stats().payloads_truncated, 0u);
  EXPECT_EQ(b.log().size(), 1u);
}

TEST(TruncationTest, PairTruncatesAfterMutualSessions) {
  // Two nodes in a line; after a completed session each knows the other's
  // summary, so both can discard the payload while keeping the summary.
  ProtocolConfig cfg = truncating_config();
  ReplicaEngine a(0, {1}, cfg, 1);
  ReplicaEngine b(1, {0}, cfg, 2);
  a.prime_neighbour_demand(1, 1.0, 0.0);
  b.prime_neighbour_demand(0, 1.0, 0.0);
  a.local_write("k", "v", 0.0);
  // Manually route a full session a -> b.
  auto m1 = a.on_session_timer(0.1);
  ASSERT_EQ(m1.size(), 1u);
  auto m2 = b.handle(0, m1[0].msg, 0.1);
  auto m3 = a.handle(1, m2[0].msg, 0.1);
  auto m4 = b.handle(0, m3[0].msg, 0.1);
  a.handle(1, m4[0].msg, 0.1);
  EXPECT_EQ(b.log().size(), 1u);
  // Next session timers trigger the frontier computation on both sides.
  a.on_session_timer(1.1);
  b.on_session_timer(1.1);
  EXPECT_EQ(a.log().size(), 0u);
  EXPECT_EQ(b.log().size(), 0u);
  EXPECT_GE(a.stats().payloads_truncated, 1u);
  // The summary still covers the id: re-application stays suppressed.
  EXPECT_TRUE(a.summary().contains(UpdateId{0, 1}));
}

TEST(TruncationTest, NetworkConvergesAndLogsStayBounded) {
  // Ring with a steady write stream: with auto-truncation, retained
  // payloads stay far below the total number of updates ever applied.
  Rng rng(5);
  Graph g = make_ring(8, {0.01, 0.03}, rng);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(8, 0.0, 100.0, rng));
  SimConfig cfg;
  cfg.protocol = truncating_config();
  cfg.seed = 9;
  SimNetwork net(std::move(g), demand, cfg);
  const std::size_t writes = 40;
  for (std::size_t w = 0; w < writes; ++w) {
    net.schedule_write(static_cast<NodeId>(w % 8), "k" + std::to_string(w),
                       "v", 0.5 + 0.5 * static_cast<double>(w));
  }
  net.run_until(0.5 * static_cast<double>(writes) + 2.0);
  ASSERT_TRUE(net.run_until_consistent(200.0));
  const EngineStats stats = net.total_stats();
  EXPECT_GT(stats.payloads_truncated, 0u);
  std::size_t retained = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    retained += net.engine(n).log().size();
    // Every engine still answers reads from materialised state.
    EXPECT_TRUE(net.engine(n).read("k0").has_value());
  }
  // 8 nodes x 40 updates = 320 total applications; truncation keeps far
  // fewer payloads around once everything is stable.
  EXPECT_LT(retained, writes * net.size() / 2);
}

TEST(TruncationTest, DisabledByDefault) {
  Rng rng(6);
  Graph g = make_line(3, {0.01, 0.02}, rng);
  auto demand = std::make_shared<StaticDemand>(std::vector<double>{1, 2, 3});
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();  // auto_truncate defaults to false
  cfg.seed = 10;
  SimNetwork net(std::move(g), demand, cfg);
  const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
  ASSERT_TRUE(net.run_until_update_everywhere(id, 30.0));
  net.run_until(10.0);
  EXPECT_EQ(net.total_stats().payloads_truncated, 0u);
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_EQ(net.engine(n).log().size(), 1u);
  }
}

TEST(TruncationTest, SessionAfterTruncationFallsBackToRetained) {
  // A new partner whose summary is empty sessions with a node that has
  // truncated: updates_for reports the truncated ids and the responder
  // sends what it retains — convergence of retained content still works.
  ProtocolConfig cfg = truncating_config();
  ReplicaEngine a(0, {1}, cfg, 1);
  a.prime_neighbour_demand(1, 1.0, 0.0);
  a.local_write("old", "1", 0.0);
  // Simulate: neighbour 1 already has everything; truncate.
  a.handle(1, Message{SessionRequest{1}}, 0.1);
  SummaryVector full = a.summary();
  // a initiated no session; teach knowledge through a push summary instead.
  a.handle(1, Message{SessionPush{(1ull << 32) | 9, full, {}}}, 0.2);
  a.on_session_timer(0.3);
  EXPECT_EQ(a.log().size(), 0u);
  // A fresh-summary request arrives (e.g. the peer lost its disk). The
  // engine must still answer without crashing; the payload is gone but the
  // summary in the push tells the peer what it is missing.
  const auto out =
      a.handle(1, Message{SessionSummary{0xdead, SummaryVector{}}}, 0.4);
  EXPECT_TRUE(out.empty());  // unknown session id: ignored
  // Now do it properly: a initiates, the peer answers with an empty summary.
  const auto start = a.on_session_timer(0.5);
  ASSERT_EQ(start.size(), 1u);
  const auto session_id = std::get<SessionRequest>(start[0].msg).session_id;
  const auto push = a.handle(1, Message{SessionSummary{session_id,
                                                       SummaryVector{}}}, 0.5);
  ASSERT_EQ(push.size(), 1u);
  const auto& push_msg = std::get<SessionPush>(push[0].msg);
  EXPECT_TRUE(push_msg.updates.empty());           // payload truncated away
  EXPECT_TRUE(push_msg.summary.contains(UpdateId{0, 1}));  // but advertised
}

}  // namespace
}  // namespace fastcons
