// Reset-equivalence: the load-bearing guarantee behind the pooled trial
// contexts. A pooled object (Simulator, ReplicaEngine, SimNetwork,
// PropagationContext, TrialContext) that is reset between uses must be
// observationally identical to a freshly constructed one — same results,
// same RNG draw sequences — for every registered scenario. These tests pin
// that, plus the handle-safety rules of Simulator::reset, under the normal
// build and under ASan/UBSan (slab reuse across resets).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "demand/demand_model.hpp"
#include "experiment/propagation.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "harness/scenarios.hpp"
#include "harness/trial_context.hpp"
#include "sim/simulator.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

using harness::builtin_registry;
using harness::derive_trial_seed;
using harness::ScenarioRegistry;
using harness::ScenarioSpec;
using harness::set_param;
using harness::SweepPoint;
using harness::TrialContext;
using harness::TrialResult;

// ------------------------------------------------------ Simulator::reset ----

TEST(SimulatorReset, ReturnsToFreshLogicalState) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(2.0, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.events_executed(), 2u);

  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);

  // Behaves exactly like a fresh simulator: same times, same tie-breaking.
  fired.clear();
  sim.schedule_at(0.5, [&] { fired.push_back(3); });
  sim.schedule_at(0.5, [&] { fired.push_back(4); });  // tie -> insertion order
  sim.schedule_at(0.25, [&] { fired.push_back(5); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{5, 3, 4}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorReset, DiscardsPendingEventsWithoutFiringThem) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.reset();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorReset, InvalidatesHandlesAcrossReset) {
  Simulator sim;
  const TimerHandle stale = sim.schedule_at(1.0, [] {});
  sim.reset();
  // The new event reuses the stale handle's slot; the stale handle must
  // neither cancel it nor report success.
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorReset, SlabSurvivesManyResetCycles) {
  // Exercises slot reuse across resets (ASan/UBSan builds watch for stale
  // closure storage): each cycle schedules into recycled slots, cancels
  // half, and runs the rest.
  Simulator sim;
  std::uint64_t total = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<TimerHandle> handles;
    for (int i = 0; i < 64; ++i) {
      handles.push_back(
          sim.schedule_at(static_cast<double>(i % 7), [&] { ++total; }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
    if (cycle % 3 == 0) {
      sim.reset();  // sometimes reset with events still pending
    } else {
      sim.run();
      sim.reset();
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// --------------------------------------------------- ReplicaEngine::reset ----

/// Drives `engine` through a deterministic mini-protocol and returns the
/// sequence of partners it initiated sessions with.
std::vector<NodeId> drive_engine(ReplicaEngine& engine) {
  engine.set_own_demand(5.0);
  engine.prime_neighbour_demand(1, 7.0, 0.0);
  engine.prime_neighbour_demand(2, 3.0, 0.0);
  engine.local_write("k", "v", 0.0);
  std::vector<NodeId> partners;
  for (int i = 0; i < 4; ++i) {
    for (const Outbound& out :
         engine.on_session_timer(static_cast<SimTime>(i))) {
      if (std::holds_alternative<SessionRequest>(out.msg)) {
        partners.push_back(out.to);
      }
    }
  }
  return partners;
}

TEST(ReplicaEngineReset, ResetEngineMatchesFreshEngine) {
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;

  ReplicaEngine fresh(0, {1, 2}, cfg, 77);
  const std::vector<NodeId> fresh_partners = drive_engine(fresh);

  // Dirty an engine with a different identity/config, then reset it to the
  // fresh engine's construction arguments.
  ProtocolConfig other = ProtocolConfig::weak();
  ReplicaEngine pooled(9, {3, 4, 5}, other, 1234);
  pooled.set_own_demand(42.0);
  pooled.local_write("x", "y", 0.0);
  pooled.on_session_timer(1.0);

  pooled.reset(0, {1, 2}, cfg, 77);
  EXPECT_EQ(pooled.self(), 0u);
  EXPECT_EQ(pooled.summary(), SummaryVector{});
  EXPECT_EQ(pooled.stats().sessions_initiated, 0u);
  EXPECT_EQ(pooled.counters().total_messages(), 0u);
  EXPECT_EQ(pooled.inflight_sessions(), 0u);
  EXPECT_EQ(pooled.inflight_offers(), 0u);

  const std::vector<NodeId> pooled_partners = drive_engine(pooled);
  EXPECT_EQ(pooled_partners, fresh_partners);  // RNG stream included
  EXPECT_EQ(pooled.summary(), fresh.summary());
  EXPECT_EQ(pooled.stats().sessions_initiated,
            fresh.stats().sessions_initiated);
  EXPECT_EQ(pooled.counters().total_bytes(), fresh.counters().total_bytes());
}

// ------------------------------------------------------ SimNetwork::reset ----

struct NetObservation {
  std::vector<std::optional<SimTime>> deliveries;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t applied = 0;

  friend bool operator==(const NetObservation&,
                         const NetObservation&) = default;
};

/// One deterministic mini-experiment on an already-wired network.
NetObservation observe(SimNetwork& net) {
  const UpdateId id = net.schedule_write(0, "key", "value", 0.5);
  net.run_until_update_everywhere(id, 20.0);
  NetObservation obs;
  for (NodeId n = 0; n < net.size(); ++n) {
    obs.deliveries.push_back(net.first_delivery(n, id));
  }
  obs.events = net.events_executed();
  obs.messages = net.total_traffic().total_messages();
  obs.bytes = net.total_traffic().total_bytes();
  obs.applied = net.total_stats().updates_applied;
  return obs;
}

Graph test_graph(std::uint64_t seed, std::size_t n = 24) {
  Rng rng(seed);
  return make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
}

std::shared_ptr<const DemandModel> test_demand(std::uint64_t seed,
                                               std::size_t n = 24) {
  Rng rng(seed);
  return std::make_shared<StaticDemand>(
      make_uniform_random_demand(n, 0.0, 100.0, rng));
}

TEST(SimNetworkReset, ResetNetworkReplaysFreshNetworkExactly) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = 99;

  SimNetwork fresh(test_graph(5), test_demand(6), cfg);
  const NetObservation expected = observe(fresh);
  EXPECT_GT(expected.applied, 0u);

  // Dirty a pooled network with a different topology/size/seed, then reset.
  SimConfig other = cfg;
  other.seed = 1;
  SimNetwork pooled(test_graph(42, 10), test_demand(43, 10), other);
  observe(pooled);

  pooled.reset(test_graph(5), test_demand(6), cfg);
  EXPECT_EQ(observe(pooled), expected);

  // And again, proving repeated reuse keeps replaying the same experiment.
  pooled.reset(test_graph(5), test_demand(6), cfg);
  EXPECT_EQ(observe(pooled), expected);
}

TEST(SimNetworkReset, GrowsAndShrinksAcrossTopologySizes) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = 7;

  SimNetworkPool pool;
  for (const std::size_t n : {8u, 40u, 16u, 40u, 8u}) {
    SimNetwork& net = pool.acquire(test_graph(n, n), test_demand(n + 1, n), cfg);
    ASSERT_EQ(net.size(), n);
    SimNetwork fresh(test_graph(n, n), test_demand(n + 1, n), cfg);
    EXPECT_EQ(observe(net), observe(fresh)) << n;
  }
}

SimConfig faulty_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = seed;
  cfg.faults.loss = 0.15;
  cfg.faults.duplicate = 0.1;
  cfg.faults.reorder = 0.25;
  cfg.faults.reorder_delay_max = 0.4;
  cfg.faults.crash_rate = 0.05;
  cfg.faults.downtime_mean = 0.5;
  cfg.faults.churn_until = 4.0;
  cfg.faults.partitions.push_back(PartitionEvent{2, 1.0, 3.0});
  return cfg;
}

TEST(SimNetworkReset, FaultConfigReplaysFreshNetworkExactly) {
  // Every fault class at once — link faults, churn with wipes, a healing
  // partition. The FaultPlan's RNG and node up/down state are rebuilt by
  // reset(), so a pooled network must replay a fresh one draw-for-draw,
  // injected fault counts included.
  const SimConfig cfg = faulty_config(55);
  SimNetwork fresh(test_graph(5), test_demand(6), cfg);
  const NetObservation expected = observe(fresh);
  const FaultStats expected_faults = fresh.fault_stats();
  // Non-vacuous: the config really injected faults during the observation.
  EXPECT_GT(expected_faults.messages_lost, 0u);

  SimNetwork pooled(test_graph(42, 10), test_demand(43, 10), faulty_config(7));
  observe(pooled);  // dirty: different size, seed, fault trajectory

  pooled.reset(test_graph(5), test_demand(6), cfg);
  EXPECT_EQ(observe(pooled), expected);
  EXPECT_EQ(pooled.fault_stats(), expected_faults);

  pooled.reset(test_graph(5), test_demand(6), cfg);
  EXPECT_EQ(observe(pooled), expected);
  EXPECT_EQ(pooled.fault_stats(), expected_faults);
}

TEST(SimNetworkReset, FaultStateDoesNotLeakIntoQuietConfig) {
  // Reset from a fault-heavy run to a no-fault config must be
  // indistinguishable from a network that never had faults at all: zero
  // counters, no lingering down nodes or partitions, identical replay.
  SimConfig quiet;
  quiet.protocol = ProtocolConfig::fast();
  quiet.protocol.advert_period = 0.0;
  quiet.seed = 99;
  SimNetwork fresh(test_graph(5), test_demand(6), quiet);
  const NetObservation expected = observe(fresh);

  SimNetwork pooled(test_graph(5), test_demand(6), faulty_config(55));
  observe(pooled);
  EXPECT_GT(pooled.fault_stats().messages_lost, 0u);  // genuinely dirty

  pooled.reset(test_graph(5), test_demand(6), quiet);
  EXPECT_FALSE(pooled.faults().enabled());
  EXPECT_EQ(observe(pooled), expected);
  EXPECT_EQ(pooled.fault_stats(), FaultStats{});
}

TEST(SimNetworkReset, SharedTopologyIsNeverMutated) {
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = 3;
  const auto shared = std::make_shared<const Graph>(test_graph(8));
  const std::size_t edges_before = shared->edge_count();

  SimNetworkPool pool;
  const NetObservation first = observe(pool.acquire(shared, test_demand(9), cfg));
  const NetObservation second = observe(pool.acquire(shared, test_demand(9), cfg));
  EXPECT_EQ(first, second);
  EXPECT_EQ(shared->edge_count(), edges_before);
  EXPECT_EQ(shared.use_count(), 2);  // ours + the pooled network's
}

// ------------------------------------------- run_propagation_trial(ctx) ----

PropagationExperiment small_experiment() {
  PropagationExperiment exp;
  exp.topology = [](Rng& rng) {
    return make_barabasi_albert(16, 2, {0.01, 0.05}, rng);
  };
  exp.demand = [](const Graph& g, Rng& rng) {
    return std::make_shared<StaticDemand>(
        make_uniform_random_demand(g.size(), 0.0, 100.0, rng));
  };
  exp.sim.protocol = ProtocolConfig::fast();
  exp.sim.protocol.advert_period = 0.0;
  exp.deadline = 30.0;
  return exp;
}

void expect_trials_equal(const PropagationTrial& a, const PropagationTrial& b) {
  EXPECT_EQ(a.sessions_all, b.sessions_all);
  EXPECT_EQ(a.sessions_high, b.sessions_high);
  EXPECT_EQ(a.time_to_full, b.time_to_full);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.censored_samples, b.censored_samples);
  EXPECT_EQ(a.traffic.total_messages(), b.traffic.total_messages());
  EXPECT_EQ(a.traffic.total_bytes(), b.traffic.total_bytes());
}

TEST(PropagationContextReuse, PooledTrialMatchesFreshTrialAndRngDraws) {
  const PropagationExperiment exp = small_experiment();

  PropagationContext pooled;
  // Warm the pool with unrelated trials so the equivalence below runs on a
  // thoroughly dirty context.
  for (const std::uint64_t warm : {901u, 902u}) {
    Rng w(warm);
    run_propagation_trial(exp, w, pooled);
  }

  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng fresh_rng(seed);
    const PropagationTrial fresh = run_propagation_trial(exp, fresh_rng);
    Rng pooled_rng(seed);
    const PropagationTrial& reused =
        run_propagation_trial(exp, pooled_rng, pooled);
    expect_trials_equal(fresh, reused);
    // Identical RNG end states prove identical draw counts: the pooled
    // path consumed exactly the draws the fresh path did, in order.
    EXPECT_TRUE(fresh_rng == pooled_rng) << seed;
  }
}

TEST(PropagationSharedTopology, MatchesPerTrialFactoryForFixedGraphs) {
  // For a topology factory that returns one fixed graph without consuming
  // trial RNG, sharing the graph across trials must be invisible in the
  // results — same trials, same draw counts.
  Rng build(17);
  const Graph fixed = make_grid(5, 5, {0.01, 0.05}, build);

  PropagationExperiment by_factory = small_experiment();
  by_factory.topology = [&fixed](Rng&) { return fixed; };
  PropagationExperiment by_share = small_experiment();
  by_share.topology = nullptr;
  by_share.shared_topology = std::make_shared<const Graph>(fixed);

  PropagationContext ctx_factory;
  PropagationContext ctx_share;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    const PropagationTrial a =
        run_propagation_trial(by_factory, rng_a, ctx_factory);
    const PropagationTrial& b =
        run_propagation_trial(by_share, rng_b, ctx_share);
    expect_trials_equal(a, b);
    EXPECT_TRUE(rng_a == rng_b);
  }
}

TEST(PropagationSharedTopology, AlgorithmVariantsShareOneInstancePerWorker) {
  // The cache keys on what the build reads (topo tag + params), not the
  // point label, so the weak and fast points of one large-scale topology
  // resolve to the same Graph object instead of two identical builds.
  TrialContext ctx;
  SweepPoint weak;
  weak.label = "grid-4x4/weak";
  weak.tags = {{"topo", "grid"}, {"algo", "weak"}};
  weak.params = {{"w", 4}, {"h", 4}, {"shared_topo", 1}};
  SweepPoint fast = weak;
  fast.label = "grid-4x4/fast";
  fast.tags[1].second = "fast";
  SweepPoint other = weak;
  other.label = "grid-5x5/weak";
  other.params = {{"w", 5}, {"h", 5}, {"shared_topo", 1}};

  const auto g_weak = harness::shared_topology_for(weak, ctx);
  EXPECT_EQ(g_weak.get(), harness::shared_topology_for(fast, ctx).get());
  EXPECT_NE(g_weak.get(), harness::shared_topology_for(other, ctx).get());
}

// ----------------------------------------------------------- TrialContext ----

TEST(TrialContextState, ReturnsOneInstancePerType) {
  TrialContext ctx;
  struct A {
    int value = 0;
  };
  struct B {
    int value = 100;
  };
  A& a1 = ctx.state<A>();
  a1.value = 7;
  EXPECT_EQ(ctx.state<A>().value, 7);      // same instance
  EXPECT_EQ(&ctx.state<A>(), &a1);         // stable address
  EXPECT_EQ(ctx.state<B>().value, 100);    // distinct per type
  ctx.state<B>().value = 8;
  EXPECT_EQ(ctx.state<A>().value, 7);
}

// -------------------------------------------- every registered scenario ----

void expect_results_equal(const TrialResult& a, const TrialResult& b,
                          const std::string& where) {
  EXPECT_EQ(a.values, b.values) << where;
  EXPECT_EQ(a.samples, b.samples) << where;
  EXPECT_EQ(a.counters, b.counters) << where;
}

/// The runner's point materialisation, replicated so the test can call
/// trial functions directly with controlled contexts.
SweepPoint smoke_point(const ScenarioSpec& spec, std::size_t index) {
  SweepPoint point = spec.sweep[index];
  for (const auto& [key, value] : spec.smoke_overrides) {
    set_param(point.params, key, value);
  }
  return point;
}

TEST(ResetEquivalence, EveryScenarioPooledContextMatchesFreshContexts) {
  // The acceptance criterion for the pooled TrialContext: for every
  // registered scenario's smoke sweep, a context reused across all points
  // and trials produces byte-identical TrialResults to a fresh context per
  // trial. This is what licenses the runner to hand each worker one
  // long-lived context.
  const ScenarioRegistry registry = builtin_registry();
  for (const ScenarioSpec& spec : registry.all()) {
    TrialContext pooled;
    for (std::size_t i = 0; i < spec.sweep.size(); ++i) {
      const SweepPoint point = smoke_point(spec, i);
      const std::size_t divisor =
          std::max<std::size_t>(1, spec.sweep[i].trials_divisor);
      const std::size_t trials =
          std::max<std::size_t>(1, spec.smoke_trials / divisor);
      const std::size_t seed_index = spec.sweep[i].seed_group.value_or(i);
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const std::uint64_t seed =
            derive_trial_seed(42, spec.name, seed_index, trial);
        TrialContext fresh;
        const TrialResult a = spec.run(point, seed, fresh);
        const TrialResult b = spec.run(point, seed, pooled);
        expect_results_equal(
            a, b, spec.name + "/" + point.label + " trial " +
                      std::to_string(trial));
      }
    }
  }
}

TEST(ResetEquivalence, PooledContextIsOrderIndependent) {
  // Reusing a context must not leak state between trials in either
  // direction: running a scenario's smoke tasks in reverse order through
  // one context reproduces the forward-order (and fresh-context) numbers.
  const ScenarioRegistry registry = builtin_registry();
  const ScenarioSpec& spec = registry.get("uniform-topologies");

  struct TaskRef {
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<TaskRef> tasks;
  for (std::size_t i = 0; i < spec.sweep.size(); ++i) {
    const std::size_t seed_index = spec.sweep[i].seed_group.value_or(i);
    for (std::size_t trial = 0; trial < spec.smoke_trials; ++trial) {
      tasks.push_back(
          TaskRef{i, derive_trial_seed(42, spec.name, seed_index, trial)});
    }
  }

  std::vector<TrialResult> forward(tasks.size());
  {
    TrialContext ctx;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      forward[t] = spec.run(smoke_point(spec, tasks[t].point), tasks[t].seed, ctx);
    }
  }
  {
    TrialContext ctx;
    for (std::size_t t = tasks.size(); t-- > 0;) {
      const TrialResult r =
          spec.run(smoke_point(spec, tasks[t].point), tasks[t].seed, ctx);
      expect_results_equal(r, forward[t], "reverse task " + std::to_string(t));
    }
  }
}

}  // namespace
}  // namespace fastcons
