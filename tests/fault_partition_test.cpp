// Partition/heal invariant tests: while a partition is active no update
// crosses a group boundary (observed through the delivery hook — the
// network's own first-seen bookkeeping feeds off the same hook), after the
// heal the tracked convergence check succeeds in finite time, and the
// negative control — a partition that never heals — is correctly reported
// as non-convergent rather than hanging or lying.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

constexpr std::size_t kNodes = 16;

SimNetwork make_partitioned_net(std::uint64_t seed, bool heals) {
  Rng build(seed);
  Graph graph = make_barabasi_albert(kNodes, 2, {0.01, 0.05}, build);
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(kNodes, 0.0, 100.0, build));
  SimConfig cfg;
  cfg.protocol = ProtocolConfig::fast();
  cfg.protocol.advert_period = 0.0;
  cfg.seed = seed;
  PartitionEvent part;
  part.groups = 2;
  part.at = 0.5;
  if (heals) part.heal_at = 6.0;
  cfg.faults.partitions.push_back(part);
  return SimNetwork(std::move(graph), demand, cfg);
}

TEST(FaultPartition, NoCrossGroupDeliveryWhileActiveThenHealConverges) {
  SimNetwork net = make_partitioned_net(77, /*heals=*/true);

  // Record where the update lands while the partition is active; the
  // network's first-seen tracking feeds off this same hook, so "no
  // cross-group delivery observed" is "no cross-group first_seen entry".
  struct Sighting {
    NodeId node;
    SimTime at;
  };
  std::vector<Sighting> sightings;
  net.on_delivery = [&sightings](NodeId node, const Update&, DeliveryPath,
                                 SimTime at) {
    sightings.push_back({node, at});
  };

  const UpdateId id = net.schedule_write(0, "k", "v", 1.0);
  net.run_until(5.99);  // just before the heal

  const auto writer_group = net.faults().group_of(0, 3.0);
  ASSERT_TRUE(writer_group.has_value());
  ASSERT_FALSE(sightings.empty());
  std::size_t same_group = 0;
  for (const Sighting& s : sightings) {
    const auto group = net.faults().group_of(s.node, s.at);
    ASSERT_TRUE(group.has_value()) << "node " << s.node;
    EXPECT_EQ(*group, *writer_group)
        << "update crossed the partition to node " << s.node << " at "
        << s.at;
    if (*group == *writer_group) ++same_group;
  }
  // Non-vacuous: it did spread within the writer's side...
  EXPECT_GT(same_group, 1u);
  // ...stayed off the other side entirely...
  EXPECT_LT(net.nodes_holding(id), kNodes);
  // ...and the partition actually dropped traffic.
  EXPECT_GT(net.fault_stats().partition_drops, 0u);

  // After the heal: finite tracked convergence, full coverage.
  EXPECT_TRUE(net.run_until_consistent(120.0));
  EXPECT_EQ(net.nodes_holding(id), kNodes);
  // And once healed, group_of reports no active partition.
  EXPECT_FALSE(net.faults().group_of(0, net.sim().now()).has_value());
}

TEST(FaultPartition, NegativeControlNeverHealsIsDetectedAsNonConvergent) {
  SimNetwork net = make_partitioned_net(78, /*heals=*/false);
  const UpdateId id = net.schedule_write(0, "k", "v", 1.0);

  // Advance past the write first: with no writes anywhere, all-empty
  // summaries are vacuously consistent and the check would "pass" for the
  // wrong reason.
  net.run_until(1.5);
  ASSERT_GT(net.nodes_holding(id), 0u);

  // The tracked check must return false at the deadline — not hang, and
  // not claim convergence that never happened.
  EXPECT_FALSE(net.run_until_consistent(40.0));
  EXPECT_LT(net.nodes_holding(id), kNodes);
  EXPECT_GT(net.fault_stats().partition_drops, 0u);
  // The partition is still active arbitrarily late.
  EXPECT_TRUE(net.faults().group_of(0, net.sim().now()).has_value());
}

}  // namespace
}  // namespace fastcons
