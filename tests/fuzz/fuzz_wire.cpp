#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "core/messages.hpp"
#include "net/wire.hpp"
#include "tests/fuzz/fuzz_targets.hpp"

namespace fastcons::fuzz {
namespace {

[[noreturn]] void property_fail(const char* what) {
  std::fprintf(stderr, "fuzz_wire property violated: %s\n", what);
  std::abort();
}

/// Every frame the decoder accepts must re-encode to a stable canonical
/// form and satisfy the size estimator the simulator's traffic accounting
/// uses. (encode(decode(x)) may differ from x — from_parts canonicalises
/// summaries — but it must be a fixed point from then on.)
void check_accepted_frame(const WireFrame& frame) {
  const std::vector<std::uint8_t> enc1 = encode_frame(frame.sender, frame.msg);
  if (enc1.size() != estimated_wire_size(frame.msg)) {
    property_fail("encode size != estimated_wire_size");
  }
  WireFrame again;
  try {
    again = decode_body(
        std::span<const std::uint8_t>(enc1.data() + 4, enc1.size() - 4));
  } catch (const CodecError&) {
    property_fail("re-decode of encoder output rejected");
  }
  if (again.sender != frame.sender) property_fail("sender changed");
  const std::vector<std::uint8_t> enc2 = encode_frame(again.sender, again.msg);
  if (enc1 != enc2) property_fail("encode/decode not a fixed point");
}

}  // namespace

int wire_input(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  // Path 1: the TCP stream. Feed in uneven chunks (size derived from the
  // input so runs are reproducible) to exercise FrameReader's buffering,
  // partial-header and compaction logic.
  {
    FrameReader reader;
    const std::size_t chunk = size == 0 ? 1 : 1 + (data[0] % 37);
    std::size_t fed = 0;
    bool dead = false;
    while (fed < size && !dead) {
      const std::size_t n = std::min(chunk, size - fed);
      reader.feed(input.subspan(fed, n));
      fed += n;
      try {
        while (auto frame = reader.next()) check_accepted_frame(*frame);
      } catch (const CodecError&) {
        dead = true;  // stream is poisoned; a real server drops it here
      }
    }
  }

  // Path 2: the same bytes as one bare frame body (the decode_body surface
  // a future datagram transport would hit directly).
  try {
    check_accepted_frame(decode_body(input));
  } catch (const CodecError&) {
    // Malformed input correctly rejected.
  }
  return 0;
}

}  // namespace fastcons::fuzz
