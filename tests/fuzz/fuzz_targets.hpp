// The fuzz targets over the untrusted-input paths, exposed as plain
// functions so three harnesses can share them:
//   - libFuzzer entry points (entry.cpp, FASTCONS_FUZZ=ON Clang builds);
//   - the standalone corpus-replay driver (driver_main.cpp, any compiler);
//   - the fuzz_corpus gtest, which replays the committed corpus as ordinary
//     ctest cases in every build.
//
// All of them must tolerate ARBITRARY bytes: the only acceptable outcomes
// are clean handling or a thrown CodecError. Any other exception, crash or
// property violation aborts (under the fuzzer: a reported finding; under
// ctest: a test failure).
#ifndef FASTCONS_TESTS_FUZZ_FUZZ_TARGETS_HPP
#define FASTCONS_TESTS_FUZZ_FUZZ_TARGETS_HPP

#include <cstddef>
#include <cstdint>

namespace fastcons::fuzz {

/// Wire-codec target: interprets `data` as (a) a raw TCP byte stream fed
/// incrementally through FrameReader and (b) a bare frame body for
/// decode_body. Checks decode/encode round-trip stability and the
/// estimated_wire_size contract on every frame the decoder accepts.
int wire_input(const std::uint8_t* data, std::size_t size);

/// SummaryVector::from_parts target: deserialises `data` into arbitrary
/// (watermarks, extras) maps and checks every canonical-form invariant the
/// rest of the codebase relies on (sorted/unique/absorbed, coverage,
/// lattice idempotence, parts round-trip).
int summary_input(const std::uint8_t* data, std::size_t size);

/// WAL replay target: interprets `data` as an on-disk log image. scan_wal
/// must never throw, the torn-tail/valid-prefix bookkeeping must be
/// consistent, the valid prefix must re-scan identically (the truncation
/// contract), and decoded updates must survive an encode/scan round-trip.
int wal_input(const std::uint8_t* data, std::size_t size);

/// Checkpoint codec target: interprets `data` as a checkpoint file image.
/// decode_checkpoint must never throw (nullopt is the only rejection), and
/// any accepted image must re-encode to a stable fixpoint so recovery state
/// cannot drift across checkpoint generations.
int checkpoint_input(const std::uint8_t* data, std::size_t size);

}  // namespace fastcons::fuzz

#endif  // FASTCONS_TESTS_FUZZ_FUZZ_TARGETS_HPP
