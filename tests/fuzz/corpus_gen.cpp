// Regenerates the committed seed corpus under tests/fuzz/corpus/. The seeds
// give both fuzzers one well-formed input per message/shape plus the classic
// malformed edges (truncation, bad tag, oversized length, trailing bytes) so
// even a short CI fuzz-smoke run starts from every decoder branch. Run:
//   corpus_gen <repo>/tests/fuzz/corpus
// Output file names describe the seed; regeneration is deterministic, so a
// re-run only changes the corpus when the wire format itself changes.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/messages.hpp"
#include "durability/checkpoint.hpp"
#include "durability/crc32.hpp"
#include "durability/wal.hpp"
#include "net/wire.hpp"

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

fastcons::SummaryVector sample_summary() {
  fastcons::SummaryVector sv;
  for (fastcons::SeqNo s = 1; s <= 3; ++s) sv.add({1, s});
  sv.add({2, 1});
  sv.add({2, 5});  // out-of-order extra
  sv.add({7, 9});  // extras-only origin
  return sv;
}

std::vector<fastcons::Update> sample_updates() {
  std::vector<fastcons::Update> updates;
  fastcons::Update u;
  u.id = {1, 1};
  u.created_at = 0.25;
  u.key = "k/alpha";
  u.value = "v1";
  updates.push_back(u);
  u.id = {2, 5};
  u.created_at = 1.5;
  u.key = "";
  u.value = std::string(64, 'x');
  updates.push_back(u);
  return updates;
}

void generate_wire(const fs::path& dir) {
  using namespace fastcons;
  const auto frame = [](const Message& msg) { return encode_frame(3, msg); };

  write_file(dir, "session_request", frame(SessionRequest{42}));
  {
    SessionSummary m;
    m.session_id = 7;
    m.summary = sample_summary();
    write_file(dir, "session_summary", frame(m));
  }
  {
    SessionPush m;
    m.session_id = 7;
    m.summary = sample_summary();
    m.updates = sample_updates();
    write_file(dir, "session_push", frame(m));
  }
  {
    SessionReply m;
    m.session_id = 7;
    m.updates = sample_updates();
    write_file(dir, "session_reply", frame(m));
  }
  {
    FastOffer m;
    m.offer_id = 99;
    m.offered.push_back({{1, 4}, 0.5});
    m.offered.push_back({{2, 6}, 1.25});
    write_file(dir, "fast_offer", frame(m));
  }
  {
    FastAck m;
    m.offer_id = 99;
    m.yes = true;
    m.wanted.push_back({1, 4});
    write_file(dir, "fast_ack", frame(m));
  }
  {
    FastData m;
    m.offer_id = 99;
    m.updates = sample_updates();
    write_file(dir, "fast_data", frame(m));
  }
  write_file(dir, "demand_advert", frame(DemandAdvert{2.5}));

  // Two frames back to back: exercises FrameReader's multi-frame drain.
  {
    std::vector<std::uint8_t> two = frame(SessionRequest{1});
    const std::vector<std::uint8_t> second = frame(DemandAdvert{0.125});
    two.insert(two.end(), second.begin(), second.end());
    write_file(dir, "two_frames", two);
  }

  // Malformed edges the decoder must reject (not crash on).
  {
    std::vector<std::uint8_t> truncated = frame(SessionRequest{42});
    truncated.resize(truncated.size() - 3);
    write_file(dir, "truncated_body", truncated);
  }
  {
    std::vector<std::uint8_t> bad_tag = frame(SessionRequest{42});
    bad_tag[4] = 0xEE;
    write_file(dir, "bad_tag", bad_tag);
  }
  {
    std::vector<std::uint8_t> huge;
    put_u32(huge, 0x7FFFFFFF);  // announced length far beyond kMaxFrameBody
    put_u8(huge, 1);
    write_file(dir, "oversized_length", huge);
  }
  {
    std::vector<std::uint8_t> zero;
    put_u32(zero, 0);  // empty body is a protocol violation
    write_file(dir, "zero_length", zero);
  }
  {
    std::vector<std::uint8_t> trailing = frame(DemandAdvert{1.0});
    // Grow the announced length and append garbage the payload reader
    // leaves unconsumed -> "trailing bytes in frame body".
    trailing.push_back(0xAB);
    trailing.push_back(0xCD);
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(trailing.size() - 4);
    for (int i = 0; i < 4; ++i) {
      trailing[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(body_len >> (8 * i));
    }
    write_file(dir, "trailing_bytes", trailing);
  }
  {
    // Implausible element count: FastAck announcing 2^31 wanted ids in a
    // 30-byte frame (the PR 1 bad_alloc regression shape).
    std::vector<std::uint8_t> body;
    put_u8(body, 6);  // kTagFastAck
    put_u32(body, 3);
    put_u64(body, 99);
    put_u8(body, 1);
    put_u32(body, 0x80000000u);
    std::vector<std::uint8_t> framed;
    put_u32(framed, static_cast<std::uint32_t>(body.size()));
    framed.insert(framed.end(), body.begin(), body.end());
    write_file(dir, "implausible_count", framed);
  }
}

void generate_summary(const fs::path& dir) {
  // The summary fuzzer's input format (see fuzz_summary.cpp): u8 watermark
  // count, then (u32 origin, u64 mark) pairs; u8 group count, then per group
  // u32 origin, u8 seq count, u64 seqs.
  {
    std::vector<std::uint8_t> empty;
    put_u8(empty, 0);
    put_u8(empty, 0);
    write_file(dir, "empty", empty);
  }
  {
    std::vector<std::uint8_t> marks_only;
    put_u8(marks_only, 2);
    put_u32(marks_only, 1);
    put_u64(marks_only, 5);
    put_u32(marks_only, 9);
    put_u64(marks_only, 1);
    put_u8(marks_only, 0);
    write_file(dir, "watermarks_only", marks_only);
  }
  {
    // Extra at watermark+1: must be absorbed into the watermark.
    std::vector<std::uint8_t> absorb;
    put_u8(absorb, 1);
    put_u32(absorb, 1);
    put_u64(absorb, 3);
    put_u8(absorb, 1);
    put_u32(absorb, 1);
    put_u8(absorb, 2);
    put_u64(absorb, 4);
    put_u64(absorb, 5);
    write_file(dir, "absorbing_extras", absorb);
  }
  {
    // Extras at and below the watermark: already covered, must be dropped.
    std::vector<std::uint8_t> covered;
    put_u8(covered, 1);
    put_u32(covered, 2);
    put_u64(covered, 7);
    put_u8(covered, 1);
    put_u32(covered, 2);
    put_u8(covered, 3);
    put_u64(covered, 1);
    put_u64(covered, 7);
    put_u64(covered, 9);
    write_file(dir, "covered_extras", covered);
  }
  {
    // Extras-only origin with gaps, plus a zero watermark (dropped).
    std::vector<std::uint8_t> gaps;
    put_u8(gaps, 1);
    put_u32(gaps, 5);
    put_u64(gaps, 0);
    put_u8(gaps, 1);
    put_u32(gaps, 8);
    put_u8(gaps, 3);
    put_u64(gaps, 2);
    put_u64(gaps, 4);
    put_u64(gaps, 100);
    write_file(dir, "extras_only_gaps", gaps);
  }
  {
    // Truncated mid-pair: the bounded reader must stop cleanly.
    std::vector<std::uint8_t> truncated;
    put_u8(truncated, 4);
    put_u32(truncated, 1);
    write_file(dir, "truncated", truncated);
  }
}

void generate_wal(const fs::path& dir) {
  using namespace fastcons;
  const std::vector<Update> updates = sample_updates();

  std::vector<std::uint8_t> one;
  encode_wal_record(one, updates[0]);
  write_file(dir, "one_record", one);

  std::vector<std::uint8_t> many;
  for (const Update& u : updates) encode_wal_record(many, u);
  encode_wal_record(many, updates[0]);  // duplicate id: replay keeps both
  write_file(dir, "multi_record", many);

  {
    // Torn tail: the classic crash-mid-append image.
    std::vector<std::uint8_t> torn = many;
    torn.resize(torn.size() - 5);
    write_file(dir, "torn_tail", torn);
  }
  {
    // Payload bit flip: CRC must stop replay at the damaged record.
    std::vector<std::uint8_t> flipped = many;
    flipped[one.size() + kWalHeaderBytes + 1] ^= 0x20;
    write_file(dir, "bad_crc", flipped);
  }
  {
    // CRC-valid record of an unknown type, then a real one: skip-and-go.
    std::vector<std::uint8_t> mixed;
    const std::vector<std::uint8_t> payload = {0x7F, 0xDE, 0xAD};
    put_u32(mixed, static_cast<std::uint32_t>(payload.size()));
    put_u32(mixed, crc32(payload));
    mixed.insert(mixed.end(), payload.begin(), payload.end());
    encode_wal_record(mixed, updates[1]);
    write_file(dir, "unknown_type", mixed);
  }
  {
    // Implausible announced length: corruption, not a 4 GiB record.
    std::vector<std::uint8_t> huge;
    put_u32(huge, 0xFFFFFFFFu);
    put_u32(huge, 0);
    huge.resize(huge.size() + 32, 0x55);
    write_file(dir, "oversized_length", huge);
  }
  {
    // Zero announced length: likewise corruption (records are non-empty).
    std::vector<std::uint8_t> zero;
    put_u32(zero, 0);
    put_u32(zero, 0);
    write_file(dir, "zero_length", zero);
  }
  write_file(dir, "empty", {});
}

void generate_checkpoint(const fs::path& dir) {
  using namespace fastcons;

  EngineSnapshot snapshot;
  snapshot.self = 3;
  snapshot.write_seq = 12;
  snapshot.next_session = 4;
  snapshot.next_offer = 9;
  snapshot.own_demand = 2.5;
  snapshot.summary = sample_summary();
  snapshot.updates = sample_updates();
  snapshot.neighbour_demand.emplace_back(1, 0.5);
  snapshot.neighbour_demand.emplace_back(7, 3.75);
  const std::vector<std::uint8_t> valid = encode_checkpoint(snapshot);
  write_file(dir, "valid", valid);

  write_file(dir, "valid_empty", encode_checkpoint(EngineSnapshot{}));
  write_file(dir, "empty", {});

  {
    // Torn mid-image: rename atomicity should make this unreachable, but
    // the CRC is the defence when it is not.
    std::vector<std::uint8_t> truncated = valid;
    truncated.resize(truncated.size() / 2);
    write_file(dir, "truncated", truncated);
  }
  {
    std::vector<std::uint8_t> bad_magic = valid;
    bad_magic[0] ^= 0xFF;
    write_file(dir, "bad_magic", bad_magic);
  }
  {
    std::vector<std::uint8_t> bad_version = valid;
    bad_version[4] = 0x7E;
    write_file(dir, "bad_version", bad_version);
  }
  {
    // Payload bit flip with the stored CRC left intact.
    std::vector<std::uint8_t> bad_crc = valid;
    bad_crc[10] ^= 0x20;
    write_file(dir, "bad_crc", bad_crc);
  }
  {
    // Bytes past the decoded fields: decode must reject, not ignore.
    std::vector<std::uint8_t> trailing = valid;
    trailing.resize(trailing.size() - 4);  // drop the CRC
    trailing.push_back(0xAB);
    const std::uint32_t crc = crc32(trailing);
    put_u32(trailing, crc);
    write_file(dir, "trailing_bytes", trailing);
  }
  {
    // CRC-valid image announcing 2^31 neighbours in a tiny file: the
    // bounded count read must reject it instead of reserving gigabytes.
    std::vector<std::uint8_t> huge = encode_checkpoint(EngineSnapshot{});
    huge.resize(huge.size() - 4);  // drop the CRC
    // The empty snapshot's body ends with the u32 neighbour count (0).
    for (int i = 0; i < 4; ++i) {
      huge[huge.size() - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(0x80000000u >> (8 * i));
    }
    const std::uint32_t crc = crc32(huge);
    put_u32(huge, crc);
    write_file(dir, "implausible_count", huge);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-output-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  generate_wire(root / "wire");
  generate_summary(root / "summary");
  generate_wal(root / "wal");
  generate_checkpoint(root / "checkpoint");
  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
