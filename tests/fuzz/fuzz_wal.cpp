#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "durability/wal.hpp"
#include "tests/fuzz/fuzz_targets.hpp"

namespace fastcons::fuzz {
namespace {

[[noreturn]] void property_fail(const char* what) {
  std::fprintf(stderr, "fuzz_wal property violated: %s\n", what);
  std::abort();
}

}  // namespace

int wal_input(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  // scan_wal must treat ANY byte string as a (possibly torn) log: no
  // exception may escape, and the result must satisfy the replay contract.
  const WalScanResult scan = scan_wal(input);
  if (scan.valid_bytes > size) property_fail("valid_bytes past the image");
  if (scan.torn_tail != (scan.valid_bytes != size)) {
    property_fail("torn_tail inconsistent with valid_bytes");
  }
  if (scan.updates.size() > scan.records) {
    property_fail("more updates than records");
  }
  if (scan.records > 0 && scan.valid_bytes < kWalHeaderBytes) {
    property_fail("records without header-sized prefix");
  }

  // Prefix stability: re-scanning exactly the valid prefix must reproduce
  // the same records with no torn tail — recovery truncates the file to
  // this prefix and relies on the next replay seeing identical state.
  const WalScanResult prefix = scan_wal(input.first(scan.valid_bytes));
  if (prefix.torn_tail) property_fail("valid prefix scanned as torn");
  if (prefix.records != scan.records || prefix.updates != scan.updates) {
    property_fail("prefix re-scan diverged");
  }

  // Round-trip: re-encoding every decoded update yields a log that replays
  // to the same updates (the append path writes exactly this encoding).
  std::vector<std::uint8_t> reencoded;
  for (const Update& u : scan.updates) encode_wal_record(reencoded, u);
  const WalScanResult back = scan_wal(reencoded);
  if (back.torn_tail) property_fail("re-encoded log torn");
  if (back.updates != scan.updates) property_fail("re-encode round-trip");
  return 0;
}

}  // namespace fastcons::fuzz
