#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "replication/summary_vector.hpp"
#include "tests/fuzz/fuzz_targets.hpp"

namespace fastcons::fuzz {
namespace {

[[noreturn]] void property_fail(const char* what) {
  std::fprintf(stderr, "fuzz_summary property violated: %s\n", what);
  std::abort();
}

/// Bounded little-endian reader over the raw input; returns false once the
/// bytes run out, so any prefix of a valid input is itself a valid input.
struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t& out) {
    if (pos + 1 > size) return false;
    out = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (pos + 4 > size) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (pos + 8 > size) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    }
    return true;
  }
};

void check_canonical(const SummaryVector& sv) {
  const auto& marks = sv.watermarks();
  for (std::size_t i = 0; i < marks.size(); ++i) {
    if (marks[i].second == 0) property_fail("zero watermark survived");
    if (i > 0 && marks[i - 1].first >= marks[i].first) {
      property_fail("watermarks not sorted by origin");
    }
  }
  const auto& extras = sv.extras();
  for (std::size_t i = 0; i < extras.size(); ++i) {
    if (i > 0 && !(extras[i - 1] < extras[i])) {
      property_fail("extras not sorted/unique");
    }
    // A seq at watermark+1 must have been absorbed; at or below the
    // watermark it is already covered and must have been dropped.
    if (extras[i].seq <= sv.watermark(extras[i].origin) + 1) {
      property_fail("extra not above watermark+1");
    }
  }
}

}  // namespace

int summary_input(const std::uint8_t* data, std::size_t size) {
  ByteReader r{data, size};

  // Deserialise arbitrary bytes into the from_parts argument shape. Counts
  // are capped so one input cannot allocate unbounded memory; the maps
  // deduplicate and sort exactly as a decoded wire summary would.
  std::map<NodeId, SeqNo> watermarks;
  std::map<NodeId, std::set<SeqNo>> extras;
  std::uint8_t n_marks = 0;
  r.u8(n_marks);
  for (std::uint8_t i = 0; i < n_marks % 16; ++i) {
    std::uint32_t origin = 0;
    std::uint64_t mark = 0;
    if (!r.u32(origin) || !r.u64(mark)) break;
    watermarks[origin] = mark;
  }
  std::uint8_t n_groups = 0;
  r.u8(n_groups);
  for (std::uint8_t g = 0; g < n_groups % 16; ++g) {
    std::uint32_t origin = 0;
    std::uint8_t count = 0;
    if (!r.u32(origin) || !r.u8(count)) break;
    auto& set = extras[origin];
    for (std::uint8_t i = 0; i < count % 32; ++i) {
      std::uint64_t seq = 0;
      if (!r.u64(seq)) break;
      set.insert(seq);
    }
  }

  const std::map<NodeId, SeqNo> in_marks = watermarks;
  const std::map<NodeId, std::set<SeqNo>> in_extras = extras;
  const SummaryVector sv =
      SummaryVector::from_parts(std::move(watermarks), std::move(extras));

  // 1. Canonical-form invariants every merge/covers/missing_from caller
  //    relies on.
  check_canonical(sv);

  // 2. Coverage: everything the parts described is covered (extras with
  //    seq 0 are meaningless and from_parts may drop them — seqs start at
  //    1 — so skip them), and the total matches an independent count.
  std::uint64_t expect_total = 0;
  for (const auto& [origin, mark] : in_marks) {
    expect_total += mark;
    if (mark > 0 && !sv.contains(UpdateId{origin, mark})) {
      property_fail("watermark head not covered");
    }
    if (!sv.contains(UpdateId{origin, 1}) && mark > 0) {
      property_fail("watermark base not covered");
    }
  }
  for (const auto& [origin, seqs] : in_extras) {
    const SeqNo mark = [&] {
      const auto it = in_marks.find(origin);
      return it == in_marks.end() ? SeqNo{0} : it->second;
    }();
    for (const SeqNo seq : seqs) {
      if (seq == 0) continue;
      if (seq > mark) ++expect_total;  // not already inside the watermark
      if (!sv.contains(UpdateId{origin, seq})) {
        property_fail("extra id not covered");
      }
    }
  }
  if (sv.total() != expect_total) property_fail("total() mismatch");

  // 3. Lattice laws on the canonicalised value.
  if (!sv.covers(sv)) property_fail("covers() not reflexive");
  SummaryVector merged = sv;
  merged.merge(sv);
  if (!(merged == sv)) property_fail("merge() not idempotent");
  if (!(SummaryVector::meet(sv, sv) == sv)) property_fail("meet() not idempotent");
  if (!sv.missing_from(sv).empty()) property_fail("missing_from(self) nonempty");

  // 4. Parts round-trip: rebuilding from the canonical representation must
  //    reproduce the value exactly (this is what the wire codec does on
  //    every received summary).
  std::map<NodeId, SeqNo> rt_marks(sv.watermarks().begin(),
                                   sv.watermarks().end());
  std::map<NodeId, std::set<SeqNo>> rt_extras;
  for (const UpdateId& id : sv.extras()) rt_extras[id.origin].insert(id.seq);
  if (!(SummaryVector::from_parts(std::move(rt_marks), std::move(rt_extras)) ==
        sv)) {
    property_fail("from_parts round-trip changed the value");
  }
  return 0;
}

}  // namespace fastcons::fuzz
