// libFuzzer entry point. Compiled once per target with FASTCONS_FUZZ_ENTRY
// defined to the target function (see tests/fuzz/CMakeLists.txt); linked
// with -fsanitize=fuzzer under FASTCONS_FUZZ=ON, or with driver_main.cpp
// (corpus replay) everywhere else.
#include "tests/fuzz/fuzz_targets.hpp"

#ifndef FASTCONS_FUZZ_ENTRY
#error "define FASTCONS_FUZZ_ENTRY to the target function"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return fastcons::fuzz::FASTCONS_FUZZ_ENTRY(data, size);
}
