// Standalone replay driver: gives the fuzz targets a plain main() on
// toolchains without libFuzzer (GCC, or FASTCONS_FUZZ=OFF). Each argument is
// a corpus file or a directory of corpus files; every input is run through
// LLVMFuzzerTestOneInput exactly as the fuzzer would. Exit 0 when every
// input was handled cleanly (property violations abort, like a fuzzer
// finding), 2 on usage/I/O errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

bool run_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& file : files) {
        if (!run_file(file)) return 2;
        ++ran;
      }
    } else {
      if (!run_file(arg)) return 2;
      ++ran;
    }
  }
  std::printf("replayed %zu corpus inputs cleanly\n", ran);
  return 0;
}
