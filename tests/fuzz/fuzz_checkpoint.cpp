#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "durability/checkpoint.hpp"
#include "tests/fuzz/fuzz_targets.hpp"

namespace fastcons::fuzz {
namespace {

[[noreturn]] void property_fail(const char* what) {
  std::fprintf(stderr, "fuzz_checkpoint property violated: %s\n", what);
  std::abort();
}

}  // namespace

int checkpoint_input(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  // decode_checkpoint must treat ANY byte string as a (possibly corrupt)
  // checkpoint image: nullopt on damage, never an exception. The try/abort
  // wrapper turns an escaping exception into a fuzzer finding instead of an
  // unwinding crash with no message.
  std::optional<EngineSnapshot> decoded;
  try {
    decoded = decode_checkpoint(input);
  } catch (...) {
    property_fail("decode_checkpoint threw");
  }
  if (!decoded.has_value()) return 0;

  // An accepted image re-encodes to a canonical form that is a fixpoint:
  // encode(decode(encode(decode(input)))) == encode(decode(input)). The
  // atomic writer persists exactly encode()'s bytes, so a decode that
  // accepts bytes its own re-encoding cannot reproduce would mean recovery
  // state silently drifts across checkpoint generations.
  const std::vector<std::uint8_t> first = encode_checkpoint(*decoded);
  const std::optional<EngineSnapshot> again = decode_checkpoint(first);
  if (!again.has_value()) property_fail("re-encoded image rejected");
  const std::vector<std::uint8_t> second = encode_checkpoint(*again);
  if (first != second) property_fail("re-encode not a fixpoint");
  return 0;
}

}  // namespace fastcons::fuzz
