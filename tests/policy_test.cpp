#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"

namespace fastcons {
namespace {

DemandTable table_with(const std::map<NodeId, double>& demands,
                       SimTime liveness = 0.0) {
  std::vector<NodeId> peers;
  for (const auto& [peer, d] : demands) {
    (void)d;
    peers.push_back(peer);
  }
  DemandTable table(peers, liveness);
  for (const auto& [peer, d] : demands) table.update(peer, d, 0.0);
  return table;
}

TEST(RandomPolicyTest, ReturnsOnlyNeighbours) {
  RandomPolicy policy;
  Rng rng(1);
  const DemandTable table = table_with({{3, 1.0}, {7, 2.0}, {9, 0.0}});
  for (int i = 0; i < 200; ++i) {
    const NodeId pick = policy.choose(table, 0.0, rng);
    EXPECT_TRUE(pick == 3 || pick == 7 || pick == 9);
  }
}

TEST(RandomPolicyTest, CoversAllNeighbours) {
  RandomPolicy policy;
  Rng rng(2);
  const DemandTable table = table_with({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(policy.choose(table, 0.0, rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RandomPolicyTest, IgnoresDemand) {
  // Golding's baseline: high demand must NOT bias selection.
  RandomPolicy policy;
  Rng rng(3);
  const DemandTable table = table_with({{1, 1000.0}, {2, 0.0}});
  int picked_low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (policy.choose(table, 0.0, rng) == 2) ++picked_low;
  }
  EXPECT_NEAR(picked_low, 1000, 150);
}

TEST(RandomPolicyTest, EmptyTableReturnsInvalid) {
  RandomPolicy policy;
  Rng rng(4);
  const DemandTable table({});
  EXPECT_EQ(policy.choose(table, 0.0, rng), kInvalidNode);
}

TEST(RandomPolicyTest, SkipsDeadNeighbours) {
  RandomPolicy policy;
  Rng rng(5);
  DemandTable table({1, 2}, /*liveness=*/1.0);
  table.update(1, 1.0, 0.0);  // 2 never heard from
  table.touch(1, 5.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy.choose(table, 5.0, rng), 1u);
  }
}

TEST(DemandCyclePolicyTest, DynamicPicksInDemandOrder) {
  DemandCyclePolicy policy(/*resort_each_pick=*/true);
  Rng rng(6);
  // Paper §2: B's neighbours D(8), E(7), A(4), C(3).
  const DemandTable table = table_with({{0, 4.0}, {2, 3.0}, {3, 8.0}, {4, 7.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 3u);  // D
  EXPECT_EQ(policy.choose(table, 0.0, rng), 4u);  // E
  EXPECT_EQ(policy.choose(table, 0.0, rng), 0u);  // A
  EXPECT_EQ(policy.choose(table, 0.0, rng), 2u);  // C
  // Cycle restarts.
  EXPECT_EQ(policy.choose(table, 0.0, rng), 3u);
}

TEST(DemandCyclePolicyTest, DynamicResortsMidCycle) {
  // Fig. 4: after B-D, demands change (A: 2->0, C: 0->9); the dynamic
  // algorithm must pick C' next, then A'.
  DemandCyclePolicy policy(/*resort_each_pick=*/true);
  Rng rng(7);
  DemandTable table = table_with({{0 /*A*/, 2.0}, {2 /*C*/, 0.0}, {3 /*D*/, 13.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 3u);  // B-D
  table.update(0, 0.0, 1.0);                      // A'
  table.update(2, 9.0, 1.0);                      // C'
  EXPECT_EQ(policy.choose(table, 1.0, rng), 2u);  // B-C'
  EXPECT_EQ(policy.choose(table, 2.0, rng), 0u);  // B-A'
}

TEST(DemandCyclePolicyTest, StaticIgnoresMidCycleChanges) {
  // The same scenario under the frozen-order policy: it keeps following the
  // stale table (the §3 failure the dynamic algorithm fixes).
  DemandCyclePolicy policy(/*resort_each_pick=*/false);
  Rng rng(8);
  DemandTable table = table_with({{0 /*A*/, 2.0}, {2 /*C*/, 0.0}, {3 /*D*/, 13.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 3u);  // B-D
  table.update(0, 0.0, 1.0);
  table.update(2, 9.0, 1.0);
  EXPECT_EQ(policy.choose(table, 1.0, rng), 0u);  // still A (stale order)
  EXPECT_EQ(policy.choose(table, 2.0, rng), 2u);  // then C
}

TEST(DemandCyclePolicyTest, StaticRefreezesAfterFullCycle) {
  DemandCyclePolicy policy(/*resort_each_pick=*/false);
  Rng rng(9);
  DemandTable table = table_with({{1, 5.0}, {2, 1.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 1u);
  EXPECT_EQ(policy.choose(table, 0.0, rng), 2u);
  // Demand flips; the next cycle must see the new order.
  table.update(1, 0.0, 1.0);
  table.update(2, 9.0, 1.0);
  EXPECT_EQ(policy.choose(table, 1.0, rng), 2u);
}

TEST(DemandCyclePolicyTest, TieBreaksByNodeId) {
  DemandCyclePolicy policy(true);
  Rng rng(10);
  const DemandTable table = table_with({{5, 4.0}, {2, 4.0}, {9, 4.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 2u);
  EXPECT_EQ(policy.choose(table, 0.0, rng), 5u);
  EXPECT_EQ(policy.choose(table, 0.0, rng), 9u);
}

TEST(DemandCyclePolicyTest, EmptyTableReturnsInvalid) {
  DemandCyclePolicy policy(true);
  Rng rng(11);
  const DemandTable table({});
  EXPECT_EQ(policy.choose(table, 0.0, rng), kInvalidNode);
}

TEST(DemandCyclePolicyTest, AllDeadReturnsInvalid) {
  DemandCyclePolicy policy(true);
  Rng rng(12);
  DemandTable table({1, 2}, /*liveness=*/0.5);
  table.update(1, 5.0, 0.0);
  table.update(2, 3.0, 0.0);
  EXPECT_EQ(policy.choose(table, 10.0, rng), kInvalidNode);
}

TEST(DemandCyclePolicyTest, DeadNeighbourSkippedMidCycle) {
  DemandCyclePolicy policy(true);
  Rng rng(13);
  DemandTable table({1, 2}, /*liveness=*/1.0);
  table.update(1, 5.0, 0.0);
  table.update(2, 3.0, 0.0);
  EXPECT_EQ(policy.choose(table, 0.0, rng), 1u);
  // Peer 2 goes silent past the window; the cycle must not stall on it.
  table.touch(1, 2.0);
  EXPECT_EQ(policy.choose(table, 2.0, rng), 1u);
}

TEST(DemandCyclePolicyTest, ResetForgetsCycleState) {
  DemandCyclePolicy policy(true);
  Rng rng(14);
  const DemandTable table = table_with({{1, 5.0}, {2, 3.0}});
  EXPECT_EQ(policy.choose(table, 0.0, rng), 1u);
  policy.reset();
  EXPECT_EQ(policy.choose(table, 0.0, rng), 1u);  // cycle restarted
}

TEST(MakePolicyTest, FactoryProducesAllKinds) {
  EXPECT_NE(make_policy(PartnerSelection::uniform_random), nullptr);
  EXPECT_NE(make_policy(PartnerSelection::demand_static), nullptr);
  EXPECT_NE(make_policy(PartnerSelection::demand_dynamic), nullptr);
}

}  // namespace
}  // namespace fastcons
