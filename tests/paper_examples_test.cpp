// Exact reproductions of the paper's worked examples: the §2 table, the
// Fig. 3 worst/optimal session orders, and the Fig. 4 dynamic session table.
#include <gtest/gtest.h>

#include <memory>

#include "demand/demand_table.hpp"
#include "core/policy.hpp"
#include "experiment/metrics.hpp"

namespace fastcons {
namespace {

// Paper §2: "Replica A B C D E / Rate of demand 4 6 3 8 7".
constexpr double kDemandA = 4, kDemandB = 6, kDemandC = 3, kDemandD = 8,
                 kDemandE = 7;
// Node ids: A=0, B=1, C=2, D=3, E=4.

std::vector<std::optional<SimTime>> deliveries_for_order(
    const std::vector<NodeId>& order) {
  // B holds the change; session k (completing at time k) makes order[k-1]
  // consistent. B itself is consistent from t=0.
  std::vector<std::optional<SimTime>> delivery(5);
  delivery[1] = 0.0;  // B
  for (std::size_t k = 0; k < order.size(); ++k) {
    delivery[order[k]] = static_cast<double>(k + 1);
  }
  return delivery;
}

const std::vector<double> kDemands{kDemandA, kDemandB, kDemandC, kDemandD,
                                   kDemandE};

TEST(PaperFig3Test, WorstCaseSeries) {
  // Worst case order B-C, B-A, B-E, B-D -> rates 9, 13, 20, 28.
  const auto delivery = deliveries_for_order({2, 0, 4, 3});
  const auto series = consistent_rate_series(delivery, kDemands, 4, 1.0);
  EXPECT_EQ(series, (std::vector<double>{9, 13, 20, 28}));
}

TEST(PaperFig3Test, OptimalCaseSeries) {
  // Optimal order B-D, B-E, B-A, B-C -> rates 14, 21, 25, 28.
  const auto delivery = deliveries_for_order({3, 4, 0, 2});
  const auto series = consistent_rate_series(delivery, kDemands, 4, 1.0);
  EXPECT_EQ(series, (std::vector<double>{14, 21, 25, 28}));
}

TEST(PaperFig3Test, OptimalDominatesWorstPointwise) {
  const auto worst = consistent_rate_series(deliveries_for_order({2, 0, 4, 3}),
                                            kDemands, 4, 1.0);
  const auto best = consistent_rate_series(deliveries_for_order({3, 4, 0, 2}),
                                           kDemands, 4, 1.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GE(best[k], worst[k]);
}

TEST(PaperFig3Test, DemandCyclePolicyProducesTheOptimalOrder) {
  // The §2 algorithm applied to B's neighbour table must yield exactly the
  // paper's best-case order D, E, A, C.
  DemandTable table({0, 2, 3, 4});
  table.update(0, kDemandA, 0.0);
  table.update(2, kDemandC, 0.0);
  table.update(3, kDemandD, 0.0);
  table.update(4, kDemandE, 0.0);
  DemandCyclePolicy policy(/*resort_each_pick=*/true);
  Rng rng(1);
  std::vector<NodeId> order;
  for (int i = 0; i < 4; ++i) order.push_back(policy.choose(table, 0.0, rng));
  EXPECT_EQ(order, (std::vector<NodeId>{3, 4, 0, 2}));
}

TEST(PaperFig4Test, DynamicSessionTable) {
  // §4's table: sessions B-D (t=1), B-C' (t=2), B-A' (t=3) once A drops
  // 2 -> 0 and C rises 0 -> 9 after the first session.
  DemandTable table({0 /*A*/, 2 /*C*/, 3 /*D*/});
  table.update(0, 2.0, 0.0);
  table.update(2, 0.0, 0.0);
  table.update(3, 13.0, 0.0);
  DemandCyclePolicy dynamic(/*resort_each_pick=*/true);
  Rng rng(1);

  EXPECT_EQ(dynamic.choose(table, 1.0, rng), 3u);  // t=1: B-D
  // Demand shifts (A'=0, C'=9) and the adverts refresh the table.
  table.update(0, 0.0, 1.5);
  table.update(2, 9.0, 1.5);
  EXPECT_EQ(dynamic.choose(table, 2.0, rng), 2u);  // t=2: B-C'
  EXPECT_EQ(dynamic.choose(table, 3.0, rng), 0u);  // t=3: B-A'
}

TEST(PaperFig4Test, StaticAlgorithmMisroutesAfterShift) {
  // The same shift under the frozen-order policy: B-A comes before B-C,
  // "it would not contribute to carrying consistency to the zones with
  // greatest demand".
  DemandTable table({0, 2, 3});
  table.update(0, 2.0, 0.0);
  table.update(2, 0.0, 0.0);
  table.update(3, 13.0, 0.0);
  DemandCyclePolicy static_policy(/*resort_each_pick=*/false);
  Rng rng(1);
  EXPECT_EQ(static_policy.choose(table, 1.0, rng), 3u);
  table.update(0, 0.0, 1.5);
  table.update(2, 9.0, 1.5);
  EXPECT_EQ(static_policy.choose(table, 2.0, rng), 0u);  // stale: A before C'
}

TEST(PaperSection2Test, DemandTableOrdersByDemand) {
  // The running example's full ordering over all five replicas.
  DemandTable table({0, 1, 2, 3, 4});
  const std::vector<double> demands{kDemandA, kDemandB, kDemandC, kDemandD,
                                    kDemandE};
  for (NodeId n = 0; n < 5; ++n) table.update(n, demands[n], 0.0);
  EXPECT_EQ(table.by_demand_desc(0.0), (std::vector<NodeId>{3, 4, 1, 0, 2}));
}

TEST(PaperMetricsTest, TotalDemandIsTwentyEight) {
  // Fig. 3's plateau: once all replicas are consistent the service rate is
  // the total demand 4+6+3+8+7 = 28.
  std::vector<std::optional<SimTime>> all_at_zero(5, 0.0);
  EXPECT_DOUBLE_EQ(consistent_request_rate(all_at_zero, kDemands, 0.0), 28.0);
}

TEST(PaperMetricsTest, ConsistentRequestsServedIntegrates) {
  // Two replicas, demand 2 and 3; deliveries at t=0 and t=1; by t=2 the
  // integral is 2*2 + 3*1 = 7 requests served with consistent content.
  const std::vector<std::optional<SimTime>> delivery{0.0, 1.0};
  EXPECT_DOUBLE_EQ(consistent_requests_served(delivery, {2.0, 3.0}, 2.0), 7.0);
}

TEST(PaperMetricsTest, RateSeriesHonoursPeriodScaling) {
  // Same deliveries, period 2.0: session k corresponds to time 2k.
  const std::vector<std::optional<SimTime>> delivery{0.0, 3.0};
  const auto series = consistent_rate_series(delivery, {5.0, 7.0}, 2, 2.0);
  EXPECT_EQ(series, (std::vector<double>{5.0, 12.0}));
}

TEST(PaperMetricsTest, UndeliveredReplicasNeverCount) {
  const std::vector<std::optional<SimTime>> delivery{0.0, std::nullopt};
  EXPECT_DOUBLE_EQ(consistent_request_rate(delivery, {3.0, 100.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(consistent_requests_served(delivery, {3.0, 100.0}, 10.0),
                   30.0);
}

TEST(PaperMetricsTest, ZeroDemandIsNeutral) {
  const std::vector<std::optional<SimTime>> delivery{1.0, 2.0};
  EXPECT_DOUBLE_EQ(demand_weighted_mean_delay(delivery, {0.0, 0.0}, 10.0),
                   0.0);
}

TEST(PaperMetricsTest, WeightedDelayClampsAtHorizon) {
  const std::vector<std::optional<SimTime>> delivery{25.0};
  EXPECT_DOUBLE_EQ(demand_weighted_mean_delay(delivery, {4.0}, 10.0), 10.0);
}

TEST(PaperMetricsTest, WeightedDelayPenalisesHotMisses) {
  // A missing delivery at a hot replica dominates the weighted delay.
  const std::vector<std::optional<SimTime>> delivery{0.0, std::nullopt};
  const double d = demand_weighted_mean_delay(delivery, {1.0, 9.0}, 10.0);
  EXPECT_DOUBLE_EQ(d, (1.0 * 0.0 + 9.0 * 10.0) / 10.0);
}

}  // namespace
}  // namespace fastcons
