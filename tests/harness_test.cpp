// Harness tests: registry round-trips, seed derivation, and the load-bearing
// guarantee that results are bit-identical regardless of thread count.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace fastcons::harness {
namespace {

// ------------------------------------------------------------- registry ----

TEST(ScenarioRegistry, ContainsAllRegisteredScenarios) {
  const ScenarioRegistry registry = builtin_registry();
  const std::vector<std::string> expected{
      "sec2",        "fig3",          "fig4",
      "fig5",        "fig6",          "uniform-topologies",
      "diameter-ba", "diameter-grid", "overhead",
      "islands",     "ablation",      "ablation-staleness",
      "freshness",   "large-scale",   "faults",
      "degraded"};
  EXPECT_EQ(registry.names(), expected);
  EXPECT_EQ(registry.all().size(), 16u);
}

TEST(ScenarioRegistry, FindRoundTripsEveryRegisteredName) {
  const ScenarioRegistry registry = builtin_registry();
  for (const ScenarioSpec& spec : registry.all()) {
    const ScenarioSpec* found = registry.find(spec.name);
    ASSERT_NE(found, nullptr) << spec.name;
    EXPECT_EQ(found->name, spec.name);
    EXPECT_EQ(&registry.get(spec.name), found);
    EXPECT_FALSE(found->title.empty()) << spec.name;
    EXPECT_FALSE(found->paper_ref.empty()) << spec.name;
    EXPECT_FALSE(found->sweep.empty()) << spec.name;
    // Labels are unique within a scenario (they key the output).
    std::set<std::string> labels;
    for (const SweepPoint& point : found->sweep) {
      EXPECT_TRUE(labels.insert(point.label).second)
          << spec.name << " duplicate label " << point.label;
    }
  }
}

TEST(ScenarioRegistry, LiveFamilyIsSeparateFromBuiltins) {
  // The live (real-socket) scenarios measure wall clocks, so they must
  // never enter builtin_registry(): --all runs, the determinism digests
  // and the reset-equivalence sweeps all iterate the builtins only.
  const ScenarioRegistry builtin = builtin_registry();
  EXPECT_EQ(builtin.find("live"), nullptr);
  EXPECT_EQ(builtin.find("recovery"), nullptr);
  const ScenarioRegistry live = live_registry();
  const ScenarioSpec* spec = live.find("live");
  ASSERT_NE(spec, nullptr);
  // "live" plus the durable crash-recovery family, both wall-clock.
  EXPECT_NE(live.find("recovery"), nullptr);
  EXPECT_EQ(live.all().size(), 2u);
  // >= 3 topologies x weak vs fast, per the live results contract.
  EXPECT_GE(spec->sweep.size(), 6u);
  std::size_t weak = 0;
  std::size_t fast = 0;
  for (const SweepPoint& point : spec->sweep) {
    const std::string algo = tag_or(point.tags, "algo", "");
    weak += algo == "weak" ? 1 : 0;
    fast += algo == "fast" ? 1 : 0;
  }
  EXPECT_GE(weak, 3u);
  EXPECT_EQ(weak, fast);
}

TEST(ScenarioRegistry, UnknownNameIsNullFromFindAndThrowsFromGet) {
  const ScenarioRegistry registry = builtin_registry();
  EXPECT_EQ(registry.find("no-such-scenario"), nullptr);
  try {
    registry.get("no-such-scenario");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    // The error names the known scenarios so CLI typos are self-serviced.
    EXPECT_NE(std::string(e.what()).find("fig5"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndInvalidSpecs) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "demo";
  SweepPoint point;
  point.label = "only";
  spec.sweep.push_back(point);
  spec.run = [](const SweepPoint&, std::uint64_t, TrialContext&) {
    return TrialResult{};
  };
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), ConfigError);  // duplicate

  ScenarioSpec no_sweep = spec;
  no_sweep.name = "no-sweep";
  no_sweep.sweep.clear();
  EXPECT_THROW(registry.add(no_sweep), ConfigError);

  ScenarioSpec no_fn = spec;
  no_fn.name = "no-fn";
  no_fn.run = nullptr;
  EXPECT_THROW(registry.add(no_fn), ConfigError);
}

// ----------------------------------------------------------------- seeds ----

TEST(TrialSeeds, ArePureFunctionsOfTheirInputs) {
  EXPECT_EQ(derive_trial_seed(42, "fig5", 1, 7),
            derive_trial_seed(42, "fig5", 1, 7));
}

TEST(TrialSeeds, SeparateScenariosPointsAndTrials) {
  std::set<std::uint64_t> seen;
  for (const char* scenario : {"fig5", "fig6", "overhead"}) {
    for (std::size_t point = 0; point < 4; ++point) {
      for (std::size_t trial = 0; trial < 64; ++trial) {
        EXPECT_TRUE(seen.insert(derive_trial_seed(42, scenario, point, trial))
                        .second)
            << scenario << " " << point << " " << trial;
      }
    }
  }
  // A different base seed moves every stream.
  EXPECT_NE(derive_trial_seed(42, "fig5", 0, 0),
            derive_trial_seed(43, "fig5", 0, 0));
}

// ----------------------------------------------------------- determinism ----

RunOptions smoke_options(std::size_t jobs) {
  RunOptions options;
  options.smoke = true;
  options.jobs = jobs;
  return options;
}

TEST(TrialRunner, ResultsAreBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion for the whole harness: same base seed, any
  // --jobs value, byte-identical serialised results. fig5 covers the
  // propagation path (multi-point sweep, samples, counters); freshness
  // covers the workload path.
  const ScenarioRegistry registry = builtin_registry();
  for (const char* name : {"fig5", "freshness"}) {
    const ScenarioSpec& spec = registry.get(name);
    const std::string one =
        scenario_to_json(run_scenario(spec, smoke_options(1))).dump();
    const std::string eight =
        scenario_to_json(run_scenario(spec, smoke_options(8))).dump();
    EXPECT_EQ(one, eight) << name;
  }
}

TEST(TrialRunner, TimingIsMeasuredButStaysOutsideTheDigest) {
  // wall_ms/events_executed are measurements of a particular run: they go
  // into the results files (under "timing") but never into the digestable
  // serialisation, so perf changes can't masquerade as result changes.
  const ScenarioRegistry registry = builtin_registry();
  ScenarioResult result = run_scenario(registry.get("fig5"), smoke_options(1));
  std::uint64_t events = 0;
  for (const PointResult& point : result.points) {
    events += point.events_executed;
    EXPECT_GE(point.wall_ms, 0.0);
  }
  EXPECT_GT(events, 0u);  // fig5 trials run on the simulator

  const std::string pure = scenario_to_json(result).dump();
  EXPECT_EQ(pure.find("timing"), std::string::npos);
  EXPECT_EQ(pure.find("wall_ms"), std::string::npos);
  const std::string timed =
      scenario_to_json(result, /*include_timing=*/true).dump();
  EXPECT_NE(timed.find("\"timing\""), std::string::npos);
  EXPECT_NE(timed.find("\"events_per_sec\""), std::string::npos);

  // Different measurements, same digest.
  ScenarioResult other = result;
  for (PointResult& point : other.points) {
    point.wall_ms += 1234.5;
    point.events_executed += 99;
  }
  EXPECT_EQ(scenario_to_json(other).dump(), pure);
  EXPECT_NE(scenario_to_json(other, true).dump(), timed);
}

TEST(TrialRunner, RollupDigestIsStableAcrossThreadCounts) {
  const ScenarioRegistry registry = builtin_registry();
  const auto run_all = [&](std::size_t jobs) {
    std::vector<ScenarioResult> results;
    for (const char* name : {"sec2", "fig3", "fig4"}) {
      results.push_back(run_scenario(registry.get(name), smoke_options(jobs)));
    }
    return digest_hex(rollup_to_json(results).dump());
  };
  EXPECT_EQ(run_all(1), run_all(8));
}

TEST(TrialRunner, SweepFilterPreservesPointIndicesAndNumbers) {
  // Running a filtered sweep must reproduce exactly the numbers the full
  // sweep produced for that point (seeds key off the spec's point index).
  const ScenarioRegistry registry = builtin_registry();
  const ScenarioSpec& spec = registry.get("fig5");

  const ScenarioResult full = run_scenario(spec, smoke_options(2));
  RunOptions filtered_options = smoke_options(2);
  filtered_options.sweep_filter = "fast";
  const ScenarioResult filtered = run_scenario(spec, filtered_options);

  ASSERT_EQ(filtered.points.size(), 1u);
  const PointResult* full_fast = nullptr;
  for (const PointResult& point : full.points) {
    if (point.point.label == "fast") full_fast = &point;
  }
  ASSERT_NE(full_fast, nullptr);
  EXPECT_EQ(filtered.points[0].index, full_fast->index);

  ScenarioResult full_only_fast = full;
  full_only_fast.points = {*full_fast};
  EXPECT_EQ(scenario_to_json(filtered).dump(),
            scenario_to_json(full_only_fast).dump());
}

TEST(TrialRunner, UnmatchedSweepFilterThrows) {
  const ScenarioRegistry registry = builtin_registry();
  RunOptions options = smoke_options(1);
  options.sweep_filter = "no-such-label";
  EXPECT_THROW(run_scenario(registry.get("fig5"), options), ConfigError);
}

TEST(TrialRunner, SmokeModeAppliesOverridesAndTrialCounts) {
  const ScenarioRegistry registry = builtin_registry();
  const ScenarioSpec& spec = registry.get("fig5");
  const ScenarioResult result = run_scenario(spec, smoke_options(1));
  ASSERT_EQ(result.points.size(), 3u);
  for (const PointResult& point : result.points) {
    EXPECT_EQ(point.trials, spec.smoke_trials);
    EXPECT_EQ(param_or(point.point.params, "n", 0.0), 12.0);  // smoke override
    // sessions_all pools one sample per non-writer replica per trial.
    ASSERT_FALSE(point.samples.empty());
    EXPECT_EQ(point.samples[0].first, "sessions_all");
    EXPECT_EQ(point.samples[0].second.count(), point.trials * (12 - 1));
  }
}

TEST(TrialRunner, TrialsOverrideWins) {
  const ScenarioRegistry registry = builtin_registry();
  RunOptions options = smoke_options(1);
  options.trials = 3;
  const ScenarioResult result = run_scenario(registry.get("fig3"), options);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].trials, 3u);
}

TEST(TrialRunner, SeedGroupsPairPointsOnIdenticalSeeds) {
  // Points sharing a seed_group receive the SAME seed per trial index
  // (common random numbers: algorithm variants compare on identical
  // topologies/demands); ungrouped points get independent streams.
  ScenarioSpec spec;
  spec.name = "pairing";
  for (const char* label : {"a", "b", "c"}) {
    SweepPoint point;
    point.label = label;
    if (std::string(label) != "c") point.seed_group = 0;
    spec.sweep.push_back(std::move(point));
  }
  spec.trials = 4;
  spec.smoke_trials = 4;
  spec.run = [](const SweepPoint&, std::uint64_t seed, TrialContext&) {
    TrialResult out;
    out.sample("seed", {static_cast<double>(seed >> 12)});
    return out;
  };
  const ScenarioResult result = run_scenario(spec, RunOptions{});
  ASSERT_EQ(result.points.size(), 3u);
  const auto seeds = [&](std::size_t i) {
    return result.points[i].samples.at(0).second.sorted_samples();
  };
  EXPECT_EQ(seeds(0), seeds(1));  // shared group: identical instances
  EXPECT_NE(seeds(0), seeds(2));  // no group: independent stream
}

TEST(TrialRunner, TrialExceptionsPropagate) {
  ScenarioSpec spec;
  spec.name = "throws";
  SweepPoint point;
  point.label = "only";
  spec.sweep.push_back(point);
  spec.trials = 4;
  spec.smoke_trials = 4;
  spec.run = [](const SweepPoint&, std::uint64_t, TrialContext&) -> TrialResult {
    throw ConfigError("boom");
  };
  RunOptions options;
  options.jobs = 4;
  EXPECT_THROW(run_scenario(spec, options), ConfigError);
}

// --------------------------------------------------------- paper checks ----

TEST(Scenarios, Fig4MatchesThePaperSessionOrders) {
  // fig4 is fully deterministic, so the harness can assert the paper's
  // table outright: dynamic B-D, B-C', B-A'; static B-D, B-A, B-C.
  const ScenarioRegistry registry = builtin_registry();
  const ScenarioResult result =
      run_scenario(registry.get("fig4"), smoke_options(1));
  ASSERT_EQ(result.points.size(), 2u);
  for (const PointResult& point : result.points) {
    ASSERT_FALSE(point.counters.empty()) << point.point.label;
    EXPECT_EQ(point.counters[0].first, "matches_paper");
    EXPECT_EQ(point.counters[0].second, 1u) << point.point.label;
  }
}

TEST(Scenarios, Sec2WalkthroughDeliversViaFastPush) {
  const ScenarioRegistry registry = builtin_registry();
  const ScenarioResult result =
      run_scenario(registry.get("sec2"), smoke_options(1));
  ASSERT_EQ(result.points.size(), 1u);
  std::uint64_t order_ok = 0, fast_push = 0;
  for (const auto& [name, value] : result.points[0].counters) {
    if (name == "order_matches_paper") order_ok = value;
    if (name == "d_reached_by_fast_push") fast_push = value;
  }
  EXPECT_EQ(order_ok, 1u);
  EXPECT_EQ(fast_push, 1u);
}

}  // namespace
}  // namespace fastcons::harness
