#include "net/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "net/pacer.hpp"

namespace fastcons {

LocalCluster::LocalCluster(const Graph& topology, ClusterConfig config)
    : seconds_per_unit_(config.seconds_per_unit) {
  if (!config.demands.empty() && config.demands.size() != topology.size()) {
    throw ConfigError("cluster demand vector size mismatch");
  }
  // Peers dial the address the listeners are actually reachable on: the
  // bind address itself, except for the wildcard (not dialable — binding
  // 0.0.0.0 admits non-local clients while the mesh dials loopback).
  const std::string connect_host =
      config.bind_address == "0.0.0.0" ? "127.0.0.1" : config.bind_address;
  // Phase 1: construct all servers so every listener knows its port.
  Rng rng(config.seed);
  for (NodeId n = 0; n < topology.size(); ++n) {
    ServerConfig sc;
    sc.self = n;
    sc.protocol = config.protocol;
    sc.seconds_per_unit = config.seconds_per_unit;
    sc.bind_address = config.bind_address;
    sc.demand = config.demands.empty() ? 0.0 : config.demands[n];
    sc.seed = rng.next_u64();
    if (!config.durability_dir.empty()) {
      sc.durability.dir =
          config.durability_dir + "/node-" + std::to_string(n);
      sc.durability.fsync = config.fsync;
      sc.durability.checkpoint_every = config.checkpoint_every;
    }
    if (config.outbound_fault) {
      sc.outbound_fault = [fault = config.outbound_fault, n](NodeId to) {
        return fault(n, to);
      };
    }
    configs_.push_back(sc);
    servers_.push_back(std::make_unique<ReplicaServer>(std::move(sc)));
    // Pin the learned ephemeral port so restart(n) rebinds the same one.
    configs_.back().listen_port = servers_.back()->port();
  }
  // Phase 2: wire peer addresses along topology edges.
  for (NodeId n = 0; n < topology.size(); ++n) {
    std::vector<PeerAddress> peers;
    for (const Edge& e : topology.neighbours(n)) {
      peers.push_back(PeerAddress{e.peer, connect_host,
                                  servers_[e.peer]->port()});
    }
    peer_tables_.push_back(peers);
    servers_[n]->set_peers(std::move(peers));
  }
}

LocalCluster::~LocalCluster() { stop(); }

ReplicaServer& LocalCluster::server(NodeId n) {
  FASTCONS_EXPECTS(n < servers_.size());
  FASTCONS_EXPECTS(servers_[n] != nullptr);
  return *servers_[n];
}

void LocalCluster::start() {
  for (auto& server : servers_) {
    if (server != nullptr) server->start();
  }
  started_ = true;
}

void LocalCluster::stop() {
  for (auto& server : servers_) {
    if (server != nullptr) server->stop();
  }
  started_ = false;
}

bool LocalCluster::alive(NodeId n) const {
  return n < servers_.size() && servers_[n] != nullptr;
}

void LocalCluster::kill(NodeId n) {
  FASTCONS_EXPECTS(n < servers_.size() && servers_[n] != nullptr);
  // Crash semantics: no final checkpoint, so a durable restart exercises
  // real WAL replay instead of the graceful-stop fast path.
  servers_[n]->crash_stop();
  servers_[n].reset();
}

void LocalCluster::restart(NodeId n, RestartMode mode) {
  FASTCONS_EXPECTS(n < servers_.size() && servers_[n] == nullptr);
  const std::string& dir = configs_[n].durability.dir;
  if (mode == RestartMode::wipe && !dir.empty()) {
    // A wipe restart models losing the disk along with the process: the
    // reborn node must not find its old checkpoint or WAL.
    ::remove((dir + "/wal.log").c_str());
    ::remove((dir + "/checkpoint.bin").c_str());
    ::remove((dir + "/checkpoint.bin.tmp").c_str());
  }
  servers_[n] = std::make_unique<ReplicaServer>(configs_[n]);
  servers_[n]->set_peers(peer_tables_[n]);
  if (started_) servers_[n]->start();
}

bool LocalCluster::converged(std::uint64_t min_updates) const {
  // Killed servers are skipped: convergence is a statement about the
  // replicas that exist. An all-killed cluster has no summaries to compare.
  const ReplicaServer* first = nullptr;
  for (const auto& server : servers_) {
    if (server != nullptr) {
      first = server.get();
      break;
    }
  }
  if (first == nullptr) return min_updates == 0;
  const SummaryVector reference = first->summary();
  if (reference.total() < min_updates) return false;
  for (const auto& server : servers_) {
    if (server == nullptr || server.get() == first) continue;
    if (!(server->summary() == reference)) return false;
  }
  return true;
}

bool LocalCluster::wait_for_convergence(double timeout_seconds,
                                        std::uint64_t min_updates) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  // A twentieth of a session period, clamped to sane wall-clock bounds:
  // responsive for test-speed clusters (ms periods) without busy-spinning,
  // and not comatose for daemon-speed ones (second periods).
  const double poll_seconds =
      std::clamp(seconds_per_unit_ / 20.0, 0.0005, 0.05);
  const auto poll_interval = std::chrono::duration<double>(poll_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (converged(min_updates)) return true;
    std::this_thread::sleep_for(poll_interval);
  }
  return converged(min_updates);
}

bool LocalCluster::all_peers_up() const {
  for (std::size_t n = 0; n < servers_.size(); ++n) {
    if (servers_[n] == nullptr) continue;
    const NetStats net = servers_[n]->net_stats();
    for (const PeerNetStats& peer : net.peers) {
      if (!alive(peer.peer)) continue;  // down is the right answer here
      if (peer.health != PeerHealth::up) return false;
    }
  }
  return true;
}

bool LocalCluster::wait_for_peer_health(double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  const double poll_seconds =
      std::clamp(seconds_per_unit_ / 20.0, 0.0005, 0.05);
  const auto poll_interval = std::chrono::duration<double>(poll_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (all_peers_up()) return true;
    std::this_thread::sleep_for(poll_interval);
  }
  return all_peers_up();
}

LoadReport LocalCluster::run_load(NodeId writer, double writes_per_sec,
                                  double seconds,
                                  double drain_timeout_seconds) {
  FASTCONS_EXPECTS(writer < servers_.size());
  if (writes_per_sec <= 0.0 || seconds <= 0.0) {
    throw ConfigError("run_load needs a positive rate and duration");
  }
  using Clock = std::chrono::steady_clock;
  struct Outstanding {
    std::string key;
    Clock::time_point issued;
    std::size_t next_node = 0;  // replicas [0, next_node) confirmed
  };

  LoadReport report;
  std::deque<Outstanding> pending;
  const std::string prefix = "load/" + std::to_string(writer) + "/";

  // Writes confirm roughly in issue order (summaries grow monotonically),
  // so each pass only probes a bounded front window of the queue; entries
  // behind an unconfirmed one are retried on the next pass.
  const auto confirm_pass = [&](Clock::time_point now) {
    std::size_t probed = 0;
    while (!pending.empty() && probed < 32) {
      Outstanding& front = pending.front();
      while (front.next_node < servers_.size() &&
             servers_[front.next_node]->read(front.key).has_value()) {
        ++front.next_node;
      }
      if (front.next_node < servers_.size()) break;
      report.visibility_latency_ms.add(
          std::chrono::duration<double, std::milli>(now - front.issued)
              .count());
      ++report.writes_confirmed;
      pending.pop_front();
      ++probed;
    }
  };

  const auto start = Clock::now();
  const auto issue_deadline = start + std::chrono::duration<double>(seconds);
  const RatePacer pacer(start, writes_per_sec);
  std::uint64_t i = 0;
  while (Clock::now() < issue_deadline) {
    const auto now = Clock::now();
    if (now >= pacer.due(i)) {
      std::string key = prefix + std::to_string(i);
      servers_[writer]->write(key, "v");
      pending.push_back(Outstanding{std::move(key), now, 0});
      ++report.writes_issued;
      ++i;
      continue;
    }
    confirm_pass(now);
    std::this_thread::sleep_for(pacer.sleep_toward(i, now));
  }
  report.issue_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_writes_per_sec =
      report.issue_seconds > 0.0
          ? static_cast<double>(report.writes_issued) / report.issue_seconds
          : 0.0;

  const auto drain_start = Clock::now();
  const auto drain_deadline =
      drain_start + std::chrono::duration<double>(drain_timeout_seconds);
  while (!pending.empty() && Clock::now() < drain_deadline) {
    confirm_pass(Clock::now());
    if (pending.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  report.drain_seconds =
      std::chrono::duration<double>(Clock::now() - drain_start).count();
  return report;
}

}  // namespace fastcons
