#include "net/cluster.hpp"

#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {

LocalCluster::LocalCluster(const Graph& topology, ClusterConfig config) {
  if (!config.demands.empty() && config.demands.size() != topology.size()) {
    throw ConfigError("cluster demand vector size mismatch");
  }
  // Phase 1: construct all servers so every listener knows its port.
  Rng rng(config.seed);
  for (NodeId n = 0; n < topology.size(); ++n) {
    ServerConfig sc;
    sc.self = n;
    sc.protocol = config.protocol;
    sc.seconds_per_unit = config.seconds_per_unit;
    sc.demand = config.demands.empty() ? 0.0 : config.demands[n];
    sc.seed = rng.next_u64();
    servers_.push_back(std::make_unique<ReplicaServer>(std::move(sc)));
  }
  // Phase 2: wire peer addresses along topology edges.
  for (NodeId n = 0; n < topology.size(); ++n) {
    std::vector<PeerAddress> peers;
    for (const Edge& e : topology.neighbours(n)) {
      peers.push_back(PeerAddress{e.peer, "127.0.0.1",
                                  servers_[e.peer]->port()});
    }
    servers_[n]->set_peers(std::move(peers));
  }
}

LocalCluster::~LocalCluster() { stop(); }

ReplicaServer& LocalCluster::server(NodeId n) {
  FASTCONS_EXPECTS(n < servers_.size());
  return *servers_[n];
}

void LocalCluster::start() {
  for (auto& server : servers_) server->start();
}

void LocalCluster::stop() {
  for (auto& server : servers_) server->stop();
}

bool LocalCluster::converged(std::uint64_t min_updates) const {
  const SummaryVector reference = servers_.front()->summary();
  if (reference.total() < min_updates) return false;
  for (std::size_t n = 1; n < servers_.size(); ++n) {
    if (!(servers_[n]->summary() == reference)) return false;
  }
  return true;
}

bool LocalCluster::wait_for_convergence(double timeout_seconds,
                                        std::uint64_t min_updates) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (converged(min_updates)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return converged(min_updates);
}

}  // namespace fastcons
