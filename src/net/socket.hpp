// Thin RAII layer over POSIX TCP sockets: everything the replica server
// needs and nothing more (P.11 — encapsulate the messy construct once).
// All sockets are non-blocking; readiness is multiplexed with poll(2).
#ifndef FASTCONS_NET_SOCKET_HPP
#define FASTCONS_NET_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fastcons {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept;
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Result of a non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  ok,           // made progress
  would_block,  // no progress now, try again on readiness
  closed,       // orderly shutdown by the peer
  error,        // connection is dead
};

/// A non-blocking TCP connection.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(Fd fd) noexcept : fd_(std::move(fd)) {}

  /// Starts a non-blocking connect to host:port (numeric IPv4 only). The
  /// connection becomes writable when established; query pending_error()
  /// on writability to learn whether the handshake actually succeeded.
  /// Throws TransportError if the attempt cannot start.
  static TcpConnection connect(const std::string& host, std::uint16_t port);

  bool valid() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  /// Appends to the outbound buffer and attempts to flush.
  IoStatus send(std::span<const std::uint8_t> bytes);

  /// Appends to the outbound buffer WITHOUT attempting a flush. Used while
  /// a non-blocking connect is still in progress: the bytes sit in the
  /// outbox until writability reports the handshake outcome.
  void queue(std::span<const std::uint8_t> bytes);

  /// Flushes as much buffered output as the kernel accepts. Consumed bytes
  /// are tracked as an offset into the outbox and the prefix is compacted
  /// away only once it is both large and the majority of the buffer, so a
  /// backpressured connection costs amortised O(1) per byte instead of the
  /// O(n^2) a front-erase-per-send scheme degrades to.
  IoStatus flush();

  bool has_pending_output() const noexcept { return outbox_.size() > sent_; }
  std::size_t pending_output_bytes() const noexcept {
    return outbox_.size() - sent_;
  }

  /// The socket's pending SO_ERROR (0 = none); clears it. The poll loop
  /// calls this when a connecting socket turns writable to distinguish an
  /// established connection from an asynchronous connect failure.
  int pending_error() noexcept;

  /// Reads whatever is available into `out` (appends). Returns would_block
  /// when drained, closed on EOF.
  IoStatus read_available(std::vector<std::uint8_t>& out);

  /// Closes the socket and discards any unsent output.
  void close() noexcept {
    fd_.reset();
    outbox_.clear();
    sent_ = 0;
  }

 private:
  Fd fd_;
  std::vector<std::uint8_t> outbox_;
  std::size_t sent_ = 0;  // outbox_[0, sent_) already accepted by the kernel
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds to `address`:`port` (numeric IPv4; 0 = ephemeral port) and
  /// listens. "127.0.0.1" restricts the mesh to one host, "0.0.0.0" or an
  /// explicit interface address accepts peers from other hosts. Throws
  /// TransportError on an unparsable address or any socket failure.
  static TcpListener bind(const std::string& address, std::uint16_t port);

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and listens. Throws
  /// TransportError on failure.
  static TcpListener bind_loopback(std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return fd_.get(); }
  bool valid() const noexcept { return fd_.valid(); }

  /// Accepts one pending connection, if any (non-blocking).
  std::optional<TcpConnection> accept();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Self-pipe used to wake a poll loop from another thread.
class WakePipe {
 public:
  WakePipe();  // throws TransportError on failure

  int read_fd() const noexcept { return read_end_.get(); }

  /// Signals the poll loop (async-signal-safe, thread-safe).
  void wake() noexcept;

  /// Drains pending wake bytes.
  void drain() noexcept;

 private:
  Fd read_end_;
  Fd write_end_;
};

/// Sets O_NONBLOCK; throws TransportError on failure.
void set_nonblocking(int fd);

}  // namespace fastcons

#endif  // FASTCONS_NET_SOCKET_HPP
