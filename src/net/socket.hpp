// Thin RAII layer over POSIX TCP sockets: everything the replica server
// needs and nothing more (P.11 — encapsulate the messy construct once).
// All sockets are non-blocking; readiness is multiplexed with poll(2).
#ifndef FASTCONS_NET_SOCKET_HPP
#define FASTCONS_NET_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fastcons {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept;
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Result of a non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  ok,           // made progress
  would_block,  // no progress now, try again on readiness
  closed,       // orderly shutdown by the peer
  error,        // connection is dead
};

/// A non-blocking TCP connection.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(Fd fd) noexcept : fd_(std::move(fd)) {}

  /// Starts a non-blocking connect to host:port (numeric IPv4 only — the
  /// runtime targets loopback clusters). The connection becomes writable
  /// when established. Throws TransportError if the attempt cannot start.
  static TcpConnection connect(const std::string& host, std::uint16_t port);

  bool valid() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  /// Appends to the outbound buffer and attempts to flush.
  IoStatus send(std::span<const std::uint8_t> bytes);

  /// Flushes as much buffered output as the kernel accepts.
  IoStatus flush();

  bool has_pending_output() const noexcept { return !outbox_.empty(); }

  /// Reads whatever is available into `out` (appends). Returns would_block
  /// when drained, closed on EOF.
  IoStatus read_available(std::vector<std::uint8_t>& out);

  void close() noexcept { fd_.reset(); }

 private:
  Fd fd_;
  std::vector<std::uint8_t> outbox_;
};

/// A listening TCP socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and listens. Throws
  /// TransportError on failure.
  static TcpListener bind_loopback(std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return fd_.get(); }
  bool valid() const noexcept { return fd_.valid(); }

  /// Accepts one pending connection, if any (non-blocking).
  std::optional<TcpConnection> accept();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Self-pipe used to wake a poll loop from another thread.
class WakePipe {
 public:
  WakePipe();  // throws TransportError on failure

  int read_fd() const noexcept { return read_end_.get(); }

  /// Signals the poll loop (async-signal-safe, thread-safe).
  void wake() noexcept;

  /// Drains pending wake bytes.
  void drain() noexcept;

 private:
  Fd read_end_;
  Fd write_end_;
};

/// Sets O_NONBLOCK; throws TransportError on failure.
void set_nonblocking(int fd);

}  // namespace fastcons

#endif  // FASTCONS_NET_SOCKET_HPP
