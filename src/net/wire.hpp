// Binary wire codec for protocol messages.
//
// Frame layout (all integers little-endian):
//   u32  body_length                (excludes these 4 bytes)
//   u8   message tag                (one per Message alternative)
//   u32  sender NodeId
//   ...  payload (per message type, see wire.cpp)
//
// core/messages.cpp's estimated_wire_size() mirrors this layout; a test
// asserts encode_frame().size() == estimated_wire_size() for random
// messages so the two can never drift apart silently.
#ifndef FASTCONS_NET_WIRE_HPP
#define FASTCONS_NET_WIRE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/messages.hpp"

namespace fastcons {

/// Upper bound on a frame body; larger announced lengths are treated as a
/// protocol violation (CodecError) rather than an allocation request.
inline constexpr std::uint32_t kMaxFrameBody = 16u << 20;

/// A decoded frame: who sent it and what it says.
struct WireFrame {
  NodeId sender = kInvalidNode;
  Message msg;
};

/// Encodes a full frame (length prefix included).
std::vector<std::uint8_t> encode_frame(NodeId sender, const Message& msg);

/// Decodes a frame body (length prefix already stripped). Throws CodecError
/// on any malformed input: unknown tag, truncated payload, trailing bytes.
WireFrame decode_body(std::span<const std::uint8_t> body);

/// Incremental frame extractor for a TCP byte stream: feed() arbitrary
/// chunks, next() yields complete frames as they become available.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Returns the next complete frame, or nullopt if more bytes are needed.
  /// Throws CodecError on oversized or malformed frames; the stream is
  /// unusable afterwards (callers drop the connection).
  std::optional<WireFrame> next();

  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace fastcons

#endif  // FASTCONS_NET_WIRE_HPP
