#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace fastcons {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

}  // namespace

Fd::~Fd() { reset(); }

Fd::Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

// --- TcpConnection ----------------------------------------------------------

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("invalid IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) throw_errno("connect");
  }
  return TcpConnection(std::move(fd));
}

IoStatus TcpConnection::send(std::span<const std::uint8_t> bytes) {
  if (!valid()) return IoStatus::error;
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
  return flush();
}

void TcpConnection::queue(std::span<const std::uint8_t> bytes) {
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
}

namespace {
// Compact only once the consumed prefix is both sizeable and at least half
// the buffer: each compaction then moves no more bytes than were consumed
// since the last one, keeping the total copy work linear in bytes sent.
constexpr std::size_t kCompactThreshold = 16 * 1024;
}  // namespace

IoStatus TcpConnection::flush() {
  if (!valid()) return IoStatus::error;
  while (sent_ < outbox_.size()) {
    const ssize_t n = ::send(fd_.get(), outbox_.data() + sent_,
                             outbox_.size() - sent_, MSG_NOSIGNAL);
    if (n > 0) {
      sent_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (sent_ >= kCompactThreshold && sent_ * 2 >= outbox_.size()) {
        outbox_.erase(outbox_.begin(),
                      outbox_.begin() + static_cast<std::ptrdiff_t>(sent_));
        sent_ = 0;
      }
      return IoStatus::would_block;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoStatus::error;
  }
  outbox_.clear();
  sent_ = 0;
  return IoStatus::ok;
}

int TcpConnection::pending_error() noexcept {
  if (!valid()) return ENOTCONN;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return errno;
  }
  return err;
}

IoStatus TcpConnection::read_available(std::vector<std::uint8_t>& out) {
  if (!valid()) return IoStatus::error;
  std::uint8_t chunk[16384];
  bool read_any = false;
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      out.insert(out.end(), chunk, chunk + n);
      read_any = true;
      continue;
    }
    if (n == 0) return IoStatus::closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return read_any ? IoStatus::ok : IoStatus::would_block;
    }
    if (errno == EINTR) continue;
    return IoStatus::error;
  }
}

// --- TcpListener ------------------------------------------------------------

TcpListener TcpListener::bind(const std::string& address, std::uint16_t port) {
  TcpListener listener;
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("invalid IPv4 bind address: " + address);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), 64) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  set_nonblocking(fd.get());
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
  return bind("127.0.0.1", port);
}

std::optional<TcpConnection> TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return std::nullopt;
    }
    return std::nullopt;  // transient accept errors are non-fatal
  }
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(Fd(fd));
}

// --- WakePipe ---------------------------------------------------------------

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void WakePipe::wake() noexcept {
  const std::uint8_t byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() noexcept {
  std::uint8_t buf[256];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace fastcons
