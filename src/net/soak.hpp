// Jepsen-lite chaos soak: a seeded nemesis (kill/restart, partitions,
// frame-drop windows) drives a durable LocalCluster under sustained writes
// for a configurable wall-clock duration, while invariants are checked
// CONTINUOUSLY — not just at the end:
//
//   - no forged write ids: no summary ever covers (origin, seq) beyond
//     what the harness actually issued at that origin;
//   - per-replica summary monotonicity: every server's summary covers its
//     own previous snapshot (reset across a restart — recovery may
//     legitimately land behind the pre-kill snapshot's in-flight tail);
//   - session durability: a write once confirmed readable at its origin is
//     never lost (recover-mode restarts must bring it back);
// and at quiesce (nemesis off, partitions healed, everyone restarted):
//   - every killed-then-restarted peer is re-marked up (health layer, via
//     LocalCluster::wait_for_peer_health — no fixed sleeps);
//   - summaries converge and per-replica kv digests agree;
//   - every confirmed write reads back with its value on every replica.
//
// Lives in src/net on purpose: the soak is wall-clock driven (real sockets,
// real threads), so it is seeded-but-not-digest-deterministic, exactly like
// the live scenario family. The determinism lint does not scan this layer.
#ifndef FASTCONS_NET_SOAK_HPP
#define FASTCONS_NET_SOAK_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace fastcons {

struct SoakConfig {
  std::size_t nodes = 5;
  std::uint64_t seed = 1;

  /// Nemesis window, wall-clock seconds; quiesce + checks run after.
  double duration_seconds = 10.0;

  /// Wall-clock seconds per protocol unit for the cluster under test.
  double seconds_per_unit = 0.02;

  /// Sustained client writes per second, round-robin over live nodes.
  double write_rate = 50.0;

  /// Durable root (one subdirectory per node). Required: the session-
  /// durability invariant and recover-mode restarts need a WAL to replay.
  std::string data_dir;

  /// Mean wall-clock seconds between nemesis actions.
  double nemesis_period_seconds = 0.4;

  /// Ceiling on concurrently-killed nodes (a majority stays up so the
  /// cluster keeps making progress for the invariants to observe).
  std::size_t max_dead = 2;

  /// Frame-drop probability applied during a drop window.
  double drop_probability = 0.15;

  /// Deadline for the quiesce phase (health re-promotion, convergence).
  double quiesce_timeout_seconds = 30.0;

  /// Print nemesis actions and violations to stderr as they happen.
  bool verbose = false;
};

struct SoakReport {
  std::uint64_t writes_issued = 0;
  /// Writes observed readable at their origin during the soak (the set the
  /// durability invariant then tracks forever).
  std::uint64_t writes_confirmed = 0;
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t drop_windows = 0;
  /// Continuous-invariant sweeps completed.
  std::uint64_t checks = 0;
  /// Nodes killed at least once during the nemesis window.
  std::uint64_t nodes_ever_killed = 0;

  /// Quiesce-phase outcomes.
  bool all_peers_up = false;
  bool converged = false;
  bool digests_agree = false;

  double wall_seconds = 0.0;

  /// Human-readable invariant violations, in detection order (capped).
  std::vector<std::string> violations;

  /// The soak passed: zero violations and every quiesce check succeeded.
  bool ok() const noexcept {
    return violations.empty() && all_peers_up && converged && digests_agree;
  }
};

/// Runs one soak. Throws ConfigError on bad configuration (no data_dir,
/// nodes < 3); everything the cluster does wrong is reported, not thrown.
SoakReport run_soak(const SoakConfig& config);

}  // namespace fastcons

#endif  // FASTCONS_NET_SOAK_HPP
