#include "net/options.hpp"

#include <charconv>
#include <cstdlib>

#include "common/error.hpp"

namespace fastcons {
namespace {

/// Parses the whole of `text` as an unsigned integer <= `max`; nullopt on
/// empty input, trailing garbage, or overflow.
std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       std::uint64_t max) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty() || value > max) {
    return std::nullopt;
  }
  return value;
}

/// Parses the whole of `text` as a double; nullopt on trailing garbage.
std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

PeerAddress parse_peer_address(const std::string& spec) {
  const auto first = spec.find(':');
  const auto second = spec.rfind(':');
  if (first == std::string::npos || second == first) {
    throw ConfigError("bad --peer spec (want ID:HOST:PORT): " + spec);
  }
  const std::string id_text = spec.substr(0, first);
  const std::string host = spec.substr(first + 1, second - first - 1);
  const std::string port_text = spec.substr(second + 1);
  const auto id = parse_u64(id_text, kInvalidNode - 1);
  if (!id) {
    throw ConfigError("bad --peer id (want a replica number): " + spec);
  }
  if (host.empty()) {
    throw ConfigError("bad --peer host (empty): " + spec);
  }
  const auto port = parse_u64(port_text, 65535);
  if (!port || *port == 0) {
    throw ConfigError("bad --peer port (want 1..65535): " + spec);
  }
  PeerAddress peer;
  peer.id = static_cast<NodeId>(*id);
  peer.host = host;
  peer.port = static_cast<std::uint16_t>(*port);
  return peer;
}

std::optional<std::string> parse_daemon_args(
    const std::vector<std::string>& args, DaemonOptions& out) {
  bool have_id = false;
  bool have_port = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    const auto missing = [&] { return arg + " needs a value"; };
    if (arg == "--help" || arg == "-h") {
      return "help";
    } else if (arg == "--id") {
      const auto v = value();
      if (!v) return missing();
      const auto id = parse_u64(*v, kInvalidNode - 1);
      if (!id) return "bad --id (want a replica number): " + *v;
      out.server.self = static_cast<NodeId>(*id);
      have_id = true;
    } else if (arg == "--port") {
      const auto v = value();
      if (!v) return missing();
      const auto port = parse_u64(*v, 65535);
      if (!port) return "bad --port (want 0..65535): " + *v;
      out.server.listen_port = static_cast<std::uint16_t>(*port);
      have_port = true;
    } else if (arg == "--bind") {
      const auto v = value();
      if (!v) return missing();
      if (v->empty()) return "bad --bind (empty address)";
      out.server.bind_address = *v;
    } else if (arg == "--peer") {
      const auto v = value();
      if (!v) return missing();
      try {
        out.server.peers.push_back(parse_peer_address(*v));
      } catch (const ConfigError& e) {
        return e.what();
      }
    } else if (arg == "--demand") {
      const auto v = value();
      if (!v) return missing();
      const auto d = parse_double(*v);
      if (!d || *d < 0.0) return "bad --demand (want a number >= 0): " + *v;
      out.server.demand = *d;
    } else if (arg == "--algorithm") {
      const auto v = value();
      if (!v) return missing();
      if (*v == "fast") {
        out.server.protocol = ProtocolConfig::fast();
      } else if (*v == "demand-order") {
        out.server.protocol = ProtocolConfig::demand_order_only();
      } else if (*v == "weak") {
        out.server.protocol = ProtocolConfig::weak();
      } else {
        return "bad --algorithm (want fast|demand-order|weak): " + *v;
      }
    } else if (arg == "--period-ms") {
      const auto v = value();
      if (!v) return missing();
      const auto p = parse_double(*v);
      if (!p || *p <= 0.0) return "bad --period-ms (want > 0): " + *v;
      out.period_ms = *p;
    } else if (arg == "--write") {
      const auto v = value();
      if (!v) return missing();
      const auto eq = v->find('=');
      if (eq == std::string::npos) return "bad --write (want KEY=VALUE): " + *v;
      out.writes.emplace_back(v->substr(0, eq), v->substr(eq + 1));
    } else if (arg == "--run-seconds") {
      const auto v = value();
      if (!v) return missing();
      const auto s = parse_double(*v);
      if (!s || *s < 0.0) return "bad --run-seconds (want >= 0): " + *v;
      out.run_seconds = *s;
    } else if (arg == "--load-writes-per-sec") {
      const auto v = value();
      if (!v) return missing();
      const auto r = parse_double(*v);
      if (!r || *r <= 0.0) return "bad --load-writes-per-sec (want > 0): " + *v;
      out.load_writes_per_sec = *r;
    } else if (arg == "--load-seconds") {
      const auto v = value();
      if (!v) return missing();
      const auto s = parse_double(*v);
      if (!s || *s <= 0.0) return "bad --load-seconds (want > 0): " + *v;
      out.load_seconds = *s;
    } else if (arg == "--data-dir") {
      const auto v = value();
      if (!v) return missing();
      if (v->empty()) return "bad --data-dir (empty path)";
      out.server.durability.dir = *v;
    } else if (arg == "--fsync") {
      const auto v = value();
      if (!v) return missing();
      if (*v == "none") {
        out.server.durability.fsync = FsyncPolicy::none;
      } else if (*v == "always") {
        out.server.durability.fsync = FsyncPolicy::always;
      } else {
        return "bad --fsync (want none|always): " + *v;
      }
    } else if (arg == "--checkpoint-every") {
      const auto v = value();
      if (!v) return missing();
      const auto n = parse_u64(*v, std::uint64_t{1} << 32);
      if (!n) return "bad --checkpoint-every (want a record count): " + *v;
      out.server.durability.checkpoint_every = *n;
    } else if (arg == "--verbose") {
      out.verbose = true;
    } else {
      return "unknown argument '" + arg + "'";
    }
  }
  if (!have_id) return "--id is required";
  if (!have_port) return "--port is required";
  if ((out.load_writes_per_sec > 0.0) != (out.load_seconds > 0.0)) {
    return "--load-writes-per-sec and --load-seconds go together";
  }
  out.server.seconds_per_unit = out.period_ms / 1000.0;
  return std::nullopt;
}

}  // namespace fastcons
