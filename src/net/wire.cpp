#include "net/wire.hpp"

#include "common/error.hpp"
#include "replication/codec.hpp"

namespace fastcons {
namespace {

// Byte primitives and the update/summary codec live in replication/codec so
// the durability WAL can frame records identically; this file only owns the
// frame envelope and per-message-tag layouts.
using codec::put_f64;
using codec::put_string;
using codec::put_summary;
using codec::put_u32;
using codec::put_u64;
using codec::put_u8;
using codec::put_update;
using codec::put_updates;
using codec::read_summary;
using codec::read_update;
using codec::read_updates;
using codec::Reader;

// Tags are wire ABI; append only, never renumber.
enum : std::uint8_t {
  kTagSessionRequest = 1,
  kTagSessionSummary = 2,
  kTagSessionPush = 3,
  kTagSessionReply = 4,
  kTagFastOffer = 5,
  kTagFastAck = 6,
  kTagFastData = 7,
  kTagDemandAdvert = 8,
};

}  // namespace

std::vector<std::uint8_t> encode_frame(NodeId sender, const Message& msg) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // length placeholder
  std::visit(
      [&out, sender](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest>) {
          put_u8(out, kTagSessionRequest);
          put_u32(out, sender);
          put_u64(out, m.session_id);
        } else if constexpr (std::is_same_v<T, SessionSummary>) {
          put_u8(out, kTagSessionSummary);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_summary(out, m.summary);
        } else if constexpr (std::is_same_v<T, SessionPush>) {
          put_u8(out, kTagSessionPush);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_summary(out, m.summary);
          put_updates(out, m.updates);
        } else if constexpr (std::is_same_v<T, SessionReply>) {
          put_u8(out, kTagSessionReply);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_updates(out, m.updates);
        } else if constexpr (std::is_same_v<T, FastOffer>) {
          put_u8(out, kTagFastOffer);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_u32(out, static_cast<std::uint32_t>(m.offered.size()));
          for (const OfferedId& o : m.offered) {
            put_u32(out, o.id.origin);
            put_u64(out, o.id.seq);
            put_f64(out, o.timestamp);
          }
        } else if constexpr (std::is_same_v<T, FastAck>) {
          put_u8(out, kTagFastAck);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_u8(out, m.yes ? 1 : 0);
          put_u32(out, static_cast<std::uint32_t>(m.wanted.size()));
          for (const UpdateId& id : m.wanted) {
            put_u32(out, id.origin);
            put_u64(out, id.seq);
          }
        } else if constexpr (std::is_same_v<T, FastData>) {
          put_u8(out, kTagFastData);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_updates(out, m.updates);
        } else {  // DemandAdvert
          put_u8(out, kTagDemandAdvert);
          put_u32(out, sender);
          put_f64(out, m.demand);
        }
      },
      msg);
  const auto body_len = static_cast<std::uint32_t>(out.size() - 4);
  if (body_len > kMaxFrameBody) throw CodecError("frame body exceeds limit");
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(body_len >> (8 * i));
  return out;
}

WireFrame decode_body(std::span<const std::uint8_t> body) {
  Reader r(body);
  const std::uint8_t tag = r.u8();
  WireFrame frame;
  frame.sender = r.u32();
  switch (tag) {
    case kTagSessionRequest: {
      frame.msg = SessionRequest{r.u64()};
      break;
    }
    case kTagSessionSummary: {
      SessionSummary m;
      m.session_id = r.u64();
      m.summary = read_summary(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagSessionPush: {
      SessionPush m;
      m.session_id = r.u64();
      m.summary = read_summary(r);
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagSessionReply: {
      SessionReply m;
      m.session_id = r.u64();
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagFastOffer: {
      FastOffer m;
      m.offer_id = r.u64();
      const std::uint32_t count = r.count(4 + 8 + 8);
      m.offered.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        OfferedId o;
        o.id.origin = r.u32();
        o.id.seq = r.u64();
        o.timestamp = r.f64();
        m.offered.push_back(o);
      }
      frame.msg = std::move(m);
      break;
    }
    case kTagFastAck: {
      FastAck m;
      m.offer_id = r.u64();
      m.yes = r.u8() != 0;
      const std::uint32_t count = r.count(4 + 8);
      m.wanted.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        UpdateId id;
        id.origin = r.u32();
        id.seq = r.u64();
        m.wanted.push_back(id);
      }
      frame.msg = std::move(m);
      break;
    }
    case kTagFastData: {
      FastData m;
      m.offer_id = r.u64();
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagDemandAdvert: {
      frame.msg = DemandAdvert{r.f64()};
      break;
    }
    default:
      throw CodecError("unknown message tag");
  }
  if (!r.exhausted()) throw CodecError("trailing bytes in frame body");
  return frame;
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::compact() {
  // Reclaim consumed prefix occasionally to bound memory.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<WireFrame> FrameReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(buffer_[consumed_ + i]) << (8 * i);
  }
  if (body_len > kMaxFrameBody) throw CodecError("announced frame too large");
  if (body_len == 0) throw CodecError("empty frame body");
  if (available < 4 + static_cast<std::size_t>(body_len)) return std::nullopt;
  const std::span<const std::uint8_t> body(buffer_.data() + consumed_ + 4,
                                           body_len);
  WireFrame frame = decode_body(body);
  consumed_ += 4 + body_len;
  compact();
  return frame;
}

}  // namespace fastcons
