#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace fastcons {
namespace {

// --- primitive writers -----------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- primitive readers -----------------------------------------------------

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  // Rejects element counts that could not possibly fit in the remaining
  // bytes, so untrusted counts never reach an allocator.
  std::uint32_t count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (n > remaining() / min_element_bytes) throw CodecError("implausible element count");
    return n;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CodecError("truncated frame body");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- composite writers/readers ----------------------------------------------

void put_summary(std::vector<std::uint8_t>& out, const SummaryVector& sv) {
  put_u32(out, static_cast<std::uint32_t>(sv.watermarks().size()));
  for (const auto& [origin, mark] : sv.watermarks()) {
    put_u32(out, origin);
    put_u64(out, mark);
  }
  // Extras are (origin, seq) sorted; encode each per-origin run as one
  // group — byte-identical to the former map<origin, set<seq>> layout.
  const auto& extras = sv.extras();
  put_u32(out, static_cast<std::uint32_t>(sv.distinct_extra_origins()));
  for (std::size_t i = 0; i < extras.size();) {
    const NodeId origin = extras[i].origin;
    std::size_t end = i;
    while (end < extras.size() && extras[end].origin == origin) ++end;
    put_u32(out, origin);
    put_u32(out, static_cast<std::uint32_t>(end - i));
    for (; i < end; ++i) put_u64(out, extras[i].seq);
  }
}

SummaryVector read_summary(Reader& r) {
  std::map<NodeId, SeqNo> watermarks;
  const std::uint32_t n_marks = r.u32();
  for (std::uint32_t i = 0; i < n_marks; ++i) {
    const NodeId origin = r.u32();
    watermarks[origin] = r.u64();
  }
  std::map<NodeId, std::set<SeqNo>> extras;
  const std::uint32_t n_extra_origins = r.u32();
  for (std::uint32_t i = 0; i < n_extra_origins; ++i) {
    const NodeId origin = r.u32();
    const std::uint32_t count = r.u32();
    auto& set = extras[origin];
    for (std::uint32_t j = 0; j < count; ++j) set.insert(r.u64());
  }
  return SummaryVector::from_parts(std::move(watermarks), std::move(extras));
}

void put_update(std::vector<std::uint8_t>& out, const Update& u) {
  put_u32(out, u.id.origin);
  put_u64(out, u.id.seq);
  put_f64(out, u.created_at);
  put_string(out, u.key);
  put_string(out, u.value);
}

Update read_update(Reader& r) {
  Update u;
  u.id.origin = r.u32();
  u.id.seq = r.u64();
  u.created_at = r.f64();
  u.key = r.string();
  u.value = r.string();
  return u;
}

void put_updates(std::vector<std::uint8_t>& out, const std::vector<Update>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const Update& u : v) put_update(out, u);
}

std::vector<Update> read_updates(Reader& r) {
  // Minimum wire size of an Update: origin + seq + created_at + two
  // empty length-prefixed strings.
  const std::uint32_t count = r.count(4 + 8 + 8 + 4 + 4);
  std::vector<Update> v;
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) v.push_back(read_update(r));
  return v;
}

// Tags are wire ABI; append only, never renumber.
enum : std::uint8_t {
  kTagSessionRequest = 1,
  kTagSessionSummary = 2,
  kTagSessionPush = 3,
  kTagSessionReply = 4,
  kTagFastOffer = 5,
  kTagFastAck = 6,
  kTagFastData = 7,
  kTagDemandAdvert = 8,
};

}  // namespace

std::vector<std::uint8_t> encode_frame(NodeId sender, const Message& msg) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // length placeholder
  std::visit(
      [&out, sender](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest>) {
          put_u8(out, kTagSessionRequest);
          put_u32(out, sender);
          put_u64(out, m.session_id);
        } else if constexpr (std::is_same_v<T, SessionSummary>) {
          put_u8(out, kTagSessionSummary);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_summary(out, m.summary);
        } else if constexpr (std::is_same_v<T, SessionPush>) {
          put_u8(out, kTagSessionPush);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_summary(out, m.summary);
          put_updates(out, m.updates);
        } else if constexpr (std::is_same_v<T, SessionReply>) {
          put_u8(out, kTagSessionReply);
          put_u32(out, sender);
          put_u64(out, m.session_id);
          put_updates(out, m.updates);
        } else if constexpr (std::is_same_v<T, FastOffer>) {
          put_u8(out, kTagFastOffer);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_u32(out, static_cast<std::uint32_t>(m.offered.size()));
          for (const OfferedId& o : m.offered) {
            put_u32(out, o.id.origin);
            put_u64(out, o.id.seq);
            put_f64(out, o.timestamp);
          }
        } else if constexpr (std::is_same_v<T, FastAck>) {
          put_u8(out, kTagFastAck);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_u8(out, m.yes ? 1 : 0);
          put_u32(out, static_cast<std::uint32_t>(m.wanted.size()));
          for (const UpdateId& id : m.wanted) {
            put_u32(out, id.origin);
            put_u64(out, id.seq);
          }
        } else if constexpr (std::is_same_v<T, FastData>) {
          put_u8(out, kTagFastData);
          put_u32(out, sender);
          put_u64(out, m.offer_id);
          put_updates(out, m.updates);
        } else {  // DemandAdvert
          put_u8(out, kTagDemandAdvert);
          put_u32(out, sender);
          put_f64(out, m.demand);
        }
      },
      msg);
  const auto body_len = static_cast<std::uint32_t>(out.size() - 4);
  if (body_len > kMaxFrameBody) throw CodecError("frame body exceeds limit");
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(body_len >> (8 * i));
  return out;
}

WireFrame decode_body(std::span<const std::uint8_t> body) {
  Reader r(body);
  const std::uint8_t tag = r.u8();
  WireFrame frame;
  frame.sender = r.u32();
  switch (tag) {
    case kTagSessionRequest: {
      frame.msg = SessionRequest{r.u64()};
      break;
    }
    case kTagSessionSummary: {
      SessionSummary m;
      m.session_id = r.u64();
      m.summary = read_summary(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagSessionPush: {
      SessionPush m;
      m.session_id = r.u64();
      m.summary = read_summary(r);
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagSessionReply: {
      SessionReply m;
      m.session_id = r.u64();
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagFastOffer: {
      FastOffer m;
      m.offer_id = r.u64();
      const std::uint32_t count = r.count(4 + 8 + 8);
      m.offered.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        OfferedId o;
        o.id.origin = r.u32();
        o.id.seq = r.u64();
        o.timestamp = r.f64();
        m.offered.push_back(o);
      }
      frame.msg = std::move(m);
      break;
    }
    case kTagFastAck: {
      FastAck m;
      m.offer_id = r.u64();
      m.yes = r.u8() != 0;
      const std::uint32_t count = r.count(4 + 8);
      m.wanted.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        UpdateId id;
        id.origin = r.u32();
        id.seq = r.u64();
        m.wanted.push_back(id);
      }
      frame.msg = std::move(m);
      break;
    }
    case kTagFastData: {
      FastData m;
      m.offer_id = r.u64();
      m.updates = read_updates(r);
      frame.msg = std::move(m);
      break;
    }
    case kTagDemandAdvert: {
      frame.msg = DemandAdvert{r.f64()};
      break;
    }
    default:
      throw CodecError("unknown message tag");
  }
  if (!r.exhausted()) throw CodecError("trailing bytes in frame body");
  return frame;
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::compact() {
  // Reclaim consumed prefix occasionally to bound memory.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<WireFrame> FrameReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(buffer_[consumed_ + i]) << (8 * i);
  }
  if (body_len > kMaxFrameBody) throw CodecError("announced frame too large");
  if (body_len == 0) throw CodecError("empty frame body");
  if (available < 4 + static_cast<std::size_t>(body_len)) return std::nullopt;
  const std::span<const std::uint8_t> body(buffer_.data() + consumed_ + 4,
                                           body_len);
  WireFrame frame = decode_body(body);
  consumed_ += 4 + body_len;
  compact();
  return frame;
}

}  // namespace fastcons
