// LocalCluster: spins up one ReplicaServer per topology node on loopback
// ephemeral ports — the integration harness for running the protocol over
// real TCP (tests and the live_cluster example).
#ifndef FASTCONS_NET_CLUSTER_HPP
#define FASTCONS_NET_CLUSTER_HPP

#include <memory>
#include <vector>

#include "net/server.hpp"
#include "topology/graph.hpp"

namespace fastcons {

struct ClusterConfig {
  ProtocolConfig protocol;
  /// Wall-clock seconds per session period; keep small in tests.
  double seconds_per_unit = 0.05;
  std::uint64_t seed = 1;
  /// Per-node demands (size must match the topology; empty = all zero).
  std::vector<double> demands;
};

/// Owns n servers wired according to a topology graph.
class LocalCluster {
 public:
  LocalCluster(const Graph& topology, ClusterConfig config);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  std::size_t size() const noexcept { return servers_.size(); }
  ReplicaServer& server(NodeId n);

  void start();
  void stop();

  /// True when every server's summary equals every other's and at least
  /// `min_updates` updates exist. Pass the number of writes you issued:
  /// with the default of 1, a cluster that has fully spread the first write
  /// counts as converged even if a later write is still in flight inside a
  /// server's command queue.
  bool converged(std::uint64_t min_updates = 1) const;

  /// Polls converged(min_updates) up to `timeout_seconds`; returns success.
  bool wait_for_convergence(double timeout_seconds,
                            std::uint64_t min_updates = 1);

 private:
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
};

}  // namespace fastcons

#endif  // FASTCONS_NET_CLUSTER_HPP
