// LocalCluster: spins up one ReplicaServer per topology node on ephemeral
// ports — the integration harness for running the protocol over real TCP
// (tests, the live_cluster example, and the harness's live scenario family).
#ifndef FASTCONS_NET_CLUSTER_HPP
#define FASTCONS_NET_CLUSTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "stats/cdf.hpp"
#include "topology/graph.hpp"

namespace fastcons {

struct ClusterConfig {
  ProtocolConfig protocol;
  /// Wall-clock seconds per session period; keep small in tests.
  double seconds_per_unit = 0.05;
  std::uint64_t seed = 1;
  /// Per-node demands (size must match the topology; empty = all zero).
  std::vector<double> demands;
  /// Listen address for every server. The loopback default keeps the
  /// cluster on one host; "0.0.0.0" also accepts non-local peers (peers
  /// inside the cluster still connect over loopback).
  std::string bind_address = "127.0.0.1";

  /// Test transport shim applied to every server: return true to drop the
  /// outbound frame `from` -> `to` (the live mirror of FaultPlan link
  /// loss). Runs on server loop threads; must be thread-safe.
  std::function<bool(NodeId from, NodeId to)> outbound_fault;

  /// Durable mode for every node: when non-empty, node n persists under
  /// `<durability_dir>/node-<n>` and restart(n, RestartMode::recover)
  /// reloads checkpoint + WAL instead of starting empty. Empty (default)
  /// keeps the cluster fully in-memory.
  std::string durability_dir;
  FsyncPolicy fsync = FsyncPolicy::none;
  std::uint64_t checkpoint_every = 4096;
};

/// What restart(n) does with the killed node's on-disk state.
enum class RestartMode : std::uint8_t {
  /// Reload checkpoint + WAL (a no-op recovery when the cluster is not
  /// durable — the node comes back empty, as before).
  recover,
  /// Delete the node's durable directory first: the reborn node has
  /// nothing and must full-resync. This is the pre-durability behaviour,
  /// kept for wipe-recovery experiments and as the recover-mode control.
  wipe,
};

/// What one run_load() call observed.
struct LoadReport {
  std::uint64_t writes_issued = 0;
  /// Writes confirmed visible on EVERY replica before the drain timeout.
  std::uint64_t writes_confirmed = 0;
  /// Wall-clock length of the issue window, seconds.
  double issue_seconds = 0.0;
  /// writes_issued / issue_seconds — the rate the cluster actually
  /// absorbed (<= the requested rate when the writer saturates).
  double achieved_writes_per_sec = 0.0;
  /// Wall-clock from the last write to full visibility (or timeout).
  double drain_seconds = 0.0;
  /// Per-write full-visibility latency, milliseconds: wall-clock from
  /// write() to the write being readable at every replica.
  EmpiricalCdf visibility_latency_ms;
};

/// Owns n servers wired according to a topology graph.
// Threading: LocalCluster itself holds no mutex on purpose. Its own state
// (the server vector, port map) is written only during construction and
// start()/stop(), which are single-caller by contract; all concurrency
// lives inside the ReplicaServers, whose annotated mutexes (server.hpp)
// make their public API thread-safe. run_load() spawns its writer thread
// but joins it before returning, so no LocalCluster member is ever touched
// from two threads at once.
class LocalCluster {
 public:
  LocalCluster(const Graph& topology, ClusterConfig config);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  std::size_t size() const noexcept { return servers_.size(); }
  ReplicaServer& server(NodeId n);

  void start();
  void stop();

  /// Fault hook: stops and destroys server `n` — its TCP connections drop,
  /// peers fall into reconnect backoff, and all its in-memory replica state
  /// is gone (a live crash is always a wipe). The slot stays reserved;
  /// server(n) must not be called until restart(n).
  void kill(NodeId n);

  /// Rebuilds server `n` from its original config on its original port
  /// (SO_REUSEADDR makes the rebind immediate) and starts it if the
  /// cluster is running. In a durable cluster the default mode recovers
  /// the node's pre-kill state from its checkpoint + WAL and catches up
  /// the rest via demand-ordered anti-entropy; RestartMode::wipe (or a
  /// non-durable cluster) brings it back empty for peers to repopulate.
  /// The node must currently be killed.
  void restart(NodeId n, RestartMode mode = RestartMode::recover);

  /// True while server `n` exists (not killed).
  bool alive(NodeId n) const;

  /// True when every server's summary equals every other's and at least
  /// `min_updates` updates exist. Pass the number of writes you issued:
  /// with the default of 1, a cluster that has fully spread the first write
  /// counts as converged even if a later write is still in flight inside a
  /// server's command queue. An empty cluster is vacuously converged only
  /// when no updates are required.
  bool converged(std::uint64_t min_updates = 1) const;

  /// Polls converged(min_updates) up to `timeout_seconds`; returns success.
  /// The poll interval scales with the configured seconds_per_unit so a
  /// slow cluster is not hammered and a fast one is not over-waited.
  bool wait_for_convergence(double timeout_seconds,
                            std::uint64_t min_updates = 1);

  /// True when every live server reports PeerHealth::up for every peer
  /// that is itself alive (killed nodes are excluded from the requirement —
  /// a dead peer is *supposed* to be marked down). Vacuously true when the
  /// protocol's health tracking is disabled or fewer than two nodes live.
  bool all_peers_up() const;

  /// Polls all_peers_up() up to `timeout_seconds`, at the same scaled
  /// interval as wait_for_convergence(); returns success. This is the
  /// health-layer replacement for fixed post-restart sleeps: it returns as
  /// soon as every recovered peer has been re-promoted.
  bool wait_for_peer_health(double timeout_seconds);

  /// Drives sustained write traffic: issues `writes_per_sec * seconds`
  /// writes at node `writer` on a steady schedule, tracking when each
  /// write becomes visible on every replica. After the issue window, keeps
  /// polling up to `drain_timeout_seconds` for the stragglers. The cluster
  /// must be start()ed. Keys are "load/<writer>/<i>" — unique per call
  /// only if callers vary the writer or restart the cluster.
  LoadReport run_load(NodeId writer, double writes_per_sec, double seconds,
                      double drain_timeout_seconds = 30.0);

 private:
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  /// Per-node construction inputs, kept so restart(n) can rebuild a killed
  /// server exactly: the ServerConfig (listen_port pinned to the port the
  /// node originally learned) and its peer table.
  std::vector<ServerConfig> configs_;
  std::vector<std::vector<PeerAddress>> peer_tables_;
  double seconds_per_unit_ = 0.05;
  bool started_ = false;
};

}  // namespace fastcons

#endif  // FASTCONS_NET_CLUSTER_HPP
