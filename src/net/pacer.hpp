// Drift-free fixed-rate scheduling, shared by the load generators
// (LocalCluster::run_load and fastconsd --load-writes-per-sec).
#ifndef FASTCONS_NET_PACER_HPP
#define FASTCONS_NET_PACER_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace fastcons {

/// Deadline calculator for "N events per second from a fixed start":
/// due(i) derives every deadline from the one start timestamp, so sleep
/// jitter and slow ticks never accumulate into rate drift.
class RatePacer {
 public:
  using Clock = std::chrono::steady_clock;

  RatePacer(Clock::time_point start, double per_sec) noexcept
      : start_(start),
        interval_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(1.0 / per_sec))) {}

  /// When tick `i` (0-based) is due.
  Clock::time_point due(std::uint64_t i) const noexcept {
    return start_ + interval_ * static_cast<std::int64_t>(i);
  }

  /// How long to sleep from `now` toward tick `i`, capped at 1 ms so the
  /// caller regains control to do bookkeeping (confirm passes, stop
  /// flags) while waiting.
  Clock::duration sleep_toward(std::uint64_t i,
                               Clock::time_point now) const noexcept {
    return std::min(due(i) - now,
                    Clock::duration(std::chrono::milliseconds(1)));
  }

 private:
  Clock::time_point start_;
  Clock::duration interval_;
};

}  // namespace fastcons

#endif  // FASTCONS_NET_PACER_HPP
