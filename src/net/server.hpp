// ReplicaServer: the same ReplicaEngine that powers the simulation, run as a
// real networked process component — a poll-driven event loop over TCP with
// exponential session timers and periodic demand adverts.
//
// Threading model: one background thread owns the engine and all sockets.
// Public methods communicate with it through a mutex-guarded command queue
// plus a wake pipe; read-only queries copy state under the same mutex the
// loop holds while touching the engine.
//
// Lock discipline (machine-checked by Clang -Wthread-safety, see
// common/thread_annotations.hpp): engine_mutex_ guards the engine and its
// timer state and NOTHING else. The loop thread takes it to run protocol
// logic (commands, timers, decoded inbound frames) and collect the resulting
// Outbound messages, then releases it before any socket syscall — every
// I/O-performing method below is annotated EXCLUDES(engine_mutex_), so
// connect/send/recv/flush under the engine lock is a compile error, and
// client read()/stats() latency is bounded by engine compute even when a
// peer is unreachable or a connection is backpressured.
//
// Cross-thread transport counters live in peer_stats_/inbound_stats_ under
// net_mutex_. Per-link transport state (PeerLink: the connection, the
// connect-in-progress flag, the backoff clock) is owned by the loop thread
// alone and deliberately carries no annotation; the loop mirrors the
// observable bits into peer_stats_ under net_mutex_ whenever they change.
#ifndef FASTCONS_NET_SERVER_HPP
#define FASTCONS_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/engine.hpp"
#include "durability/store.hpp"
#include "health/peer_health.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace fastcons {

/// Address of a peer replica.
struct PeerAddress {
  NodeId id = kInvalidNode;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Transport health of one outbound peer link.
struct PeerNetStats {
  NodeId peer = kInvalidNode;
  bool connected = false;   ///< established outbound connection
  bool connecting = false;  ///< non-blocking connect in progress
  std::uint64_t frames_sent = 0;   ///< frames accepted into the outbox
  std::uint64_t bytes_sent = 0;    ///< bytes accepted into the outbox
  std::uint64_t frames_dropped = 0;  ///< frames discarded (unreachable, backoff, full outbox)
  std::uint64_t bytes_abandoned = 0;  ///< outbox bytes discarded on disconnect
  std::uint64_t connect_attempts = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;  ///< established connections lost
  double current_backoff_seconds = 0.0;  ///< wait before the next reconnect
  /// Superseded push frames (session/fast payloads) evicted from the
  /// pending queue to make room on outbox overflow — graceful degradation
  /// prefers shedding stale payloads over fresh summaries.
  std::uint64_t frames_shed = 0;
  /// Engine-derived peer health, mirrored once per loop turn so operators
  /// and the soak harness read the exact state selection acts on. Stays
  /// `up` with zeroed timestamps when health tracking is disabled.
  PeerHealth health = PeerHealth::up;
  double health_last_heard_units = 0.0;    ///< when we last heard from it
  double health_suspect_since_units = 0.0; ///< degradation start; 0 while up
};

/// Snapshot of a server's transport-layer counters: per-peer link health
/// plus inbound/codec totals. Weak consistency tolerates dropped frames —
/// the next anti-entropy session repairs them — so drops are telemetry
/// here, not errors.
struct NetStats {
  std::uint64_t frames_sent = 0;    ///< sum over peers
  std::uint64_t bytes_sent = 0;     ///< sum over peers
  std::uint64_t frames_dropped = 0;  ///< sum over peers
  std::uint64_t bytes_abandoned = 0;  ///< sum over peers
  std::uint64_t connect_attempts = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t frames_received = 0;  ///< complete frames decoded
  std::uint64_t bytes_received = 0;   ///< raw bytes read off inbound sockets
  std::uint64_t inbound_accepted = 0;  ///< inbound connections accepted
  std::uint64_t inbound_closed = 0;    ///< inbound connections closed/EOF
  std::uint64_t codec_errors = 0;  ///< connections dropped on malformed frames
  std::vector<PeerNetStats> peers;  ///< sorted by peer id
};

struct ServerConfig {
  NodeId self = kInvalidNode;
  ProtocolConfig protocol;
  std::vector<PeerAddress> peers;

  /// Listen port; 0 picks an ephemeral port (query port()).
  std::uint16_t listen_port = 0;

  /// Listen address. The loopback default keeps the mesh on one host;
  /// "0.0.0.0" (or an explicit interface address) accepts peers from other
  /// hosts — what fastconsd --bind sets for a real multi-host mesh.
  std::string bind_address = "127.0.0.1";

  /// Wall-clock seconds per protocol time unit (session period). Tests use
  /// small values so sessions fire quickly.
  double seconds_per_unit = 0.05;

  /// The server's own advertised demand (static in the real runtime unless
  /// set_demand() is called).
  double demand = 0.0;

  /// Reconnect backoff bounds (wall-clock seconds). After a connect
  /// failure or disconnect the link waits the current backoff before the
  /// next attempt. The wait grows by seeded decorrelated jitter —
  /// next = min(max, uniform(min, 3 * previous)) — so peers that lost the
  /// same partition retry on diverging schedules instead of the
  /// synchronized storm deterministic doubling produces; it resets to the
  /// min on success. Peers the health layer marks suspect/down get capped
  /// reconnect effort: their wait pins to the max regardless of history.
  double reconnect_backoff_min = 0.05;
  double reconnect_backoff_max = 2.0;

  /// Per-peer outbox cap: frames beyond this many buffered bytes are
  /// dropped (counted in NetStats) instead of growing the buffer while a
  /// peer is unreachable or stalled.
  std::size_t max_peer_outbox_bytes = 4 * 1024 * 1024;

  /// Test transport shim: when set, every outbound frame to `to` is offered
  /// to this predicate before transmission and silently dropped (counted in
  /// NetStats::frames_dropped) when it returns true — the live-path mirror
  /// of the simulator's FaultPlan link loss. Called from the loop thread
  /// only, with no server lock held; the callable must be thread-safe if it
  /// shares state across servers and must not call back into this server.
  std::function<bool(NodeId to)> outbound_fault;

  std::uint64_t seed = 1;

  /// Durable mode (off by default: durability.dir empty). When enabled the
  /// server opens `durability.dir` at start(), recovers checkpoint + WAL
  /// into the engine before serving, appends every newly applied update to
  /// the WAL (group-committed once per loop turn, fsynced per
  /// durability.fsync), and rewrites the checkpoint every
  /// durability.checkpoint_every records.
  DurabilityConfig durability;
};

/// What a durable server found on disk at start(). Immutable once start()
/// returns (except catchup_remaining, queried separately).
struct RecoveryInfo {
  bool attempted = false;            ///< durable mode was on
  bool recovered_from_disk = false;  ///< checkpoint and/or WAL had state
  bool had_checkpoint = false;
  bool wal_torn_tail = false;  ///< corrupt tail discarded (crash mid-append)
  std::uint64_t checkpoint_updates = 0;  ///< payloads in the checkpoint
  std::uint64_t wal_records = 0;         ///< WAL records replayed
  std::uint64_t wal_bytes = 0;           ///< valid WAL prefix bytes
  std::uint64_t restored_updates = 0;    ///< distinct updates in the engine
  /// Wall-clock ms to read, verify and apply checkpoint + WAL (local
  /// recovery only; network catch-up is measured by the caller).
  double load_ms = 0.0;
  /// Peers queued for demand-ordered catch-up sessions at start. 0 after a
  /// WAL-only recovery (no checkpointed neighbour demands): seeding is then
  /// deferred to the first advert round — see catchup_remaining().
  std::size_t catchup_peers = 0;
};

/// A replica server bound to a TCP port.
class ReplicaServer {
 public:
  /// Binds the listener (learning the ephemeral port) without starting the
  /// loop; peers can be configured afterwards, then start() runs the thread.
  explicit ReplicaServer(ServerConfig config);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }
  NodeId self() const noexcept { return config_.self; }

  /// Replaces the peer table (call before start()).
  void set_peers(std::vector<PeerAddress> peers);

  void start() EXCLUDES(engine_mutex_, net_mutex_);
  /// Graceful shutdown: flushes the WAL group-commit tail and writes a
  /// final checkpoint (durable mode), so the next start() recovers from
  /// the checkpoint alone with zero WAL replay.
  void stop();
  /// Fault-injection shutdown (LocalCluster::kill): stops the loop like a
  /// crash would — the WAL tail is flushed (the loop had already promised
  /// those records to disk) but NO final checkpoint is written, so restart
  /// exercises real WAL replay.
  void crash_stop();
  bool running() const noexcept { return running_.load(); }

  /// Thread-safe client write; applied on the server thread.
  void write(std::string key, std::string value) EXCLUDES(command_mutex_);

  /// Thread-safe client read of the materialised state.
  std::optional<std::string> read(const std::string& key) const
      EXCLUDES(engine_mutex_);

  /// Thread-safe demand change (advertised from the next advert on).
  void set_demand(double demand) EXCLUDES(command_mutex_);

  /// Snapshots for convergence checks.
  SummaryVector summary() const EXCLUDES(engine_mutex_);
  EngineStats stats() const EXCLUDES(engine_mutex_);
  TrafficCounters traffic() const EXCLUDES(engine_mutex_);

  /// Transport-layer health snapshot (thread-safe).
  NetStats net_stats() const EXCLUDES(net_mutex_);

  /// What recovery found on disk. Filled during start() before the loop
  /// thread exists, immutable afterwards — safe to read once start()
  /// returned. Default (attempted=false) when durability is off.
  const RecoveryInfo& recovery_info() const noexcept { return recovery_; }

  /// Peers still queued for demand-ordered catch-up sessions (0 once the
  /// recovered node has drained its queue; always 0 for non-durable or
  /// fresh-start servers).
  std::size_t catchup_remaining() const EXCLUDES(engine_mutex_);

  /// Order-independent digest of the materialised key-value state — equal
  /// digests mean equal recovered state (crash-consistency checks).
  std::uint64_t kv_digest() const EXCLUDES(engine_mutex_);

 private:
  /// Loop-thread-only transport state for one outbound link. The
  /// cross-thread view of this link lives in peer_stats_ (guarded by
  /// net_mutex_); helpers below mirror changes into it.
  struct PeerLink {
    PeerAddress address;
    TcpConnection connection;  // lazily (re)established outbound channel
    bool connecting = false;   // non-blocking connect awaiting writability
    double backoff_seconds = 0.0;
    std::chrono::steady_clock::time_point next_attempt{};  // epoch = "now"
    /// Frame-granular staging queue above the connection's byte outbox.
    /// Bytes handed to TcpConnection can no longer be dropped selectively,
    /// so frames wait here (oldest first) while the socket outbox sits at
    /// its feed watermark — overflow then sheds superseded pushes from this
    /// queue instead of refusing fresh summaries.
    struct QueuedFrame {
      std::vector<std::uint8_t> bytes;
      bool sheddable = false;  ///< payload class a later session resends
    };
    std::deque<QueuedFrame> pending;
    std::size_t pending_bytes = 0;
  };
  struct Inbound {
    TcpConnection connection;
    FrameReader reader;
  };

  void loop() EXCLUDES(engine_mutex_, command_mutex_, net_mutex_);
  /// Runs queued commands and due timers under engine_mutex_, appending
  /// the engine's outbound messages to `outs`. No I/O. Returns the next
  /// timer deadline in protocol units (for the poll timeout).
  double run_engine_turn(std::vector<Outbound>& outs)
      EXCLUDES(engine_mutex_, command_mutex_);
  double now_units() const;
  /// Encodes and enqueues `outs` onto peer connections; performs socket
  /// I/O, so it must not (and cannot, per the annotation) be called with
  /// engine_mutex_ held.
  void transmit(std::vector<Outbound>& outs) EXCLUDES(engine_mutex_, net_mutex_);
  void enqueue_frame(NodeId peer, std::vector<std::uint8_t> frame,
                     bool sheddable) EXCLUDES(engine_mutex_, net_mutex_);
  /// Moves staged frames into the connection's byte outbox while it sits
  /// below the feed watermark (frames past it stay sheddable in `pending`).
  void pump_outbox(PeerLink& link) EXCLUDES(engine_mutex_, net_mutex_);
  /// Starts a non-blocking connect if the link is down and its backoff
  /// window has elapsed. Returns true when the link has a usable
  /// (established or connecting) connection afterwards.
  bool ensure_connection(PeerLink& link) EXCLUDES(engine_mutex_, net_mutex_);
  void register_connect_failure(PeerLink& link)
      EXCLUDES(engine_mutex_, net_mutex_);
  void drop_connection(PeerLink& link, bool was_established)
      EXCLUDES(engine_mutex_, net_mutex_);
  /// Advances `link`'s backoff by seeded decorrelated jitter, pinning it to
  /// the max when the health layer has degraded the peer (capped reconnect
  /// effort), and stamps next_attempt.
  void schedule_reconnect(PeerLink& link) EXCLUDES(engine_mutex_, net_mutex_);
  /// Engine-side health of `peer` at the current time; `up` when health
  /// tracking is disabled. Optionally records a connect failure first.
  PeerHealth peer_health_state(NodeId peer, bool note_failure)
      EXCLUDES(engine_mutex_);
  /// Copies the engine's per-peer health views into the PeerNetStats mirror
  /// (no-op when health tracking is disabled).
  void mirror_peer_health() EXCLUDES(engine_mutex_, net_mutex_);
  /// Resolves a connecting link whose socket turned writable.
  void finish_connect(PeerLink& link) EXCLUDES(engine_mutex_, net_mutex_);
  void poll_once(int timeout_ms) EXCLUDES(engine_mutex_, net_mutex_);
  /// Drains buffered WAL appends to disk and rewrites the checkpoint when
  /// due. File I/O — runs on the loop thread with no lock held (the engine
  /// lock is taken only briefly to swap the buffer / copy the snapshot).
  void flush_durability() EXCLUDES(engine_mutex_);
  /// The guarded stats record for one configured peer (created in start()).
  PeerNetStats& peer_stats_entry(NodeId peer) REQUIRES(net_mutex_);

  ServerConfig config_;
  TcpListener listener_;

  // Engine state: protocol logic, timers and the timer RNG all advance
  // together under one lock, never across a socket syscall.
  mutable Mutex engine_mutex_;
  std::unique_ptr<ReplicaEngine> engine_ GUARDED_BY(engine_mutex_);
  Rng timer_rng_ GUARDED_BY(engine_mutex_);
  double next_session_units_ GUARDED_BY(engine_mutex_) = 0.0;
  double next_advert_units_ GUARDED_BY(engine_mutex_) = 0.0;
  /// Demand-ordered peers awaiting a catch-up session after recovery; the
  /// loop starts the next one whenever no initiated session is in flight.
  std::vector<NodeId> catchup_queue_ GUARDED_BY(engine_mutex_);
  /// Set after a WAL-only recovery (no checkpoint, so no remembered
  /// neighbour demands): the queue is seeded on the loop thread once the
  /// first advert round has filled the demand table, or at the deadline
  /// below if some neighbours stay silent (they may be down too).
  bool catchup_pending_ GUARDED_BY(engine_mutex_) = false;
  double catchup_seed_deadline_ GUARDED_BY(engine_mutex_) = 0.0;

  /// Updates applied since the last WAL flush. Filled by the engine's
  /// on_delivery hook, which only ever fires inside engine_->... calls made
  /// under engine_mutex_; kept in an unannotated struct because the hook
  /// lambda body is analyzed outside any lock scope (same deliberate gap as
  /// PeerLink). flush_durability() swaps it out under the lock.
  struct WalBuffer {
    std::vector<Update> pending;
  };
  WalBuffer wal_buffer_;

  // Durable storage: owned by start() (recovery) and then the loop thread
  // alone (appends/checkpoints). recovery_ is written before the loop
  // thread starts and immutable after.
  std::unique_ptr<DurableStore> store_;
  RecoveryInfo recovery_;
  std::vector<Update> wal_batch_;  ///< loop-thread scratch for flushes

  WakePipe wake_;
  Mutex command_mutex_;
  std::vector<std::function<void(ReplicaEngine&, double, std::vector<Outbound>&)>>
      commands_ GUARDED_BY(command_mutex_);

  // Counters shared between the loop thread (writer) and net_stats()
  // (reader): inbound/codec totals plus the per-peer link mirror.
  mutable Mutex net_mutex_;
  NetStats inbound_stats_ GUARDED_BY(net_mutex_);
  std::map<NodeId, PeerNetStats> peer_stats_ GUARDED_BY(net_mutex_);

  std::map<NodeId, PeerLink> peer_links_;  // loop thread only; keys fixed at start()
  std::vector<Inbound> inbound_;           // loop thread only
  /// Reconnect-jitter stream, derived from the config seed so retry
  /// schedules are reproducible per server yet diverge between servers.
  /// Loop thread only (seeded in the constructor), like PeerLink.
  Rng reconnect_rng_;

  std::chrono::steady_clock::time_point epoch_;  // immutable after start()

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// False during crash_stop(): the loop exit skips the final checkpoint.
  std::atomic<bool> final_checkpoint_on_stop_{true};
};

}  // namespace fastcons

#endif  // FASTCONS_NET_SERVER_HPP
