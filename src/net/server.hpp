// ReplicaServer: the same ReplicaEngine that powers the simulation, run as a
// real networked process component — a poll-driven event loop over TCP with
// exponential session timers and periodic demand adverts.
//
// Threading model: one background thread owns the engine and all sockets.
// Public methods communicate with it through a mutex-guarded command queue
// plus a wake pipe; read-only queries copy state under the same mutex the
// loop holds while touching the engine.
//
// Lock discipline: engine_mutex_ guards the engine and NOTHING else. The
// loop thread takes it to run protocol logic (commands, timers, decoded
// inbound frames) and collect the resulting Outbound messages, then releases
// it before any socket syscall — connect/send/recv/flush all run unlocked,
// so client read()/stats() latency is bounded by engine compute even when a
// peer is unreachable or a connection is backpressured.
#ifndef FASTCONS_NET_SERVER_HPP
#define FASTCONS_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace fastcons {

/// Address of a peer replica.
struct PeerAddress {
  NodeId id = kInvalidNode;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Transport health of one outbound peer link.
struct PeerNetStats {
  NodeId peer = kInvalidNode;
  bool connected = false;   ///< established outbound connection
  bool connecting = false;  ///< non-blocking connect in progress
  std::uint64_t frames_sent = 0;   ///< frames accepted into the outbox
  std::uint64_t bytes_sent = 0;    ///< bytes accepted into the outbox
  std::uint64_t frames_dropped = 0;  ///< frames discarded (unreachable, backoff, full outbox)
  std::uint64_t bytes_abandoned = 0;  ///< outbox bytes discarded on disconnect
  std::uint64_t connect_attempts = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;  ///< established connections lost
  double current_backoff_seconds = 0.0;  ///< wait before the next reconnect
};

/// Snapshot of a server's transport-layer counters: per-peer link health
/// plus inbound/codec totals. Weak consistency tolerates dropped frames —
/// the next anti-entropy session repairs them — so drops are telemetry
/// here, not errors.
struct NetStats {
  std::uint64_t frames_sent = 0;    ///< sum over peers
  std::uint64_t bytes_sent = 0;     ///< sum over peers
  std::uint64_t frames_dropped = 0;  ///< sum over peers
  std::uint64_t bytes_abandoned = 0;  ///< sum over peers
  std::uint64_t connect_attempts = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t frames_received = 0;  ///< complete frames decoded
  std::uint64_t bytes_received = 0;   ///< raw bytes read off inbound sockets
  std::uint64_t inbound_accepted = 0;  ///< inbound connections accepted
  std::uint64_t inbound_closed = 0;    ///< inbound connections closed/EOF
  std::uint64_t codec_errors = 0;  ///< connections dropped on malformed frames
  std::vector<PeerNetStats> peers;  ///< sorted by peer id
};

struct ServerConfig {
  NodeId self = kInvalidNode;
  ProtocolConfig protocol;
  std::vector<PeerAddress> peers;

  /// Listen port; 0 picks an ephemeral port (query port()).
  std::uint16_t listen_port = 0;

  /// Listen address. The loopback default keeps the mesh on one host;
  /// "0.0.0.0" (or an explicit interface address) accepts peers from other
  /// hosts — what fastconsd --bind sets for a real multi-host mesh.
  std::string bind_address = "127.0.0.1";

  /// Wall-clock seconds per protocol time unit (session period). Tests use
  /// small values so sessions fire quickly.
  double seconds_per_unit = 0.05;

  /// The server's own advertised demand (static in the real runtime unless
  /// set_demand() is called).
  double demand = 0.0;

  /// Reconnect backoff bounds (wall-clock seconds). After a connect
  /// failure or disconnect the link waits the current backoff before the
  /// next attempt; the wait doubles per consecutive failure up to the max
  /// and resets to the min on success.
  double reconnect_backoff_min = 0.05;
  double reconnect_backoff_max = 2.0;

  /// Per-peer outbox cap: frames beyond this many buffered bytes are
  /// dropped (counted in NetStats) instead of growing the buffer while a
  /// peer is unreachable or stalled.
  std::size_t max_peer_outbox_bytes = 4 * 1024 * 1024;

  std::uint64_t seed = 1;
};

/// A replica server bound to a TCP port.
class ReplicaServer {
 public:
  /// Binds the listener (learning the ephemeral port) without starting the
  /// loop; peers can be configured afterwards, then start() runs the thread.
  explicit ReplicaServer(ServerConfig config);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }
  NodeId self() const noexcept { return config_.self; }

  /// Replaces the peer table (call before start()).
  void set_peers(std::vector<PeerAddress> peers);

  void start();
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Thread-safe client write; applied on the server thread.
  void write(std::string key, std::string value);

  /// Thread-safe client read of the materialised state.
  std::optional<std::string> read(const std::string& key) const;

  /// Thread-safe demand change (advertised from the next advert on).
  void set_demand(double demand);

  /// Snapshots for convergence checks.
  SummaryVector summary() const;
  EngineStats stats() const;
  TrafficCounters traffic() const;

  /// Transport-layer health snapshot (thread-safe).
  NetStats net_stats() const;

 private:
  struct PeerLink {
    PeerAddress address;
    TcpConnection connection;  // lazily (re)established outbound channel
    bool connecting = false;   // non-blocking connect awaiting writability
    double backoff_seconds = 0.0;
    std::chrono::steady_clock::time_point next_attempt{};  // epoch = "now"
    PeerNetStats stats;
  };
  struct Inbound {
    TcpConnection connection;
    FrameReader reader;
  };

  void loop();
  /// Runs queued commands and due timers under engine_mutex_, appending
  /// the engine's outbound messages to `outs`. No I/O.
  void run_engine_turn(std::vector<Outbound>& outs);
  double now_units() const;
  /// Encodes and enqueues `outs` onto peer connections; performs socket
  /// I/O. Must be called WITHOUT engine_mutex_ held.
  void transmit(std::vector<Outbound>& outs);
  void enqueue_frame(NodeId peer, const std::vector<std::uint8_t>& frame);
  /// Starts a non-blocking connect if the link is down and its backoff
  /// window has elapsed. Returns true when the link has a usable
  /// (established or connecting) connection afterwards.
  bool ensure_connection(PeerLink& link);
  void register_connect_failure(PeerLink& link);
  void drop_connection(PeerLink& link, bool was_established);
  /// Resolves a connecting link whose socket turned writable.
  void finish_connect(PeerLink& link);
  void poll_once(int timeout_ms);

  ServerConfig config_;
  TcpListener listener_;
  std::unique_ptr<ReplicaEngine> engine_;
  mutable std::mutex engine_mutex_;

  WakePipe wake_;
  std::mutex command_mutex_;
  std::vector<std::function<void(std::vector<Outbound>&)>> commands_;

  // Counters shared between the loop thread (writer) and net_stats()
  // (reader). PeerLink::stats is guarded by the same mutex.
  mutable std::mutex net_mutex_;
  NetStats inbound_stats_;  // only the inbound/codec totals are maintained

  std::map<NodeId, PeerLink> peer_links_;
  std::vector<Inbound> inbound_;

  Rng timer_rng_;
  double next_session_units_ = 0.0;
  double next_advert_units_ = 0.0;
  std::chrono::steady_clock::time_point epoch_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace fastcons

#endif  // FASTCONS_NET_SERVER_HPP
