// ReplicaServer: the same ReplicaEngine that powers the simulation, run as a
// real networked process component — a poll-driven event loop over TCP with
// exponential session timers and periodic demand adverts.
//
// Threading model: one background thread owns the engine and all sockets.
// Public methods communicate with it through a mutex-guarded command queue
// plus a wake pipe; read-only queries copy state under the same mutex the
// loop holds while touching the engine.
#ifndef FASTCONS_NET_SERVER_HPP
#define FASTCONS_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace fastcons {

/// Address of a peer replica.
struct PeerAddress {
  NodeId id = kInvalidNode;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ServerConfig {
  NodeId self = kInvalidNode;
  ProtocolConfig protocol;
  std::vector<PeerAddress> peers;

  /// Loopback port to listen on; 0 picks an ephemeral port (query port()).
  std::uint16_t listen_port = 0;

  /// Wall-clock seconds per protocol time unit (session period). Tests use
  /// small values so sessions fire quickly.
  double seconds_per_unit = 0.05;

  /// The server's own advertised demand (static in the real runtime unless
  /// set_demand() is called).
  double demand = 0.0;

  std::uint64_t seed = 1;
};

/// A replica server bound to a loopback TCP port.
class ReplicaServer {
 public:
  /// Binds the listener (learning the ephemeral port) without starting the
  /// loop; peers can be configured afterwards, then start() runs the thread.
  explicit ReplicaServer(ServerConfig config);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }
  NodeId self() const noexcept { return config_.self; }

  /// Replaces the peer table (call before start()).
  void set_peers(std::vector<PeerAddress> peers);

  void start();
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Thread-safe client write; applied on the server thread.
  void write(std::string key, std::string value);

  /// Thread-safe client read of the materialised state.
  std::optional<std::string> read(const std::string& key) const;

  /// Thread-safe demand change (advertised from the next advert on).
  void set_demand(double demand);

  /// Snapshots for convergence checks.
  SummaryVector summary() const;
  EngineStats stats() const;
  TrafficCounters traffic() const;

 private:
  struct PeerLink {
    PeerAddress address;
    TcpConnection connection;  // lazily (re)established outbound channel
  };
  struct Inbound {
    TcpConnection connection;
    FrameReader reader;
  };

  void loop();
  void pump_commands();
  double now_units() const;
  void dispatch(std::vector<Outbound> outs);
  void send_to_peer(NodeId peer, const Message& msg);
  void poll_once(int timeout_ms);

  ServerConfig config_;
  TcpListener listener_;
  std::unique_ptr<ReplicaEngine> engine_;
  mutable std::mutex engine_mutex_;

  WakePipe wake_;
  std::mutex command_mutex_;
  std::vector<std::function<void()>> commands_;

  std::map<NodeId, PeerLink> peer_links_;
  std::vector<Inbound> inbound_;

  Rng timer_rng_;
  double next_session_units_ = 0.0;
  double next_advert_units_ = 0.0;
  std::chrono::steady_clock::time_point epoch_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace fastcons

#endif  // FASTCONS_NET_SERVER_HPP
