#include "net/soak.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/cluster.hpp"
#include "topology/generators.hpp"

namespace fastcons {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxViolations = 50;

/// Shared transport-fault switchboard behind ClusterConfig::outbound_fault.
/// Runs on every server's loop thread, hence the mutex; the nemesis flips
/// the knobs from the soak thread.
struct FaultState {
  std::mutex mutex;
  Rng rng;
  double drop_probability = 0.0;
  /// Partition side per node; empty = no partition.
  std::vector<std::uint8_t> side;

  explicit FaultState(std::uint64_t seed) : rng(seed) {}

  bool drop(NodeId from, NodeId to) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!side.empty() && side[from] != side[to]) return true;
    return drop_probability > 0.0 &&
           rng.uniform(0.0, 1.0) < drop_probability;
  }
};

/// One issued-but-not-yet-confirmed client write.
struct PendingWrite {
  NodeId origin = 0;
  std::string key;
  std::string value;
};

/// A write observed readable at its origin — from then on it must never be
/// lost (recover-mode restarts included).
struct ConfirmedWrite {
  NodeId origin = 0;
  std::string key;
  std::string value;
};

void add_violation(SoakReport& report, std::string what, bool verbose) {
  if (verbose) std::fprintf(stderr, "soak: VIOLATION %s\n", what.c_str());
  if (report.violations.size() < kMaxViolations) {
    report.violations.push_back(std::move(what));
  } else if (report.violations.size() == kMaxViolations) {
    report.violations.push_back("... further violations suppressed");
  }
}

/// Largest sequence number `summary` covers for `origin` (watermark or an
/// out-of-order extra beyond it).
SeqNo max_covered_seq(const SummaryVector& summary, NodeId origin) {
  SeqNo max = summary.watermark(origin);
  for (const UpdateId& id : summary.extras()) {
    if (id.origin == origin) max = std::max(max, id.seq);
  }
  return max;
}

}  // namespace

SoakReport run_soak(const SoakConfig& config) {
  if (config.nodes < 3) throw ConfigError("soak needs at least 3 nodes");
  if (config.data_dir.empty()) {
    throw ConfigError("soak needs a data_dir (durable restarts are part of "
                      "the invariants)");
  }
  if (config.max_dead + 1 > config.nodes) {
    throw ConfigError("max_dead must leave at least one node alive");
  }

  Rng rng(config.seed);
  const Graph topology =
      make_ring(config.nodes, LatencyRange{0.01, 0.05}, rng);
  auto faults = std::make_shared<FaultState>(config.seed ^ 0xFA17CA05ull);

  ClusterConfig cluster_config;
  cluster_config.protocol = ProtocolConfig::fast();
  cluster_config.protocol.advert_period = 0.25;
  cluster_config.protocol.health.enabled = true;
  cluster_config.seconds_per_unit = config.seconds_per_unit;
  cluster_config.seed = config.seed;
  cluster_config.durability_dir = config.data_dir;
  cluster_config.outbound_fault = [faults](NodeId from, NodeId to) {
    return faults->drop(from, to);
  };

  LocalCluster cluster(topology, cluster_config);
  cluster.start();

  SoakReport report;
  std::vector<std::uint64_t> issued_per_origin(config.nodes, 0);
  std::vector<std::optional<SummaryVector>> baseline(config.nodes);
  std::vector<bool> dead(config.nodes, false);
  std::vector<bool> ever_killed(config.nodes, false);
  std::deque<PendingWrite> pending;
  std::vector<ConfirmedWrite> confirmed;
  bool drop_window = false;
  std::size_t dead_count = 0;

  const auto start = Clock::now();
  const auto nemesis_end =
      start + std::chrono::duration<double>(config.duration_seconds);
  auto next_write = start;
  auto next_nemesis =
      start + std::chrono::duration<double>(config.nemesis_period_seconds);
  auto next_check = start;
  const auto write_gap = std::chrono::duration<double>(
      config.write_rate > 0.0 ? 1.0 / config.write_rate : 1e9);
  const auto check_gap = std::chrono::duration<double>(
      std::clamp(config.seconds_per_unit, 0.005, 0.05));

  auto live_node = [&]() -> std::optional<NodeId> {
    std::vector<NodeId> live;
    for (NodeId n = 0; n < config.nodes; ++n) {
      if (!dead[n]) live.push_back(n);
    }
    if (live.empty()) return std::nullopt;
    return rng.pick(live);
  };

  auto nemesis_step = [&] {
    const std::size_t action = rng.index(10);
    if (action < 3) {  // kill
      if (dead_count >= config.max_dead) return;
      if (const auto victim = live_node()) {
        if (config.verbose) {
          std::fprintf(stderr, "soak: kill %u\n", *victim);
        }
        cluster.kill(*victim);
        dead[*victim] = true;
        ever_killed[*victim] = true;
        baseline[*victim].reset();
        ++dead_count;
        ++report.kills;
      }
    } else if (action < 6) {  // restart one dead node, recovering its disk
      for (NodeId n = 0; n < config.nodes; ++n) {
        if (!dead[n]) continue;
        if (config.verbose) std::fprintf(stderr, "soak: restart %u\n", n);
        cluster.restart(n, RestartMode::recover);
        dead[n] = false;
        --dead_count;
        ++report.restarts;
        break;
      }
    } else if (action < 8) {  // toggle a partition
      std::lock_guard<std::mutex> lock(faults->mutex);
      if (faults->side.empty()) {
        faults->side.assign(config.nodes, 0);
        // Random bisection with both sides non-empty.
        NodeId lonely = static_cast<NodeId>(rng.index(config.nodes));
        for (NodeId n = 0; n < config.nodes; ++n) {
          faults->side[n] =
              static_cast<std::uint8_t>(n == lonely ? 1 : rng.index(2));
        }
        ++report.partitions;
        if (config.verbose) std::fprintf(stderr, "soak: partition\n");
      } else {
        faults->side.clear();
        ++report.heals;
        if (config.verbose) std::fprintf(stderr, "soak: heal\n");
      }
    } else {  // toggle a frame-drop window
      std::lock_guard<std::mutex> lock(faults->mutex);
      drop_window = !drop_window;
      faults->drop_probability = drop_window ? config.drop_probability : 0.0;
      if (drop_window) ++report.drop_windows;
      if (config.verbose) {
        std::fprintf(stderr, "soak: drop window %s\n",
                     drop_window ? "on" : "off");
      }
    }
  };

  auto check_invariants = [&] {
    ++report.checks;
    for (NodeId n = 0; n < config.nodes; ++n) {
      if (dead[n]) continue;
      const SummaryVector summary = cluster.server(n).summary();
      // No forged write ids: nothing beyond what this harness issued.
      for (const auto& [origin, mark] : summary.watermarks()) {
        if (origin >= config.nodes || mark > issued_per_origin[origin]) {
          add_violation(report,
                        "forged id: node " + std::to_string(n) +
                            " covers origin " + std::to_string(origin) +
                            " seq " + std::to_string(mark) + " > issued " +
                            std::to_string(origin < config.nodes
                                               ? issued_per_origin[origin]
                                               : 0),
                        config.verbose);
        }
      }
      for (const UpdateId& id : summary.extras()) {
        if (id.origin >= config.nodes ||
            id.seq > issued_per_origin[id.origin]) {
          add_violation(report,
                        "forged id: node " + std::to_string(n) +
                            " extra (" + std::to_string(id.origin) + "," +
                            std::to_string(id.seq) + ") beyond issued",
                        config.verbose);
        }
      }
      // Monotonicity: a server's summary must cover its previous snapshot
      // (baseline reset across kill/restart — recovery replays the WAL,
      // not the in-flight tail).
      if (baseline[n].has_value() && !summary.covers(*baseline[n])) {
        add_violation(report,
                      "summary regression at node " + std::to_string(n),
                      config.verbose);
      }
      baseline[n] = summary;
    }
    // Confirm pending writes at their origin; a killed origin voids the
    // pending entry (the write may have died in the command queue — only
    // CONFIRMED writes are owed durability).
    std::size_t probes = std::min<std::size_t>(pending.size(), 64);
    while (probes-- > 0) {
      PendingWrite w = std::move(pending.front());
      pending.pop_front();
      if (dead[w.origin]) continue;
      const auto got = cluster.server(w.origin).read(w.key);
      if (got.has_value() && *got == w.value) {
        ++report.writes_confirmed;
        confirmed.push_back({w.origin, std::move(w.key), std::move(w.value)});
      } else {
        pending.push_back(std::move(w));  // not applied yet; retry later
      }
    }
    // Spot-check one confirmed write per sweep: once confirmed, a write
    // must survive everything the nemesis does to its origin.
    if (!confirmed.empty()) {
      const ConfirmedWrite& w = confirmed[rng.index(confirmed.size())];
      if (!dead[w.origin]) {
        const auto got = cluster.server(w.origin).read(w.key);
        if (!got.has_value() || *got != w.value) {
          add_violation(report,
                        "confirmed write lost at origin " +
                            std::to_string(w.origin) + ": " + w.key,
                        config.verbose);
        }
      }
    }
  };

  // ---- nemesis window -------------------------------------------------
  while (Clock::now() < nemesis_end) {
    const auto now = Clock::now();
    if (config.write_rate > 0.0 && now >= next_write) {
      if (const auto origin = live_node()) {
        const std::uint64_t i = report.writes_issued++;
        ++issued_per_origin[*origin];
        std::string key =
            "soak/" + std::to_string(*origin) + "/" + std::to_string(i);
        std::string value = "v" + std::to_string(i);
        cluster.server(*origin).write(key, value);
        pending.push_back({*origin, std::move(key), std::move(value)});
      }
      next_write += std::chrono::duration_cast<Clock::duration>(write_gap);
      if (next_write < now) next_write = now;  // don't burst after stalls
    }
    if (now >= next_nemesis) {
      nemesis_step();
      next_nemesis += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(
              rng.uniform(0.5, 1.5) * config.nemesis_period_seconds));
    }
    if (now >= next_check) {
      check_invariants();
      next_check += std::chrono::duration_cast<Clock::duration>(check_gap);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // ---- quiesce: stop hurting the cluster, then demand full recovery ---
  {
    std::lock_guard<std::mutex> lock(faults->mutex);
    faults->side.clear();
    faults->drop_probability = 0.0;
  }
  for (NodeId n = 0; n < config.nodes; ++n) {
    if (!dead[n]) continue;
    cluster.restart(n, RestartMode::recover);
    dead[n] = false;
    --dead_count;
    ++report.restarts;
  }
  for (NodeId n = 0; n < config.nodes; ++n) {
    if (ever_killed[n]) ++report.nodes_ever_killed;
  }

  // Health-layer introspection instead of fixed sleeps: every peer a
  // restart brought back must be re-promoted to up before the deadline.
  report.all_peers_up =
      cluster.wait_for_peer_health(config.quiesce_timeout_seconds);
  if (!report.all_peers_up) {
    add_violation(report, "quiesce: peers still suspect/down after " +
                              std::to_string(config.quiesce_timeout_seconds) +
                              "s",
                  config.verbose);
  }

  report.converged = cluster.wait_for_convergence(
      config.quiesce_timeout_seconds,
      std::max<std::uint64_t>(report.writes_confirmed, 1));
  if (!report.converged) {
    add_violation(report, "quiesce: summaries did not converge",
                  config.verbose);
  }

  // Final sweep with everyone alive, then digest agreement.
  check_invariants();
  std::optional<std::uint64_t> digest;
  report.digests_agree = true;
  for (NodeId n = 0; n < config.nodes; ++n) {
    const std::uint64_t d = cluster.server(n).kv_digest();
    if (!digest.has_value()) {
      digest = d;
    } else if (d != *digest) {
      report.digests_agree = false;
      add_violation(report,
                    "kv digest mismatch at node " + std::to_string(n),
                    config.verbose);
    }
  }

  // Every confirmed write must read back everywhere (bounded spot-check:
  // digests above already pin full-state agreement).
  std::size_t checked = 0;
  for (const ConfirmedWrite& w : confirmed) {
    if (checked >= 256) break;
    ++checked;
    for (NodeId n = 0; n < config.nodes; ++n) {
      const auto got = cluster.server(n).read(w.key);
      if (!got.has_value() || *got != w.value) {
        add_violation(report, "confirmed write " + w.key +
                                  " unreadable at node " + std::to_string(n),
                      config.verbose);
      }
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  cluster.stop();
  return report;
}

}  // namespace fastcons
