#include "net/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace fastcons {
namespace {

/// Salt separating the reconnect-jitter stream from the timer stream (both
/// derive from ServerConfig::seed).
constexpr std::uint64_t kReconnectJitterSalt = 0x7E77BACC0FF5EEDull;

/// Payload-bearing frames a later anti-entropy session resends anyway —
/// safe to shed on outbox overflow. Control traffic (summaries, requests,
/// acks, adverts) is what keeps the protocol converging and stays.
bool is_sheddable_class(TrafficClass cls) noexcept {
  return cls == TrafficClass::session_payload ||
         cls == TrafficClass::fast_payload;
}

}  // namespace

ReplicaServer::ReplicaServer(ServerConfig config)
    : config_(std::move(config)),
      listener_(TcpListener::bind(config_.bind_address, config_.listen_port)),
      timer_rng_(config_.seed),
      reconnect_rng_(config_.seed ^ kReconnectJitterSalt) {
  if (config_.self == kInvalidNode) throw ConfigError("server needs a NodeId");
  if (config_.seconds_per_unit <= 0.0) {
    throw ConfigError("seconds_per_unit must be positive");
  }
  if (config_.reconnect_backoff_min <= 0.0 ||
      config_.reconnect_backoff_max < config_.reconnect_backoff_min) {
    throw ConfigError("reconnect backoff bounds must satisfy 0 < min <= max");
  }
}

ReplicaServer::~ReplicaServer() { stop(); }

void ReplicaServer::set_peers(std::vector<PeerAddress> peers) {
  FASTCONS_EXPECTS(!running_.load());
  config_.peers = std::move(peers);
}

void ReplicaServer::start() {
  FASTCONS_EXPECTS(!running_.load());
  std::vector<NodeId> neighbour_ids;
  {
    const MutexLock net_lock(net_mutex_);
    for (const PeerAddress& peer : config_.peers) {
      neighbour_ids.push_back(peer.id);
      PeerLink link;
      link.address = peer;
      link.backoff_seconds = config_.reconnect_backoff_min;
      link.next_attempt = std::chrono::steady_clock::now();
      peer_links_[peer.id] = std::move(link);
      PeerNetStats stats;
      stats.peer = peer.id;
      stats.current_backoff_seconds = config_.reconnect_backoff_min;
      peer_stats_[peer.id] = stats;
    }
  }
  if (config_.durability.enabled() && store_ == nullptr) {
    store_ = std::make_unique<DurableStore>(config_.durability);
  }
  // Disk recovery is open/read/fsync-heavy, so it runs BEFORE engine_mutex_
  // is taken. The loop thread does not exist yet, but the blocking-under-
  // lock discipline holds unconditionally — zero exceptions keeps it
  // checkable (and checked: fastcons_lint's blocking-under-lock rule).
  RecoveryStats rs;
  EngineSnapshot snapshot;
  bool recovery_attempted = false;
  std::chrono::steady_clock::time_point recover_t0{};
  if (store_ != nullptr) {
    recovery_attempted = true;
    recover_t0 = std::chrono::steady_clock::now();
    snapshot = store_->recover(config_.self, rs);
  }
  {
    const MutexLock lock(engine_mutex_);
    engine_ = std::make_unique<ReplicaEngine>(config_.self,
                                              std::move(neighbour_ids),
                                              config_.protocol,
                                              timer_rng_.next_u64());
    engine_->set_own_demand(config_.demand);
    recovery_ = RecoveryInfo{};
    catchup_queue_.clear();
    catchup_pending_ = false;
    if (recovery_attempted) {
      recovery_.attempted = true;
      recovery_.had_checkpoint = rs.had_checkpoint;
      recovery_.wal_torn_tail = rs.wal_torn_tail;
      recovery_.checkpoint_updates = rs.checkpoint_updates;
      recovery_.wal_records = rs.wal_records;
      recovery_.wal_bytes = rs.wal_bytes;
      if (rs.recovered_anything()) {
        recovery_.recovered_from_disk = true;
        engine_->restore(std::move(snapshot), 0.0);
        // The configured demand wins over the (stale) checkpointed one.
        engine_->set_own_demand(config_.demand);
        recovery_.restored_updates = engine_->summary().total();
        // Catch up what we missed while down, hottest neighbour first —
        // the paper's demand ordering applied to the recovery path. The
        // queue drains one session at a time (see run_engine_turn).
        catchup_queue_ = engine_->demand_table().by_demand_desc(0.0);
        recovery_.catchup_peers = catchup_queue_.size();
        if (catchup_queue_.empty() && !config_.peers.empty()) {
          // WAL-only recovery: the checkpoint (and with it the remembered
          // neighbour demands) is missing, so a demand order cannot be
          // computed yet. Defer seeding until the first advert round has
          // filled the table (run_engine_turn), bounded by a deadline so a
          // neighbour that is itself down cannot stall catch-up forever.
          catchup_pending_ = true;
          const double period = config_.protocol.advert_period > 0.0
                                    ? config_.protocol.advert_period
                                    : config_.protocol.session_period;
          catchup_seed_deadline_ = 4.0 * period;
        }
      }
      recovery_.load_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - recover_t0)
                              .count();
      // Every update applied from here on is logged before the next loop
      // turn's socket I/O. Restored updates were not re-logged: they are
      // already on disk.
      EngineHooks hooks;
      hooks.on_delivery = [this](const Update& update, DeliveryPath,
                                 SimTime) { wal_buffer_.pending.push_back(update); };
      engine_->set_hooks(std::move(hooks));
    }
    epoch_ = std::chrono::steady_clock::now();
    next_session_units_ =
        timer_rng_.exponential(config_.protocol.session_period);
    next_advert_units_ =
        config_.protocol.advert_period > 0.0
            ? timer_rng_.uniform(0.0, config_.protocol.advert_period)
            : -1.0;
  }
  stop_requested_.store(false);
  final_checkpoint_on_stop_.store(true);
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void ReplicaServer::stop() {
  // exchange() makes concurrent stop() calls race-free: exactly one caller
  // observes the true->false transition and joins the loop thread.
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  wake_.wake();
  if (thread_.joinable()) thread_.join();
}

void ReplicaServer::crash_stop() {
  final_checkpoint_on_stop_.store(false);
  stop();
}

double ReplicaServer::now_units() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return seconds / config_.seconds_per_unit;
}

void ReplicaServer::write(std::string key, std::string value) {
  {
    const MutexLock lock(command_mutex_);
    commands_.push_back([key = std::move(key), value = std::move(value)](
                            ReplicaEngine& engine, double now,
                            std::vector<Outbound>& outs) mutable {
      engine.local_write(std::move(key), std::move(value), now, outs);
    });
  }
  wake_.wake();
}

void ReplicaServer::set_demand(double demand) {
  {
    const MutexLock lock(command_mutex_);
    commands_.push_back(
        [demand](ReplicaEngine& engine, double, std::vector<Outbound>&) {
          engine.set_own_demand(demand);
        });
  }
  wake_.wake();
}

std::optional<std::string> ReplicaServer::read(const std::string& key) const {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return std::nullopt;
  return engine_->read(key);
}

SummaryVector ReplicaServer::summary() const {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return SummaryVector{};
  return engine_->summary();
}

EngineStats ReplicaServer::stats() const {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return EngineStats{};
  return engine_->stats();
}

TrafficCounters ReplicaServer::traffic() const {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return TrafficCounters{};
  return engine_->counters();
}

std::size_t ReplicaServer::catchup_remaining() const {
  const MutexLock lock(engine_mutex_);
  std::size_t remaining = catchup_queue_.size();
  // Before deferred seeding resolves, every configured peer still counts as
  // unqueued catch-up work; and a session still in flight counts too —
  // catch-up is done when the queue is empty AND nothing we initiated is
  // pending.
  if (catchup_pending_) remaining += config_.peers.size();
  if (engine_ != nullptr) remaining += engine_->inflight_sessions();
  return remaining;
}

std::uint64_t ReplicaServer::kv_digest() const {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return 0;
  return engine_->log().kv_digest();
}

NetStats ReplicaServer::net_stats() const {
  const MutexLock lock(net_mutex_);
  NetStats out = inbound_stats_;
  for (const auto& [id, peer] : peer_stats_) {
    out.frames_sent += peer.frames_sent;
    out.bytes_sent += peer.bytes_sent;
    out.frames_dropped += peer.frames_dropped;
    out.bytes_abandoned += peer.bytes_abandoned;
    out.connect_attempts += peer.connect_attempts;
    out.connect_failures += peer.connect_failures;
    out.disconnects += peer.disconnects;
    out.peers.push_back(peer);
  }
  return out;
}

PeerNetStats& ReplicaServer::peer_stats_entry(NodeId peer) {
  const auto it = peer_stats_.find(peer);
  FASTCONS_ASSERT(it != peer_stats_.end());
  return it->second;
}

double ReplicaServer::run_engine_turn(std::vector<Outbound>& outs) {
  std::vector<std::function<void(ReplicaEngine&, double, std::vector<Outbound>&)>>
      pending;
  {
    const MutexLock lock(command_mutex_);
    pending.swap(commands_);
  }
  const ProtocolConfig& proto = config_.protocol;
  const MutexLock lock(engine_mutex_);
  const double command_now = now_units();
  for (auto& command : pending) command(*engine_, command_now, outs);

  const double now = now_units();
  if (now >= next_session_units_) {
    engine_->on_session_timer(now, outs);
    next_session_units_ = now + timer_rng_.exponential(proto.session_period);
  }
  if (next_advert_units_ >= 0.0 && now >= next_advert_units_) {
    engine_->on_advert_timer(now, outs);
    next_advert_units_ = now + proto.advert_period;
  }
  engine_->expire_inflight(now);

  // Deferred catch-up seeding (WAL-only recovery, see start()): hold out
  // for an advert from every configured peer so the order reflects their
  // real demands, but never past the deadline.
  if (catchup_pending_) {
    std::vector<NodeId> known = engine_->demand_table().by_demand_desc(now);
    if (known.size() >= config_.peers.size()) {
      catchup_queue_ = std::move(known);
      catchup_pending_ = false;
    } else if (now >= catchup_seed_deadline_) {
      // Deadline: go with what we have — demand-known peers first, the
      // still-silent rest (possibly down themselves) in configured order.
      catchup_queue_ = std::move(known);
      for (const PeerAddress& peer : config_.peers) {
        if (std::find(catchup_queue_.begin(), catchup_queue_.end(),
                      peer.id) == catchup_queue_.end()) {
          catchup_queue_.push_back(peer.id);
        }
      }
      catchup_pending_ = false;
    }
  }

  // Post-recovery catch-up: one demand-ordered session at a time, advancing
  // when the previous one completed or expired. Sequencing (instead of
  // blasting every neighbour at once) keeps the recovered node from
  // self-inflicting a thundering herd, and the demand order means the keys
  // hot-side clients are asking for come back first.
  if (!catchup_queue_.empty() && engine_->inflight_sessions() == 0) {
    const NodeId peer = catchup_queue_.front();
    catchup_queue_.erase(catchup_queue_.begin());
    engine_->start_session_with(peer, now, outs);
  }

  double next_deadline = next_session_units_;
  if (next_advert_units_ >= 0.0) {
    next_deadline = std::min(next_deadline, next_advert_units_);
  }
  return next_deadline;
}

PeerHealth ReplicaServer::peer_health_state(NodeId peer, bool note_failure) {
  const MutexLock lock(engine_mutex_);
  if (engine_ == nullptr) return PeerHealth::up;
  const double now = now_units();
  if (note_failure) engine_->note_peer_failure(peer, now);
  return engine_->peer_health().state(peer, now);
}

void ReplicaServer::schedule_reconnect(PeerLink& link) {
  // Decorrelated jitter: next = min(cap, uniform(min, 3 * previous)).
  // Deterministic doubling gives every peer that lost the same partition an
  // identical retry schedule — a synchronized reconnect storm the moment it
  // heals; the seeded jitter decorrelates the schedules while keeping each
  // server reproducible.
  const double lo = config_.reconnect_backoff_min;
  const double hi = std::max(lo, link.backoff_seconds * 3.0);
  double next = std::min(reconnect_rng_.uniform(lo, hi),
                         config_.reconnect_backoff_max);
  // Graceful degradation: a peer the health layer already degraded gets
  // capped reconnect effort — one attempt per max-backoff window — instead
  // of eagerly burning connect attempts on a likely-dead address.
  if (peer_health_state(link.address.id, /*note_failure=*/false) !=
      PeerHealth::up) {
    next = config_.reconnect_backoff_max;
  }
  link.backoff_seconds = next;
  link.next_attempt =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(next));
}

void ReplicaServer::register_connect_failure(PeerLink& link) {
  link.connecting = false;
  // The failure feeds the health layer before the backoff is drawn, so the
  // attempt that crosses failure_threshold already reconnects at the cap.
  peer_health_state(link.address.id, /*note_failure=*/true);
  schedule_reconnect(link);
  const MutexLock lock(net_mutex_);
  PeerNetStats& stats = peer_stats_entry(link.address.id);
  stats.connecting = false;
  stats.connected = false;
  ++stats.connect_failures;
  stats.current_backoff_seconds = link.backoff_seconds;
}

void ReplicaServer::drop_connection(PeerLink& link, bool was_established) {
  const std::size_t abandoned =
      link.connection.pending_output_bytes() + link.pending_bytes;
  link.connection.close();
  link.connecting = false;
  link.pending.clear();
  link.pending_bytes = 0;
  schedule_reconnect(link);
  const MutexLock lock(net_mutex_);
  PeerNetStats& stats = peer_stats_entry(link.address.id);
  stats.connecting = false;
  stats.connected = false;
  stats.bytes_abandoned += abandoned;
  if (was_established) ++stats.disconnects;
  stats.current_backoff_seconds = link.backoff_seconds;
}

bool ReplicaServer::ensure_connection(PeerLink& link) {
  if (link.connection.valid()) return true;
  if (std::chrono::steady_clock::now() < link.next_attempt) return false;
  {
    const MutexLock lock(net_mutex_);
    ++peer_stats_entry(link.address.id).connect_attempts;
  }
  try {
    link.connection =
        TcpConnection::connect(link.address.host, link.address.port);
  } catch (const TransportError& e) {
    FASTCONS_LOG(debug, "net") << "connect to " << link.address.id
                               << " failed: " << e.what();
    register_connect_failure(link);
    return false;
  }
  link.connecting = true;
  const MutexLock lock(net_mutex_);
  peer_stats_entry(link.address.id).connecting = true;
  return true;
}

void ReplicaServer::finish_connect(PeerLink& link) {
  const int err = link.connection.pending_error();
  if (err != 0) {
    FASTCONS_LOG(debug, "net") << "async connect to " << link.address.id
                               << " failed: " << std::strerror(err);
    link.connection.close();
    register_connect_failure(link);
    return;
  }
  link.connecting = false;
  link.backoff_seconds = config_.reconnect_backoff_min;
  {
    const MutexLock lock(net_mutex_);
    PeerNetStats& stats = peer_stats_entry(link.address.id);
    stats.connecting = false;
    stats.connected = true;
    stats.current_backoff_seconds = link.backoff_seconds;
  }
  if (link.connection.flush() == IoStatus::error) {
    drop_connection(link, /*was_established=*/true);
    return;
  }
  pump_outbox(link);
}

void ReplicaServer::pump_outbox(PeerLink& link) {
  if (!link.connection.valid()) return;
  // Feed the byte outbox only up to a watermark: bytes handed to the
  // connection can no longer be shed selectively, so the bulk of a backlog
  // waits frame-granular in link.pending where overflow can still evict
  // superseded pushes.
  const std::size_t watermark = std::max<std::size_t>(
      64 * 1024, config_.max_peer_outbox_bytes / 4);
  while (!link.pending.empty() &&
         link.connection.pending_output_bytes() < watermark) {
    PeerLink::QueuedFrame frame = std::move(link.pending.front());
    link.pending.pop_front();
    link.pending_bytes -= frame.bytes.size();
    if (link.connecting) {
      // Handshake still in flight; buffer until writability resolves it.
      link.connection.queue(frame.bytes);
    } else if (link.connection.send(frame.bytes) == IoStatus::error) {
      drop_connection(link, /*was_established=*/true);
      return;
    }
  }
}

void ReplicaServer::enqueue_frame(NodeId peer, std::vector<std::uint8_t> frame,
                                  bool sheddable) {
  const auto it = peer_links_.find(peer);
  if (it == peer_links_.end()) return;
  if (config_.outbound_fault && config_.outbound_fault(peer)) {
    // Injected loss: drop before the link ever sees the frame, so the shim
    // exercises the same recovery path as a genuinely lossy network.
    const MutexLock lock(net_mutex_);
    ++peer_stats_entry(peer).frames_dropped;
    return;
  }
  PeerLink& link = it->second;
  if (!ensure_connection(link)) {
    // Weak consistency tolerates message loss: the next session retries.
    const MutexLock lock(net_mutex_);
    ++peer_stats_entry(peer).frames_dropped;
    return;
  }
  std::size_t buffered =
      link.connection.pending_output_bytes() + link.pending_bytes;
  std::uint64_t shed_frames = 0;
  if (buffered + frame.size() > config_.max_peer_outbox_bytes) {
    // Overflow: evict superseded pushes, oldest first — their payloads are
    // re-sent by the next session anyway, while a summary or advert dropped
    // here would stall convergence for a whole session period.
    for (auto qit = link.pending.begin();
         qit != link.pending.end() &&
         buffered + frame.size() > config_.max_peer_outbox_bytes;) {
      if (!qit->sheddable) {
        ++qit;
        continue;
      }
      buffered -= qit->bytes.size();
      link.pending_bytes -= qit->bytes.size();
      ++shed_frames;
      qit = link.pending.erase(qit);
    }
  }
  if (buffered + frame.size() > config_.max_peer_outbox_bytes) {
    // Still no room: the backlog is all control traffic (or the new frame
    // is enormous); drop the newcomer as before.
    const MutexLock lock(net_mutex_);
    PeerNetStats& stats = peer_stats_entry(peer);
    ++stats.frames_dropped;
    stats.frames_shed += shed_frames;
    return;
  }
  const std::size_t frame_size = frame.size();
  link.pending.push_back(PeerLink::QueuedFrame{std::move(frame), sheddable});
  link.pending_bytes += frame_size;
  {
    const MutexLock lock(net_mutex_);
    PeerNetStats& stats = peer_stats_entry(peer);
    ++stats.frames_sent;
    stats.bytes_sent += frame_size;
    stats.frames_shed += shed_frames;
  }
  pump_outbox(link);
}

void ReplicaServer::transmit(std::vector<Outbound>& outs) {
  for (Outbound& out : outs) {
    const bool sheddable = is_sheddable_class(traffic_class_of(out.msg));
    enqueue_frame(out.to, encode_frame(config_.self, out.msg), sheddable);
  }
  outs.clear();
}

void ReplicaServer::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  const std::size_t inbound_base = fds.size();
  for (Inbound& in : inbound_) {
    fds.push_back(pollfd{in.connection.fd(), POLLIN, 0});
  }
  const std::size_t peer_base = fds.size();
  std::vector<NodeId> peer_order;
  for (auto& [id, link] : peer_links_) {
    if (link.connection.valid() &&
        (link.connecting || link.connection.has_pending_output() ||
         !link.pending.empty())) {
      fds.push_back(pollfd{link.connection.fd(), POLLOUT, 0});
      peer_order.push_back(id);
    }
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return;

  if ((fds[0].revents & POLLIN) != 0) wake_.drain();

  if ((fds[1].revents & POLLIN) != 0) {
    std::uint64_t accepted = 0;
    while (auto conn = listener_.accept()) {
      inbound_.push_back(Inbound{std::move(*conn), FrameReader{}});
      ++accepted;
    }
    if (accepted != 0) {
      const MutexLock lock(net_mutex_);
      inbound_stats_.inbound_accepted += accepted;
    }
  }

  // Inbound traffic: read and decode WITHOUT the engine lock. Only walk the
  // connections that were polled: the accept loop above can grow inbound_
  // beyond the fds we registered.
  const std::size_t polled_inbound = peer_base - inbound_base;
  std::vector<WireFrame> frames;
  std::vector<std::uint8_t> bytes;
  std::uint64_t bytes_read = 0;
  std::uint64_t codec_errors = 0;
  std::uint64_t closed = 0;
  for (std::size_t i = 0; i < polled_inbound; ++i) {
    const short revents = fds[inbound_base + i].revents;
    if ((revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    Inbound& in = inbound_[i];
    bytes.clear();
    const IoStatus status = in.connection.read_available(bytes);
    if (!bytes.empty()) {
      bytes_read += bytes.size();
      in.reader.feed(bytes);
      try {
        while (auto frame = in.reader.next()) {
          frames.push_back(std::move(*frame));
        }
      } catch (const CodecError& e) {
        FASTCONS_LOG(warn, "net") << "dropping connection: " << e.what();
        in.connection.close();
        ++codec_errors;
      }
    }
    if (status == IoStatus::closed || status == IoStatus::error) {
      in.connection.close();
      ++closed;
    }
  }
  std::erase_if(inbound_, [](const Inbound& in) {
    return !in.connection.valid();
  });
  if (bytes_read != 0 || codec_errors != 0 || closed != 0 ||
      !frames.empty()) {
    const MutexLock lock(net_mutex_);
    inbound_stats_.bytes_received += bytes_read;
    inbound_stats_.frames_received += frames.size();
    inbound_stats_.codec_errors += codec_errors;
    inbound_stats_.inbound_closed += closed;
  }

  // Peers waiting for writability: connect completions and flushes.
  for (std::size_t i = 0; i < peer_order.size(); ++i) {
    const short revents = fds[peer_base + i].revents;
    if ((revents & (POLLOUT | POLLERR | POLLHUP)) == 0) continue;
    PeerLink& link = peer_links_[peer_order[i]];
    if (!link.connection.valid()) continue;
    if (link.connecting) {
      finish_connect(link);
    } else if (link.connection.flush() == IoStatus::error) {
      drop_connection(link, /*was_established=*/true);
    } else {
      // Socket drained below the watermark: staged frames can move down.
      pump_outbox(link);
    }
  }

  // A frame from a peer proves it is back up: cancel any reconnect backoff
  // on our outbound link to it, so replies are not dropped while a stale
  // backoff window (accumulated during the peer's downtime) runs out.
  // Without this, a recovered node's catch-up requests arrive instantly but
  // every response waits for the responder's backoff to expire.
  for (const WireFrame& frame : frames) {
    const auto it = peer_links_.find(frame.sender);
    if (it == peer_links_.end() || it->second.connection.valid()) continue;
    it->second.backoff_seconds = config_.reconnect_backoff_min;
    it->second.next_attempt = std::chrono::steady_clock::now();
  }

  // Decoded frames -> engine, in one lock scope; the replies go out after
  // the lock is released.
  if (!frames.empty()) {
    std::vector<Outbound> outs;
    {
      const MutexLock lock(engine_mutex_);
      const double now = now_units();
      for (WireFrame& frame : frames) {
        engine_->handle(frame.sender, std::move(frame.msg), now, outs);
      }
    }
    transmit(outs);
  }
}

void ReplicaServer::mirror_peer_health() {
  if (!config_.protocol.health.enabled) return;
  std::vector<PeerHealthView> views;
  {
    const MutexLock lock(engine_mutex_);
    if (engine_ == nullptr) return;
    views = engine_->peer_health().views(now_units());
  }
  const MutexLock lock(net_mutex_);
  for (const PeerHealthView& v : views) {
    const auto it = peer_stats_.find(v.peer);
    if (it == peer_stats_.end()) continue;
    it->second.health = v.state;
    it->second.health_last_heard_units = v.last_heard;
    it->second.health_suspect_since_units = v.suspect_since;
  }
}

void ReplicaServer::flush_durability() {
  if (store_ == nullptr) return;
  wal_batch_.clear();
  {
    const MutexLock lock(engine_mutex_);
    wal_batch_.swap(wal_buffer_.pending);
  }
  // Group commit: everything the last turn applied goes down in one write
  // (and at most one fsync). A crash inside this window loses only updates
  // peers still hold — the catch-up sessions re-fetch them.
  store_->append(wal_batch_);
  if (store_->checkpoint_due()) {
    EngineSnapshot snapshot;
    {
      const MutexLock lock(engine_mutex_);
      snapshot = engine_->snapshot();
    }
    store_->write_checkpoint(snapshot);
  }
}

void ReplicaServer::loop() {
  std::vector<Outbound> outs;
  while (!stop_requested_.load()) {
    // Engine work under the lock (no I/O), then disk and socket I/O
    // unlocked. Updates applied by poll_once's frame dispatch are logged
    // here, at most one turn after their replies went out — a bounded
    // group-commit window whose loss a crash recovery re-fetches from the
    // peers that sent them.
    const double next_deadline = run_engine_turn(outs);
    flush_durability();
    transmit(outs);
    mirror_peer_health();

    const double wait_units = std::max(0.0, next_deadline - now_units());
    const int timeout_ms = static_cast<int>(
        std::ceil(wait_units * config_.seconds_per_unit * 1000.0));
    poll_once(std::min(timeout_ms, 50));
  }
  // Graceful shutdown: persist the tail, then write a final checkpoint so a
  // stop/start cycle (as opposed to a crash) recovers byte-exactly from the
  // checkpoint alone — zero WAL records to replay.
  flush_durability();
  if (store_ != nullptr && final_checkpoint_on_stop_.load()) {
    EngineSnapshot snapshot;
    {
      const MutexLock lock(engine_mutex_);
      snapshot = engine_->snapshot();
    }
    store_->write_checkpoint(snapshot);
  }
}

}  // namespace fastcons
