#include "net/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace fastcons {

ReplicaServer::ReplicaServer(ServerConfig config)
    : config_(std::move(config)),
      listener_(TcpListener::bind_loopback(config_.listen_port)),
      timer_rng_(config_.seed) {
  if (config_.self == kInvalidNode) throw ConfigError("server needs a NodeId");
  if (config_.seconds_per_unit <= 0.0) {
    throw ConfigError("seconds_per_unit must be positive");
  }
}

ReplicaServer::~ReplicaServer() { stop(); }

void ReplicaServer::set_peers(std::vector<PeerAddress> peers) {
  FASTCONS_EXPECTS(!running_.load());
  config_.peers = std::move(peers);
}

void ReplicaServer::start() {
  FASTCONS_EXPECTS(!running_.load());
  std::vector<NodeId> neighbour_ids;
  for (const PeerAddress& peer : config_.peers) {
    neighbour_ids.push_back(peer.id);
    peer_links_[peer.id] = PeerLink{peer, TcpConnection{}};
  }
  engine_ = std::make_unique<ReplicaEngine>(config_.self,
                                            std::move(neighbour_ids),
                                            config_.protocol,
                                            timer_rng_.next_u64());
  engine_->set_own_demand(config_.demand);
  epoch_ = std::chrono::steady_clock::now();
  next_session_units_ =
      timer_rng_.exponential(config_.protocol.session_period);
  next_advert_units_ = config_.protocol.advert_period > 0.0
                           ? timer_rng_.uniform(0.0, config_.protocol.advert_period)
                           : -1.0;
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void ReplicaServer::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  wake_.wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

double ReplicaServer::now_units() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return seconds / config_.seconds_per_unit;
}

void ReplicaServer::write(std::string key, std::string value) {
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back([this, key = std::move(key),
                         value = std::move(value)]() mutable {
      dispatch(engine_->local_write(std::move(key), std::move(value),
                                    now_units()));
    });
  }
  wake_.wake();
}

void ReplicaServer::set_demand(double demand) {
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back([this, demand] { engine_->set_own_demand(demand); });
  }
  wake_.wake();
}

std::optional<std::string> ReplicaServer::read(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(engine_mutex_);
  if (engine_ == nullptr) return std::nullopt;
  return engine_->read(key);
}

SummaryVector ReplicaServer::summary() const {
  const std::lock_guard<std::mutex> lock(engine_mutex_);
  if (engine_ == nullptr) return SummaryVector{};
  return engine_->summary();
}

EngineStats ReplicaServer::stats() const {
  const std::lock_guard<std::mutex> lock(engine_mutex_);
  if (engine_ == nullptr) return EngineStats{};
  return engine_->stats();
}

TrafficCounters ReplicaServer::traffic() const {
  const std::lock_guard<std::mutex> lock(engine_mutex_);
  if (engine_ == nullptr) return TrafficCounters{};
  return engine_->counters();
}

void ReplicaServer::pump_commands() {
  std::vector<std::function<void()>> pending;
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    pending.swap(commands_);
  }
  const std::lock_guard<std::mutex> lock(engine_mutex_);
  for (auto& command : pending) command();
}

void ReplicaServer::send_to_peer(NodeId peer, const Message& msg) {
  const auto it = peer_links_.find(peer);
  if (it == peer_links_.end()) return;
  PeerLink& link = it->second;
  if (!link.connection.valid()) {
    try {
      link.connection =
          TcpConnection::connect(link.address.host, link.address.port);
    } catch (const TransportError& e) {
      // Weak consistency tolerates message loss: the next session retries.
      FASTCONS_LOG(debug, "net") << "connect to " << peer << " failed: "
                                 << e.what();
      return;
    }
  }
  const std::vector<std::uint8_t> frame = encode_frame(config_.self, msg);
  if (link.connection.send(frame) == IoStatus::error) {
    link.connection.close();  // reconnect lazily on the next send
  }
}

void ReplicaServer::dispatch(std::vector<Outbound> outs) {
  for (Outbound& out : outs) send_to_peer(out.to, out.msg);
}

void ReplicaServer::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  const std::size_t inbound_base = fds.size();
  for (Inbound& in : inbound_) {
    fds.push_back(pollfd{in.connection.fd(), POLLIN, 0});
  }
  const std::size_t peer_base = fds.size();
  std::vector<NodeId> peer_order;
  for (auto& [id, link] : peer_links_) {
    if (link.connection.valid() && link.connection.has_pending_output()) {
      fds.push_back(pollfd{link.connection.fd(), POLLOUT, 0});
      peer_order.push_back(id);
    }
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return;

  if ((fds[0].revents & POLLIN) != 0) wake_.drain();

  if ((fds[1].revents & POLLIN) != 0) {
    while (auto conn = listener_.accept()) {
      inbound_.push_back(Inbound{std::move(*conn), FrameReader{}});
    }
  }

  // Inbound traffic -> engine. Only walk the connections that were polled:
  // the accept loop above can grow inbound_ beyond the fds we registered.
  const std::size_t polled_inbound = peer_base - inbound_base;
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < polled_inbound; ++i) {
    const short revents = fds[inbound_base + i].revents;
    if ((revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    Inbound& in = inbound_[i];
    bytes.clear();
    const IoStatus status = in.connection.read_available(bytes);
    if (!bytes.empty()) {
      in.reader.feed(bytes);
      try {
        while (auto frame = in.reader.next()) {
          const std::lock_guard<std::mutex> lock(engine_mutex_);
          // The frame is consumed here; move the payload into the engine.
          dispatch(engine_->handle(frame->sender, std::move(frame->msg),
                                   now_units()));
        }
      } catch (const CodecError& e) {
        FASTCONS_LOG(warn, "net") << "dropping connection: " << e.what();
        in.connection.close();
      }
    }
    if (status == IoStatus::closed || status == IoStatus::error) {
      in.connection.close();
    }
  }
  std::erase_if(inbound_, [](const Inbound& in) {
    return !in.connection.valid();
  });

  // Flush peers that were waiting for writability.
  for (std::size_t i = 0; i < peer_order.size(); ++i) {
    const short revents = fds[peer_base + i].revents;
    if ((revents & (POLLOUT | POLLERR | POLLHUP)) == 0) continue;
    PeerLink& link = peer_links_[peer_order[i]];
    if (link.connection.flush() == IoStatus::error) link.connection.close();
  }
}

void ReplicaServer::loop() {
  const ProtocolConfig& proto = config_.protocol;
  while (!stop_requested_.load()) {
    pump_commands();

    const double now = now_units();
    if (now >= next_session_units_) {
      {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        dispatch(engine_->on_session_timer(now));
      }
      next_session_units_ = now + timer_rng_.exponential(proto.session_period);
    }
    if (next_advert_units_ >= 0.0 && now >= next_advert_units_) {
      {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        dispatch(engine_->on_advert_timer(now));
      }
      next_advert_units_ = now + proto.advert_period;
    }
    {
      const std::lock_guard<std::mutex> lock(engine_mutex_);
      engine_->expire_inflight(now);
    }

    double next_deadline = next_session_units_;
    if (next_advert_units_ >= 0.0) {
      next_deadline = std::min(next_deadline, next_advert_units_);
    }
    const double wait_units = std::max(0.0, next_deadline - now_units());
    const int timeout_ms = static_cast<int>(
        std::ceil(wait_units * config_.seconds_per_unit * 1000.0));
    poll_once(std::min(timeout_ms, 50));
  }
}

}  // namespace fastcons
