// Command-line parsing for fastconsd, extracted from the binary so the
// validation rules are unit-testable: every numeric field is parsed with
// full-consumption checks and range validation — a malformed "--peer
// abc:host:port" is an error, not silently replica id 0.
#ifndef FASTCONS_NET_OPTIONS_HPP
#define FASTCONS_NET_OPTIONS_HPP

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/server.hpp"

namespace fastcons {

/// Parses "ID:HOST:PORT" (e.g. "1:10.0.0.7:7001"). Throws ConfigError on a
/// malformed spec: missing fields, non-numeric or out-of-range id/port,
/// empty host.
PeerAddress parse_peer_address(const std::string& spec);

/// Everything fastconsd's command line configures.
struct DaemonOptions {
  ServerConfig server;  // self, peers, listen_port, bind_address, demand, ...
  /// Session period in wall-clock milliseconds (seconds_per_unit * 1000).
  double period_ms = 1000.0;
  /// Startup client writes, in order.
  std::vector<std::pair<std::string, std::string>> writes;
  /// Exit after this many seconds; < 0 = run until a signal.
  double run_seconds = -1.0;
  /// Load-generator mode: > 0 issues writes at this rate...
  double load_writes_per_sec = 0.0;
  /// ...for this many seconds, then prints a latency/health report.
  double load_seconds = 0.0;
  bool verbose = false;
};

/// Parses fastconsd's argv (excluding argv[0]) into `out`. Returns
/// std::nullopt on success or a one-line error message; the caller prints
/// it with the usage text. "--help" yields the error message "help".
std::optional<std::string> parse_daemon_args(
    const std::vector<std::string>& args, DaemonOptions& out);

}  // namespace fastcons

#endif  // FASTCONS_NET_OPTIONS_HPP
