// Protocol configuration: one struct selects between the paper's three
// algorithms and their ablation variants.
#ifndef FASTCONS_CORE_CONFIG_HPP
#define FASTCONS_CORE_CONFIG_HPP

#include <cstddef>
#include <string_view>

#include "common/types.hpp"
#include "health/peer_health.hpp"

namespace fastcons {

/// Anti-entropy partner selection.
enum class PartnerSelection {
  /// Golding's baseline: uniformly random alive neighbour each session.
  uniform_random,
  /// §2: cycle through neighbours in demand order, order frozen when the
  /// cycle starts (the variant §3 shows failing under changing demand).
  demand_static,
  /// §4: cycle without replacement, re-sorted by current demand table at
  /// every pick (chooses C' over A' in Fig. 4).
  demand_dynamic,
};

/// Fast-update acknowledgement semantics (ablation E10).
enum class FastAckMode {
  /// Paper steps 15-18: one YES/NO for the whole offer.
  yes_no,
  /// Extension: the receiver lists exactly the ids it wants, eliminating
  /// duplicate payloads for partially-seen offers.
  subset,
};

/// Which neighbours are eligible targets of a fast push.
enum class FastPushRule {
  /// Paper §2: the chain continues while the neighbour has "even greater
  /// demand" — push only to neighbours whose advertised demand exceeds our
  /// own, so updates flow down into demand valleys and stop at local maxima
  /// (with equal demands everywhere the algorithm degenerates to plain weak
  /// consistency, exactly as the paper's conclusion states).
  gradient,
  /// Ablation: push to the highest-demand neighbours unconditionally; this
  /// floods the whole topology at link latency and shows why the paper's
  /// gradient constraint is what keeps traffic bounded.
  unconstrained,
};

struct ProtocolConfig {
  PartnerSelection selection = PartnerSelection::demand_dynamic;

  /// Master switch for the fast-update part (steps 13-18).
  bool fast_push = true;

  /// How many (eligible) neighbours receive each fast offer. Paper: 1.
  std::size_t fast_fanout = 1;

  FastAckMode ack_mode = FastAckMode::yes_no;
  FastPushRule push_rule = FastPushRule::gradient;

  /// Push also when updates arrive via sessions/pushes (paper: "either
  /// coming from a client, or from an anti-entropy session"). Turning this
  /// off (ablation) pushes only on local client writes.
  bool push_on_any_gain = true;

  /// Mean time between anti-entropy sessions initiated by one replica.
  /// The repository's time unit: 1.0 == one session period.
  SimTime session_period = 1.0;

  /// Period of DemandAdvert broadcasts; <= 0 disables adverts entirely
  /// (tables then keep whatever they were primed with — the static model).
  SimTime advert_period = 0.25;

  /// Neighbour considered dead after this silence; <= 0 disables liveness.
  SimTime liveness_window = 0.0;

  /// Abandon sessions/offers with no progress for this long.
  SimTime session_timeout = 0.75;

  /// Bayou-style log truncation (paper §7 discusses the policy space):
  /// when enabled, each session timer discards payloads below the meet of
  /// every neighbour's known summary — each neighbour provably holds them,
  /// so no future session with current neighbours can need them. Only safe
  /// while the neighbour set is static: a neighbour added later (island
  /// overlay) might need updates that were already discarded everywhere
  /// near it.
  bool auto_truncate = false;

  /// Peer-health tracking (src/health): up -> suspect -> down per
  /// neighbour, driven by message recency. Default-off so the golden sim
  /// digests are unaffected; when enabled, suspect peers' demand decays in
  /// push-target selection and down peers are excluded until re-contact.
  HealthConfig health;

  /// --- Named presets: the three curves of Figs. 5/6. ---

  /// Golding baseline ("Weak consistency").
  static ProtocolConfig weak() {
    ProtocolConfig cfg;
    cfg.selection = PartnerSelection::uniform_random;
    cfg.fast_push = false;
    return cfg;
  }

  /// Demand-ordered sessions only, no fast push (ablation middle ground).
  static ProtocolConfig demand_order_only() {
    ProtocolConfig cfg;
    cfg.selection = PartnerSelection::demand_dynamic;
    cfg.fast_push = false;
    return cfg;
  }

  /// The paper's full fast-consistency algorithm.
  static ProtocolConfig fast() { return ProtocolConfig{}; }
};

std::string_view selection_name(PartnerSelection s) noexcept;

}  // namespace fastcons

#endif  // FASTCONS_CORE_CONFIG_HPP
