#include "core/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {
namespace {

/// Binary search in a sorted (id, state) vector; returns end() when absent.
template <typename Vec>
auto find_by_id(Vec& entries, std::uint64_t id) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != entries.end() && it->first == id) return it;
  return entries.end();
}

}  // namespace

std::string_view delivery_path_name(DeliveryPath p) noexcept {
  switch (p) {
    case DeliveryPath::local_write: return "local-write";
    case DeliveryPath::session: return "session";
    case DeliveryPath::fast_push: return "fast-push";
  }
  return "?";
}

ReplicaEngine::ReplicaEngine(NodeId self, std::vector<NodeId> neighbours,
                             ProtocolConfig config, std::uint64_t seed)
    : self_(self),
      config_(config),
      rng_(seed),
      table_(std::move(neighbours), config.liveness_window),
      policy_(make_policy(config.selection)) {
  FASTCONS_EXPECTS(config_.session_period > 0.0);
  FASTCONS_EXPECTS(config_.fast_fanout >= 1);
  health_.reset(config_.health);
  for (const DemandEntry& entry : table_.entries()) {
    health_.add_peer(entry.peer, 0.0);
  }
}

void ReplicaEngine::reset(NodeId self, const std::vector<NodeId>& neighbours,
                          const ProtocolConfig& config, std::uint64_t seed) {
  FASTCONS_EXPECTS(config.session_period > 0.0);
  FASTCONS_EXPECTS(config.fast_fanout >= 1);
  // The policy object is stateless apart from its cycle bookkeeping, so it
  // is reused (and told to forget the cycle) unless the selection strategy
  // itself changed.
  if (policy_ == nullptr || config.selection != config_.selection) {
    policy_ = make_policy(config.selection);
  } else {
    policy_->reset();
  }
  self_ = self;
  config_ = config;
  rng_ = Rng(seed);
  log_.clear();
  table_.reset(neighbours, config.liveness_window);
  health_.reset(config_.health);
  for (const DemandEntry& entry : table_.entries()) {
    health_.add_peer(entry.peer, 0.0);
  }
  hooks_ = EngineHooks{};
  stats_ = EngineStats{};
  counters_ = TrafficCounters{};
  own_demand_ = 0.0;
  next_seq_ = 0;
  next_session_ = 0;
  next_offer_ = 0;
  sessions_.clear();
  offers_.clear();
  peer_knowledge_.clear();
}

void ReplicaEngine::prime_neighbour_demand(NodeId peer, double demand,
                                           SimTime now) {
  table_.update(peer, demand, now);
}

void ReplicaEngine::add_overlay_neighbour(NodeId peer, SimTime now) {
  table_.add_neighbour(peer, now);
  health_.add_peer(peer, now);
  policy_->reset();
}

void ReplicaEngine::send(std::vector<Outbound>& out, NodeId to, Message msg) {
  counters_.record(traffic_class_of(msg), estimated_wire_size(msg));
  out.push_back(Outbound{to, std::move(msg)});
}

// --------------------------------------------------------------------------
// Applying updates

std::vector<OfferedId> ReplicaEngine::apply_all(std::vector<Update>&& updates,
                                                DeliveryPath path,
                                                SimTime now) {
  std::vector<OfferedId> gained;
  for (Update& update : updates) {
    if (const Update* stored = log_.apply_moved(std::move(update))) {
      ++stats_.updates_applied;
      gained.push_back(OfferedId{stored->id, stored->created_at});
      if (hooks_.on_delivery) hooks_.on_delivery(*stored, path, now);
    } else {
      ++stats_.duplicate_updates;
    }
  }
  return gained;
}

// --------------------------------------------------------------------------
// Client writes

std::vector<Outbound> ReplicaEngine::local_write(std::string key,
                                                 std::string value,
                                                 SimTime now) {
  std::vector<Outbound> out;
  local_write(std::move(key), std::move(value), now, out);
  return out;
}

void ReplicaEngine::local_write(std::string key, std::string value, SimTime now,
                                std::vector<Outbound>& out) {
  std::vector<Update> one;
  one.push_back(Update{UpdateId{self_, ++next_seq_}, now, std::move(key),
                       std::move(value)});
  const std::vector<OfferedId> gained =
      apply_all(std::move(one), DeliveryPath::local_write, now);
  FASTCONS_ASSERT(gained.size() == 1);
  after_gain(gained, kInvalidNode, DeliveryPath::local_write, now, out);
}

// --------------------------------------------------------------------------
// Anti-entropy sessions (paper §2.1 steps 1-12)

void ReplicaEngine::maybe_auto_truncate() {
  if (!config_.auto_truncate) return;
  // The frontier needs evidence about every neighbour; one we have never
  // exchanged summaries with contributes bottom, making the meet empty.
  SummaryVector stable = log_.summary();
  for (const DemandEntry& entry : table_.entries()) {
    const SummaryVector* known = find_knowledge(entry.peer);
    if (known == nullptr) return;
    stable = SummaryVector::meet(stable, *known);
  }
  stats_.payloads_truncated += log_.truncate_below(stable);
}

std::vector<Outbound> ReplicaEngine::on_session_timer(SimTime now) {
  std::vector<Outbound> out;
  on_session_timer(now, out);
  return out;
}

void ReplicaEngine::on_session_timer(SimTime now, std::vector<Outbound>& out) {
  expire_inflight(now);
  maybe_auto_truncate();
  const NodeId peer = policy_->choose(table_, now, rng_, health_if_enabled());
  if (peer == kInvalidNode) return;
  start_session_with(peer, now, out);
}

void ReplicaEngine::start_session_with(NodeId peer, SimTime now,
                                       std::vector<Outbound>& out) {
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(self_) << 32) | ++next_session_;
  sessions_.emplace_back(session_id,
                         SessionState{peer, now, /*awaiting_reply=*/false});
  ++stats_.sessions_initiated;
  send(out, peer, SessionRequest{session_id});
}

void ReplicaEngine::on_session_request(NodeId from, const SessionRequest& m,
                                       SimTime /*now*/,
                                       std::vector<Outbound>& out) {
  // Step 4: "B sends to E its summary vector." The responder keeps no state;
  // everything it needs later arrives inside SessionPush.
  send(out, from, SessionSummary{m.session_id, log_.summary()});
}

void ReplicaEngine::on_session_summary(NodeId from, const SessionSummary& m,
                                       SimTime now,
                                       std::vector<Outbound>& out) {
  const auto it = find_by_id(sessions_, m.session_id);
  if (it == sessions_.end() || it->second.peer != from ||
      it->second.awaiting_reply) {
    return;  // stale or spoofed; the session already timed out
  }
  it->second.awaiting_reply = true;
  it->second.started_at = now;
  // Steps 7-8: send the messages the partner has not seen. Ids truncated
  // out of the log fall back to a full transfer of what we retain.
  std::vector<UpdateId> truncated;
  std::vector<Update> missing = log_.updates_for(m.summary, &truncated);
  if (!truncated.empty()) {
    missing = log_.all_retained();
  }
  SummaryVector& known = knowledge_for(from);
  known.merge(m.summary);
  for (const Update& u : missing) known.add(u.id);
  send(out, from, SessionPush{m.session_id, log_.summary(), std::move(missing)});
}

void ReplicaEngine::on_session_push(NodeId from, SessionPush m, SimTime now,
                                    std::vector<Outbound>& out) {
  // The initiator's summary plus the updates it just sent describe
  // everything it will hold once this exchange completes.
  {
    SummaryVector& known = knowledge_for(from);
    known.merge(m.summary);
    for (const Update& u : m.updates) known.add(u.id);
  }
  SummaryVector their_view = std::move(m.summary);
  for (const Update& u : m.updates) their_view.add(u.id);
  const std::vector<OfferedId> gained =
      apply_all(std::move(m.updates), DeliveryPath::session, now);
  // Steps 10-11: reply with what the initiator lacks.
  std::vector<UpdateId> truncated;
  std::vector<Update> reply = log_.updates_for(their_view, &truncated);
  if (!truncated.empty()) {
    reply = log_.all_retained();
  }
  {
    SummaryVector& known = knowledge_for(from);
    for (const Update& u : reply) known.add(u.id);
  }
  send(out, from, SessionReply{m.session_id, std::move(reply)});
  ++stats_.sessions_responded;
  if (hooks_.on_session_complete) hooks_.on_session_complete(from, now);
  // Steps 12-13: novel content arrived -> fast update part takes over.
  after_gain(gained, from, DeliveryPath::session, now, out);
}

void ReplicaEngine::on_session_reply(NodeId from, SessionReply m, SimTime now,
                                     std::vector<Outbound>& out) {
  const auto it = find_by_id(sessions_, m.session_id);
  if (it == sessions_.end() || it->second.peer != from) return;
  sessions_.erase(it);
  {
    SummaryVector& known = knowledge_for(from);
    for (const Update& u : m.updates) known.add(u.id);
  }
  const std::vector<OfferedId> gained =
      apply_all(std::move(m.updates), DeliveryPath::session, now);
  ++stats_.sessions_completed;
  if (hooks_.on_session_complete) hooks_.on_session_complete(from, now);
  after_gain(gained, from, DeliveryPath::session, now, out);
}

void ReplicaEngine::expire_inflight(SimTime now) {
  if (config_.session_timeout <= 0.0) return;
  std::erase_if(sessions_, [&](const auto& entry) {
    if (now - entry.second.started_at <= config_.session_timeout) return false;
    ++stats_.sessions_expired;
    return true;
  });
  std::erase_if(offers_, [&](const auto& entry) {
    return now - entry.second.started_at > config_.session_timeout;
  });
}

// --------------------------------------------------------------------------
// Fast updates (paper §2.1 steps 13-18)

void ReplicaEngine::after_gain(const std::vector<OfferedId>& gained,
                               NodeId source, DeliveryPath path, SimTime now,
                               std::vector<Outbound>& out) {
  if (!config_.fast_push || gained.empty()) return;
  if (!config_.push_on_any_gain && path != DeliveryPath::local_write) return;

  const PeerHealthTracker* health = health_if_enabled();
  std::size_t sent = 0;
  for (const NodeId peer : table_.by_demand_desc(now, health)) {
    if (sent >= config_.fast_fanout) break;
    if (peer == source) continue;
    if (config_.push_rule == FastPushRule::gradient) {
      // "the neighbour with even greater demand": the chain only continues
      // downhill into the demand valley. Health decay ages a suspect peer's
      // demand, so pushes stop chasing silent peers before they are declared
      // fully down.
      const auto demand = table_.demand_of(peer);
      if (!demand.has_value()) continue;
      double effective = *demand;
      if (health != nullptr) effective *= health->demand_factor(peer, now);
      if (effective <= own_demand_) {
        if (health != nullptr && *demand > own_demand_) {
          ++stats_.pushes_suppressed_unhealthy;
        }
        continue;
      }
    }
    if (peer_known_to_have_all(peer, gained)) continue;
    FastOffer offer;
    offer.offer_id = (static_cast<std::uint64_t>(self_) << 32) | ++next_offer_;
    OfferState state{peer, now, {}};
    const SummaryVector& knowledge = knowledge_for(peer);
    for (const OfferedId& u : gained) {
      if (knowledge.contains(u.id)) continue;
      offer.offered.push_back(u);
      state.offered.push_back(u.id);
    }
    if (offer.offered.empty()) continue;
    offers_.emplace_back(offer.offer_id, std::move(state));
    ++stats_.offers_sent;
    send(out, peer, std::move(offer));
    ++sent;
  }
}

void ReplicaEngine::on_fast_offer(NodeId from, const FastOffer& m,
                                  SimTime now, std::vector<Outbound>& out) {
  ++stats_.offers_received;
  (void)now;
  FastAck ack;
  ack.offer_id = m.offer_id;
  std::vector<UpdateId> missing;
  SummaryVector& known = knowledge_for(from);
  for (const OfferedId& offered : m.offered) {
    known.add(offered.id);  // the offerer evidently has it
    if (!log_.contains(offered.id)) missing.push_back(offered.id);
  }
  ack.yes = !missing.empty();
  if (config_.ack_mode == FastAckMode::subset) ack.wanted = std::move(missing);
  if (ack.yes) {
    ++stats_.offers_accepted;
  } else {
    ++stats_.offers_declined;
  }
  send(out, from, std::move(ack));
}

void ReplicaEngine::on_fast_ack(NodeId from, const FastAck& m, SimTime /*now*/,
                                std::vector<Outbound>& out) {
  const auto it = find_by_id(offers_, m.offer_id);
  if (it == offers_.end() || it->second.peer != from) return;
  const OfferState state = std::move(it->second);
  offers_.erase(it);
  SummaryVector& known = knowledge_for(from);
  if (!m.yes) {
    // Step 18: "B sends nothing" — but we learned the peer has everything.
    for (const UpdateId id : state.offered) known.add(id);
    return;
  }
  // Step 17: send the payloads. Strict YES/NO mode resends the whole offer;
  // subset mode sends exactly what was asked for.
  const std::vector<UpdateId>& ids =
      config_.ack_mode == FastAckMode::subset ? m.wanted : state.offered;
  FastData data;
  data.offer_id = m.offer_id;
  for (const UpdateId id : ids) {
    // Only ship what we actually offered (ignore bogus requests) and still
    // retain (truncation may have raced; sessions will repair).
    if (std::find(state.offered.begin(), state.offered.end(), id) ==
        state.offered.end()) {
      continue;
    }
    if (const Update* update = log_.find(id)) {
      data.updates.push_back(*update);
      known.add(id);
    }
  }
  if (!data.updates.empty()) send(out, from, std::move(data));
}

void ReplicaEngine::on_fast_data(NodeId from, FastData m, SimTime now,
                                 std::vector<Outbound>& out) {
  {
    SummaryVector& known = knowledge_for(from);
    for (const Update& u : m.updates) known.add(u.id);
  }
  const std::vector<OfferedId> gained =
      apply_all(std::move(m.updates), DeliveryPath::fast_push, now);
  // Step 13 applies recursively: novel content chains to the next valley.
  after_gain(gained, from, DeliveryPath::fast_push, now, out);
}

// --------------------------------------------------------------------------
// Demand adverts (paper §4)

std::vector<Outbound> ReplicaEngine::on_advert_timer(SimTime now) {
  std::vector<Outbound> out;
  on_advert_timer(now, out);
  return out;
}

void ReplicaEngine::on_advert_timer(SimTime now, std::vector<Outbound>& out) {
  // Dead neighbours are skipped — except one revival probe per tick,
  // rotating through them. Every other send path (sessions, fast push)
  // already filters to alive peers, so without the probe two peers that
  // expire each other's windows would never exchange traffic again.
  const NodeId probe = table_.next_dead_probe(now);
  for (const DemandEntry& entry : table_.entries()) {
    if (!table_.is_alive(entry, now)) {
      if (entry.peer != probe) {
        ++stats_.adverts_skipped_dead;
        continue;
      }
      ++stats_.adverts_probed_dead;
    }
    send(out, entry.peer, DemandAdvert{own_demand_});
  }
}

void ReplicaEngine::on_demand_advert(NodeId from, const DemandAdvert& m,
                                     SimTime now, std::vector<Outbound>&) {
  table_.update(from, m.demand, now);
}

// --------------------------------------------------------------------------
// Durability hooks

EngineSnapshot ReplicaEngine::snapshot() const {
  EngineSnapshot s;
  s.self = self_;
  s.write_seq = next_seq_;
  s.next_session = next_session_;
  s.next_offer = next_offer_;
  s.own_demand = own_demand_;
  s.summary = log_.summary();
  s.updates = log_.all_retained();
  s.neighbour_demand.reserve(table_.entries().size());
  for (const DemandEntry& entry : table_.entries()) {
    s.neighbour_demand.emplace_back(entry.peer, entry.demand);
  }
  return s;
}

void ReplicaEngine::restore(EngineSnapshot snapshot, SimTime now) {
  FASTCONS_EXPECTS(snapshot.self == self_);
  // The write counter must resume past every sequence number this origin
  // ever issued: the checkpointed counter covers checkpointed (and
  // truncated) writes, and self-origin updates in the image cover the WAL
  // suffix appended after the checkpoint.
  SeqNo next_seq = snapshot.write_seq;
  for (const Update& u : snapshot.updates) {
    if (u.id.origin == self_ && u.id.seq > next_seq) next_seq = u.id.seq;
  }
  log_.restore(std::move(snapshot.updates), snapshot.summary);
  next_seq_ = next_seq;
  next_session_ = snapshot.next_session;
  next_offer_ = snapshot.next_offer;
  own_demand_ = snapshot.own_demand;
  // Demand figures are stale by exactly the downtime; restoring them stamped
  // `now` keeps the neighbours usable for demand-ordered catch-up until the
  // first fresh adverts overwrite them.
  for (const auto& [peer, demand] : snapshot.neighbour_demand) {
    table_.update(peer, demand, now);
  }
}

// --------------------------------------------------------------------------
// Dispatch and peer knowledge

std::vector<Outbound> ReplicaEngine::handle(NodeId from, const Message& msg,
                                            SimTime now) {
  // Runtimes that retain the message (the TCP server, tests) pay one copy;
  // the simulation path calls the appending move overload directly.
  std::vector<Outbound> out;
  handle(from, Message(msg), now, out);
  return out;
}

std::vector<Outbound> ReplicaEngine::handle(NodeId from, Message&& msg,
                                            SimTime now) {
  std::vector<Outbound> out;
  handle(from, std::move(msg), now, out);
  return out;
}

void ReplicaEngine::handle(NodeId from, Message&& msg, SimTime now,
                           std::vector<Outbound>& out) {
  // Any message proves the sender and the link are alive (§4: the table
  // "tells us if this replica is available").
  table_.touch(from, now);
  // First contact after a `down` verdict re-promotes the peer: the tracker
  // clears its failure run, so demand decay stops on the very next
  // selection pass.
  if (health_.enabled()) health_.record_contact(from, now);
  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest>) {
          on_session_request(from, m, now, out);
        } else if constexpr (std::is_same_v<T, SessionSummary>) {
          on_session_summary(from, m, now, out);
        } else if constexpr (std::is_same_v<T, SessionPush>) {
          on_session_push(from, std::move(m), now, out);
        } else if constexpr (std::is_same_v<T, SessionReply>) {
          on_session_reply(from, std::move(m), now, out);
        } else if constexpr (std::is_same_v<T, FastOffer>) {
          on_fast_offer(from, m, now, out);
        } else if constexpr (std::is_same_v<T, FastAck>) {
          on_fast_ack(from, m, now, out);
        } else if constexpr (std::is_same_v<T, FastData>) {
          on_fast_data(from, std::move(m), now, out);
        } else {
          on_demand_advert(from, m, now, out);
        }
      },
      std::move(msg));
}

bool ReplicaEngine::peer_known_to_have_all(
    NodeId peer, const std::vector<OfferedId>& gained) const {
  const SummaryVector* known = find_knowledge(peer);
  if (known == nullptr) return false;
  return std::all_of(gained.begin(), gained.end(), [&](const OfferedId& u) {
    return known->contains(u.id);
  });
}

SummaryVector& ReplicaEngine::knowledge_for(NodeId peer) {
  auto it = std::lower_bound(
      peer_knowledge_.begin(), peer_knowledge_.end(), peer,
      [](const auto& entry, NodeId key) { return entry.first < key; });
  if (it == peer_knowledge_.end() || it->first != peer) {
    it = peer_knowledge_.emplace(it, peer, SummaryVector{});
  }
  return it->second;
}

const SummaryVector* ReplicaEngine::find_knowledge(NodeId peer) const {
  const auto it = std::lower_bound(
      peer_knowledge_.begin(), peer_knowledge_.end(), peer,
      [](const auto& entry, NodeId key) { return entry.first < key; });
  if (it == peer_knowledge_.end() || it->first != peer) return nullptr;
  return &it->second;
}

}  // namespace fastcons
