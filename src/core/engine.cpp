#include "core/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

std::string_view delivery_path_name(DeliveryPath p) noexcept {
  switch (p) {
    case DeliveryPath::local_write: return "local-write";
    case DeliveryPath::session: return "session";
    case DeliveryPath::fast_push: return "fast-push";
  }
  return "?";
}

ReplicaEngine::ReplicaEngine(NodeId self, std::vector<NodeId> neighbours,
                             ProtocolConfig config, std::uint64_t seed)
    : self_(self),
      config_(config),
      rng_(seed),
      table_(std::move(neighbours), config.liveness_window),
      policy_(make_policy(config.selection)) {
  FASTCONS_EXPECTS(config_.session_period > 0.0);
  FASTCONS_EXPECTS(config_.fast_fanout >= 1);
}

void ReplicaEngine::prime_neighbour_demand(NodeId peer, double demand,
                                           SimTime now) {
  table_.update(peer, demand, now);
}

void ReplicaEngine::add_overlay_neighbour(NodeId peer, SimTime now) {
  table_.add_neighbour(peer, now);
  policy_->reset();
}

void ReplicaEngine::send(std::vector<Outbound>& out, NodeId to, Message msg) {
  counters_.record(traffic_class_of(msg), estimated_wire_size(msg));
  out.push_back(Outbound{to, std::move(msg)});
}

// --------------------------------------------------------------------------
// Applying updates

std::vector<Update> ReplicaEngine::apply_all(const std::vector<Update>& updates,
                                             DeliveryPath path, SimTime now) {
  std::vector<Update> gained;
  for (const Update& update : updates) {
    if (log_.apply(update)) {
      ++stats_.updates_applied;
      gained.push_back(update);
      if (hooks_.on_delivery) hooks_.on_delivery(update, path, now);
    } else {
      ++stats_.duplicate_updates;
    }
  }
  return gained;
}

// --------------------------------------------------------------------------
// Client writes

std::vector<Outbound> ReplicaEngine::local_write(std::string key,
                                                 std::string value,
                                                 SimTime now) {
  const Update update{UpdateId{self_, ++next_seq_}, now, std::move(key),
                      std::move(value)};
  const std::vector<Update> gained =
      apply_all({update}, DeliveryPath::local_write, now);
  FASTCONS_ASSERT(gained.size() == 1);
  return after_gain(gained, kInvalidNode, DeliveryPath::local_write, now);
}

// --------------------------------------------------------------------------
// Anti-entropy sessions (paper §2.1 steps 1-12)

void ReplicaEngine::maybe_auto_truncate() {
  if (!config_.auto_truncate) return;
  // The frontier needs evidence about every neighbour; one we have never
  // exchanged summaries with contributes bottom, making the meet empty.
  SummaryVector stable = log_.summary();
  for (const DemandEntry& entry : table_.entries()) {
    const auto it = peer_knowledge_.find(entry.peer);
    if (it == peer_knowledge_.end()) return;
    stable = SummaryVector::meet(stable, it->second);
  }
  stats_.payloads_truncated += log_.truncate_below(stable);
}

std::vector<Outbound> ReplicaEngine::on_session_timer(SimTime now) {
  std::vector<Outbound> out;
  expire_inflight(now);
  maybe_auto_truncate();
  const NodeId peer = policy_->choose(table_, now, rng_);
  if (peer == kInvalidNode) return out;
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(self_) << 32) | ++next_session_;
  sessions_[session_id] = SessionState{peer, now, /*awaiting_reply=*/false};
  ++stats_.sessions_initiated;
  send(out, peer, SessionRequest{session_id});
  return out;
}

std::vector<Outbound> ReplicaEngine::on_session_request(
    NodeId from, const SessionRequest& m, SimTime /*now*/) {
  // Step 4: "B sends to E its summary vector." The responder keeps no state;
  // everything it needs later arrives inside SessionPush.
  std::vector<Outbound> out;
  send(out, from, SessionSummary{m.session_id, log_.summary()});
  return out;
}

std::vector<Outbound> ReplicaEngine::on_session_summary(
    NodeId from, const SessionSummary& m, SimTime now) {
  std::vector<Outbound> out;
  const auto it = sessions_.find(m.session_id);
  if (it == sessions_.end() || it->second.peer != from ||
      it->second.awaiting_reply) {
    return out;  // stale or spoofed; the session already timed out
  }
  it->second.awaiting_reply = true;
  it->second.started_at = now;
  note_peer_summary(from, m.summary);
  // Steps 7-8: send the messages the partner has not seen. Ids truncated
  // out of the log fall back to a full transfer of what we retain.
  std::vector<UpdateId> truncated;
  std::vector<Update> missing = log_.updates_for(m.summary, &truncated);
  if (!truncated.empty()) {
    missing = log_.all_retained();
  }
  for (const Update& u : missing) note_peer_has(from, u.id);
  send(out, from, SessionPush{m.session_id, log_.summary(), std::move(missing)});
  return out;
}

std::vector<Outbound> ReplicaEngine::on_session_push(NodeId from,
                                                     const SessionPush& m,
                                                     SimTime now) {
  std::vector<Outbound> out;
  // The initiator's summary plus the updates it just sent describe
  // everything it will hold once this exchange completes.
  note_peer_summary(from, m.summary);
  for (const Update& u : m.updates) note_peer_has(from, u.id);
  const std::vector<Update> gained =
      apply_all(m.updates, DeliveryPath::session, now);
  // Steps 10-11: reply with what the initiator lacks.
  SummaryVector their_view = m.summary;
  for (const Update& u : m.updates) their_view.add(u.id);
  std::vector<UpdateId> truncated;
  std::vector<Update> reply = log_.updates_for(their_view, &truncated);
  if (!truncated.empty()) {
    reply = log_.all_retained();
  }
  for (const Update& u : reply) note_peer_has(from, u.id);
  send(out, from, SessionReply{m.session_id, std::move(reply)});
  ++stats_.sessions_responded;
  if (hooks_.on_session_complete) hooks_.on_session_complete(from, now);
  // Steps 12-13: novel content arrived -> fast update part takes over.
  auto pushes = after_gain(gained, from, DeliveryPath::session, now);
  out.insert(out.end(), std::make_move_iterator(pushes.begin()),
             std::make_move_iterator(pushes.end()));
  return out;
}

std::vector<Outbound> ReplicaEngine::on_session_reply(NodeId from,
                                                      const SessionReply& m,
                                                      SimTime now) {
  std::vector<Outbound> out;
  const auto it = sessions_.find(m.session_id);
  if (it == sessions_.end() || it->second.peer != from) return out;
  sessions_.erase(it);
  for (const Update& u : m.updates) note_peer_has(from, u.id);
  const std::vector<Update> gained =
      apply_all(m.updates, DeliveryPath::session, now);
  ++stats_.sessions_completed;
  if (hooks_.on_session_complete) hooks_.on_session_complete(from, now);
  return after_gain(gained, from, DeliveryPath::session, now);
}

void ReplicaEngine::expire_inflight(SimTime now) {
  if (config_.session_timeout <= 0.0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.started_at > config_.session_timeout) {
      it = sessions_.erase(it);
      ++stats_.sessions_expired;
    } else {
      ++it;
    }
  }
  for (auto it = offers_.begin(); it != offers_.end();) {
    if (now - it->second.started_at > config_.session_timeout) {
      it = offers_.erase(it);
    } else {
      ++it;
    }
  }
}

// --------------------------------------------------------------------------
// Fast updates (paper §2.1 steps 13-18)

std::vector<Outbound> ReplicaEngine::after_gain(const std::vector<Update>& gained,
                                                NodeId source,
                                                DeliveryPath path,
                                                SimTime now) {
  std::vector<Outbound> out;
  if (!config_.fast_push || gained.empty()) return out;
  if (!config_.push_on_any_gain && path != DeliveryPath::local_write) return out;

  std::size_t sent = 0;
  for (const NodeId peer : table_.by_demand_desc(now)) {
    if (sent >= config_.fast_fanout) break;
    if (peer == source) continue;
    if (config_.push_rule == FastPushRule::gradient) {
      // "the neighbour with even greater demand": the chain only continues
      // downhill into the demand valley.
      const auto demand = table_.demand_of(peer);
      if (!demand.has_value() || *demand <= own_demand_) continue;
    }
    if (peer_known_to_have_all(peer, gained)) continue;
    FastOffer offer;
    offer.offer_id = (static_cast<std::uint64_t>(self_) << 32) | ++next_offer_;
    OfferState state{peer, now, {}};
    for (const Update& u : gained) {
      const auto& knowledge = peer_knowledge_[peer];
      if (knowledge.contains(u.id)) continue;
      offer.offered.push_back(OfferedId{u.id, u.created_at});
      state.offered.push_back(u.id);
    }
    if (offer.offered.empty()) continue;
    offers_[offer.offer_id] = std::move(state);
    ++stats_.offers_sent;
    send(out, peer, std::move(offer));
    ++sent;
  }
  return out;
}

std::vector<Outbound> ReplicaEngine::on_fast_offer(NodeId from,
                                                   const FastOffer& m,
                                                   SimTime now) {
  std::vector<Outbound> out;
  ++stats_.offers_received;
  (void)now;
  FastAck ack;
  ack.offer_id = m.offer_id;
  std::vector<UpdateId> missing;
  for (const OfferedId& offered : m.offered) {
    note_peer_has(from, offered.id);  // the offerer evidently has it
    if (!log_.contains(offered.id)) missing.push_back(offered.id);
  }
  ack.yes = !missing.empty();
  if (config_.ack_mode == FastAckMode::subset) ack.wanted = std::move(missing);
  if (ack.yes) {
    ++stats_.offers_accepted;
  } else {
    ++stats_.offers_declined;
  }
  send(out, from, std::move(ack));
  return out;
}

std::vector<Outbound> ReplicaEngine::on_fast_ack(NodeId from, const FastAck& m,
                                                 SimTime /*now*/) {
  std::vector<Outbound> out;
  const auto it = offers_.find(m.offer_id);
  if (it == offers_.end() || it->second.peer != from) return out;
  const OfferState state = std::move(it->second);
  offers_.erase(it);
  if (!m.yes) {
    // Step 18: "B sends nothing" — but we learned the peer has everything.
    for (const UpdateId id : state.offered) note_peer_has(from, id);
    return out;
  }
  // Step 17: send the payloads. Strict YES/NO mode resends the whole offer;
  // subset mode sends exactly what was asked for.
  const std::vector<UpdateId>& ids =
      config_.ack_mode == FastAckMode::subset ? m.wanted : state.offered;
  FastData data;
  data.offer_id = m.offer_id;
  for (const UpdateId id : ids) {
    // Only ship what we actually offered (ignore bogus requests) and still
    // retain (truncation may have raced; sessions will repair).
    if (std::find(state.offered.begin(), state.offered.end(), id) ==
        state.offered.end()) {
      continue;
    }
    if (const auto update = log_.get(id); update.has_value()) {
      data.updates.push_back(*update);
      note_peer_has(from, id);
    }
  }
  if (!data.updates.empty()) send(out, from, std::move(data));
  return out;
}

std::vector<Outbound> ReplicaEngine::on_fast_data(NodeId from,
                                                  const FastData& m,
                                                  SimTime now) {
  for (const Update& u : m.updates) note_peer_has(from, u.id);
  const std::vector<Update> gained =
      apply_all(m.updates, DeliveryPath::fast_push, now);
  // Step 13 applies recursively: novel content chains to the next valley.
  return after_gain(gained, from, DeliveryPath::fast_push, now);
}

// --------------------------------------------------------------------------
// Demand adverts (paper §4)

std::vector<Outbound> ReplicaEngine::on_advert_timer(SimTime now) {
  std::vector<Outbound> out;
  // Dead neighbours are skipped — except one revival probe per tick,
  // rotating through them. Every other send path (sessions, fast push)
  // already filters to alive peers, so without the probe two peers that
  // expire each other's windows would never exchange traffic again.
  const NodeId probe = table_.next_dead_probe(now);
  for (const DemandEntry& entry : table_.entries()) {
    if (!table_.is_alive(entry, now)) {
      if (entry.peer != probe) {
        ++stats_.adverts_skipped_dead;
        continue;
      }
      ++stats_.adverts_probed_dead;
    }
    send(out, entry.peer, DemandAdvert{own_demand_});
  }
  return out;
}

std::vector<Outbound> ReplicaEngine::on_demand_advert(NodeId from,
                                                      const DemandAdvert& m,
                                                      SimTime now) {
  table_.update(from, m.demand, now);
  return {};
}

// --------------------------------------------------------------------------
// Dispatch and peer knowledge

std::vector<Outbound> ReplicaEngine::handle(NodeId from, const Message& msg,
                                            SimTime now) {
  // Any message proves the sender and the link are alive (§4: the table
  // "tells us if this replica is available").
  table_.touch(from, now);
  return std::visit(
      [&](const auto& m) -> std::vector<Outbound> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest>) {
          return on_session_request(from, m, now);
        } else if constexpr (std::is_same_v<T, SessionSummary>) {
          return on_session_summary(from, m, now);
        } else if constexpr (std::is_same_v<T, SessionPush>) {
          return on_session_push(from, m, now);
        } else if constexpr (std::is_same_v<T, SessionReply>) {
          return on_session_reply(from, m, now);
        } else if constexpr (std::is_same_v<T, FastOffer>) {
          return on_fast_offer(from, m, now);
        } else if constexpr (std::is_same_v<T, FastAck>) {
          return on_fast_ack(from, m, now);
        } else if constexpr (std::is_same_v<T, FastData>) {
          return on_fast_data(from, m, now);
        } else {
          return on_demand_advert(from, m, now);
        }
      },
      msg);
}

void ReplicaEngine::note_peer_has(NodeId peer, UpdateId id) {
  peer_knowledge_[peer].add(id);
}

void ReplicaEngine::note_peer_summary(NodeId peer,
                                      const SummaryVector& summary) {
  peer_knowledge_[peer].merge(summary);
}

bool ReplicaEngine::peer_known_to_have_all(
    NodeId peer, const std::vector<Update>& updates) const {
  const auto it = peer_knowledge_.find(peer);
  if (it == peer_knowledge_.end()) return false;
  return std::all_of(updates.begin(), updates.end(), [&](const Update& u) {
    return it->second.contains(u.id);
  });
}

}  // namespace fastcons
