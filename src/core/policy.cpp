#include "core/policy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

NodeId RandomPolicy::choose(const DemandTable& table, SimTime now, Rng& rng,
                            const PeerHealthTracker* health) {
  const std::vector<NodeId> alive = table.alive(now, health);
  if (alive.empty()) return kInvalidNode;
  return alive[rng.index(alive.size())];
}

NodeId DemandCyclePolicy::choose(const DemandTable& table, SimTime now,
                                 Rng& /*rng*/,
                                 const PeerHealthTracker* health) {
  if (resort_each_pick_) {
    // Dynamic: among alive neighbours not yet visited this cycle, take the
    // one with the highest *current* demand. A fresh cycle starts when all
    // alive neighbours have been visited.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::vector<NodeId> order = table.by_demand_desc(now, health);
      for (const NodeId peer : order) {
        if (!visited_.contains(peer)) {
          visited_.insert(peer);
          return peer;
        }
      }
      if (order.empty()) return kInvalidNode;
      visited_.clear();  // cycle exhausted; start over
    }
    return kInvalidNode;
  }
  // Static: freeze the order when the cycle begins; walk it to the end even
  // if demand shifts underneath (the behaviour §3 criticises).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (frozen_order_.empty()) {
      frozen_order_ = table.by_demand_desc(now, health);
      visited_.clear();
      if (frozen_order_.empty()) return kInvalidNode;
    }
    for (const NodeId peer : frozen_order_) {
      if (visited_.contains(peer)) continue;
      visited_.insert(peer);
      // Skip silently if the peer died after the order froze.
      if (!table.is_alive(peer, now)) continue;
      if (health != nullptr && health->enabled() &&
          health->state(peer, now) == PeerHealth::down) {
        continue;
      }
      return peer;
    }
    frozen_order_.clear();  // cycle exhausted; refreeze next attempt
  }
  return kInvalidNode;
}

void DemandCyclePolicy::reset() {
  visited_.clear();
  frozen_order_.clear();
}

std::unique_ptr<PartnerPolicy> make_policy(PartnerSelection selection) {
  switch (selection) {
    case PartnerSelection::uniform_random:
      return std::make_unique<RandomPolicy>();
    case PartnerSelection::demand_static:
      return std::make_unique<DemandCyclePolicy>(/*resort_each_pick=*/false);
    case PartnerSelection::demand_dynamic:
      return std::make_unique<DemandCyclePolicy>(/*resort_each_pick=*/true);
  }
  FASTCONS_ASSERT(false);
  return nullptr;
}

}  // namespace fastcons
