#include "core/messages.hpp"

namespace fastcons {
namespace {

// Wire layout constants shared with net/wire.cpp (see that file for the
// format definition). Header: 1 tag byte + 4 sender bytes; frame adds a
// 4-byte length prefix.
constexpr std::size_t kFrameAndHeader = 4 + 1 + 4;

std::size_t summary_size(const SummaryVector& sv) noexcept {
  // u32 count + (u32 origin + u64 mark) per watermark,
  // u32 count + per-origin (u32 origin + u32 n + n * u64) extras.
  std::size_t size = 4;
  size += sv.watermarks().size() * (4 + 8);
  size += 4;
  size += sv.distinct_extra_origins() * (4 + 4) + sv.extras().size() * 8;
  return size;
}

std::size_t update_size(const Update& u) noexcept {
  // id (4+8) + created_at (8) + key (4 + len) + value (4 + len).
  return 4 + 8 + 8 + 4 + u.key.size() + 4 + u.value.size();
}

std::size_t updates_size(const std::vector<Update>& updates) noexcept {
  std::size_t size = 4;
  for (const Update& u : updates) size += update_size(u);
  return size;
}

}  // namespace

std::string_view message_name(const Message& msg) noexcept {
  return std::visit(
      [](const auto& m) -> std::string_view {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest>) return "SessionRequest";
        else if constexpr (std::is_same_v<T, SessionSummary>) return "SessionSummary";
        else if constexpr (std::is_same_v<T, SessionPush>) return "SessionPush";
        else if constexpr (std::is_same_v<T, SessionReply>) return "SessionReply";
        else if constexpr (std::is_same_v<T, FastOffer>) return "FastOffer";
        else if constexpr (std::is_same_v<T, FastAck>) return "FastAck";
        else if constexpr (std::is_same_v<T, FastData>) return "FastData";
        else return "DemandAdvert";
      },
      msg);
}

TrafficClass traffic_class_of(const Message& msg) noexcept {
  return std::visit(
      [](const auto& m) -> TrafficClass {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SessionRequest> ||
                      std::is_same_v<T, SessionSummary>) {
          return TrafficClass::session_control;
        } else if constexpr (std::is_same_v<T, SessionPush> ||
                             std::is_same_v<T, SessionReply>) {
          return TrafficClass::session_payload;
        } else if constexpr (std::is_same_v<T, FastOffer> ||
                             std::is_same_v<T, FastAck>) {
          return TrafficClass::fast_control;
        } else if constexpr (std::is_same_v<T, FastData>) {
          return TrafficClass::fast_payload;
        } else {
          return TrafficClass::demand_advert;
        }
      },
      msg);
}

std::size_t estimated_wire_size(const Message& msg) noexcept {
  return kFrameAndHeader +
         std::visit(
             [](const auto& m) -> std::size_t {
               using T = std::decay_t<decltype(m)>;
               if constexpr (std::is_same_v<T, SessionRequest>) {
                 return 8;
               } else if constexpr (std::is_same_v<T, SessionSummary>) {
                 return 8 + summary_size(m.summary);
               } else if constexpr (std::is_same_v<T, SessionPush>) {
                 return 8 + summary_size(m.summary) + updates_size(m.updates);
               } else if constexpr (std::is_same_v<T, SessionReply>) {
                 return 8 + updates_size(m.updates);
               } else if constexpr (std::is_same_v<T, FastOffer>) {
                 // offer id + count + (origin, seq, timestamp) each.
                 return 8 + 4 + m.offered.size() * (4 + 8 + 8);
               } else if constexpr (std::is_same_v<T, FastAck>) {
                 return 8 + 1 + 4 + m.wanted.size() * (4 + 8);
               } else if constexpr (std::is_same_v<T, FastData>) {
                 return 8 + updates_size(m.updates);
               } else {  // DemandAdvert
                 return 8;
               }
             },
             msg);
}

}  // namespace fastcons
