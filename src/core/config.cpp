#include "core/config.hpp"

namespace fastcons {

std::string_view selection_name(PartnerSelection s) noexcept {
  switch (s) {
    case PartnerSelection::uniform_random: return "uniform-random";
    case PartnerSelection::demand_static: return "demand-static";
    case PartnerSelection::demand_dynamic: return "demand-dynamic";
  }
  return "?";
}

}  // namespace fastcons
