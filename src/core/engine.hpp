// ReplicaEngine: one replica's complete protocol logic, sans-I/O.
//
// The engine is a deterministic state machine. A runtime (the discrete-event
// simulation in src/sim_runtime, or the TCP server in src/net) drives it by
// calling the on_*/handle/local_write entry points with the current time and
// delivers the returned Outbound messages however it likes. The engine never
// reads a clock, never blocks, never allocates a socket — which is what
// makes one implementation testable step-by-step and runnable both simulated
// and over real networks.
#ifndef FASTCONS_CORE_ENGINE_HPP
#define FASTCONS_CORE_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/policy.hpp"
#include "demand/demand_table.hpp"
#include "health/peer_health.hpp"
#include "replication/write_log.hpp"
#include "stats/counters.hpp"

namespace fastcons {

/// How an update first reached this replica (metrics dimension).
enum class DeliveryPath : std::uint8_t { local_write, session, fast_push };

/// Human-readable name of a DeliveryPath ("local-write", "session", ...).
std::string_view delivery_path_name(DeliveryPath p) noexcept;

/// Observer callbacks. Default-constructed hooks are no-ops.
struct EngineHooks {
  /// Fired exactly once per update when it is first applied locally.
  std::function<void(const Update&, DeliveryPath, SimTime)> on_delivery;
  /// Fired when an anti-entropy session completes at this end.
  std::function<void(NodeId peer, SimTime)> on_session_complete;
};

/// A serialisable image of one replica's durable state: everything a
/// restarted node needs to resume as *the same replica*. In-flight sessions
/// and offers are deliberately excluded (peers time them out and retry), as
/// is peer knowledge (conservatively forgotten; the next summary exchange
/// rebuilds it — forgetting can only cause redundant sends, never loss).
/// next_session/next_offer persist so a reborn node never reuses an id a
/// pre-crash in-flight exchange may still be circulating under.
struct EngineSnapshot {
  NodeId self = kInvalidNode;
  SeqNo write_seq = 0;
  std::uint64_t next_session = 0;
  std::uint64_t next_offer = 0;
  double own_demand = 0.0;
  SummaryVector summary;        ///< everything ever applied (incl. truncated)
  std::vector<Update> updates;  ///< retained payloads, (origin, seq) order
  /// Last advertised demand per neighbour, registration order. Restored as
  /// a priming hint so post-recovery catch-up can walk neighbours
  /// demand-hot-first before fresh adverts arrive.
  std::vector<std::pair<NodeId, double>> neighbour_demand;
};

/// Protocol statistics one engine accumulates over its lifetime.
struct EngineStats {
  std::uint64_t sessions_initiated = 0;  ///< anti-entropy sessions we started
  std::uint64_t sessions_completed = 0;  ///< completed, as initiator
  std::uint64_t sessions_responded = 0;  ///< sessions answered as responder
  std::uint64_t sessions_expired = 0;    ///< abandoned by the timeout
  std::uint64_t offers_sent = 0;         ///< FastOffers we sent
  std::uint64_t offers_received = 0;     ///< FastOffers we received
  std::uint64_t offers_accepted = 0;  ///< we answered YES / non-empty subset
  std::uint64_t offers_declined = 0;  ///< we answered NO / empty subset
  std::uint64_t duplicate_updates = 0;  ///< payloads received but already known
  std::uint64_t updates_applied = 0;    ///< novel updates applied locally
  std::uint64_t payloads_truncated = 0;  ///< discarded by auto-truncation
  std::uint64_t adverts_skipped_dead = 0;  ///< advert broadcasts not sent to dead neighbours
  std::uint64_t adverts_probed_dead = 0;  ///< revival probes sent to dead neighbours
  /// Fast pushes withheld by health decay: the raw demand gradient would
  /// have selected the peer, but its decayed (suspect) demand did not clear
  /// our own. Always 0 with health disabled.
  std::uint64_t pushes_suppressed_unhealthy = 0;
};

/// One replica of the fast-consistency protocol.
class ReplicaEngine {
 public:
  /// `seed` feeds the engine-local RNG (random partner selection); give
  /// every node a distinct stream.
  ReplicaEngine(NodeId self, std::vector<NodeId> neighbours,
                ProtocolConfig config, std::uint64_t seed);

  ReplicaEngine(const ReplicaEngine&) = delete;
  ReplicaEngine& operator=(const ReplicaEngine&) = delete;
  // Movable so runtimes can keep engines in one contiguous vector.
  ReplicaEngine(ReplicaEngine&&) = default;
  ReplicaEngine& operator=(ReplicaEngine&&) = default;

  /// Reinitialises to the state a freshly constructed
  /// `ReplicaEngine(self, neighbours, config, seed)` would have —
  /// observationally identical, RNG stream included — while retaining the
  /// write-log, kv, session, offer and peer-knowledge vector capacity, so
  /// a pooled runtime re-wires engines between trials without returning
  /// their storage to the allocator. Hooks are cleared (as on
  /// construction); the caller re-installs them.
  void reset(NodeId self, const std::vector<NodeId>& neighbours,
             const ProtocolConfig& config, std::uint64_t seed);

  // --- runtime entry points -------------------------------------------
  //
  // Every entry point exists in two shapes: the vector-returning form for
  // callers that want a fresh container, and an appending form taking the
  // output vector by reference so a runtime can reuse one scratch buffer
  // across millions of deliveries (the simulation hot path does; see
  // SimNetwork::deliver).

  /// A client performed a write here. Applies it locally and returns the
  /// resulting fast-push traffic (paper: a client write triggers the fast
  /// update part immediately).
  std::vector<Outbound> local_write(std::string key, std::string value,
                                    SimTime now);
  void local_write(std::string key, std::string value, SimTime now,
                   std::vector<Outbound>& out);

  /// The per-replica anti-entropy timer fired: start one session.
  std::vector<Outbound> on_session_timer(SimTime now);
  void on_session_timer(SimTime now, std::vector<Outbound>& out);

  /// Starts an anti-entropy session with a specific peer, bypassing the
  /// partner policy — the recovery path uses this to drain catch-up sessions
  /// in demand order. The caller is responsible for picking an alive peer;
  /// a dead one simply times out like any other expired session.
  void start_session_with(NodeId peer, SimTime now, std::vector<Outbound>& out);

  /// The advert timer fired: broadcast DemandAdvert to all neighbours.
  std::vector<Outbound> on_advert_timer(SimTime now);
  void on_advert_timer(SimTime now, std::vector<Outbound>& out);

  /// A message arrived from `from`.
  std::vector<Outbound> handle(NodeId from, const Message& msg, SimTime now);

  /// Move-in variant for the simulation hot path: payloads (update vectors,
  /// summary) are moved into the engine instead of copied. The const&
  /// overload copies once and delegates here.
  std::vector<Outbound> handle(NodeId from, Message&& msg, SimTime now);
  void handle(NodeId from, Message&& msg, SimTime now,
              std::vector<Outbound>& out);

  /// Housekeeping: abandon sessions/offers idle past the timeout.
  void expire_inflight(SimTime now);

  // --- demand plumbing -------------------------------------------------

  /// The runtime tells the engine its own current demand (the engine cannot
  /// know it: demand is generated by clients).
  void set_own_demand(double demand) noexcept { own_demand_ = demand; }
  double own_demand() const noexcept { return own_demand_; }

  /// Primes the neighbour table (static experiments prime once at t=0;
  /// dynamic ones rely on adverts instead).
  void prime_neighbour_demand(NodeId peer, double demand, SimTime now);

  /// Adds an island-overlay neighbour discovered after construction (§6).
  void add_overlay_neighbour(NodeId peer, SimTime now);

  // --- introspection ---------------------------------------------------

  /// This replica's node id.
  NodeId self() const noexcept { return self_; }
  /// The protocol configuration the engine was built with.
  const ProtocolConfig& config() const noexcept { return config_; }
  /// The replica's write log (materialised state + payloads).
  const WriteLog& log() const noexcept { return log_; }
  /// Version summary of every update this replica has applied.
  const SummaryVector& summary() const noexcept { return log_.summary(); }
  /// The neighbour demand table (paper §4).
  const DemandTable& demand_table() const noexcept { return table_; }
  /// Per-neighbour health state machine (src/health); disabled (everything
  /// `up`) unless ProtocolConfig::health.enabled.
  const PeerHealthTracker& peer_health() const noexcept { return health_; }
  /// Live runtimes report a failed connect attempt to `peer` here; repeated
  /// failures force the peer to at least `suspect` (no-op when health
  /// tracking is disabled — sim runtimes never call this).
  void note_peer_failure(NodeId peer, SimTime now) {
    if (health_.enabled()) health_.record_failure(peer, now);
  }
  /// Protocol statistics accumulated since construction.
  const EngineStats& stats() const noexcept { return stats_; }
  /// Wire-traffic counters accumulated since construction.
  const TrafficCounters& counters() const noexcept { return counters_; }

  /// Client read of the materialised key-value state.
  std::optional<std::string> read(const std::string& key) const {
    return log_.read(key);
  }

  /// Discards payloads covered by `stable` (a summary every peer is known
  /// to cover — e.g. gossiped stability frontiers). Sessions with partners
  /// that somehow regressed below it fall back to a full-log transfer.
  /// Returns the number of payloads discarded.
  std::size_t truncate_log_below(const SummaryVector& stable) {
    return log_.truncate_below(stable);
  }

  /// Installs observer callbacks (replacing any previous hooks).
  void set_hooks(EngineHooks hooks) { hooks_ = std::move(hooks); }

  /// The origin write counter: sequence numbers 1..write_seq() have been
  /// issued by this replica's local writes.
  SeqNo write_seq() const noexcept { return next_seq_; }

  /// Restores the origin write counter after a reset. A crash that wipes a
  /// replica's data must NOT reset this counter: origin sequence numbers
  /// are durable (think a fsync'd counter beside the log), because a reborn
  /// origin reissuing seq numbers would forge ids that collide with its own
  /// pre-crash writes still circulating at peers.
  void restore_write_seq(SeqNo next) noexcept { next_seq_ = next; }

  // --- durability hooks -------------------------------------------------

  /// Captures the durable state image (see EngineSnapshot for what is and
  /// is not included). Pure read; the engine is unchanged.
  EngineSnapshot snapshot() const;

  /// Restores a snapshot into a freshly constructed/reset engine for the
  /// same node id. Updates are re-applied idempotently (the WAL suffix may
  /// overlap the checkpoint), the summary is merged on top so coverage of
  /// truncated payloads survives, and the write counter resumes past both
  /// the snapshot's counter and any replayed self-origin write. Hooks do NOT
  /// fire for restored updates — they were delivered before the crash.
  void restore(EngineSnapshot snapshot, SimTime now);

  /// Sessions this engine initiated that have not completed or expired.
  std::size_t inflight_sessions() const noexcept { return sessions_.size(); }
  /// Fast offers this engine sent that are awaiting an ack.
  std::size_t inflight_offers() const noexcept { return offers_.size(); }

 private:
  struct SessionState {
    NodeId peer = kInvalidNode;
    SimTime started_at = 0.0;
    bool awaiting_reply = false;  // false: awaiting the peer's summary
  };
  struct OfferState {
    NodeId peer = kInvalidNode;
    SimTime started_at = 0.0;
    std::vector<UpdateId> offered;
  };

  /// Applies updates (moving payloads into the log); returns (id, timestamp)
  /// of the novel ones — all the fast-update path needs — firing hooks.
  std::vector<OfferedId> apply_all(std::vector<Update>&& updates,
                                   DeliveryPath path, SimTime now);

  /// Fast-update trigger (steps 13-18): offer the novel `gained` updates to
  /// eligible neighbours. `source` is excluded (it obviously has them).
  void after_gain(const std::vector<OfferedId>& gained, NodeId source,
                  DeliveryPath path, SimTime now, std::vector<Outbound>& out);

  /// Discards payloads every neighbour is known to hold (auto_truncate).
  void maybe_auto_truncate();

  bool peer_known_to_have_all(NodeId peer,
                              const std::vector<OfferedId>& gained) const;

  /// The knowledge summary for `peer`, created empty on first use.
  SummaryVector& knowledge_for(NodeId peer);
  const SummaryVector* find_knowledge(NodeId peer) const;

  /// Builds an Outbound and records traffic counters.
  void send(std::vector<Outbound>& out, NodeId to, Message msg);

  // Message handlers; all append their traffic to `out`. Payload-carrying
  // messages (push/reply/data) arrive by value so their update vectors can
  // be moved into the log.
  void on_session_request(NodeId from, const SessionRequest& m, SimTime now,
                          std::vector<Outbound>& out);
  void on_session_summary(NodeId from, const SessionSummary& m, SimTime now,
                          std::vector<Outbound>& out);
  void on_session_push(NodeId from, SessionPush m, SimTime now,
                       std::vector<Outbound>& out);
  void on_session_reply(NodeId from, SessionReply m, SimTime now,
                        std::vector<Outbound>& out);
  void on_fast_offer(NodeId from, const FastOffer& m, SimTime now,
                     std::vector<Outbound>& out);
  void on_fast_ack(NodeId from, const FastAck& m, SimTime now,
                   std::vector<Outbound>& out);
  void on_fast_data(NodeId from, FastData m, SimTime now,
                    std::vector<Outbound>& out);
  void on_demand_advert(NodeId from, const DemandAdvert& m, SimTime now,
                        std::vector<Outbound>& out);

  /// &health_ when tracking is enabled, nullptr otherwise — the disabled
  /// path hands policies/tables the exact health-blind overloads.
  const PeerHealthTracker* health_if_enabled() const noexcept {
    return health_.enabled() ? &health_ : nullptr;
  }

  NodeId self_;
  ProtocolConfig config_;
  Rng rng_;
  WriteLog log_;
  DemandTable table_;
  PeerHealthTracker health_;
  std::unique_ptr<PartnerPolicy> policy_;
  EngineHooks hooks_;
  EngineStats stats_;
  TrafficCounters counters_;

  double own_demand_ = 0.0;
  SeqNo next_seq_ = 0;            // local client writes
  std::uint64_t next_session_ = 0;
  std::uint64_t next_offer_ = 0;

  // In-flight state, a handful of entries each: flat vectors instead of
  // node-based maps so the per-message find/insert/erase churn stays out of
  // the allocator. Session/offer ids are strictly increasing, so appending
  // keeps the vectors sorted for binary-search lookups.
  std::vector<std::pair<std::uint64_t, SessionState>> sessions_;  // by us
  std::vector<std::pair<std::uint64_t, OfferState>> offers_;      // by us
  // What each neighbour is known to have (via summaries, offers, data);
  // sorted by peer id, at most degree-many entries.
  std::vector<std::pair<NodeId, SummaryVector>> peer_knowledge_;
};

}  // namespace fastcons

#endif  // FASTCONS_CORE_ENGINE_HPP
