// Anti-entropy partner-selection policies. The policy object owns the cycle
// state (which neighbours have been visited since the cycle began), so the
// engine stays oblivious to selection details.
#ifndef FASTCONS_CORE_POLICY_HPP
#define FASTCONS_CORE_POLICY_HPP

#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "demand/demand_table.hpp"

namespace fastcons {

/// Strategy interface: pick the partner for the next anti-entropy session.
class PartnerPolicy {
 public:
  virtual ~PartnerPolicy() = default;

  /// Returns the chosen neighbour or kInvalidNode when none is eligible
  /// (e.g. all neighbours dead). `health`, when non-null, excludes peers
  /// the tracker derives `down` and decays suspect peers' demand in the
  /// selection order; nullptr is health-blind (the historical behaviour).
  virtual NodeId choose(const DemandTable& table, SimTime now, Rng& rng,
                        const PeerHealthTracker* health) = 0;

  /// Health-blind convenience overload.
  NodeId choose(const DemandTable& table, SimTime now, Rng& rng) {
    return choose(table, now, rng, nullptr);
  }

  /// Forgets cycle state (used when the neighbour set changes).
  virtual void reset() {}
};

/// Golding's baseline: uniformly random alive neighbour, with replacement.
class RandomPolicy final : public PartnerPolicy {
 public:
  using PartnerPolicy::choose;
  NodeId choose(const DemandTable& table, SimTime now, Rng& rng,
                const PeerHealthTracker* health) override;
};

/// Demand-ordered cycle without replacement (paper §2 static / §4 dynamic).
///
/// resort_each_pick == false: the order is frozen from the demand table at
/// the moment a cycle starts — §3's static algorithm, which mis-routes when
/// demand shifts mid-cycle.
/// resort_each_pick == true: the highest-demand *currently alive, not yet
/// visited* neighbour is recomputed at every pick — §4's dynamic algorithm
/// (picks C' over A' in Fig. 4).
class DemandCyclePolicy final : public PartnerPolicy {
 public:
  explicit DemandCyclePolicy(bool resort_each_pick)
      : resort_each_pick_(resort_each_pick) {}

  using PartnerPolicy::choose;
  NodeId choose(const DemandTable& table, SimTime now, Rng& rng,
                const PeerHealthTracker* health) override;
  void reset() override;

 private:
  bool resort_each_pick_;
  std::set<NodeId> visited_;
  std::vector<NodeId> frozen_order_;  // only used when !resort_each_pick_
};

/// Factory keyed by the configuration enum.
std::unique_ptr<PartnerPolicy> make_policy(PartnerSelection selection);

}  // namespace fastcons

#endif  // FASTCONS_CORE_POLICY_HPP
