// Protocol messages. One variant covers the whole protocol so runtimes and
// the wire codec can treat traffic uniformly.
//
// Anti-entropy (paper §2.1 steps 1-12) uses four messages:
//   SessionRequest -> SessionSummary -> SessionPush -> SessionReply
// Fast update (steps 13-18) uses three, and deliberately carries no summary
// vectors ("Note that in fast update sessions the summary vectors are not
// exchanged"):
//   FastOffer (ids + timestamps) -> FastAck (YES/NO or wanted subset)
//   -> FastData (payloads)
// DemandAdvert is the periodic neighbour-table refresh of §4.
#ifndef FASTCONS_CORE_MESSAGES_HPP
#define FASTCONS_CORE_MESSAGES_HPP

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "replication/summary_vector.hpp"
#include "replication/update.hpp"
#include "stats/counters.hpp"

namespace fastcons {

/// Step 2: "a message to request for initiate a session".
struct SessionRequest {
  std::uint64_t session_id = 0;
};

/// Step 4: the responder's summary vector.
struct SessionSummary {
  std::uint64_t session_id = 0;
  SummaryVector summary;
};

/// Steps 6+8 fused: the initiator's summary plus the updates the responder
/// lacks (computable locally once the responder's summary arrived).
struct SessionPush {
  std::uint64_t session_id = 0;
  SummaryVector summary;
  std::vector<Update> updates;
};

/// Step 11: updates the initiator lacks; closes the session.
struct SessionReply {
  std::uint64_t session_id = 0;
  std::vector<Update> updates;
};

/// One entry of a fast-update offer: "information (id and timestamp) of new
/// arrived messages" (step 13).
struct OfferedId {
  UpdateId id;
  SimTime timestamp = 0.0;

  friend bool operator==(const OfferedId&, const OfferedId&) = default;
};

struct FastOffer {
  std::uint64_t offer_id = 0;
  std::vector<OfferedId> offered;
};

/// Step 15: "If D does not have the messages, answer with YES." In strict
/// paper mode `wanted` stays empty and `yes` alone drives the reply; in
/// subset mode `wanted` lists exactly the missing ids.
struct FastAck {
  std::uint64_t offer_id = 0;
  bool yes = false;
  std::vector<UpdateId> wanted;
};

/// Step 17: the payloads.
struct FastData {
  std::uint64_t offer_id = 0;
  std::vector<Update> updates;
};

/// §4: periodic demand/liveness advert, "in a way similar to IP routing
/// algorithms".
struct DemandAdvert {
  double demand = 0.0;
};

using Message = std::variant<SessionRequest, SessionSummary, SessionPush,
                             SessionReply, FastOffer, FastAck, FastData,
                             DemandAdvert>;

/// Human-readable message name (logging / traces).
std::string_view message_name(const Message& msg) noexcept;

/// Traffic class for overhead accounting (experiment E8).
TrafficClass traffic_class_of(const Message& msg) noexcept;

/// Size in bytes this message occupies on the wire. Mirrors the net/wire
/// codec exactly; a test asserts the two never drift apart. Core-side code
/// (engines, simulations) uses this so byte accounting works without
/// linking the real codec.
std::size_t estimated_wire_size(const Message& msg) noexcept;

/// A message queued for transmission by an engine.
struct Outbound {
  NodeId to = kInvalidNode;
  Message msg;
};

}  // namespace fastcons

#endif  // FASTCONS_CORE_MESSAGES_HPP
