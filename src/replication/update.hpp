// Updates: the unit of replicated state. "An update is a message that
// carries a 'write' operation to replica in other neighbouring nodes"
// (paper §2). Each node's writes are numbered 1, 2, 3, ...; (origin, seq)
// identifies an update globally.
#ifndef FASTCONS_REPLICATION_UPDATE_HPP
#define FASTCONS_REPLICATION_UPDATE_HPP

#include <compare>
#include <cstddef>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace fastcons {

/// Globally unique update identity.
struct UpdateId {
  NodeId origin = kInvalidNode;
  SeqNo seq = 0;

  friend auto operator<=>(const UpdateId&, const UpdateId&) = default;
};

/// A replicated write operation. `created_at` is the origin's clock when the
/// client issued the write — the "timestamp" the fast-update offer carries.
struct Update {
  UpdateId id;
  SimTime created_at = 0.0;
  std::string key;
  std::string value;

  friend bool operator==(const Update&, const Update&) = default;
};

struct UpdateIdHash {
  std::size_t operator()(const UpdateId& id) const noexcept {
    // splitmix-style mix of the two fields.
    std::uint64_t x =
        (static_cast<std::uint64_t>(id.origin) << 32) ^ (id.seq * 0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace fastcons

#endif  // FASTCONS_REPLICATION_UPDATE_HPP
