#include "replication/codec.hpp"

#include <bit>
#include <map>
#include <set>

namespace fastcons::codec {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::string() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

void put_summary(std::vector<std::uint8_t>& out, const SummaryVector& sv) {
  put_u32(out, static_cast<std::uint32_t>(sv.watermarks().size()));
  for (const auto& [origin, mark] : sv.watermarks()) {
    put_u32(out, origin);
    put_u64(out, mark);
  }
  // Extras are (origin, seq) sorted; encode each per-origin run as one
  // group — byte-identical to the former map<origin, set<seq>> layout.
  const auto& extras = sv.extras();
  put_u32(out, static_cast<std::uint32_t>(sv.distinct_extra_origins()));
  for (std::size_t i = 0; i < extras.size();) {
    const NodeId origin = extras[i].origin;
    std::size_t end = i;
    while (end < extras.size() && extras[end].origin == origin) ++end;
    put_u32(out, origin);
    put_u32(out, static_cast<std::uint32_t>(end - i));
    for (; i < end; ++i) put_u64(out, extras[i].seq);
  }
}

SummaryVector read_summary(Reader& r) {
  std::map<NodeId, SeqNo> watermarks;
  const std::uint32_t n_marks = r.u32();
  for (std::uint32_t i = 0; i < n_marks; ++i) {
    const NodeId origin = r.u32();
    watermarks[origin] = r.u64();
  }
  std::map<NodeId, std::set<SeqNo>> extras;
  const std::uint32_t n_extra_origins = r.u32();
  for (std::uint32_t i = 0; i < n_extra_origins; ++i) {
    const NodeId origin = r.u32();
    const std::uint32_t count = r.u32();
    auto& set = extras[origin];
    for (std::uint32_t j = 0; j < count; ++j) set.insert(r.u64());
  }
  return SummaryVector::from_parts(std::move(watermarks), std::move(extras));
}

void put_update(std::vector<std::uint8_t>& out, const Update& u) {
  put_u32(out, u.id.origin);
  put_u64(out, u.id.seq);
  put_f64(out, u.created_at);
  put_string(out, u.key);
  put_string(out, u.value);
}

Update read_update(Reader& r) {
  Update u;
  u.id.origin = r.u32();
  u.id.seq = r.u64();
  u.created_at = r.f64();
  u.key = r.string();
  u.value = r.string();
  return u;
}

void put_updates(std::vector<std::uint8_t>& out, const std::vector<Update>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const Update& u : v) put_update(out, u);
}

std::vector<Update> read_updates(Reader& r) {
  const std::uint32_t count = r.count(kMinUpdateBytes);
  std::vector<Update> v;
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) v.push_back(read_update(r));
  return v;
}

}  // namespace fastcons::codec
