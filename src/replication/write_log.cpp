#include "replication/write_log.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace fastcons {
namespace {

/// First update with id >= `id` in the sorted-by-id log.
std::vector<Update>::const_iterator updates_lower_bound(
    const std::vector<Update>& updates, UpdateId id) {
  return std::lower_bound(
      updates.begin(), updates.end(), id,
      [](const Update& u, UpdateId key) { return u.id < key; });
}

}  // namespace

bool WriteLog::apply(const Update& update) {
  return apply_moved(Update(update)) != nullptr;
}

const Update* WriteLog::apply_moved(Update&& update) {
  FASTCONS_EXPECTS(update.id.seq > 0);
  if (summary_.contains(update.id)) return nullptr;
  summary_.add(update.id);
  const auto pos = updates_lower_bound(updates_, update.id);
  const auto it = updates_.insert(
      updates_.begin() + (pos - updates_.begin()), std::move(update));
  const Update& stored = *it;
  // Last-writer-wins on (created_at, origin, seq).
  const auto kv_pos = std::lower_bound(
      kv_.begin(), kv_.end(), stored.key,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (kv_pos == kv_.end() || kv_pos->first != stored.key) {
    kv_.insert(kv_pos,
               {stored.key, KeyState{stored.created_at, stored.id, stored.value}});
  } else {
    KeyState& state = kv_pos->second;
    const auto candidate =
        std::tuple(stored.created_at, stored.id.origin, stored.id.seq);
    const auto incumbent =
        std::tuple(state.written_at, state.by.origin, state.by.seq);
    if (candidate > incumbent) {
      state.written_at = stored.created_at;
      state.by = stored.id;
      state.value = stored.value;
    }
  }
  return &stored;
}

bool WriteLog::contains(UpdateId id) const { return summary_.contains(id); }

std::optional<Update> WriteLog::get(UpdateId id) const {
  const Update* found = find(id);
  if (found == nullptr) return std::nullopt;
  return *found;
}

const Update* WriteLog::find(UpdateId id) const {
  const auto it = updates_lower_bound(updates_, id);
  if (it == updates_.end() || it->id != id) return nullptr;
  return &*it;
}

std::vector<Update> WriteLog::updates_for(
    const SummaryVector& their_summary,
    std::vector<UpdateId>* missing_truncated) const {
  const std::vector<UpdateId> ids = summary_.missing_from(their_summary);
  std::vector<Update> result;
  result.reserve(ids.size());
  for (const UpdateId id : ids) {
    if (const Update* found = find(id)) {
      result.push_back(*found);
    } else if (missing_truncated != nullptr) {
      missing_truncated->push_back(id);
    }
  }
  return result;
}

std::optional<std::string> WriteLog::read(const std::string& key) const {
  const auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == kv_.end() || it->first != key) return std::nullopt;
  return it->second.value;
}

std::vector<std::string> WriteLog::keys() const {
  std::vector<std::string> result;
  result.reserve(kv_.size());
  for (const auto& [key, state] : kv_) {
    (void)state;
    result.push_back(key);
  }
  return result;
}

std::size_t WriteLog::truncate_below(const SummaryVector& stable) {
  const std::size_t before = updates_.size();
  std::erase_if(updates_,
                [&](const Update& u) { return stable.contains(u.id); });
  return before - updates_.size();
}

std::vector<Update> WriteLog::all_retained() const {
  return updates_;  // already (origin, seq) sorted
}

void WriteLog::restore(std::vector<Update> updates, const SummaryVector& cover) {
  for (Update& update : updates) {
    apply_moved(std::move(update));
  }
  summary_.merge(cover);
}

std::uint64_t WriteLog::kv_digest() const noexcept {
  // FNV-1a over (key, 0, value, 0) in key order. kv_ is sorted by key, so
  // the digest depends only on the materialised state, not insertion order.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h *= 1099511628211ull;  // NUL separator step
  };
  for (const auto& [key, state] : kv_) {
    mix(key);
    mix(state.value);
  }
  return h;
}

}  // namespace fastcons
