#include "replication/write_log.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace fastcons {

bool WriteLog::apply(const Update& update) {
  FASTCONS_EXPECTS(update.id.seq > 0);
  if (summary_.contains(update.id)) return false;
  summary_.add(update.id);
  updates_.emplace(update.id, update);
  // Last-writer-wins on (created_at, origin, seq).
  auto& state = kv_[update.key];
  const auto candidate =
      std::tuple(update.created_at, update.id.origin, update.id.seq);
  const auto incumbent = std::tuple(state.written_at, state.by.origin, state.by.seq);
  if (state.written_at < 0.0 || candidate > incumbent) {
    state.written_at = update.created_at;
    state.by = update.id;
    state.value = update.value;
  }
  return true;
}

bool WriteLog::contains(UpdateId id) const { return summary_.contains(id); }

std::optional<Update> WriteLog::get(UpdateId id) const {
  const auto it = updates_.find(id);
  if (it == updates_.end()) return std::nullopt;
  return it->second;
}

std::vector<Update> WriteLog::updates_for(
    const SummaryVector& their_summary,
    std::vector<UpdateId>* missing_truncated) const {
  const std::vector<UpdateId> ids = summary_.missing_from(their_summary);
  std::vector<Update> result;
  result.reserve(ids.size());
  for (const UpdateId id : ids) {
    const auto it = updates_.find(id);
    if (it != updates_.end()) {
      result.push_back(it->second);
    } else if (missing_truncated != nullptr) {
      missing_truncated->push_back(id);
    }
  }
  return result;
}

std::optional<std::string> WriteLog::read(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second.value;
}

std::vector<std::string> WriteLog::keys() const {
  std::vector<std::string> result;
  result.reserve(kv_.size());
  for (const auto& [key, state] : kv_) {
    (void)state;
    result.push_back(key);
  }
  return result;
}

std::size_t WriteLog::truncate_below(const SummaryVector& stable) {
  std::size_t discarded = 0;
  for (auto it = updates_.begin(); it != updates_.end();) {
    if (stable.contains(it->first)) {
      it = updates_.erase(it);
      ++discarded;
    } else {
      ++it;
    }
  }
  return discarded;
}

std::vector<Update> WriteLog::all_retained() const {
  std::vector<Update> result;
  result.reserve(updates_.size());
  for (const auto& [id, update] : updates_) {
    (void)id;
    result.push_back(update);
  }
  std::sort(result.begin(), result.end(),
            [](const Update& a, const Update& b) { return a.id < b.id; });
  return result;
}

}  // namespace fastcons
