// Summary vectors for anti-entropy (paper §1: "In an update session two
// servers mutually exchange summary vectors").
//
// Golding's TSAE summary is a per-origin high watermark, which assumes
// updates from an origin arrive contiguously. Fast pushes break that
// assumption: a push can deliver (origin, 7) before (origin, 6) has arrived
// through a session. We therefore extend the summary to {watermark +
// explicit out-of-order extras}; contiguous extras are absorbed into the
// watermark on every mutation, so in the no-push case this degenerates to
// exactly Golding's vector.
//
// The structure is a join-semilattice: merge() is the join, covers() the
// partial order. Tests verify commutativity/associativity/idempotence.
#ifndef FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP
#define FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "replication/update.hpp"

namespace fastcons {

/// Compact description of "which updates a replica has seen".
class SummaryVector {
 public:
  SummaryVector() = default;

  /// True when (origin, seq) is covered.
  bool contains(UpdateId id) const;

  /// Records an update as seen. Idempotent.
  void add(UpdateId id);

  /// Watermark for one origin (largest w such that all of 1..w are seen).
  SeqNo watermark(NodeId origin) const;

  /// Joins with `other`: afterwards contains(x) holds iff it held in either
  /// input.
  void merge(const SummaryVector& other);

  /// True when every update covered by `other` is covered by *this.
  bool covers(const SummaryVector& other) const;

  /// Ids covered by *this but not by `other`, in (origin, seq) order.
  /// This is the paper's step 7/10: "determines if it has messages that
  /// [the partner] has not yet received".
  std::vector<UpdateId> missing_from(const SummaryVector& other) const;

  /// Total number of updates covered.
  std::uint64_t total() const;

  /// Origins with at least one update covered.
  std::vector<NodeId> origins() const;

  /// Out-of-order ids beyond the watermarks (exposed for wire encoding).
  const std::map<NodeId, std::set<SeqNo>>& extras() const { return extras_; }
  const std::map<NodeId, SeqNo>& watermarks() const { return watermarks_; }

  /// Rebuilds from wire parts; normalises (absorbs contiguous extras).
  static SummaryVector from_parts(std::map<NodeId, SeqNo> watermarks,
                                  std::map<NodeId, std::set<SeqNo>> extras);

  /// Greatest lower bound: the result covers an id iff both inputs cover
  /// it. Together with merge() (the join) this makes SummaryVector a full
  /// lattice; the meet over a node's neighbour summaries is its log
  /// truncation frontier (every neighbour provably holds everything below
  /// it).
  static SummaryVector meet(const SummaryVector& a, const SummaryVector& b);

  friend bool operator==(const SummaryVector&, const SummaryVector&) = default;

 private:
  void normalise(NodeId origin);

  std::map<NodeId, SeqNo> watermarks_;          // origin -> contiguous prefix
  std::map<NodeId, std::set<SeqNo>> extras_;    // origin -> ids > watermark
};

}  // namespace fastcons

#endif  // FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP
