// Summary vectors for anti-entropy (paper §1: "In an update session two
// servers mutually exchange summary vectors").
//
// Golding's TSAE summary is a per-origin high watermark, which assumes
// updates from an origin arrive contiguously. Fast pushes break that
// assumption: a push can deliver (origin, 7) before (origin, 6) has arrived
// through a session. We therefore extend the summary to {watermark +
// explicit out-of-order extras}; contiguous extras are absorbed into the
// watermark on every mutation, so in the no-push case this degenerates to
// exactly Golding's vector.
//
// The structure is a join-semilattice: merge() is the join, covers() the
// partial order. Tests verify commutativity/associativity/idempotence.
//
// Representation: two sorted flat vectors — (origin, watermark) pairs and
// out-of-order UpdateIds — instead of std::map/std::set. Summaries ride in
// every SessionSummary/SessionPush, so they are copied, merged and diffed on
// the simulation hot path; flat storage makes a copy two memcpys and turns
// merge/covers/missing_from into linear scans over contiguous memory.
// Canonical-form invariants (maintained by every mutator):
//   - watermarks_ sorted by origin, all marks > 0;
//   - extras_ sorted by (origin, seq), unique, each seq > watermark(origin)+1
//     (a seq == watermark+1 would have been absorbed into the watermark).
// Equal coverage therefore implies structural equality (operator==).
#ifndef FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP
#define FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "replication/update.hpp"

namespace fastcons {

/// Compact description of "which updates a replica has seen".
class SummaryVector {
 public:
  /// (origin, watermark) pairs sorted by origin; watermarks are > 0.
  using Watermarks = std::vector<std::pair<NodeId, SeqNo>>;
  /// Out-of-order ids sorted by (origin, seq), all above the watermarks.
  using Extras = std::vector<UpdateId>;

  SummaryVector() = default;

  /// True when (origin, seq) is covered.
  bool contains(UpdateId id) const;

  /// Records an update as seen. Idempotent.
  void add(UpdateId id);

  /// Forgets everything, retaining the buffers (pooled engines reset
  /// their summaries once per trial).
  void clear() noexcept {
    watermarks_.clear();
    extras_.clear();
  }

  /// Watermark for one origin (largest w such that all of 1..w are seen).
  SeqNo watermark(NodeId origin) const;

  /// Joins with `other`: afterwards contains(x) holds iff it held in either
  /// input.
  void merge(const SummaryVector& other);

  /// True when every update covered by `other` is covered by *this.
  bool covers(const SummaryVector& other) const;

  /// Ids covered by *this but not by `other`. Order: watermark-range ids
  /// (ascending origin, ascending seq) first, then extras (same order) —
  /// the order payloads have always been shipped in.
  std::vector<UpdateId> missing_from(const SummaryVector& other) const;

  /// Total number of updates covered.
  std::uint64_t total() const;

  /// Origins with at least one update covered (watermarked origins in
  /// ascending order, then extras-only origins in ascending order).
  std::vector<NodeId> origins() const;

  /// Out-of-order ids beyond the watermarks (exposed for wire encoding;
  /// grouped runs share an origin because the vector is (origin, seq)
  /// sorted).
  const Extras& extras() const { return extras_; }
  const Watermarks& watermarks() const { return watermarks_; }

  /// Number of distinct origins in extras() — the per-origin group count
  /// the wire encoding writes, shared by the codec and its size estimator
  /// so the two cannot drift.
  std::size_t distinct_extra_origins() const;

  /// Rebuilds from wire parts; normalises (absorbs contiguous extras).
  static SummaryVector from_parts(std::map<NodeId, SeqNo> watermarks,
                                  std::map<NodeId, std::set<SeqNo>> extras);

  /// Greatest lower bound: the result covers an id iff both inputs cover
  /// it. Together with merge() (the join) this makes SummaryVector a full
  /// lattice; the meet over a node's neighbour summaries is its log
  /// truncation frontier (every neighbour provably holds everything below
  /// it).
  static SummaryVector meet(const SummaryVector& a, const SummaryVector& b);

  friend bool operator==(const SummaryVector&, const SummaryVector&) = default;

 private:
  /// Rebuilds *this from sorted-by-origin watermarks (zero marks allowed)
  /// and sorted-unique extras: drops covered extras, absorbs contiguous
  /// runs, drops zero watermarks.
  void canonicalise(Watermarks&& watermarks, Extras&& extras);

  Watermarks::const_iterator find_watermark(NodeId origin) const;

  Watermarks watermarks_;
  Extras extras_;
};

}  // namespace fastcons

#endif  // FASTCONS_REPLICATION_SUMMARY_VECTOR_HPP
