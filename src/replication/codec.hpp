// Byte-level codec primitives shared by the TCP wire format (net/wire.cpp)
// and the durability layer (durability/wal.cpp, durability/checkpoint.cpp).
//
// All integers are little-endian; doubles are bit_cast through u64; strings
// are u32-length-prefixed. The update and summary-vector encodings here ARE
// the wire ABI for SessionPush/SessionReply payloads — append-only, never
// reorder fields — and the WAL/checkpoint formats reuse them verbatim so a
// log record is decodable with the same plausibility checks as a frame.
#ifndef FASTCONS_REPLICATION_CODEC_HPP
#define FASTCONS_REPLICATION_CODEC_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "replication/summary_vector.hpp"
#include "replication/update.hpp"

namespace fastcons::codec {

// --- primitive writers -----------------------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);
void put_string(std::vector<std::uint8_t>& out, const std::string& s);

// --- primitive reader ------------------------------------------------------

/// Bounds-checked cursor over an untrusted byte span. Every accessor throws
/// CodecError instead of reading past the end, so decoders need no manual
/// size arithmetic.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string string();

  bool exhausted() const noexcept { return pos_ == data_.size(); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  // Rejects element counts that could not possibly fit in the remaining
  // bytes, so untrusted counts never reach an allocator.
  std::uint32_t count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (n > remaining() / min_element_bytes)
      throw CodecError("implausible element count");
    return n;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CodecError("truncated frame body");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- composite writers/readers ---------------------------------------------

void put_summary(std::vector<std::uint8_t>& out, const SummaryVector& sv);
SummaryVector read_summary(Reader& r);

void put_update(std::vector<std::uint8_t>& out, const Update& u);
Update read_update(Reader& r);

void put_updates(std::vector<std::uint8_t>& out, const std::vector<Update>& v);
std::vector<Update> read_updates(Reader& r);

/// Minimum wire size of an Update: origin + seq + created_at + two empty
/// length-prefixed strings. Used as the plausibility divisor for counts.
inline constexpr std::size_t kMinUpdateBytes = 4 + 8 + 8 + 4 + 4;

}  // namespace fastcons::codec

#endif  // FASTCONS_REPLICATION_CODEC_HPP
