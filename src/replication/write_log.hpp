// The replica write log: stores update payloads and answers "which of my
// updates does this summary not cover" (anti-entropy step 7/10) and "give me
// these ids" (fast-update step 17).
//
// Bayou-style log truncation (discussed as related work in paper §7) is
// supported as an extension: updates below a stability watermark can be
// discarded once every peer is known to have them; a session with a partner
// whose summary predates the truncation point falls back to a full-state
// transfer of the key-value store.
#ifndef FASTCONS_REPLICATION_WRITE_LOG_HPP
#define FASTCONS_REPLICATION_WRITE_LOG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "replication/summary_vector.hpp"
#include "replication/update.hpp"

namespace fastcons {

/// Append-only (modulo truncation) store of updates plus the materialised
/// key-value state they produce.
class WriteLog {
 public:
  /// Inserts an update. Returns true when the update was new. Applying is
  /// idempotent; re-inserting a known id is a no-op.
  bool apply(const Update& update);

  /// Move-in variant for the dispatch hot path: the payload strings are
  /// moved, not copied. Returns the stored update, or nullptr when the id
  /// was already known (in which case `update` is left untouched). The
  /// pointer is invalidated by the next apply/truncate.
  const Update* apply_moved(Update&& update);

  bool contains(UpdateId id) const;

  /// Payload lookup; nullopt when unknown or truncated away.
  std::optional<Update> get(UpdateId id) const;

  /// Borrowed payload lookup; nullptr when unknown or truncated away. The
  /// pointer is invalidated by the next apply/truncate.
  const Update* find(UpdateId id) const;

  /// The summary of everything ever applied (truncation does not shrink it).
  const SummaryVector& summary() const noexcept { return summary_; }

  /// Updates covered by us but not by `their_summary`, ordered by
  /// (origin, seq). Ids that were truncated away are reported through
  /// `missing_truncated` (callers then fall back to full-state transfer).
  std::vector<Update> updates_for(const SummaryVector& their_summary,
                                  std::vector<UpdateId>* missing_truncated =
                                      nullptr) const;

  /// Materialised value of `key`: the value written by the update with the
  /// highest (created_at, origin, seq) among writes to that key
  /// (last-writer-wins with a total tie-break).
  std::optional<std::string> read(const std::string& key) const;

  /// All keys with a value.
  std::vector<std::string> keys() const;

  /// Number of retained (non-truncated) updates.
  std::size_t size() const noexcept { return updates_.size(); }

  /// Total updates ever applied (== summary().total()).
  std::uint64_t applied_total() const noexcept { return summary_.total(); }

  /// Discards payloads covered by `stable`: every peer is known to hold
  /// them, so no session will ever need them again (unless a partner's
  /// summary regresses — see updates_for's fallback). Returns the number of
  /// payloads discarded.
  std::size_t truncate_below(const SummaryVector& stable);

  /// Updates currently retained, in (origin, seq) order.
  std::vector<Update> all_retained() const;

  /// Bulk-load for recovery: applies `updates` idempotently (a WAL suffix
  /// may overlap the checkpoint image) and then merges `cover` into the
  /// summary, so updates that were truncated before the checkpoint stay
  /// covered even though their payloads are gone.
  void restore(std::vector<Update> updates, const SummaryVector& cover);

  /// Order-independent FNV-1a digest of the materialised key-value state
  /// (keys iterated in sorted order). Two replicas that have applied the
  /// same update set — by any route, including crash recovery — produce the
  /// same digest.
  std::uint64_t kv_digest() const noexcept;

  /// Forgets every update, value and summary entry, retaining the vector
  /// capacity — the pooled-engine reset path (ReplicaEngine::reset).
  void clear() noexcept {
    updates_.clear();
    kv_.clear();
    summary_.clear();
  }

 private:
  struct KeyState {
    // Ordering key for last-writer-wins.
    SimTime written_at = -1.0;
    UpdateId by;
    std::string value;
  };

  // Flat sorted storage: a replica log is mutated once per applied update
  // but consulted on every session, and hash/tree nodes cost an allocation
  // per entry (plus a bucket array per fresh engine — one per trial in the
  // simulations). Sorted-by-id updates also make all_retained() a plain
  // copy.
  std::vector<Update> updates_;                        // sorted by id
  SummaryVector summary_;
  std::vector<std::pair<std::string, KeyState>> kv_;   // sorted by key
};

}  // namespace fastcons

#endif  // FASTCONS_REPLICATION_WRITE_LOG_HPP
