#include "replication/summary_vector.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {
namespace {

/// First watermark entry with entry.origin >= origin.
SummaryVector::Watermarks::const_iterator lower_bound_origin(
    const SummaryVector::Watermarks& watermarks, NodeId origin) {
  return std::lower_bound(
      watermarks.begin(), watermarks.end(), origin,
      [](const std::pair<NodeId, SeqNo>& e, NodeId o) { return e.first < o; });
}

}  // namespace

SummaryVector::Watermarks::const_iterator SummaryVector::find_watermark(
    NodeId origin) const {
  const auto it = lower_bound_origin(watermarks_, origin);
  if (it != watermarks_.end() && it->first == origin) return it;
  return watermarks_.end();
}

bool SummaryVector::contains(UpdateId id) const {
  FASTCONS_EXPECTS(id.seq > 0);
  if (const auto it = find_watermark(id.origin);
      it != watermarks_.end() && id.seq <= it->second) {
    return true;
  }
  return std::binary_search(extras_.begin(), extras_.end(), id);
}

void SummaryVector::add(UpdateId id) {
  FASTCONS_EXPECTS(id.seq > 0);
  if (contains(id)) return;
  const auto wit = lower_bound_origin(watermarks_, id.origin);
  const bool has_mark = wit != watermarks_.end() && wit->first == id.origin;
  const SeqNo mark = has_mark ? wit->second : 0;
  if (id.seq != mark + 1) {
    extras_.insert(std::lower_bound(extras_.begin(), extras_.end(), id), id);
    return;
  }
  // The id extends the contiguous prefix; absorb any extras run that is now
  // contiguous too. Extras never contain mark+1 (canonical invariant), so
  // the run to absorb starts at id.seq + 1.
  SeqNo new_mark = id.seq;
  const auto run_begin = std::lower_bound(extras_.begin(), extras_.end(),
                                          UpdateId{id.origin, new_mark + 1});
  auto run_end = run_begin;
  while (run_end != extras_.end() && run_end->origin == id.origin &&
         run_end->seq == new_mark + 1) {
    ++new_mark;
    ++run_end;
  }
  extras_.erase(run_begin, run_end);
  if (has_mark) {
    watermarks_[static_cast<std::size_t>(wit - watermarks_.begin())].second =
        new_mark;
  } else {
    watermarks_.insert(wit, {id.origin, new_mark});
  }
}

void SummaryVector::canonicalise(Watermarks&& watermarks, Extras&& extras) {
  Watermarks out_marks;
  out_marks.reserve(watermarks.size());
  Extras out_extras;
  out_extras.reserve(extras.size());
  std::size_t wi = 0;
  std::size_t ei = 0;
  while (wi < watermarks.size() || ei < extras.size()) {
    NodeId origin;
    if (wi < watermarks.size() && ei < extras.size()) {
      origin = std::min(watermarks[wi].first, extras[ei].origin);
    } else if (wi < watermarks.size()) {
      origin = watermarks[wi].first;
    } else {
      origin = extras[ei].origin;
    }
    SeqNo mark = 0;
    if (wi < watermarks.size() && watermarks[wi].first == origin) {
      mark = watermarks[wi].second;
      ++wi;
    }
    // Drop extras the watermark already covers, then absorb the contiguous
    // run. Both loops walk one sorted-unique run, so once absorption stops
    // every remaining extra of this origin is above mark + 1.
    while (ei < extras.size() && extras[ei].origin == origin &&
           extras[ei].seq <= mark) {
      ++ei;
    }
    while (ei < extras.size() && extras[ei].origin == origin &&
           extras[ei].seq == mark + 1) {
      ++mark;
      ++ei;
    }
    if (mark > 0) out_marks.emplace_back(origin, mark);
    while (ei < extras.size() && extras[ei].origin == origin) {
      out_extras.push_back(extras[ei]);
      ++ei;
    }
  }
  watermarks_ = std::move(out_marks);
  extras_ = std::move(out_extras);
}

SeqNo SummaryVector::watermark(NodeId origin) const {
  const auto it = find_watermark(origin);
  return it == watermarks_.end() ? 0 : it->second;
}

void SummaryVector::merge(const SummaryVector& other) {
  if (other.watermarks_.empty() && other.extras_.empty()) return;
  // Fast path 1: neither side has extras (the overwhelmingly common shape —
  // extras only exist between a fast push and the session that fills the
  // gap). The join is then a pointwise max of watermarks; when our origin
  // set already spans the other's, it is allocation-free and in place.
  if (extras_.empty() && other.extras_.empty()) {
    std::size_t wi = 0;
    std::size_t novel = 0;
    for (const auto& [origin, mark] : other.watermarks_) {
      while (wi < watermarks_.size() && watermarks_[wi].first < origin) ++wi;
      if (wi < watermarks_.size() && watermarks_[wi].first == origin) {
        if (watermarks_[wi].second < mark) watermarks_[wi].second = mark;
      } else {
        ++novel;
      }
    }
    if (novel == 0) return;
  } else if (covers(other)) {
    // Fast path 2: nothing to gain (frequent for peer-knowledge merges,
    // where sessions keep re-telling us what we already recorded); covers()
    // is a linear scan with no allocation.
    return;
  }
  // Merge-join the watermark vectors (pointwise max) ...
  Watermarks marks;
  marks.reserve(watermarks_.size() + other.watermarks_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < watermarks_.size() && j < other.watermarks_.size()) {
    const auto& a = watermarks_[i];
    const auto& b = other.watermarks_[j];
    if (a.first < b.first) {
      marks.push_back(a);
      ++i;
    } else if (b.first < a.first) {
      marks.push_back(b);
      ++j;
    } else {
      marks.emplace_back(a.first, std::max(a.second, b.second));
      ++i;
      ++j;
    }
  }
  marks.insert(marks.end(), watermarks_.begin() + static_cast<std::ptrdiff_t>(i),
               watermarks_.end());
  marks.insert(marks.end(),
               other.watermarks_.begin() + static_cast<std::ptrdiff_t>(j),
               other.watermarks_.end());
  // ... union the extras, then restore canonical form in one pass.
  Extras extras;
  extras.reserve(extras_.size() + other.extras_.size());
  std::set_union(extras_.begin(), extras_.end(), other.extras_.begin(),
                 other.extras_.end(), std::back_inserter(extras));
  canonicalise(std::move(marks), std::move(extras));
}

bool SummaryVector::covers(const SummaryVector& other) const {
  // Watermarks: ours must reach theirs. A lower watermark can never be
  // compensated by extras — canonical form guarantees our extras skip
  // watermark + 1, so the first missing seq is genuinely missing.
  std::size_t wi = 0;
  for (const auto& [origin, mark] : other.watermarks_) {
    while (wi < watermarks_.size() && watermarks_[wi].first < origin) ++wi;
    if (wi == watermarks_.size() || watermarks_[wi].first != origin ||
        watermarks_[wi].second < mark) {
      return false;
    }
  }
  // Extras: each id must sit below our watermark or appear in our extras.
  // Both sides are (origin, seq) sorted, so two cursors suffice.
  std::size_t mi = 0;
  std::size_t ei = 0;
  for (const UpdateId id : other.extras_) {
    while (mi < watermarks_.size() && watermarks_[mi].first < id.origin) ++mi;
    if (mi < watermarks_.size() && watermarks_[mi].first == id.origin &&
        id.seq <= watermarks_[mi].second) {
      continue;
    }
    while (ei < extras_.size() && extras_[ei] < id) ++ei;
    if (ei == extras_.size() || extras_[ei] != id) return false;
  }
  return true;
}

std::vector<UpdateId> SummaryVector::missing_from(
    const SummaryVector& other) const {
  std::vector<UpdateId> missing;
  // Pass 1: our watermark ranges against their coverage.
  std::size_t owi = 0;  // cursor into other.watermarks_
  std::size_t oei = 0;  // cursor into other.extras_
  for (const auto& [origin, mark] : watermarks_) {
    while (owi < other.watermarks_.size() &&
           other.watermarks_[owi].first < origin) {
      ++owi;
    }
    const SeqNo theirs = (owi < other.watermarks_.size() &&
                          other.watermarks_[owi].first == origin)
                             ? other.watermarks_[owi].second
                             : 0;
    if (theirs >= mark) continue;
    while (oei < other.extras_.size() && other.extras_[oei].origin < origin) {
      ++oei;
    }
    std::size_t run = oei;
    for (SeqNo s = theirs + 1; s <= mark; ++s) {
      while (run < other.extras_.size() && other.extras_[run].origin == origin &&
             other.extras_[run].seq < s) {
        ++run;
      }
      const bool have = run < other.extras_.size() &&
                        other.extras_[run].origin == origin &&
                        other.extras_[run].seq == s;
      if (!have) missing.push_back(UpdateId{origin, s});
    }
  }
  // Pass 2: our extras against their coverage.
  owi = 0;
  oei = 0;
  for (const UpdateId id : extras_) {
    while (owi < other.watermarks_.size() &&
           other.watermarks_[owi].first < id.origin) {
      ++owi;
    }
    if (owi < other.watermarks_.size() &&
        other.watermarks_[owi].first == id.origin &&
        id.seq <= other.watermarks_[owi].second) {
      continue;
    }
    while (oei < other.extras_.size() && other.extras_[oei] < id) ++oei;
    if (oei == other.extras_.size() || other.extras_[oei] != id) {
      missing.push_back(id);
    }
  }
  return missing;
}

std::size_t SummaryVector::distinct_extra_origins() const {
  std::size_t origins = 0;
  for (std::size_t i = 0; i < extras_.size(); ++i) {
    if (i == 0 || extras_[i].origin != extras_[i - 1].origin) ++origins;
  }
  return origins;
}

std::uint64_t SummaryVector::total() const {
  std::uint64_t count = extras_.size();
  for (const auto& [origin, mark] : watermarks_) {
    (void)origin;
    count += mark;
  }
  return count;
}

std::vector<NodeId> SummaryVector::origins() const {
  std::vector<NodeId> result;
  result.reserve(watermarks_.size());
  for (const auto& [origin, mark] : watermarks_) {
    (void)mark;
    result.push_back(origin);
  }
  // Extras-only origins, appended after the watermarked ones (ascending
  // within each group — the order callers have always seen).
  std::size_t wi = 0;
  for (std::size_t i = 0; i < extras_.size();) {
    const NodeId origin = extras_[i].origin;
    while (wi < watermarks_.size() && watermarks_[wi].first < origin) ++wi;
    if (wi == watermarks_.size() || watermarks_[wi].first != origin) {
      result.push_back(origin);
    }
    while (i < extras_.size() && extras_[i].origin == origin) ++i;
  }
  return result;
}

SummaryVector SummaryVector::meet(const SummaryVector& a,
                                  const SummaryVector& b) {
  // Only origins covered by `a` can contribute (the meet needs both).
  Watermarks marks;
  Extras extras;
  std::size_t wi = 0;  // cursor into a.watermarks_
  std::size_t ei = 0;  // cursor into a.extras_
  while (wi < a.watermarks_.size() || ei < a.extras_.size()) {
    NodeId origin;
    if (wi < a.watermarks_.size() && ei < a.extras_.size()) {
      origin = std::min(a.watermarks_[wi].first, a.extras_[ei].origin);
    } else if (wi < a.watermarks_.size()) {
      origin = a.watermarks_[wi].first;
    } else {
      origin = a.extras_[ei].origin;
    }
    SeqNo a_mark = 0;
    if (wi < a.watermarks_.size() && a.watermarks_[wi].first == origin) {
      a_mark = a.watermarks_[wi].second;
      ++wi;
    }
    const SeqNo common = std::min(a_mark, b.watermark(origin));
    if (common > 0) marks.emplace_back(origin, common);
    // Candidates above the common prefix: the rest of a's prefix plus a's
    // extras, each kept iff b covers it too. Both sources are ascending and
    // the extras sit above a_mark, so the emitted run stays sorted.
    for (SeqNo s = common + 1; s <= a_mark; ++s) {
      const UpdateId id{origin, s};
      if (b.contains(id)) extras.push_back(id);
    }
    while (ei < a.extras_.size() && a.extras_[ei].origin == origin) {
      if (b.contains(a.extras_[ei])) extras.push_back(a.extras_[ei]);
      ++ei;
    }
  }
  SummaryVector result;
  result.canonicalise(std::move(marks), std::move(extras));
  return result;
}

SummaryVector SummaryVector::from_parts(
    std::map<NodeId, SeqNo> watermarks,
    std::map<NodeId, std::set<SeqNo>> extras) {
  Watermarks marks;
  marks.reserve(watermarks.size());
  for (const auto& [origin, mark] : watermarks) marks.emplace_back(origin, mark);
  Extras flat;
  for (const auto& [origin, seqs] : extras) {
    for (const SeqNo seq : seqs) flat.push_back(UpdateId{origin, seq});
  }
  SummaryVector sv;
  sv.canonicalise(std::move(marks), std::move(flat));
  return sv;
}

}  // namespace fastcons
