#include "replication/summary_vector.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

bool SummaryVector::contains(UpdateId id) const {
  FASTCONS_EXPECTS(id.seq > 0);
  if (const auto it = watermarks_.find(id.origin);
      it != watermarks_.end() && id.seq <= it->second) {
    return true;
  }
  if (const auto it = extras_.find(id.origin); it != extras_.end()) {
    return it->second.contains(id.seq);
  }
  return false;
}

void SummaryVector::add(UpdateId id) {
  FASTCONS_EXPECTS(id.seq > 0);
  if (contains(id)) return;
  extras_[id.origin].insert(id.seq);
  normalise(id.origin);
}

void SummaryVector::normalise(NodeId origin) {
  const auto extra_it = extras_.find(origin);
  if (extra_it == extras_.end()) return;
  auto& extra = extra_it->second;
  SeqNo& mark = watermarks_[origin];  // creates 0 watermark if absent
  // One pass to fixpoint: absorb the contiguous run starting at mark+1 and
  // drop ids at or below the watermark. The two interleave — dropping a
  // stale id can expose the next absorbable one — so a single loop handles
  // both until neither applies.
  while (!extra.empty()) {
    const SeqNo lowest = *extra.begin();
    if (lowest <= mark) {
      extra.erase(extra.begin());
    } else if (lowest == mark + 1) {
      ++mark;
      extra.erase(extra.begin());
    } else {
      break;
    }
  }
  if (extra.empty()) extras_.erase(extra_it);
  if (mark == 0) watermarks_.erase(origin);
}

SeqNo SummaryVector::watermark(NodeId origin) const {
  const auto it = watermarks_.find(origin);
  return it == watermarks_.end() ? 0 : it->second;
}

void SummaryVector::merge(const SummaryVector& other) {
  for (const auto& [origin, mark] : other.watermarks_) {
    SeqNo& mine = watermarks_[origin];
    if (mark > mine) mine = mark;
  }
  for (const auto& [origin, seqs] : other.extras_) {
    const SeqNo mine = watermark(origin);
    for (const SeqNo seq : seqs) {
      if (seq > mine) extras_[origin].insert(seq);
    }
  }
  // Normalise every origin that might have gained coverage.
  for (const auto& [origin, mark] : other.watermarks_) {
    (void)mark;
    normalise(origin);
  }
  for (const auto& [origin, seqs] : other.extras_) {
    (void)seqs;
    normalise(origin);
  }
}

bool SummaryVector::covers(const SummaryVector& other) const {
  for (const auto& [origin, mark] : other.watermarks_) {
    const SeqNo mine = watermark(origin);
    if (mine >= mark) continue;
    // Every seq in (mine, mark] must appear in our extras.
    const auto it = extras_.find(origin);
    if (it == extras_.end()) return false;
    for (SeqNo s = mine + 1; s <= mark; ++s) {
      if (!it->second.contains(s)) return false;
    }
  }
  for (const auto& [origin, seqs] : other.extras_) {
    for (const SeqNo seq : seqs) {
      if (!contains(UpdateId{origin, seq})) return false;
    }
  }
  return true;
}

std::vector<UpdateId> SummaryVector::missing_from(
    const SummaryVector& other) const {
  std::vector<UpdateId> missing;
  for (const auto& [origin, mark] : watermarks_) {
    const SeqNo theirs = other.watermark(origin);
    for (SeqNo s = theirs + 1; s <= mark; ++s) {
      const UpdateId id{origin, s};
      if (!other.contains(id)) missing.push_back(id);
    }
  }
  for (const auto& [origin, seqs] : extras_) {
    for (const SeqNo seq : seqs) {
      const UpdateId id{origin, seq};
      if (!other.contains(id)) missing.push_back(id);
    }
  }
  return missing;
}

std::uint64_t SummaryVector::total() const {
  std::uint64_t count = 0;
  for (const auto& [origin, mark] : watermarks_) {
    (void)origin;
    count += mark;
  }
  for (const auto& [origin, seqs] : extras_) {
    (void)origin;
    count += seqs.size();
  }
  return count;
}

std::vector<NodeId> SummaryVector::origins() const {
  std::vector<NodeId> result;
  for (const auto& [origin, mark] : watermarks_) {
    (void)mark;
    result.push_back(origin);
  }
  for (const auto& [origin, seqs] : extras_) {
    (void)seqs;
    if (!watermarks_.contains(origin)) result.push_back(origin);
  }
  return result;
}

SummaryVector SummaryVector::meet(const SummaryVector& a,
                                  const SummaryVector& b) {
  SummaryVector result;
  // Only origins covered by both inputs can contribute.
  for (const NodeId origin : a.origins()) {
    const SeqNo wm = std::min(a.watermark(origin), b.watermark(origin));
    if (wm > 0) result.watermarks_[origin] = wm;
    // Candidates above the common prefix: everything a covers there, kept
    // iff b covers it too. a's coverage above wm is the rest of its own
    // prefix plus its extras.
    auto& extra = result.extras_[origin];
    for (SeqNo s = wm + 1; s <= a.watermark(origin); ++s) {
      if (b.contains(UpdateId{origin, s})) extra.insert(s);
    }
    if (const auto it = a.extras_.find(origin); it != a.extras_.end()) {
      for (const SeqNo s : it->second) {
        if (s > wm && b.contains(UpdateId{origin, s})) extra.insert(s);
      }
    }
    if (extra.empty()) {
      result.extras_.erase(origin);
    } else {
      result.normalise(origin);
    }
  }
  return result;
}

SummaryVector SummaryVector::from_parts(
    std::map<NodeId, SeqNo> watermarks,
    std::map<NodeId, std::set<SeqNo>> extras) {
  SummaryVector sv;
  sv.watermarks_ = std::move(watermarks);
  sv.extras_ = std::move(extras);
  // Drop zero watermarks and normalise each origin so equality of logical
  // content implies structural equality.
  for (auto it = sv.watermarks_.begin(); it != sv.watermarks_.end();) {
    if (it->second == 0) {
      it = sv.watermarks_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<NodeId> origins;
  for (const auto& [origin, seqs] : sv.extras_) {
    (void)seqs;
    origins.push_back(origin);
  }
  for (const NodeId origin : origins) sv.normalise(origin);
  return sv;
}

}  // namespace fastcons
