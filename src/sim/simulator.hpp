// Deterministic discrete-event simulator — the substrate that replaces NS-2
// for this reproduction (DESIGN.md S1).
//
// Events are closures ordered by (time, insertion sequence); ties are broken
// by insertion order so runs are bit-for-bit reproducible. Timers can be
// cancelled in O(1): the heap entry is lazily discarded when popped.
#ifndef FASTCONS_SIM_SIMULATOR_HPP
#define FASTCONS_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace fastcons {

/// Handle returned by schedule(); can cancel the event before it fires.
class TimerHandle {
 public:
  TimerHandle() = default;

  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded event-driven simulator.
///
/// The time unit convention is set by the caller; all experiments in this
/// repository use 1.0 == one mean anti-entropy period (see common/types.hpp).
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when`; `when` must not be in the
  /// past. Returns a cancellation handle.
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` from now. `delay` must be >= 0.
  TimerHandle schedule_in(SimTime delay, Action action);

  /// Cancels a pending event. Safe to call on already-fired, cancelled, or
  /// default-constructed handles; returns whether the event was pending.
  bool cancel(TimerHandle handle) noexcept;

  /// Runs events until the queue drains or stop() is called. Returns the
  /// number of events executed.
  std::uint64_t run();

  /// Runs events with time <= `deadline`, then sets now() = deadline (if
  /// the queue drained earlier, time still advances to the deadline).
  std::uint64_t run_until(SimTime deadline);

  /// Executes at most one event. Returns false when the queue is empty.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  std::size_t pending_events() const noexcept { return actions_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // insertion order for deterministic tie-breaking
    std::uint64_t id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  // Live actions keyed by event id; an Entry whose id is absent here was
  // cancelled and is skipped when popped.
  std::unordered_map<std::uint64_t, Action> actions_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  bool stop_requested_ = false;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_SIMULATOR_HPP
