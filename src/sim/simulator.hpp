// Deterministic discrete-event simulator — the substrate that replaces NS-2
// for this reproduction (DESIGN.md S1).
//
// Events are closures ordered by (time, insertion sequence); ties are broken
// by insertion order so runs are bit-for-bit reproducible.
//
// Layout: closures live in a slab with a free list, addressed by index from
// the heap entries; the priority queue is a flat 4-ary min-heap of 24-byte
// entries. Cancellation is O(1) and allocation-free: it bumps the slot's
// generation counter, and the orphaned heap entry is discarded when it
// reaches the top (its recorded generation no longer matches). Handles carry
// (slot, generation), so a handle to a fired or cancelled event can never
// alias a later event that reuses the slot.
#ifndef FASTCONS_SIM_SIMULATOR_HPP
#define FASTCONS_SIM_SIMULATOR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/event_fn.hpp"

namespace fastcons {

/// Handle returned by schedule(); can cancel the event before it fires.
class TimerHandle {
 public:
  TimerHandle() = default;

  bool valid() const noexcept { return raw_ != 0; }

 private:
  friend class Simulator;
  TimerHandle(std::uint32_t slot, std::uint32_t generation) noexcept
      : raw_((static_cast<std::uint64_t>(generation) << 32) |
             (static_cast<std::uint64_t>(slot) + 1)) {}
  std::uint32_t slot() const noexcept {
    return static_cast<std::uint32_t>(raw_ & 0xffffffffu) - 1;
  }
  std::uint32_t generation() const noexcept {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }
  std::uint64_t raw_ = 0;
};

/// Single-threaded event-driven simulator.
///
/// The time unit convention is set by the caller; all experiments in this
/// repository use 1.0 == one mean anti-entropy period (see common/types.hpp).
class Simulator {
 public:
  using Action = EventFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when`; `when` must not be in the
  /// past. Returns a cancellation handle.
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` from now. `delay` must be >= 0.
  TimerHandle schedule_in(SimTime delay, Action action);

  /// Cancels a pending event. Safe to call on already-fired, cancelled, or
  /// default-constructed handles; returns whether the event was pending.
  bool cancel(TimerHandle handle) noexcept;

  /// Runs events until the queue drains or stop() is called. Returns the
  /// number of events executed.
  std::uint64_t run();

  /// Runs events with time <= `deadline`, then sets now() = deadline (if
  /// the queue drained earlier, time still advances to the deadline).
  std::uint64_t run_until(SimTime deadline);

  /// Executes at most one event. Returns false when the queue is empty.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  /// Returns the simulator to its freshly-constructed logical state —
  /// time 0, empty queue, zeroed counters — while retaining the slab and
  /// heap storage, so a pooled simulator schedules its next trial's events
  /// without touching the allocator. Every pending event is discarded
  /// (closure destructors run) and every slot generation is bumped, so
  /// TimerHandles obtained before the reset can never cancel an event
  /// scheduled after it.
  void reset() noexcept;

  std::size_t pending_events() const noexcept { return live_; }

  /// Events executed over this simulator's lifetime.
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Events executed by every Simulator on the calling thread. The harness
  /// samples this around each trial to report events/sec without threading
  /// a counter through every trial function.
  static std::uint64_t thread_events_executed() noexcept;

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  struct Slot {
    EventFn action;
    // Bumped whenever the slot is released (fire or cancel); heap entries
    // and handles recording an older generation are dead.
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFree;
  };

  struct HeapEntry {
    SimTime when;
    std::uint64_t seq : 40;  // insertion order for deterministic tie-breaking
    std::uint64_t slot : 24;
    std::uint32_t generation;
  };
  static_assert(sizeof(HeapEntry) <= 24);

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  bool entry_live(const HeapEntry& e) const noexcept {
    return slots_[e.slot].generation == e.generation;
  }

  void heap_push(const HeapEntry& entry);
  void heap_pop_min();
  /// Discards cancelled entries at the top; afterwards heap_ is empty or
  /// heap_[0] is live.
  void drop_dead_top();

  std::uint32_t acquire_slot(EventFn action);
  void release_slot(std::uint32_t slot) noexcept;

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_SIMULATOR_HPP
