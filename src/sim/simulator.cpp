#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fastcons {

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  FASTCONS_EXPECTS(when >= now_);
  FASTCONS_EXPECTS(action != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  return TimerHandle{id};
}

TimerHandle Simulator::schedule_in(SimTime delay, Action action) {
  FASTCONS_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(TimerHandle handle) noexcept {
  if (!handle.valid()) return false;
  return actions_.erase(handle.id_) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = actions_.find(entry.id);
    if (it == actions_.end()) continue;  // cancelled
    // Move the action out before invoking: the action may schedule or
    // cancel other events, invalidating iterators into actions_.
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = entry.when;
    action();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_ && step()) ++executed;
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  FASTCONS_EXPECTS(deadline >= now_);
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    // Peek for the next live event without executing it.
    bool found = false;
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (actions_.find(top.id) == actions_.end()) {
        queue_.pop();  // drop cancelled entries eagerly
        continue;
      }
      found = true;
      break;
    }
    if (!found || queue_.top().when > deadline) break;
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace fastcons
