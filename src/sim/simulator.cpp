#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace fastcons {
namespace {

// Per-thread running total across all Simulator instances; the harness
// samples it around each trial (trials never share a thread mid-run).
thread_local std::uint64_t t_events_executed = 0;

}  // namespace

std::uint64_t Simulator::thread_events_executed() noexcept {
  return t_events_executed;
}

// --------------------------------------------------------------------------
// Slab

std::uint32_t Simulator::acquire_slot(EventFn action) {
  std::uint32_t slot;
  if (free_head_ != kNoFree) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].action = std::move(action);
  } else {
    FASTCONS_EXPECTS(slots_.size() < (1u << 24));  // HeapEntry::slot width
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_[slot].action = std::move(action);
  }
  ++live_;
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.action.reset();
  ++s.generation;  // invalidates outstanding heap entries and handles
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

// --------------------------------------------------------------------------
// Flat 4-ary min-heap on (when, seq)

void Simulator::heap_push(const HeapEntry& entry) {
  // Hole insertion: walk the hole up, one store per level instead of a swap.
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::heap_pop_min() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Sift the hole down, then drop `moved` in.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], moved)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

void Simulator::drop_dead_top() {
  while (!heap_.empty() && !entry_live(heap_[0])) heap_pop_min();
}

// --------------------------------------------------------------------------
// Public interface

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  FASTCONS_EXPECTS(when >= now_);
  FASTCONS_EXPECTS(static_cast<bool>(action));
  FASTCONS_EXPECTS(next_seq_ < (1ull << 40));  // HeapEntry::seq width
  const std::uint32_t slot = acquire_slot(std::move(action));
  const std::uint32_t generation = slots_[slot].generation;
  HeapEntry entry;
  entry.when = when;
  entry.seq = next_seq_++;
  entry.slot = slot;
  entry.generation = generation;
  heap_push(entry);
  return TimerHandle{slot, generation};
}

TimerHandle Simulator::schedule_in(SimTime delay, Action action) {
  FASTCONS_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(TimerHandle handle) noexcept {
  if (!handle.valid()) return false;
  const std::uint32_t slot = handle.slot();
  if (slot >= slots_.size()) return false;
  if (slots_[slot].generation != handle.generation()) return false;
  release_slot(slot);  // the heap entry dies with the generation bump
  return true;
}

bool Simulator::step() {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_[0];
    heap_pop_min();
    if (!entry_live(top)) continue;  // cancelled
    // Move the action out and release the slot before invoking: the action
    // may schedule (reusing this slot) or cancel other events.
    EventFn action = std::move(slots_[top.slot].action);
    release_slot(static_cast<std::uint32_t>(top.slot));
    now_ = top.when;
    ++executed_;
    ++t_events_executed;
    action();
    return true;
  }
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_ && step()) ++executed;
  return executed;
}

void Simulator::reset() noexcept {
  heap_.clear();
  // Rebuild the free list over every retained slot, releasing pending
  // closures and invalidating outstanding handles via the generation bump.
  // Walking backwards leaves slot 0 at the head, matching the order a
  // fresh slab hands slots out in.
  free_head_ = kNoFree;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& slot = slots_[i];
    slot.action.reset();
    ++slot.generation;
    slot.next_free = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
  live_ = 0;
  now_ = 0.0;
  next_seq_ = 0;
  executed_ = 0;
  stop_requested_ = false;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  FASTCONS_EXPECTS(deadline >= now_);
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    drop_dead_top();  // make the peek below see a live event
    if (heap_.empty() || heap_[0].when > deadline) break;
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace fastcons
