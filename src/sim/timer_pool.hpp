// Ownership helper for self-rescheduling simulator timers.
//
// A tick closure that reschedules itself must not own itself: capturing a
// shared_ptr to its own std::function forms a reference cycle that never
// frees (and capturing a per-iteration local by reference dangles). The
// leak-free idiom is: an owner object holds the closures, scheduled events
// capture plain pointers, and the owner outlives the simulator run. This
// class makes that idiom the only thing to write.
//
//   TimerPool timers;
//   auto* tick = timers.add();
//   *tick = [&sim, tick] { ...; sim.schedule_in(gap, [tick] { (*tick)(); }); };
//   sim.schedule_at(first, [tick] { (*tick)(); });
#ifndef FASTCONS_SIM_TIMER_POOL_HPP
#define FASTCONS_SIM_TIMER_POOL_HPP

#include <deque>
#include <functional>

namespace fastcons {

/// Owns timer closures and hands out pointers that stay valid for the
/// pool's lifetime (deque growth never moves existing elements, so no
/// per-closure heap indirection is needed).
class TimerPool {
 public:
  /// Returns a stable pointer to a fresh, empty closure; assign the tick
  /// body through it.
  std::function<void()>* add() { return &ticks_.emplace_back(); }

  std::size_t size() const noexcept { return ticks_.size(); }

 private:
  std::deque<std::function<void()>> ticks_;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_TIMER_POOL_HPP
