// EventFn: a move-only callable with small-buffer optimisation, sized for
// the simulator's event closures.
//
// std::function is the wrong tool for a discrete-event hot path twice over:
// it requires copyability (forcing every captured Message to be copyable
// even though events fire exactly once), and libstdc++'s inline buffer is
// 16 bytes, so a delivery closure capturing a Message always heap-allocates.
// EventFn accepts move-only captures and inlines anything up to
// kInlineBytes (chosen to fit the largest closure SimNetwork schedules:
// [this, from, to, msg] with a SessionPush payload); larger or
// potentially-throwing-on-move callables fall back to the heap.
#ifndef FASTCONS_SIM_EVENT_FN_HPP
#define FASTCONS_SIM_EVENT_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fastcons {

class EventFn {
 public:
  /// Inline capacity in bytes. Large enough for a simulated message
  /// delivery ([this, from, to, Message]) without a heap allocation.
  static constexpr std::size_t kInlineBytes = 120;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): function-like
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vt_ = &kHeapVt<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// Invokes the wrapped callable. Precondition: engaged.
  void operator()() { vt_->invoke(storage_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  // The slab the simulator keeps EventFns in grows by relocation, so inline
  // storage additionally requires a noexcept move.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* inline_ptr(void* s) noexcept {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static D*& heap_ptr(void* s) noexcept {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* s) { (*inline_ptr<D>(s))(); },
      [](void* from, void* to) noexcept {
        D* f = inline_ptr<D>(from);
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* s) noexcept { inline_ptr<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* s) { (*heap_ptr<D>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(heap_ptr<D>(from));
      },
      [](void* s) noexcept { delete heap_ptr<D>(s); },
  };

  void move_from(EventFn& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(other.storage_, storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_EVENT_FN_HPP
