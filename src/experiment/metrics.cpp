#include "experiment/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

double consistent_request_rate(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime t) {
  FASTCONS_EXPECTS(delivery.size() == demand.size());
  double rate = 0.0;
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    if (delivery[i].has_value() && *delivery[i] <= t) rate += demand[i];
  }
  return rate;
}

std::vector<double> consistent_rate_series(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, std::size_t sessions, SimTime period) {
  FASTCONS_EXPECTS(period > 0.0);
  std::vector<double> series;
  series.reserve(sessions);
  for (std::size_t k = 1; k <= sessions; ++k) {
    series.push_back(consistent_request_rate(
        delivery, demand, static_cast<double>(k) * period));
  }
  return series;
}

double consistent_requests_served(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime horizon) {
  FASTCONS_EXPECTS(delivery.size() == demand.size());
  FASTCONS_EXPECTS(horizon >= 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    if (delivery[i].has_value() && *delivery[i] <= horizon) {
      total += demand[i] * (horizon - *delivery[i]);
    }
  }
  return total;
}

double demand_weighted_mean_delay(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime horizon) {
  FASTCONS_EXPECTS(delivery.size() == demand.size());
  double weighted = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    const SimTime at = delivery[i].value_or(horizon);
    weighted += demand[i] * std::min(at, horizon);
    weight += demand[i];
  }
  return weight == 0.0 ? 0.0 : weighted / weight;
}

}  // namespace fastcons
