#include "experiment/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/construction_cost.hpp"
#include "common/error.hpp"

namespace fastcons {
namespace {

/// Marks the ceil(fraction * n) highest-demand nodes (demand desc, id asc)
/// in `mask`, using `order` as the sorting scratch buffer.
void high_demand_mask(const std::vector<double>& demands, double fraction,
                      std::vector<NodeId>& order, std::vector<bool>& mask) {
  const std::size_t n = demands.size();
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (demands[a] != demands[b]) return demands[a] > demands[b];
    return a < b;
  });
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(fraction * static_cast<double>(n))));
  mask.assign(n, false);
  for (std::size_t i = 0; i < std::min(k, n); ++i) mask[order[i]] = true;
}

/// Shared precondition checks for the trial and batch entry points.
void check_config(const PropagationExperiment& config) {
  if (!config.shared_topology && !config.topology) {
    throw ConfigError("propagation experiment needs a topology factory or a shared topology");
  }
  if (!config.demand) {
    throw ConfigError("propagation experiment needs a demand factory");
  }
  if (config.high_demand_fraction <= 0.0 || config.high_demand_fraction > 1.0) {
    throw ConfigError("high_demand_fraction must be in (0, 1]");
  }
}

}  // namespace

const PropagationTrial& run_propagation_trial(
    const PropagationExperiment& config, Rng& rng, PropagationContext& ctx) {
  check_config(config);

  const SimTime period = config.sim.protocol.session_period;
  PropagationTrial& trial = ctx.trial;
  trial.sessions_all.clear();
  trial.sessions_high.clear();
  trial.time_to_full = 0.0;
  trial.traffic = TrafficCounters{};
  trial.converged = false;
  trial.censored_samples = 0;
  trial.faults = FaultStats{};
  trial.consistent = false;
  trial.pushes_suppressed_unhealthy = 0;

  // Construction phase: topology + demand + (re)wiring the pooled network.
  // Scoped so the harness can report the construction tax separately from
  // event execution.
  SimNetwork* net_ptr = nullptr;
  std::shared_ptr<const DemandModel> demand;
  {
    ConstructionCost::Scope construction;
    if (config.shared_topology != nullptr) {
      demand = config.demand(*config.shared_topology, rng);
      SimConfig sim_config = config.sim;
      sim_config.seed = rng.next_u64();
      net_ptr = &ctx.pool.acquire(config.shared_topology, demand, sim_config);
    } else {
      Graph graph = config.topology(rng);
      demand = config.demand(graph, rng);
      SimConfig sim_config = config.sim;
      sim_config.seed = rng.next_u64();
      net_ptr = &ctx.pool.acquire(std::move(graph), demand, sim_config);
    }
  }
  SimNetwork& net = *net_ptr;

  const auto writer = static_cast<NodeId>(rng.index(net.size()));
  // Random phase relative to the session timers, after a short settling
  // interval so adverts have fired at least once.
  const SimTime write_at = rng.uniform(0.5, 1.5);
  const UpdateId id = net.schedule_write(writer, "key", "value", write_at);

  trial.converged =
      net.run_until_update_everywhere(id, write_at + config.deadline);
  if (net.faults().enabled()) {
    // First-seen coverage survives a state wipe, so under churn it is not
    // yet consistency; keep running until the summaries actually agree.
    trial.consistent = net.run_until_consistent(write_at + config.deadline);
  } else {
    trial.consistent = trial.converged;
  }

  ctx.demands.resize(net.size());
  for (NodeId node = 0; node < net.size(); ++node) {
    ctx.demands[node] = demand->demand_at(node, write_at);
  }
  high_demand_mask(ctx.demands, config.high_demand_fraction, ctx.order,
                   ctx.high);

  double last = 0.0;
  for (NodeId node = 0; node < net.size(); ++node) {
    if (node == writer) continue;
    const auto at = net.first_delivery(node, id);
    double sessions;
    if (at.has_value()) {
      sessions = (*at - write_at) / period;
    } else {
      sessions = config.deadline / period;
      ++trial.censored_samples;
    }
    last = std::max(last, sessions);
    trial.sessions_all.push_back(sessions);
    if (ctx.high[node]) trial.sessions_high.push_back(sessions);
  }
  trial.time_to_full = last;
  trial.traffic.merge(net.total_traffic());
  trial.faults = net.fault_stats();
  trial.pushes_suppressed_unhealthy =
      net.total_stats().pushes_suppressed_unhealthy;
  return trial;
}

PropagationTrial run_propagation_trial(const PropagationExperiment& config,
                                       Rng& rng) {
  PropagationContext ctx;
  return run_propagation_trial(config, rng, ctx);
}

PropagationResult run_propagation(const PropagationExperiment& config) {
  check_config(config);
  if (config.repetitions == 0) throw ConfigError("repetitions must be > 0");

  Rng master(config.seed);
  PropagationResult result;
  PropagationContext ctx;

  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    Rng rep_rng = master.split();
    const PropagationTrial& trial = run_propagation_trial(config, rep_rng, ctx);
    result.reps_converged += trial.converged ? 1 : 0;
    ++result.reps_total;
    result.censored_samples += trial.censored_samples;
    result.all.add_all(trial.sessions_all);
    result.high_demand.add_all(trial.sessions_high);
    result.time_to_full.add(trial.time_to_full);
    result.traffic.merge(trial.traffic);
  }
  return result;
}

}  // namespace fastcons
