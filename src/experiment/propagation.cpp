#include "experiment/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {
namespace {

/// Ids of the ceil(fraction * n) highest-demand nodes (demand desc, id asc).
std::vector<bool> high_demand_mask(const std::vector<double>& demands,
                                   double fraction) {
  const std::size_t n = demands.size();
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (demands[a] != demands[b]) return demands[a] > demands[b];
    return a < b;
  });
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(fraction * static_cast<double>(n))));
  std::vector<bool> mask(n, false);
  for (std::size_t i = 0; i < std::min(k, n); ++i) mask[order[i]] = true;
  return mask;
}

/// Shared precondition checks for the trial and batch entry points.
void check_config(const PropagationExperiment& config) {
  if (!config.topology || !config.demand) {
    throw ConfigError("propagation experiment needs topology and demand factories");
  }
  if (config.high_demand_fraction <= 0.0 || config.high_demand_fraction > 1.0) {
    throw ConfigError("high_demand_fraction must be in (0, 1]");
  }
}

}  // namespace

PropagationTrial run_propagation_trial(const PropagationExperiment& config,
                                       Rng& rng) {
  check_config(config);

  const SimTime period = config.sim.protocol.session_period;
  PropagationTrial trial;

  Graph graph = config.topology(rng);
  auto demand = config.demand(graph, rng);
  SimConfig sim_config = config.sim;
  sim_config.seed = rng.next_u64();
  SimNetwork net(std::move(graph), demand, sim_config);

  const auto writer = static_cast<NodeId>(rng.index(net.size()));
  // Random phase relative to the session timers, after a short settling
  // interval so adverts have fired at least once.
  const SimTime write_at = rng.uniform(0.5, 1.5);
  const UpdateId id = net.schedule_write(writer, "key", "value", write_at);

  trial.converged =
      net.run_until_update_everywhere(id, write_at + config.deadline);

  const std::vector<double> demands = demand_snapshot(*demand, write_at);
  const std::vector<bool> high = high_demand_mask(demands,
                                                  config.high_demand_fraction);

  double last = 0.0;
  for (NodeId node = 0; node < net.size(); ++node) {
    if (node == writer) continue;
    const auto at = net.first_delivery(node, id);
    double sessions;
    if (at.has_value()) {
      sessions = (*at - write_at) / period;
    } else {
      sessions = config.deadline / period;
      ++trial.censored_samples;
    }
    last = std::max(last, sessions);
    trial.sessions_all.push_back(sessions);
    if (high[node]) trial.sessions_high.push_back(sessions);
  }
  trial.time_to_full = last;
  trial.traffic.merge(net.total_traffic());
  return trial;
}

PropagationResult run_propagation(const PropagationExperiment& config) {
  check_config(config);
  if (config.repetitions == 0) throw ConfigError("repetitions must be > 0");

  Rng master(config.seed);
  PropagationResult result;

  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    Rng rep_rng = master.split();
    const PropagationTrial trial = run_propagation_trial(config, rep_rng);
    result.reps_converged += trial.converged ? 1 : 0;
    ++result.reps_total;
    result.censored_samples += trial.censored_samples;
    result.all.add_all(trial.sessions_all);
    result.high_demand.add_all(trial.sessions_high);
    result.time_to_full.add(trial.time_to_full);
    result.traffic.merge(trial.traffic);
  }
  return result;
}

}  // namespace fastcons
