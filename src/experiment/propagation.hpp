// The paper's §5 experiment, as a reusable harness: "The simulation begins
// by assuming a change on a randomly chosen replica, with the aim of
// measuring the number of sessions the algorithm uses to propagate this
// change, both in the replica with most demand and in those with less
// demand. ... experiments were repeated 10,000 times."
#ifndef FASTCONS_EXPERIMENT_PROPAGATION_HPP
#define FASTCONS_EXPERIMENT_PROPAGATION_HPP

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "demand/demand_model.hpp"
#include "sim_runtime/sim_network.hpp"
#include "stats/cdf.hpp"
#include "stats/counters.hpp"
#include "stats/online_stats.hpp"
#include "topology/graph.hpp"

namespace fastcons {

/// Factories let each repetition draw a fresh topology and demand
/// assignment, as the paper does.
using TopologyFactory = std::function<Graph(Rng&)>;
using DemandFactory =
    std::function<std::shared_ptr<const DemandModel>(const Graph&, Rng&)>;

struct PropagationExperiment {
  TopologyFactory topology;
  DemandFactory demand;
  SimConfig sim;

  /// Optional pre-built topology shared immutably across repetitions. When
  /// set, `topology` is never called and no trial RNG is consumed for the
  /// graph. This changes the experiment design, not just its speed: the
  /// whole instance — structure AND edge latencies — is frozen, so trials
  /// vary only in demand, writer and timer draws. Use it for points meant
  /// to study one fixed network (fig3's star, the large-scale grids);
  /// points that sample a topology distribution per trial (the fig5/fig6
  /// BA sweeps) must keep their per-trial factory, both for the statistics
  /// and because removing the draws would shift the RNG stream and every
  /// digest.
  std::shared_ptr<const Graph> shared_topology;

  std::size_t repetitions = 1000;

  /// "Replicas with most demand": the top fraction by demand at write time.
  double high_demand_fraction = 0.10;

  /// Give up on a repetition after this many session periods.
  SimTime deadline = 60.0;

  std::uint64_t seed = 42;
};

struct PropagationResult {
  /// Sessions until the change reached each replica (writer excluded),
  /// pooled over repetitions — the paper's Figs. 5/6 curves.
  EmpiricalCdf all;

  /// Same, restricted to the high-demand subset.
  EmpiricalCdf high_demand;

  /// Sessions until the change reached the last replica, per repetition.
  OnlineStats time_to_full;

  /// Wire traffic summed over nodes and repetitions (full horizon).
  TrafficCounters traffic;

  std::uint64_t reps_converged = 0;
  std::uint64_t reps_total = 0;
  /// Replica samples that hit the deadline before delivery (censored at the
  /// deadline value in `all`).
  std::uint64_t censored_samples = 0;
};

/// One repetition's raw observations, before pooling. The harness runs
/// trials on worker threads and aggregates in trial order, so the per-trial
/// data must be returned instead of accumulated into shared state.
struct PropagationTrial {
  /// Sessions until delivery, one sample per non-writer replica (censored
  /// samples clamped to deadline/period).
  std::vector<double> sessions_all;

  /// The subset of `sessions_all` belonging to high-demand replicas.
  std::vector<double> sessions_high;

  /// Sessions until the change reached the last replica.
  double time_to_full = 0.0;

  /// Wire traffic summed over nodes (full horizon).
  TrafficCounters traffic;

  bool converged = false;
  std::uint64_t censored_samples = 0;

  /// Faults actually injected (all zero when config.sim.faults is disabled).
  FaultStats faults;

  /// Fast pushes the gradient rule would have sent on raw demand but
  /// suppressed because the target's health-decayed demand no longer
  /// cleared it. Zero whenever protocol.health.enabled is false, which is
  /// every pre-existing scenario; recorded only by the degraded family.
  std::uint64_t pushes_suppressed_unhealthy = 0;

  /// Every summary equal by the deadline. With faults disabled this is
  /// exactly `converged` (one write, no way to diverge); with faults
  /// enabled the trial keeps running after first-seen coverage until the
  /// summaries agree or the deadline passes — the metric that catches a
  /// wiped node that has not finished catching up, or a partition that
  /// never healed.
  bool consistent = false;
};

/// Pooled state one worker reuses across propagation repetitions: the
/// simulated network (reset, not rebuilt, between trials) and every scratch
/// vector the trial body needs. Results are bit-identical to fresh
/// construction — the reset-equivalence tests pin that — the pool only
/// removes the per-trial construction tax.
struct PropagationContext {
  SimNetworkPool pool;

  /// Demand snapshot at write time (one slot per node).
  std::vector<double> demands;

  /// Node ids sorted by demand, and the resulting high-demand mask.
  std::vector<NodeId> order;
  std::vector<bool> high;

  /// Trial observations; the sample vectors keep their capacity between
  /// repetitions.
  PropagationTrial trial;
};

/// Runs a single repetition of `config` drawing all randomness from `rng`,
/// reusing `ctx`'s network and buffers. Returns a reference to `ctx.trial`,
/// valid until the next call with the same context. Deterministic for a
/// given rng state; ignores config.repetitions/seed.
const PropagationTrial& run_propagation_trial(
    const PropagationExperiment& config, Rng& rng, PropagationContext& ctx);

/// Convenience overload with a one-shot context (fresh construction).
PropagationTrial run_propagation_trial(const PropagationExperiment& config,
                                       Rng& rng);

/// Runs the experiment (config.repetitions trials seeded from config.seed).
/// Deterministic for a given config.
PropagationResult run_propagation(const PropagationExperiment& config);

}  // namespace fastcons

#endif  // FASTCONS_EXPERIMENT_PROPAGATION_HPP
