// Client read/write workload simulation on top of SimNetwork.
//
// The propagation harness measures the paper's session-count metric; this
// one measures what clients actually experience: reads arrive at each
// replica as a Poisson process with rate equal to its demand (the paper's
// definition — "the demand of a server is measured as the number of service
// requests by their clients per time unit"), writes arrive on a configurable
// schedule, and every read is classified as fresh or stale depending on
// whether the serving replica already holds the globally newest write of
// the requested key.
#ifndef FASTCONS_EXPERIMENT_WORKLOAD_HPP
#define FASTCONS_EXPERIMENT_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "demand/demand_model.hpp"
#include "sim_runtime/sim_network.hpp"
#include "stats/online_stats.hpp"

namespace fastcons {

struct WorkloadConfig {
  /// Keys written round-robin by the write schedule and read uniformly by
  /// clients.
  std::size_t keys = 4;

  /// Mean time between writes (Poisson); each write originates at a
  /// uniformly random replica.
  SimTime write_interval = 2.0;

  /// Total simulated duration.
  SimTime duration = 40.0;

  /// Warm-up prefix excluded from the statistics.
  SimTime warmup = 5.0;

  std::uint64_t seed = 1;
};

struct WorkloadResult {
  std::uint64_t reads = 0;
  std::uint64_t fresh_reads = 0;
  std::uint64_t writes = 0;

  /// Staleness of stale reads: age (in session periods) of the missing
  /// newest write at the serving replica when the read happened.
  OnlineStats stale_age;

  double fresh_fraction() const {
    return reads == 0 ? 1.0
                      : static_cast<double>(fresh_reads) /
                            static_cast<double>(reads);
  }
};

/// Runs the workload on a freshly wired network. Reads are evaluated
/// analytically against the global write history (no read messages are
/// simulated — a read is served locally by the replica's materialised
/// state, exactly as in the paper's model).
WorkloadResult run_workload(Graph topology,
                            std::shared_ptr<const DemandModel> demand,
                            const SimConfig& sim_config,
                            const WorkloadConfig& workload);

/// Pooled variant: acquires the network from `pool` (reset, not rebuilt,
/// after the first trial on this pool). Results are bit-identical to the
/// fresh-construction overload, which delegates here.
WorkloadResult run_workload(Graph topology,
                            std::shared_ptr<const DemandModel> demand,
                            const SimConfig& sim_config,
                            const WorkloadConfig& workload,
                            SimNetworkPool& pool);

}  // namespace fastcons

#endif  // FASTCONS_EXPERIMENT_WORKLOAD_HPP
