#include "experiment/workload.hpp"

#include <algorithm>
#include <functional>

#include "common/assert.hpp"
#include "common/construction_cost.hpp"
#include "common/error.hpp"
#include "sim/timer_pool.hpp"

namespace fastcons {

WorkloadResult run_workload(Graph topology,
                            std::shared_ptr<const DemandModel> demand,
                            const SimConfig& sim_config,
                            const WorkloadConfig& workload) {
  SimNetworkPool pool;
  return run_workload(std::move(topology), std::move(demand), sim_config,
                      workload, pool);
}

WorkloadResult run_workload(Graph topology,
                            std::shared_ptr<const DemandModel> demand,
                            const SimConfig& sim_config,
                            const WorkloadConfig& workload,
                            SimNetworkPool& pool) {
  if (workload.keys == 0) throw ConfigError("workload needs >= 1 key");
  if (workload.write_interval <= 0.0) {
    throw ConfigError("write interval must be positive");
  }
  if (workload.duration <= workload.warmup) {
    throw ConfigError("duration must exceed warmup");
  }

  SimNetwork& net = [&]() -> SimNetwork& {
    ConstructionCost::Scope construction;
    return pool.acquire(std::move(topology), demand, sim_config);
  }();
  Rng rng(workload.seed);
  WorkloadResult result;

  // --- Write schedule: Poisson arrivals, round-robin keys, random origin.
  // History per key, ordered by time (generated in increasing order).
  std::vector<std::vector<std::pair<SimTime, UpdateId>>> history(workload.keys);
  SimTime write_at = rng.exponential(workload.write_interval);
  std::size_t write_index = 0;
  while (write_at < workload.duration) {
    const std::size_t key_index = write_index % workload.keys;
    const auto writer = static_cast<NodeId>(rng.index(net.size()));
    const std::string key = "key" + std::to_string(key_index);
    const UpdateId id = net.schedule_write(
        writer, key, "v" + std::to_string(write_index), write_at);
    history[key_index].emplace_back(write_at, id);
    ++write_index;
    write_at += rng.exponential(workload.write_interval);
  }
  result.writes = write_index;

  // --- Read processes: one self-rescheduling Poisson stream per replica.
  // The rate follows the (possibly time-varying) demand; gaps are drawn
  // with the demand at scheduling time, a standard piecewise approximation
  // that is exact for static models.
  const auto newest_before = [&history](std::size_t key_index, SimTime t)
      -> const std::pair<SimTime, UpdateId>* {
    const auto& writes = history[key_index];
    const auto it = std::upper_bound(
        writes.begin(), writes.end(), t,
        [](SimTime value, const auto& entry) { return value < entry.first; });
    if (it == writes.begin()) return nullptr;
    return &*(it - 1);
  };

  Simulator& sim = net.sim();
  std::vector<Rng> read_rngs;
  read_rngs.reserve(net.size());
  for (NodeId n = 0; n < net.size(); ++n) read_rngs.push_back(rng.split());

  // Owns the read-process closures for the whole run; see
  // sim/timer_pool.hpp for the ownership rules.
  TimerPool timers;
  for (NodeId n = 0; n < net.size(); ++n) {
    std::function<void()>* tick_ptr = timers.add();
    const auto reschedule = [&sim, tick_ptr, &read_rngs, &net, n,
                             &workload](SimTime now) {
      const double rate = net.demand_now()[n];
      // Idle replicas poll their demand again after one time unit.
      const SimTime gap =
          rate <= 0.0 ? 1.0 : read_rngs[n].exponential(1.0 / rate);
      if (now + gap < workload.duration) {
        sim.schedule_in(gap, [tick_ptr] { (*tick_ptr)(); });
      }
    };
    *tick_ptr = [&, reschedule, n] {
      const SimTime now = sim.now();
      const double rate = net.demand_now()[n];
      if (rate > 0.0 && now >= workload.warmup) {
        const std::size_t key_index = read_rngs[n].index(workload.keys);
        ++result.reads;
        const auto* newest = newest_before(key_index, now);
        if (newest == nullptr || net.engine(n).log().contains(newest->second)) {
          ++result.fresh_reads;
        } else {
          result.stale_age.add(now - newest->first);
        }
      }
      reschedule(now);
    };
    const SimTime first = read_rngs[n].uniform(0.0, 1.0);
    sim.schedule_at(first, [tick_ptr] { (*tick_ptr)(); });
  }

  net.run_until(workload.duration);
  return result;
}

}  // namespace fastcons
