// Demand-weighted service metrics (paper Fig. 3's y-axis).
//
// "Requests satisfied with consistent content": a replica serves its demand
// (requests per unit time) with up-to-date content from the moment the
// change reaches it. The instantaneous consistent-service rate at time t is
// therefore the demand sum over replicas already holding the change —
// deterministic, no need to simulate individual client requests.
#ifndef FASTCONS_EXPERIMENT_METRICS_HPP
#define FASTCONS_EXPERIMENT_METRICS_HPP

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace fastcons {

/// Sum of demand over replicas with delivery time <= t (replicas that never
/// received the change contribute nothing).
double consistent_request_rate(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime t);

/// The rate evaluated on a grid of session boundaries 1..sessions (Fig. 3's
/// x-axis), with times measured in units of `period`.
std::vector<double> consistent_rate_series(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, std::size_t sessions, SimTime period);

/// Integral of the consistent-service rate over [0, horizon]: the total
/// number of requests served with consistent content in that window.
double consistent_requests_served(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime horizon);

/// Demand-weighted mean staleness: sum(demand_i * delivery_i) / sum(demand),
/// treating missing deliveries as `horizon`. Lower is better; this is the
/// single number that summarises "clients see fresh content sooner".
double demand_weighted_mean_delay(
    const std::vector<std::optional<SimTime>>& delivery,
    const std::vector<double>& demand, SimTime horizon);

}  // namespace fastcons

#endif  // FASTCONS_EXPERIMENT_METRICS_HPP
