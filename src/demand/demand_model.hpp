// Demand substrate (DESIGN.md S3). Demand is the paper's central quantity:
// client service requests per unit time at a replica. A DemandModel answers
// "what is node n's demand at time t", which lets one implementation cover
// the paper's static experiments (§2, §5), the dynamic model (§3–4) and the
// island scenarios (§6).
#ifndef FASTCONS_DEMAND_DEMAND_MODEL_HPP
#define FASTCONS_DEMAND_DEMAND_MODEL_HPP

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastcons {

/// Interface: demand of a node as a function of simulated time.
/// Implementations must be deterministic (any randomness fixed at
/// construction) so repetitions are reproducible.
class DemandModel {
 public:
  virtual ~DemandModel() = default;

  /// Requests per unit time of node `n` at time `t`. Never negative.
  virtual double demand_at(NodeId n, SimTime t) const = 0;

  /// Number of nodes this model covers.
  virtual std::size_t size() const = 0;

  /// True when demand_at() depends on t; lets static experiments cache.
  virtual bool is_dynamic() const { return false; }
};

/// Fixed per-node demands supplied explicitly (paper §2's A..E example).
class StaticDemand final : public DemandModel {
 public:
  /// Takes one fixed demand value per node.
  explicit StaticDemand(std::vector<double> demands);

  double demand_at(NodeId n, SimTime t) const override;
  std::size_t size() const override { return demands_.size(); }

 private:
  std::vector<double> demands_;
};

/// Independent uniform demands on [lo, hi] — the paper's §5 setup
/// ("assigning to each replica, also in a random way, their respective
/// demands").
StaticDemand make_uniform_random_demand(std::size_t n, double lo, double hi,
                                        Rng& rng);

/// Zipf-like demand: node ranks are a random permutation, demand of rank r
/// is scale / r^s. Produces the few-hot-many-cold "hills and valleys"
/// surface of paper Fig. 1.
StaticDemand make_zipf_demand(std::size_t n, double s, double scale, Rng& rng);

/// Piecewise-constant schedule per node: the §3/§4 dynamic model (Fig. 4's
/// A: 2 -> 0 and C: 0 -> 9 steps). Between breakpoints demand is constant;
/// before the first breakpoint it is the value given at time 0 (which every
/// schedule must include).
class StepDemand final : public DemandModel {
 public:
  /// schedules[n] maps time -> demand from that time onward; each must
  /// contain an entry at time 0.
  explicit StepDemand(std::vector<std::map<SimTime, double>> schedules);

  double demand_at(NodeId n, SimTime t) const override;
  std::size_t size() const override { return schedules_.size(); }
  bool is_dynamic() const override { return true; }

 private:
  std::vector<std::map<SimTime, double>> schedules_;
};

/// Demand that random-walks multiplicatively on a lattice of instants:
/// demand(t+dt) = demand(t) * factor^(+-1), clamped to [floor, cap]. Used to
/// stress the dynamic policy's table refresh.
class RandomWalkDemand final : public DemandModel {
 public:
  /// Pre-samples each node's walk on [0, horizon] at `step` granularity;
  /// beyond the horizon demand stays at the final lattice value.
  RandomWalkDemand(std::size_t n, double initial, double factor, double floor,
                   double cap, SimTime step, SimTime horizon, Rng& rng);

  double demand_at(NodeId n, SimTime t) const override;
  std::size_t size() const override { return walks_.size(); }
  bool is_dynamic() const override { return true; }

 private:
  std::vector<std::vector<double>> walks_;  // per node, per step index
  SimTime step_;
};

/// A hotspot of high demand centred on `centre` that relocates to
/// `new_centre` at `switch_time`; demand decays with hop distance from the
/// active centre. Models a flash crowd moving between regions.
class MigratingHotspotDemand final : public DemandModel {
 public:
  /// `hops_from_a`/`hops_from_b` give each node's hop distance from the
  /// first and second hotspot centre; the hotspot moves at `switch_time`.
  MigratingHotspotDemand(std::vector<std::size_t> hops_from_a,
                         std::vector<std::size_t> hops_from_b,
                         SimTime switch_time, double peak, double base);

  double demand_at(NodeId n, SimTime t) const override;
  std::size_t size() const override { return hops_a_.size(); }
  bool is_dynamic() const override { return true; }

 private:
  std::vector<std::size_t> hops_a_;
  std::vector<std::size_t> hops_b_;
  SimTime switch_time_;
  double peak_;
  double base_;
};

/// Day/night demand cycle: demand(n, t) = base + amplitude *
/// max(0, sin(2*pi*(t - phase_n) / period)). Per-node phases model
/// geographic timezones — the paper's "geographical distribution" factor.
class DiurnalDemand final : public DemandModel {
 public:
  /// Phases uniform on [0, period). Requires period > 0, amplitude >= 0.
  DiurnalDemand(std::size_t n, double base, double amplitude, SimTime period,
                Rng& rng);

  double demand_at(NodeId n, SimTime t) const override;
  std::size_t size() const override { return phases_.size(); }
  bool is_dynamic() const override { return true; }

 private:
  std::vector<SimTime> phases_;
  double base_;
  double amplitude_;
  SimTime period_;
};

/// Convenience: samples every node's demand at one instant.
std::vector<double> demand_snapshot(const DemandModel& model, SimTime t);

}  // namespace fastcons

#endif  // FASTCONS_DEMAND_DEMAND_MODEL_HPP
