#include "demand/demand_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {

StaticDemand::StaticDemand(std::vector<double> demands)
    : demands_(std::move(demands)) {
  for (const double d : demands_) {
    if (d < 0.0) throw ConfigError("demand must be non-negative");
  }
}

double StaticDemand::demand_at(NodeId n, SimTime /*t*/) const {
  FASTCONS_EXPECTS(n < demands_.size());
  return demands_[n];
}

StaticDemand make_uniform_random_demand(std::size_t n, double lo, double hi,
                                        Rng& rng) {
  if (lo < 0.0 || hi < lo) throw ConfigError("bad uniform demand range");
  std::vector<double> demands(n);
  for (auto& d : demands) d = rng.uniform(lo, hi);
  return StaticDemand(std::move(demands));
}

StaticDemand make_zipf_demand(std::size_t n, double s, double scale,
                              Rng& rng) {
  if (scale <= 0.0) throw ConfigError("zipf demand needs scale > 0");
  if (s < 0.0) throw ConfigError("zipf demand needs s >= 0");
  std::vector<NodeId> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = static_cast<NodeId>(i);
  rng.shuffle(ranks);
  std::vector<double> demands(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double rank = static_cast<double>(ranks[i]) + 1.0;
    demands[i] = scale / std::pow(rank, s);
  }
  return StaticDemand(std::move(demands));
}

StepDemand::StepDemand(std::vector<std::map<SimTime, double>> schedules)
    : schedules_(std::move(schedules)) {
  for (const auto& schedule : schedules_) {
    if (schedule.empty() || schedule.begin()->first != 0.0) {
      throw ConfigError("StepDemand schedule must start at time 0");
    }
    for (const auto& [t, d] : schedule) {
      if (d < 0.0) throw ConfigError("demand must be non-negative");
      (void)t;
    }
  }
}

double StepDemand::demand_at(NodeId n, SimTime t) const {
  FASTCONS_EXPECTS(n < schedules_.size());
  const auto& schedule = schedules_[n];
  auto it = schedule.upper_bound(t);
  // Schedules start at t=0, so this only happens when t < 0 — callers with
  // skewed clocks can ask fractionally before the epoch. Clamp to the first
  // slot rather than aborting.
  if (it == schedule.begin()) return it->second;
  --it;
  return it->second;
}

RandomWalkDemand::RandomWalkDemand(std::size_t n, double initial,
                                   double factor, double floor, double cap,
                                   SimTime step, SimTime horizon, Rng& rng)
    : step_(step) {
  if (initial < floor || initial > cap || floor < 0.0 || cap < floor) {
    throw ConfigError("bad random-walk demand bounds");
  }
  if (factor <= 1.0) throw ConfigError("random-walk factor must exceed 1");
  if (step <= 0.0 || horizon < 0.0) throw ConfigError("bad random-walk times");
  const auto steps = static_cast<std::size_t>(horizon / step) + 2;
  walks_.resize(n);
  for (auto& walk : walks_) {
    walk.resize(steps);
    double value = initial;
    for (auto& slot : walk) {
      slot = value;
      value = rng.bernoulli(0.5) ? value * factor : value / factor;
      value = std::clamp(value, floor, cap);
    }
  }
}

double RandomWalkDemand::demand_at(NodeId n, SimTime t) const {
  FASTCONS_EXPECTS(n < walks_.size());
  FASTCONS_EXPECTS(t >= 0.0);
  const auto& walk = walks_[n];
  const auto idx = static_cast<std::size_t>(t / step_);
  return walk[std::min(idx, walk.size() - 1)];
}

MigratingHotspotDemand::MigratingHotspotDemand(
    std::vector<std::size_t> hops_from_a, std::vector<std::size_t> hops_from_b,
    SimTime switch_time, double peak, double base)
    : hops_a_(std::move(hops_from_a)),
      hops_b_(std::move(hops_from_b)),
      switch_time_(switch_time),
      peak_(peak),
      base_(base) {
  if (hops_a_.size() != hops_b_.size()) {
    throw ConfigError("hotspot hop vectors must have equal size");
  }
  if (peak_ < base_ || base_ < 0.0) throw ConfigError("bad hotspot demands");
}

double MigratingHotspotDemand::demand_at(NodeId n, SimTime t) const {
  FASTCONS_EXPECTS(n < hops_a_.size());
  const std::size_t hops = t < switch_time_ ? hops_a_[n] : hops_b_[n];
  // Demand halves with every hop away from the hotspot centre.
  return base_ + (peak_ - base_) / std::pow(2.0, static_cast<double>(hops));
}

DiurnalDemand::DiurnalDemand(std::size_t n, double base, double amplitude,
                             SimTime period, Rng& rng)
    : base_(base), amplitude_(amplitude), period_(period) {
  if (base < 0.0 || amplitude < 0.0) throw ConfigError("bad diurnal demands");
  if (period <= 0.0) throw ConfigError("diurnal period must be positive");
  phases_.resize(n);
  for (auto& phase : phases_) phase = rng.uniform(0.0, period);
}

double DiurnalDemand::demand_at(NodeId n, SimTime t) const {
  FASTCONS_EXPECTS(n < phases_.size());
  constexpr double kTwoPi = 6.283185307179586;
  const double wave = std::sin(kTwoPi * (t - phases_[n]) / period_);
  return base_ + amplitude_ * std::max(0.0, wave);
}

std::vector<double> demand_snapshot(const DemandModel& model, SimTime t) {
  std::vector<double> snapshot(model.size());
  for (std::size_t n = 0; n < snapshot.size(); ++n) {
    snapshot[n] = model.demand_at(static_cast<NodeId>(n), t);
  }
  return snapshot;
}

}  // namespace fastcons
