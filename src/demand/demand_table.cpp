#include "demand/demand_table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

namespace {

/// First index entry with key >= peer.
auto index_lower_bound(const std::vector<std::pair<NodeId, std::uint32_t>>& index,
                       NodeId peer) {
  return std::lower_bound(
      index.begin(), index.end(), peer,
      [](const std::pair<NodeId, std::uint32_t>& e, NodeId p) {
        return e.first < p;
      });
}

}  // namespace

DemandTable::DemandTable(std::vector<NodeId> neighbours,
                         SimTime liveness_window)
    : liveness_window_(liveness_window) {
  entries_.reserve(neighbours.size());
  index_.reserve(neighbours.size());
  for (const NodeId peer : neighbours) {
    add_neighbour(peer, 0.0);
  }
}

void DemandTable::reset(const std::vector<NodeId>& neighbours,
                        SimTime liveness_window) {
  liveness_window_ = liveness_window;
  entries_.clear();
  index_.clear();
  for (const NodeId peer : neighbours) {
    add_neighbour(peer, 0.0);
  }
}

const DemandEntry* DemandTable::find(NodeId peer) const {
  const auto it = index_lower_bound(index_, peer);
  if (it == index_.end() || it->first != peer) return nullptr;
  return &entries_[it->second];
}

DemandEntry* DemandTable::find(NodeId peer) {
  const auto it = index_lower_bound(index_, peer);
  if (it == index_.end() || it->first != peer) return nullptr;
  return &entries_[it->second];
}

void DemandTable::update(NodeId peer, double demand, SimTime now) {
  if (DemandEntry* entry = find(peer)) {
    entry->demand = demand;
    entry->last_heard = now;
  }
}

void DemandTable::touch(NodeId peer, SimTime now) {
  if (DemandEntry* entry = find(peer)) entry->last_heard = now;
}

std::optional<double> DemandTable::demand_of(NodeId peer) const {
  const DemandEntry* entry = find(peer);
  if (entry == nullptr) return std::nullopt;
  return entry->demand;
}

bool DemandTable::is_alive(NodeId peer, SimTime now) const {
  const DemandEntry* entry = find(peer);
  if (entry == nullptr) return false;
  return is_alive(*entry, now);
}

bool DemandTable::is_alive(const DemandEntry& entry,
                           SimTime now) const noexcept {
  if (liveness_window_ <= 0.0) return true;
  return now - entry.last_heard <= liveness_window_;
}

NodeId DemandTable::next_dead_probe(SimTime now) {
  DemandEntry* oldest = nullptr;
  for (auto& entry : entries_) {
    if (is_alive(entry, now)) continue;
    if (oldest == nullptr || entry.last_probed < oldest->last_probed ||
        (entry.last_probed == oldest->last_probed &&
         entry.peer < oldest->peer)) {
      oldest = &entry;
    }
  }
  if (oldest == nullptr) return kInvalidNode;
  oldest->last_probed = now;
  return oldest->peer;
}

std::vector<NodeId> DemandTable::by_demand_desc(SimTime now) const {
  return by_demand_desc(now, nullptr);
}

std::vector<NodeId> DemandTable::by_demand_desc(
    SimTime now, const PeerHealthTracker* health) const {
  // (entry, effective demand): health decays a suspect peer's demand and
  // zeroes a down peer's (down peers are excluded below, so the zero never
  // sorts — it is only here to keep the pair construction branch-free).
  std::vector<std::pair<const DemandEntry*, double>> live;
  live.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (!is_alive(entry, now)) continue;
    double effective = entry.demand;
    if (health != nullptr && health->enabled()) {
      if (health->state(entry.peer, now) == PeerHealth::down) continue;
      effective *= health->demand_factor(entry.peer, now);
    }
    live.emplace_back(&entry, effective);
  }
  std::sort(live.begin(), live.end(),
            [](const std::pair<const DemandEntry*, double>& a,
               const std::pair<const DemandEntry*, double>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first->peer < b.first->peer;
            });
  std::vector<NodeId> order;
  order.reserve(live.size());
  for (const auto& [entry, effective] : live) order.push_back(entry->peer);
  return order;
}

std::vector<NodeId> DemandTable::alive(SimTime now) const {
  return alive(now, nullptr);
}

std::vector<NodeId> DemandTable::alive(SimTime now,
                                       const PeerHealthTracker* health) const {
  std::vector<NodeId> result;
  result.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (!is_alive(entry, now)) continue;
    if (health != nullptr && health->enabled() &&
        health->state(entry.peer, now) == PeerHealth::down) {
      continue;
    }
    result.push_back(entry.peer);
  }
  return result;
}

void DemandTable::add_neighbour(NodeId peer, SimTime now) {
  const auto it = index_lower_bound(index_, peer);
  if (it != index_.end() && it->first == peer) return;
  index_.insert(it, {peer, static_cast<std::uint32_t>(entries_.size())});
  entries_.push_back(DemandEntry{peer, 0.0, now});
}

}  // namespace fastcons
