#include "demand/demand_table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fastcons {

DemandTable::DemandTable(std::vector<NodeId> neighbours,
                         SimTime liveness_window)
    : liveness_window_(liveness_window) {
  entries_.reserve(neighbours.size());
  for (const NodeId peer : neighbours) {
    entries_.push_back(DemandEntry{peer, 0.0, 0.0});
  }
}

const DemandEntry* DemandTable::find(NodeId peer) const {
  for (const auto& entry : entries_) {
    if (entry.peer == peer) return &entry;
  }
  return nullptr;
}

void DemandTable::update(NodeId peer, double demand, SimTime now) {
  for (auto& entry : entries_) {
    if (entry.peer == peer) {
      entry.demand = demand;
      entry.last_heard = now;
      return;
    }
  }
}

void DemandTable::touch(NodeId peer, SimTime now) {
  for (auto& entry : entries_) {
    if (entry.peer == peer) {
      entry.last_heard = now;
      return;
    }
  }
}

std::optional<double> DemandTable::demand_of(NodeId peer) const {
  const DemandEntry* entry = find(peer);
  if (entry == nullptr) return std::nullopt;
  return entry->demand;
}

bool DemandTable::is_alive(NodeId peer, SimTime now) const {
  const DemandEntry* entry = find(peer);
  if (entry == nullptr) return false;
  if (liveness_window_ <= 0.0) return true;
  return now - entry->last_heard <= liveness_window_;
}

std::vector<NodeId> DemandTable::by_demand_desc(SimTime now) const {
  std::vector<const DemandEntry*> live;
  live.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (is_alive(entry.peer, now)) live.push_back(&entry);
  }
  std::sort(live.begin(), live.end(),
            [](const DemandEntry* a, const DemandEntry* b) {
              if (a->demand != b->demand) return a->demand > b->demand;
              return a->peer < b->peer;
            });
  std::vector<NodeId> order;
  order.reserve(live.size());
  for (const DemandEntry* entry : live) order.push_back(entry->peer);
  return order;
}

std::vector<NodeId> DemandTable::alive(SimTime now) const {
  std::vector<NodeId> result;
  result.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (is_alive(entry.peer, now)) result.push_back(entry.peer);
  }
  return result;
}

void DemandTable::add_neighbour(NodeId peer, SimTime now) {
  if (find(peer) != nullptr) return;
  entries_.push_back(DemandEntry{peer, 0.0, now});
}

}  // namespace fastcons
