// The per-replica neighbour demand table of paper §4: "Each replica
// maintains a table with its neighbours' data. The table holds at least an
// identifying name and its demand. Before any replication process is
// carried out, this table must be updated... as an added advantage, tells us
// if this replica is available."
//
// Entries are refreshed by DemandAdvert messages; an entry older than the
// liveness window marks the neighbour unreachable and partner policies skip
// it.
#ifndef FASTCONS_DEMAND_DEMAND_TABLE_HPP
#define FASTCONS_DEMAND_DEMAND_TABLE_HPP

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace fastcons {

/// One neighbour's last-advertised state.
struct DemandEntry {
  NodeId peer = kInvalidNode;
  double demand = 0.0;
  SimTime last_heard = 0.0;
};

/// Neighbour demand table with staleness-based liveness.
class DemandTable {
 public:
  /// `liveness_window`: a neighbour not heard from for longer than this is
  /// reported unreachable; <= 0 disables liveness tracking (every neighbour
  /// always considered alive), which matches the static model of §2.
  explicit DemandTable(std::vector<NodeId> neighbours,
                       SimTime liveness_window = 0.0);

  /// Records an advert (or any message doubling as one) from `peer`.
  /// Unknown peers are ignored (overlay churn can race with adverts).
  void update(NodeId peer, double demand, SimTime now);

  /// Refreshes liveness only (any received message proves the link and the
  /// server are up, even if it carries no demand figure).
  void touch(NodeId peer, SimTime now);

  /// Demand of `peer` as last advertised; nullopt if `peer` is not a
  /// neighbour.
  std::optional<double> demand_of(NodeId peer) const;

  bool is_alive(NodeId peer, SimTime now) const;

  /// Neighbours sorted by decreasing demand (ties broken by ascending id so
  /// the order is total and deterministic), dead neighbours excluded.
  std::vector<NodeId> by_demand_desc(SimTime now) const;

  /// Alive neighbours in id order.
  std::vector<NodeId> alive(SimTime now) const;

  const std::vector<DemandEntry>& entries() const noexcept { return entries_; }

  /// Adds a neighbour discovered after construction (island bridges).
  /// No-op if already present.
  void add_neighbour(NodeId peer, SimTime now);

 private:
  const DemandEntry* find(NodeId peer) const;

  std::vector<DemandEntry> entries_;
  SimTime liveness_window_;
};

}  // namespace fastcons

#endif  // FASTCONS_DEMAND_DEMAND_TABLE_HPP
