// The per-replica neighbour demand table of paper §4: "Each replica
// maintains a table with its neighbours' data. The table holds at least an
// identifying name and its demand. Before any replication process is
// carried out, this table must be updated... as an added advantage, tells us
// if this replica is available."
//
// Entries are refreshed by DemandAdvert messages; an entry older than the
// liveness window marks the neighbour unreachable and partner policies skip
// it.
#ifndef FASTCONS_DEMAND_DEMAND_TABLE_HPP
#define FASTCONS_DEMAND_DEMAND_TABLE_HPP

#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "health/peer_health.hpp"

namespace fastcons {

/// One neighbour's last-advertised state.
struct DemandEntry {
  NodeId peer = kInvalidNode;  ///< neighbour id
  double demand = 0.0;         ///< last advertised demand
  SimTime last_heard = 0.0;    ///< when we last received anything from it
  SimTime last_probed = 0.0;  ///< last revival probe sent while presumed dead
};

/// Neighbour demand table with staleness-based liveness.
class DemandTable {
 public:
  /// `liveness_window`: a neighbour not heard from for longer than this is
  /// reported unreachable; <= 0 disables liveness tracking (every neighbour
  /// always considered alive), which matches the static model of §2.
  explicit DemandTable(std::vector<NodeId> neighbours,
                       SimTime liveness_window = 0.0);

  /// Reinitialises as if freshly constructed with these arguments, but
  /// reusing the entry and index storage — the pooled-engine reset path.
  void reset(const std::vector<NodeId>& neighbours, SimTime liveness_window);

  /// Records an advert (or any message doubling as one) from `peer`.
  /// Unknown peers are ignored (overlay churn can race with adverts).
  void update(NodeId peer, double demand, SimTime now);

  /// Refreshes liveness only (any received message proves the link and the
  /// server are up, even if it carries no demand figure).
  void touch(NodeId peer, SimTime now);

  /// Demand of `peer` as last advertised; nullopt if `peer` is not a
  /// neighbour.
  std::optional<double> demand_of(NodeId peer) const;

  bool is_alive(NodeId peer, SimTime now) const;

  /// Same check without the index lookup, for callers already holding the
  /// entry (the advert broadcast iterates entries() directly).
  bool is_alive(const DemandEntry& entry, SimTime now) const noexcept;

  /// Picks the dead neighbour least recently probed, stamps it probed at
  /// `now`, and returns it; kInvalidNode when every neighbour is alive.
  /// Liveness is only ever refreshed by *receiving* traffic, so without a
  /// periodic probe two mutually-expired peers would stay dark forever.
  NodeId next_dead_probe(SimTime now);

  /// Neighbours sorted by decreasing demand (ties broken by ascending id so
  /// the order is total and deterministic), dead neighbours excluded.
  std::vector<NodeId> by_demand_desc(SimTime now) const;

  /// Health-aware variant: `health == nullptr` is exactly the plain
  /// overload. Otherwise peers the tracker derives `down` are excluded and
  /// the sort key becomes demand * health demand_factor, so suspect peers'
  /// demand *decays* in selection order instead of vanishing outright.
  std::vector<NodeId> by_demand_desc(SimTime now,
                                     const PeerHealthTracker* health) const;

  /// Alive neighbours in id order.
  std::vector<NodeId> alive(SimTime now) const;

  /// Health-aware variant: additionally excludes peers derived `down`
  /// (nullptr == plain overload).
  std::vector<NodeId> alive(SimTime now,
                            const PeerHealthTracker* health) const;

  /// All entries in neighbour registration order.
  const std::vector<DemandEntry>& entries() const noexcept { return entries_; }

  /// Adds a neighbour discovered after construction (island bridges).
  /// No-op if already present.
  void add_neighbour(NodeId peer, SimTime now);

 private:
  const DemandEntry* find(NodeId peer) const;
  DemandEntry* find(NodeId peer);

  std::vector<DemandEntry> entries_;
  // (peer, index into entries_), sorted by peer. find/update/touch run on
  // every message the engine handles; typical degrees are tiny, so a binary
  // search over one contiguous array beats both a hash table and a scan of
  // the full entry structs.
  std::vector<std::pair<NodeId, std::uint32_t>> index_;
  SimTime liveness_window_;
};

}  // namespace fastcons

#endif  // FASTCONS_DEMAND_DEMAND_TABLE_HPP
