#include "islands/islands.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "topology/metrics.hpp"

namespace fastcons {

std::vector<std::vector<NodeId>> detect_islands(
    const Graph& g, const std::vector<double>& demand, double threshold) {
  FASTCONS_EXPECTS(demand.size() == g.size());
  std::vector<std::vector<NodeId>> islands;
  std::vector<bool> seen(g.size(), false);
  for (NodeId start = 0; start < g.size(); ++start) {
    if (seen[start] || demand[start] < threshold) continue;
    islands.emplace_back();
    auto& island = islands.back();
    std::queue<NodeId> frontier;
    seen[start] = true;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      island.push_back(u);
      for (const Edge& e : g.neighbours(u)) {
        if (!seen[e.peer] && demand[e.peer] >= threshold) {
          seen[e.peer] = true;
          frontier.push(e.peer);
        }
      }
    }
    std::sort(island.begin(), island.end());
  }
  return islands;
}

std::vector<NodeId> elect_leaders(
    const std::vector<std::vector<NodeId>>& islands,
    const std::vector<double>& demand) {
  std::vector<NodeId> leaders;
  leaders.reserve(islands.size());
  for (const auto& island : islands) {
    FASTCONS_EXPECTS(!island.empty());
    NodeId best = island.front();
    for (const NodeId member : island) {
      FASTCONS_EXPECTS(member < demand.size());
      if (demand[member] > demand[best] ||
          (demand[member] == demand[best] && member < best)) {
        best = member;
      }
    }
    leaders.push_back(best);
  }
  return leaders;
}

std::vector<NodeId> flood_election(const Graph& g,
                                   const std::vector<double>& demand,
                                   double threshold,
                                   std::size_t* rounds_out) {
  FASTCONS_EXPECTS(demand.size() == g.size());
  // claim[n] = best (demand, id) node n has heard of within its island.
  std::vector<NodeId> claim(g.size(), kInvalidNode);
  for (NodeId n = 0; n < g.size(); ++n) {
    if (demand[n] >= threshold) claim[n] = n;
  }
  const auto better = [&](NodeId a, NodeId b) {
    // Is a a stronger claim than b?
    if (b == kInvalidNode) return a != kInvalidNode;
    if (a == kInvalidNode) return false;
    if (demand[a] != demand[b]) return demand[a] > demand[b];
    return a < b;
  };
  std::size_t rounds = 0;
  for (bool changed = true; changed; ++rounds) {
    changed = false;
    // Synchronous round: everyone advertises the claim from the previous
    // round (read from a snapshot so order does not matter).
    const std::vector<NodeId> snapshot = claim;
    for (NodeId n = 0; n < g.size(); ++n) {
      if (snapshot[n] == kInvalidNode) continue;
      for (const Edge& e : g.neighbours(n)) {
        if (demand[e.peer] < threshold) continue;  // not an island member
        if (better(snapshot[n], claim[e.peer])) {
          claim[e.peer] = snapshot[n];
          changed = true;
        }
      }
    }
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return claim;
}

std::vector<Bridge> compute_bridges(const Graph& g,
                                    const std::vector<NodeId>& leaders) {
  if (leaders.size() < 2) return {};
  if (!is_connected(g)) {
    throw ConfigError("compute_bridges requires a connected underlay");
  }
  // Metric closure: pairwise shortest-path latencies between leaders.
  const std::size_t k = leaders.size();
  std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    const auto d = shortest_latencies(g, leaders[i]);
    for (std::size_t j = 0; j < k; ++j) dist[i][j] = d[leaders[j]];
  }
  // Prim's MST over the closure.
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(k, false);
  std::vector<double> best(k, inf);
  std::vector<std::size_t> parent(k, 0);
  best[0] = 0.0;
  std::vector<Bridge> bridges;
  for (std::size_t iter = 0; iter < k; ++iter) {
    std::size_t u = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (!in_tree[i] && (u == k || best[i] < best[u])) u = i;
    }
    FASTCONS_ASSERT(u < k);
    in_tree[u] = true;
    if (u != 0) {
      bridges.push_back(
          Bridge{leaders[parent[u]], leaders[u], dist[parent[u]][u]});
    }
    for (std::size_t v = 0; v < k; ++v) {
      if (!in_tree[v] && dist[u][v] < best[v]) {
        best[v] = dist[u][v];
        parent[v] = u;
      }
    }
  }
  return bridges;
}

}  // namespace fastcons
