// Paper §6 "Complex demand distribution": clusters of high-demand replicas
// ("islands") separated by low-demand regions slow down inter-island
// propagation. The paper sketches the remedy as ongoing work — island
// detection, a leader per island, and a leader interconnection network. We
// implement all three:
//
//   detect_islands   — connected components of the demand >= threshold
//                      induced subgraph
//   elect_leaders    — max-demand member per island (deterministic tie-break)
//   flood_election   — the same election as a distributed message-passing
//                      round protocol (validates the centralised shortcut)
//   compute_bridges  — overlay links between leaders: MST over the metric
//                      closure of leader-to-leader shortest-path latencies,
//                      so every island pair is connected at minimal cost
#ifndef FASTCONS_ISLANDS_ISLANDS_HPP
#define FASTCONS_ISLANDS_ISLANDS_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "topology/graph.hpp"

namespace fastcons {

/// A bridge overlay link between two island leaders. `latency` is the
/// underlying shortest-path latency between them (the overlay rides on the
/// physical network).
struct Bridge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double latency = 0.0;
};

/// Connected components of the subgraph induced by nodes with
/// demand >= threshold. Singleton high-demand nodes count as islands.
/// Ordered by smallest member id.
std::vector<std::vector<NodeId>> detect_islands(const Graph& g,
                                                const std::vector<double>& demand,
                                                double threshold);

/// Leader of each island: the member with maximum (demand, then lowest id).
std::vector<NodeId> elect_leaders(const std::vector<std::vector<NodeId>>& islands,
                                  const std::vector<double>& demand);

/// Distributed flooding election run to fixpoint on each island's subgraph:
/// every member repeatedly tells island neighbours the best (demand, id)
/// claim it knows. Returns per-node leader (kInvalidNode for non-members)
/// and reports the number of synchronous rounds until quiescence via
/// `rounds_out` (bounded by the island diameter + 1).
std::vector<NodeId> flood_election(const Graph& g,
                                   const std::vector<double>& demand,
                                   double threshold,
                                   std::size_t* rounds_out = nullptr);

/// Minimum-latency spanning tree over the metric closure of the leaders:
/// |leaders| - 1 bridges connecting every island. Requires the underlying
/// graph to be connected.
std::vector<Bridge> compute_bridges(const Graph& g,
                                    const std::vector<NodeId>& leaders);

}  // namespace fastcons

#endif  // FASTCONS_ISLANDS_ISLANDS_HPP
