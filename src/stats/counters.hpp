// Message/byte accounting used by the overhead experiment (E8): every
// runtime increments these when a protocol message is sent.
#ifndef FASTCONS_STATS_COUNTERS_HPP
#define FASTCONS_STATS_COUNTERS_HPP

#include <array>
#include <cstdint>
#include <string_view>

namespace fastcons {

/// Message classes tracked separately so the fast-path overhead can be
/// reported against the baseline anti-entropy traffic.
enum class TrafficClass : std::uint8_t {
  session_control,   // SessionRequest / SessionSummary headers
  session_payload,   // updates carried by sessions
  fast_control,      // FastOffer / FastAck
  fast_payload,      // updates carried by fast pushes
  demand_advert,     // periodic demand/liveness adverts
  island_control,    // island leader election / bridge maintenance
  kCount,
};

std::string_view traffic_class_name(TrafficClass c) noexcept;

/// Plain counters; value type, merged across nodes/repetitions.
class TrafficCounters {
 public:
  void record(TrafficClass c, std::uint64_t bytes) noexcept {
    auto& cell = cells_[static_cast<std::size_t>(c)];
    ++cell.messages;
    cell.bytes += bytes;
  }

  void merge(const TrafficCounters& other) noexcept {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].messages += other.cells_[i].messages;
      cells_[i].bytes += other.cells_[i].bytes;
    }
  }

  std::uint64_t messages(TrafficClass c) const noexcept {
    return cells_[static_cast<std::size_t>(c)].messages;
  }
  std::uint64_t bytes(TrafficClass c) const noexcept {
    return cells_[static_cast<std::size_t>(c)].bytes;
  }

  std::uint64_t total_messages() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) sum += cell.messages;
    return sum;
  }
  std::uint64_t total_bytes() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) sum += cell.bytes;
    return sum;
  }

 private:
  struct Cell {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  std::array<Cell, static_cast<std::size_t>(TrafficClass::kCount)> cells_{};
};

}  // namespace fastcons

#endif  // FASTCONS_STATS_COUNTERS_HPP
