#include "stats/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FASTCONS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FASTCONS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace fastcons
