#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace fastcons {

void EmpiricalCdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  FASTCONS_EXPECTS(!samples_.empty());
  FASTCONS_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  // Summing in sorted order makes the result a function of the sample
  // multiset alone — insertion order and whether a sorting accessor ran
  // first must not perturb the last ulp, or the harness's bit-identical
  // results guarantee breaks.
  ensure_sorted();
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalCdf::min() const {
  FASTCONS_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  FASTCONS_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::vector<double> EmpiricalCdf::curve(double lo, double hi,
                                        std::size_t points) const {
  FASTCONS_EXPECTS(points >= 2);
  FASTCONS_EXPECTS(lo <= hi);
  std::vector<double> values;
  values.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    values.push_back(at(lo + step * static_cast<double>(i)));
  }
  return values;
}

const std::vector<double>& EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace fastcons
