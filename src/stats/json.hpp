// Minimal JSON document builder for the benchmark result files.
//
// Written here instead of pulling a dependency because the harness needs
// byte-deterministic output: the same run configuration must serialise to
// the identical string regardless of thread count or platform, so result
// files can be diffed and digested. Object keys keep insertion order,
// doubles render via std::to_chars (shortest round-trip form), and no
// locale-dependent formatting is involved anywhere.
#ifndef FASTCONS_STATS_JSON_HPP
#define FASTCONS_STATS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fastcons {

/// One JSON value: null, bool, number, string, array or object.
/// Objects preserve insertion order so serialisation is deterministic.
class JsonValue {
 public:
  /// Constructs null.
  JsonValue() noexcept : kind_(Kind::null) {}
  JsonValue(bool b) noexcept : kind_(Kind::boolean), bool_(b) {}
  JsonValue(std::int64_t v) noexcept : kind_(Kind::integer), int_(v) {}
  JsonValue(std::uint64_t v) noexcept : kind_(Kind::unsigned_integer), uint_(v) {}
  JsonValue(int v) noexcept : JsonValue(static_cast<std::int64_t>(v)) {}
  /// Non-finite doubles (NaN, +-inf) serialise as null, as JSON has no
  /// representation for them.
  JsonValue(double v) noexcept : kind_(Kind::number), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::string), string_(std::move(s)) {}
  JsonValue(std::string_view s) : JsonValue(std::string(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  /// Creates an empty array.
  static JsonValue array();
  /// Creates an empty object.
  static JsonValue object();

  bool is_array() const noexcept { return kind_ == Kind::array; }
  bool is_object() const noexcept { return kind_ == Kind::object; }

  /// Appends to an array. Requires is_array().
  void push_back(JsonValue v);

  /// Appends a key/value pair to an object (no de-duplication; callers use
  /// unique keys). Requires is_object().
  void add(std::string key, JsonValue v);

  /// Serialises compactly (no whitespace) — the canonical digestable form.
  std::string dump() const;

  /// Serialises with 2-space indentation for human-readable files.
  std::string dump_pretty() const;

 private:
  enum class Kind : std::uint8_t {
    null,
    boolean,
    integer,
    unsigned_integer,
    number,
    string,
    array,
    object,
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters) and
/// appends the quoted result to `out`.
void json_escape(std::string_view s, std::string& out);

/// FNV-1a 64-bit hash of `bytes`; the digest printed for every result file
/// so two runs can be compared by eye.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// fnv1a64 rendered as 16 lowercase hex digits.
std::string digest_hex(std::string_view bytes);

}  // namespace fastcons

#endif  // FASTCONS_STATS_JSON_HPP
