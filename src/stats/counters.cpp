#include "stats/counters.hpp"

namespace fastcons {

std::string_view traffic_class_name(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::session_control: return "session-control";
    case TrafficClass::session_payload: return "session-payload";
    case TrafficClass::fast_control: return "fast-control";
    case TrafficClass::fast_payload: return "fast-payload";
    case TrafficClass::demand_advert: return "demand-advert";
    case TrafficClass::island_control: return "island-control";
    case TrafficClass::kCount: break;
  }
  return "?";
}

}  // namespace fastcons
