// Single-pass mean/variance/extrema accumulator (Welford).
#ifndef FASTCONS_STATS_ONLINE_STATS_HPP
#define FASTCONS_STATS_ONLINE_STATS_HPP

#include <cstdint>
#include <limits>

namespace fastcons {

/// Numerically stable streaming statistics. Regular value type.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const OnlineStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fastcons

#endif  // FASTCONS_STATS_ONLINE_STATS_HPP
