// Empirical cumulative distribution over collected samples — the paper's
// figures 5 and 6 are exactly this object evaluated on a session-count grid.
#ifndef FASTCONS_STATS_CDF_HPP
#define FASTCONS_STATS_CDF_HPP

#include <cstddef>
#include <vector>

namespace fastcons {

/// Collects samples, then answers P(X <= x) and quantile queries.
/// Sorting is deferred and cached; adding samples invalidates the cache.
class EmpiricalCdf {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x. Returns 0 when empty.
  double at(double x) const;

  /// q-quantile for q in [0,1] (nearest-rank). Requires non-empty.
  double quantile(double q) const;

  double mean() const;
  double min() const;
  double max() const;

  /// Evaluates the CDF at `points` evenly spaced values from lo to hi
  /// inclusive; convenient for printing figure series.
  std::vector<double> curve(double lo, double hi, std::size_t points) const;

  /// Read access to the (sorted) sample vector.
  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace fastcons

#endif  // FASTCONS_STATS_CDF_HPP
