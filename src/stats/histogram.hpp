// Fixed-width-bin histogram for degree distributions and latency spreads.
#ifndef FASTCONS_STATS_HISTOGRAM_HPP
#define FASTCONS_STATS_HISTOGRAM_HPP

#include <cstdint>
#include <vector>

namespace fastcons {

/// Histogram over [lo, hi) with `bins` equal-width bins plus explicit
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const;
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fastcons

#endif  // FASTCONS_STATS_HISTOGRAM_HPP
