// Fixed-width ASCII table and CSV writers for benchmark output. Every bench
// binary prints the same rows/series the paper reports through this.
#ifndef FASTCONS_STATS_TABLE_HPP
#define FASTCONS_STATS_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace fastcons {

/// Accumulates rows of stringly-typed cells, then renders them aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 4);
  static std::string num(std::uint64_t value);

  /// Renders with column alignment and a header underline.
  void print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastcons

#endif  // FASTCONS_STATS_TABLE_HPP
