#include "stats/json.hpp"

#include <charconv>
#include <cmath>

#include "common/assert.hpp"

namespace fastcons {
namespace {

void append_number(std::string& out, auto value) {
  char buf[40];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  FASTCONS_EXPECTS(result.ec == std::errc{});
  out.append(buf, result.ptr);
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::object;
  return v;
}

void JsonValue::push_back(JsonValue v) {
  FASTCONS_EXPECTS(kind_ == Kind::array);
  items_.push_back(std::move(v));
}

void JsonValue::add(std::string key, JsonValue v) {
  FASTCONS_EXPECTS(kind_ == Kind::object);
  members_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::null:
      out += "null";
      return;
    case Kind::boolean:
      out += bool_ ? "true" : "false";
      return;
    case Kind::integer:
      append_number(out, int_);
      return;
    case Kind::unsigned_integer:
      append_number(out, uint_);
      return;
    case Kind::number:
      if (!std::isfinite(double_)) {
        out += "null";
      } else {
        append_number(out, double_);
      }
      return;
    case Kind::string:
      json_escape(string_, out);
      return;
    case Kind::array: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::object: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        json_escape(members_[i].first, out);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        members_[i].second.write(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out.push_back('\n');
  return out;
}

void json_escape(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string digest_hex(std::string_view bytes) {
  const std::uint64_t h = fnv1a64(bytes);
  constexpr char hex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = hex[(h >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace fastcons
