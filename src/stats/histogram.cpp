#include "stats/histogram.hpp"

#include "common/assert.hpp"

namespace fastcons {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  FASTCONS_EXPECTS(bins > 0);
  FASTCONS_EXPECTS(hi > lo);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  FASTCONS_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  FASTCONS_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  FASTCONS_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace fastcons
