// Peer-health tracking: a per-neighbour up -> suspect -> down state machine
// driven purely by message recency (and, on the live path, connect
// failures). The paper's demand adverts double as a liveness signal (§4:
// the table "tells us if this replica is available"); this layer turns that
// signal into graded state so push-target selection can *decay* demand for
// silent peers instead of flipping them alive/dead at one threshold.
//
// Determinism contract (this directory is scanned by
// tools/determinism_lint): the tracker never reads a clock, never draws
// randomness, and derives state from (last_heard, failures, now) at query
// time — no background transitions, no mutation on read. With
// HealthConfig::enabled == false every query returns `up` and every factor
// is 1.0, so default-off configurations are bit-identical to a build
// without this layer.
#ifndef FASTCONS_HEALTH_PEER_HEALTH_HPP
#define FASTCONS_HEALTH_PEER_HEALTH_HPP

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fastcons {

/// Per-neighbour health verdict. Ordering matters: worse states compare
/// greater, so callers can write `state >= PeerHealth::suspect`.
enum class PeerHealth : std::uint8_t { up = 0, suspect = 1, down = 2 };

/// "up" / "suspect" / "down".
std::string_view peer_health_name(PeerHealth s) noexcept;

struct HealthConfig {
  /// Master switch. Off (the default) keeps every sim digest byte-identical:
  /// all queries report `up` and demand factors of 1.0.
  bool enabled = false;

  /// Silence (now - last_heard, protocol units) at which a peer becomes
  /// suspect. The transition happens exactly at the threshold: silence >=
  /// suspect_after is suspect. With advert_period 0.25 the default means
  /// six consecutive missed adverts.
  SimTime suspect_after = 1.5;

  /// Silence at which a suspect peer is declared down (>= down_after).
  SimTime down_after = 4.0;

  /// Multiplier applied to a suspect peer's advertised demand during push
  /// target selection — the "aging" half of demand decay. Down peers decay
  /// to zero (excluded entirely).
  double suspect_demand_factor = 0.25;

  /// Live path only: this many consecutive connect failures force the peer
  /// to at least `suspect` regardless of silence (sim runtimes never call
  /// record_failure). 0 disables failure-driven suspicion.
  std::uint32_t failure_threshold = 3;
};

/// Snapshot of one peer's derived health, for introspection (NetStats
/// mirrors these fields so operators and the soak harness read the same
/// values the engine acts on).
struct PeerHealthView {
  NodeId peer = kInvalidNode;
  PeerHealth state = PeerHealth::up;
  SimTime last_heard = 0.0;
  /// When the current degradation began (protocol units); 0 while up.
  /// Derived: min of (last_heard + suspect_after) and the first connect
  /// failure of the current consecutive run, whichever applies.
  SimTime suspect_since = 0.0;
  std::uint32_t consecutive_failures = 0;
};

/// Draw-free health tracker for one replica's neighbour set.
class PeerHealthTracker {
 public:
  PeerHealthTracker() = default;
  PeerHealthTracker(const std::vector<NodeId>& peers, const HealthConfig& config,
                    SimTime now);

  /// Reinitialises as if freshly constructed (pooled-engine reset path),
  /// reusing entry storage.
  void reset(const std::vector<NodeId>& peers, const HealthConfig& config,
             SimTime now);

  /// Same, starting empty; callers add peers one by one (the engine feeds
  /// it from the demand table's entries without building a temporary list).
  void reset(const HealthConfig& config);

  bool enabled() const noexcept { return config_.enabled; }
  const HealthConfig& config() const noexcept { return config_; }

  /// Adds a peer discovered after construction (island bridges). No-op if
  /// already tracked.
  void add_peer(NodeId peer, SimTime now);

  /// Any received message proves the peer is up: refreshes last_heard and
  /// clears the consecutive-failure run. Returns the state the peer was in
  /// *before* this contact, so callers can observe re-promotions (a `down`
  /// return means this contact revived the peer). Unknown peers return `up`
  /// and are ignored.
  PeerHealth record_contact(NodeId peer, SimTime now);

  /// Live path: a connect attempt to `peer` failed.
  void record_failure(NodeId peer, SimTime now);

  /// Derived state at `now`. Unknown peers (and disabled trackers) are `up`.
  PeerHealth state(NodeId peer, SimTime now) const;

  /// Demand multiplier for push-target selection: 1.0 (up),
  /// suspect_demand_factor (suspect), 0.0 (down).
  double demand_factor(NodeId peer, SimTime now) const;

  /// Full derived snapshot for one peer / all peers (peer-id order).
  PeerHealthView view(NodeId peer, SimTime now) const;
  std::vector<PeerHealthView> views(SimTime now) const;

  /// True when every tracked peer derives `up` at `now`.
  bool all_up(SimTime now) const;

  /// Count of down -> up re-promotions observed via record_contact since
  /// construction/reset (the soak harness' recovery invariant).
  std::uint64_t recoveries() const noexcept { return recoveries_; }

 private:
  struct Entry {
    NodeId peer = kInvalidNode;
    SimTime last_heard = 0.0;
    SimTime first_failure = 0.0;  ///< start of the consecutive-failure run
    std::uint32_t failures = 0;   ///< consecutive connect failures
  };

  const Entry* find(NodeId peer) const;
  Entry* find(NodeId peer);
  PeerHealth derive(const Entry& entry, SimTime now) const noexcept;
  SimTime derive_suspect_since(const Entry& entry, SimTime now) const noexcept;

  HealthConfig config_;
  std::vector<Entry> entries_;  // sorted by peer id
  std::uint64_t recoveries_ = 0;
};

}  // namespace fastcons

#endif  // FASTCONS_HEALTH_PEER_HEALTH_HPP
