#include "health/peer_health.hpp"

#include <algorithm>

namespace fastcons {

std::string_view peer_health_name(PeerHealth s) noexcept {
  switch (s) {
    case PeerHealth::up: return "up";
    case PeerHealth::suspect: return "suspect";
    case PeerHealth::down: return "down";
  }
  return "?";
}

PeerHealthTracker::PeerHealthTracker(const std::vector<NodeId>& peers,
                                     const HealthConfig& config, SimTime now) {
  reset(peers, config, now);
}

void PeerHealthTracker::reset(const std::vector<NodeId>& peers,
                              const HealthConfig& config, SimTime now) {
  reset(config);
  entries_.reserve(peers.size());
  for (const NodeId peer : peers) add_peer(peer, now);
}

void PeerHealthTracker::reset(const HealthConfig& config) {
  config_ = config;
  entries_.clear();
  recoveries_ = 0;
}

void PeerHealthTracker::add_peer(NodeId peer, SimTime now) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), peer,
      [](const Entry& e, NodeId p) { return e.peer < p; });
  if (it != entries_.end() && it->peer == peer) return;
  entries_.insert(it, Entry{peer, now, 0.0, 0});
}

const PeerHealthTracker::Entry* PeerHealthTracker::find(NodeId peer) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), peer,
      [](const Entry& e, NodeId p) { return e.peer < p; });
  if (it == entries_.end() || it->peer != peer) return nullptr;
  return &*it;
}

PeerHealthTracker::Entry* PeerHealthTracker::find(NodeId peer) {
  return const_cast<Entry*>(
      static_cast<const PeerHealthTracker*>(this)->find(peer));
}

PeerHealth PeerHealthTracker::derive(const Entry& entry,
                                     SimTime now) const noexcept {
  if (!config_.enabled) return PeerHealth::up;
  const SimTime silence = now - entry.last_heard;
  if (config_.down_after > 0.0 && silence >= config_.down_after) {
    return PeerHealth::down;
  }
  if (config_.suspect_after > 0.0 && silence >= config_.suspect_after) {
    return PeerHealth::suspect;
  }
  if (config_.failure_threshold > 0 &&
      entry.failures >= config_.failure_threshold) {
    return PeerHealth::suspect;
  }
  return PeerHealth::up;
}

SimTime PeerHealthTracker::derive_suspect_since(const Entry& entry,
                                                SimTime now) const noexcept {
  if (derive(entry, now) == PeerHealth::up) return 0.0;
  SimTime since = now;
  if (config_.suspect_after > 0.0 &&
      now - entry.last_heard >= config_.suspect_after) {
    since = std::min(since, entry.last_heard + config_.suspect_after);
  }
  if (config_.failure_threshold > 0 &&
      entry.failures >= config_.failure_threshold) {
    since = std::min(since, entry.first_failure);
  }
  return since;
}

PeerHealth PeerHealthTracker::record_contact(NodeId peer, SimTime now) {
  Entry* entry = find(peer);
  if (entry == nullptr) return PeerHealth::up;
  const PeerHealth before = derive(*entry, now);
  entry->last_heard = now;
  entry->failures = 0;
  entry->first_failure = 0.0;
  if (before == PeerHealth::down) ++recoveries_;
  return before;
}

void PeerHealthTracker::record_failure(NodeId peer, SimTime now) {
  Entry* entry = find(peer);
  if (entry == nullptr) return;
  if (entry->failures == 0) entry->first_failure = now;
  ++entry->failures;
}

PeerHealth PeerHealthTracker::state(NodeId peer, SimTime now) const {
  const Entry* entry = find(peer);
  if (entry == nullptr) return PeerHealth::up;
  return derive(*entry, now);
}

double PeerHealthTracker::demand_factor(NodeId peer, SimTime now) const {
  switch (state(peer, now)) {
    case PeerHealth::up: return 1.0;
    case PeerHealth::suspect: return config_.suspect_demand_factor;
    case PeerHealth::down: return 0.0;
  }
  return 1.0;
}

PeerHealthView PeerHealthTracker::view(NodeId peer, SimTime now) const {
  PeerHealthView v;
  v.peer = peer;
  const Entry* entry = find(peer);
  if (entry == nullptr) return v;
  v.state = derive(*entry, now);
  v.last_heard = entry->last_heard;
  v.suspect_since = derive_suspect_since(*entry, now);
  v.consecutive_failures = entry->failures;
  return v;
}

std::vector<PeerHealthView> PeerHealthTracker::views(SimTime now) const {
  std::vector<PeerHealthView> all;
  all.reserve(entries_.size());
  for (const Entry& entry : entries_) all.push_back(view(entry.peer, now));
  return all;
}

bool PeerHealthTracker::all_up(SimTime now) const {
  return std::all_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return derive(e, now) == PeerHealth::up;
  });
}

}  // namespace fastcons
