// Exception hierarchy. Recoverable runtime failures (bad configuration,
// malformed wire data, socket errors) throw; broken invariants abort via
// assert.hpp instead.
#ifndef FASTCONS_COMMON_ERROR_HPP
#define FASTCONS_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace fastcons {

/// Root of all library-thrown exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Invalid user-supplied configuration (negative rates, empty topologies...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Malformed or oversized data on the wire.
class CodecError : public Error {
 public:
  using Error::Error;
};

/// Socket / OS-level transport failure. Carries errno text in what().
class TransportError : public Error {
 public:
  using Error::Error;
};

}  // namespace fastcons

#endif  // FASTCONS_COMMON_ERROR_HPP
