// Fundamental identifier and time types shared by every module.
#ifndef FASTCONS_COMMON_TYPES_HPP
#define FASTCONS_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace fastcons {

/// Index of a replica/node inside a topology. Dense, 0-based.
using NodeId = std::uint32_t;

/// Per-origin write sequence number; the first write of a node is seq 1 so
/// that 0 can mean "nothing seen from this origin".
using SeqNo = std::uint64_t;

/// Simulated time. The unit convention throughout the library follows the
/// paper: 1.0 == the mean anti-entropy session period of a single replica,
/// so measured propagation times are directly "numbers of sessions".
using SimTime = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr SimTime kSimTimeInf = std::numeric_limits<SimTime>::infinity();

}  // namespace fastcons

#endif  // FASTCONS_COMMON_TYPES_HPP
