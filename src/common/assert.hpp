// Precondition / invariant checking in the spirit of the Core Guidelines'
// Expects()/Ensures(): violations indicate programmer errors, so they abort
// with a location message rather than throwing (callers cannot meaningfully
// recover from a broken invariant).
#ifndef FASTCONS_COMMON_ASSERT_HPP
#define FASTCONS_COMMON_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace fastcons::detail {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "fastcons: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace fastcons::detail

#define FASTCONS_EXPECTS(cond)                                          \
  ((cond) ? static_cast<void>(0)                                        \
          : ::fastcons::detail::assert_fail("precondition", #cond,      \
                                            __FILE__, __LINE__))

#define FASTCONS_ENSURES(cond)                                          \
  ((cond) ? static_cast<void>(0)                                        \
          : ::fastcons::detail::assert_fail("postcondition", #cond,     \
                                            __FILE__, __LINE__))

#define FASTCONS_ASSERT(cond)                                           \
  ((cond) ? static_cast<void>(0)                                        \
          : ::fastcons::detail::assert_fail("invariant", #cond,         \
                                            __FILE__, __LINE__))

#endif  // FASTCONS_COMMON_ASSERT_HPP
