// Tiny helpers for reading benchmark/experiment overrides from the
// environment (e.g. FASTCONS_REPS=500 ./bench_fig5_cdf50). Benchmarks must
// run with no arguments, so the environment is the only knob.
#ifndef FASTCONS_COMMON_ENV_HPP
#define FASTCONS_COMMON_ENV_HPP

#include <cstdint>
#include <string>

namespace fastcons {

/// Returns the value of `name` parsed as u64, or `fallback` when unset or
/// unparsable.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// Returns the value of `name` parsed as double, or `fallback`.
double env_double(const std::string& name, double fallback);

}  // namespace fastcons

#endif  // FASTCONS_COMMON_ENV_HPP
