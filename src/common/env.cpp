#include "common/env.hpp"

#include <cstdlib>

namespace fastcons {

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

}  // namespace fastcons
