#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/thread_annotations.hpp"

namespace fastcons {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::warn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void init_log_from_env() {
  const char* env = std::getenv("FASTCONS_LOG");
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "trace") set_log_threshold(LogLevel::trace);
  else if (value == "debug") set_log_threshold(LogLevel::debug);
  else if (value == "info") set_log_threshold(LogLevel::info);
  else if (value == "warn") set_log_threshold(LogLevel::warn);
  else if (value == "error") set_log_threshold(LogLevel::error);
}

namespace detail {

void log_write(LogLevel level, std::string_view component,
               std::string_view message) {
  // One mutex keeps multi-threaded (net runtime) lines from interleaving.
  static Mutex mutex;
  const MutexLock lock(mutex);
  std::fprintf(stderr, "[%s %.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace fastcons
