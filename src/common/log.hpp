// Minimal leveled logger. Off (warn-and-above) by default so that benchmark
// output stays clean; tests and examples can raise verbosity. Not a general
// logging framework on purpose (P.11: encapsulate the messy construct once).
#ifndef FASTCONS_COMMON_LOG_HPP
#define FASTCONS_COMMON_LOG_HPP

#include <sstream>
#include <string_view>

namespace fastcons {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4 };

/// Global threshold; messages below it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Reads FASTCONS_LOG (trace|debug|info|warn|error) if present.
void init_log_from_env();

namespace detail {
void log_write(LogLevel level, std::string_view component,
               std::string_view message);
}

/// Stream-style log statement: FASTCONS_LOG(info, "net") << "bound " << port;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) noexcept
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled()) detail::log_write(level_, component_, stream_.str());
  }

  bool enabled() const noexcept { return level_ >= log_threshold(); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace fastcons

#define FASTCONS_LOG(level, component) \
  ::fastcons::LogLine(::fastcons::LogLevel::level, component)

#endif  // FASTCONS_COMMON_LOG_HPP
