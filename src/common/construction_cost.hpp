// Thread-local accounting of per-trial construction time.
//
// Scenario trials spend wall-clock in two phases: building state (topology
// generation, demand models, wiring a SimNetwork) and executing simulator
// events. The harness reports the two separately per sweep point
// (timing.construction_ms / timing.event_ms) so the construction tax — and
// the effect of pooling/reset — is visible in every results file. Trial
// code marks its construction regions with a ConstructionCost::Scope; the
// runner samples thread_ns() around each trial, exactly like
// Simulator::thread_events_executed().
#ifndef FASTCONS_COMMON_CONSTRUCTION_COST_HPP
#define FASTCONS_COMMON_CONSTRUCTION_COST_HPP

#include <chrono>
#include <cstdint>

namespace fastcons {

/// Per-thread running total of time spent in construction scopes.
class ConstructionCost {
 public:
  /// Nanoseconds accumulated by every Scope on the calling thread.
  static std::uint64_t thread_ns() noexcept;

  /// RAII region marker. Scopes nest: only the outermost scope adds its
  /// elapsed time, so a SimNetwork build inside an already-marked trial
  /// construction block is not double-counted.
  class Scope {
   public:
    Scope() noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::chrono::steady_clock::time_point started_;
    bool outermost_;
  };
};

}  // namespace fastcons

#endif  // FASTCONS_COMMON_CONSTRUCTION_COST_HPP
