#include "common/construction_cost.hpp"

namespace fastcons {
namespace {

thread_local std::uint64_t t_construction_ns = 0;
thread_local int t_scope_depth = 0;

}  // namespace

std::uint64_t ConstructionCost::thread_ns() noexcept {
  return t_construction_ns;
}

ConstructionCost::Scope::Scope() noexcept
    : started_(std::chrono::steady_clock::now()),
      outermost_(t_scope_depth++ == 0) {}

ConstructionCost::Scope::~Scope() {
  --t_scope_depth;
  if (!outermost_) return;
  const auto elapsed = std::chrono::steady_clock::now() - started_;
  t_construction_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

}  // namespace fastcons
