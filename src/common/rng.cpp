#include "common/rng.hpp"

#include <cmath>

namespace fastcons {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  FASTCONS_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next_u64();
  const std::uint64_t n = span + 1;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t floor = (~n + 1) % n;  // == 2^64 mod n
    while (l < floor) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) noexcept {
  FASTCONS_EXPECTS(n > 0);
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform(double lo, double hi) noexcept {
  FASTCONS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) noexcept {
  FASTCONS_EXPECTS(mean > 0.0);
  // -log(1 - u) with u in [0,1) never evaluates log(0).
  return -mean * std::log1p(-next_double());
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  FASTCONS_EXPECTS(n >= 1);
  FASTCONS_EXPECTS(s >= 0.0);
  if (n == 1) return 1;
  // Rejection-inversion (Hörmann & Derflinger). H is the integral of the
  // unnormalised density x^-s, extended piecewise for s == 1.
  const auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) / (1.0 - s));
  };
  const auto h_inv = [s](double x) {
    return s == 1.0 ? std::exp(x) : std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
  };
  const double h_x1 = h(1.5) - 1.0;
  const double h_n = h(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = h_x1 + next_double() * (h_n - h_x1);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k;
  }
}

Rng Rng::split() noexcept {
  Rng child(next_u64());
  return child;
}

}  // namespace fastcons
