// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** seeded via splitmix64 instead of using
// std::mt19937 + std::distributions because the standard distributions are
// implementation-defined: the same seed produces different streams on
// different standard libraries, which would make every experiment in this
// repository irreproducible across platforms. All distribution code here is
// explicit and fully specified.
#ifndef FASTCONS_COMMON_RNG_HPP
#define FASTCONS_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace fastcons {

/// Deterministic 64-bit PRNG (xoshiro256**). Cheap to copy; copies diverge
/// independently from the copied state.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64, which
  /// guarantees a non-zero, well-mixed state for every seed including 0.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64() noexcept;

  /// Uniform on [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi. Uses
  /// rejection sampling (Lemire) so the result is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer on [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Uniform real on [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Exponential with the given mean (inverse rate). Requires mean > 0.
  double exponential(double mean) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Zipf-distributed rank on [1, n] with exponent s >= 0 (s == 0 is
  /// uniform). Sampled by inversion over the precomputable CDF-free
  /// rejection-inversion method of Hörmann; exact for all n >= 1.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      using std::swap;
      swap(v[i], v[index(i + 1)]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    FASTCONS_EXPECTS(!v.empty());
    return v[index(v.size())];
  }

  /// Derives an independent child generator; used to give every node /
  /// repetition its own stream so that adding consumers does not perturb
  /// other streams.
  Rng split() noexcept;

  /// State equality. Two generators seeded identically compare equal
  /// exactly when they have consumed the same draw sequence, which is how
  /// the reset-equivalence tests prove pooled trials replay fresh trials
  /// draw-for-draw.
  friend bool operator==(const Rng& a, const Rng& b) noexcept {
    return a.s_[0] == b.s_[0] && a.s_[1] == b.s_[1] && a.s_[2] == b.s_[2] &&
           a.s_[3] == b.s_[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace fastcons

#endif  // FASTCONS_COMMON_RNG_HPP
