// Clang thread-safety annotations over a minimal annotated mutex.
//
// The net layer's lock discipline ("engine_mutex_ guards the engine and
// NOTHING else; no socket syscall runs under it", see net/server.hpp) and the
// guarded NetStats counters were, until this header existed, enforced only by
// comments. These macros make the discipline machine-checked: on Clang,
// `-Wthread-safety` (promoted to an error by FASTCONS_WERROR builds and the
// CI clang job) rejects any access to a GUARDED_BY member without its mutex
// held and any call into an EXCLUDES(engine_mutex_) I/O path while the engine
// lock is held. On GCC the macros expand to nothing and the wrappers behave
// exactly like std::mutex / std::lock_guard.
//
// Conventions (see docs/architecture.md "Correctness tooling"):
//   - every mutex-protected member carries GUARDED_BY(its_mutex_);
//   - functions that acquire a mutex internally are annotated
//     EXCLUDES(that_mutex_) so they cannot be called with it already held;
//   - socket-syscall paths are EXCLUDES(engine_mutex_) — moving I/O under the
//     engine lock is a compile error, not a review comment;
//   - state owned by a single thread (e.g. the server loop's PeerLink
//     transport fields) is deliberately left unannotated and documented as
//     such; TSan covers it at runtime.
#ifndef FASTCONS_COMMON_THREAD_ANNOTATIONS_HPP
#define FASTCONS_COMMON_THREAD_ANNOTATIONS_HPP

#include <mutex>

#if defined(__clang__)
#define FASTCONS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FASTCONS_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability ("mutex").
#define FASTCONS_CAPABILITY(x) FASTCONS_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime equals a critical section.
#define FASTCONS_SCOPED_CAPABILITY FASTCONS_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be accessed while holding the given mutex.
#define GUARDED_BY(x) FASTCONS_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member: the pointee may only be accessed while holding the mutex.
#define PT_GUARDED_BY(x) FASTCONS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the given mutex(es) when calling.
#define REQUIRES(...) \
  FASTCONS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es): the function acquires them
/// itself (or calls something that must run unlocked, e.g. socket I/O).
#define EXCLUDES(...) FASTCONS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the mutex and returns with it held.
#define ACQUIRE(...) \
  FASTCONS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a held mutex.
#define RELEASE(...) \
  FASTCONS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attempts the lock; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  FASTCONS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; always carry a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  FASTCONS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fastcons {

/// std::mutex with capability annotations; drop-in except that the analysis
/// now tracks lock/unlock pairing and GUARDED_BY accesses.
class FASTCONS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped handle, for APIs that need a std::mutex (condition
  /// variables). Accesses through it are invisible to the analysis.
  std::mutex& native() NO_THREAD_SAFETY_ANALYSIS { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// capability: the guarded region is the lexical scope of the lock object.
class FASTCONS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace fastcons

#endif  // FASTCONS_COMMON_THREAD_ANNOTATIONS_HPP
