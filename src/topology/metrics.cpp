#include "topology/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {

std::vector<std::size_t> bfs_hops(const Graph& g, NodeId source) {
  FASTCONS_EXPECTS(source < g.size());
  constexpr auto unreachable = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.size(), unreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbours(u)) {
      if (dist[e.peer] == unreachable) {
        dist[e.peer] = dist[u] + 1;
        frontier.push(e.peer);
      }
    }
  }
  return dist;
}

std::vector<double> shortest_latencies(const Graph& g, NodeId source) {
  FASTCONS_EXPECTS(source < g.size());
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.size(), inf);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : g.neighbours(u)) {
      const double nd = d + e.latency;
      if (nd < dist[e.peer]) {
        dist[e.peer] = nd;
        heap.push({nd, e.peer});
      }
    }
  }
  return dist;
}

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  std::vector<std::vector<NodeId>> components;
  std::vector<bool> seen(g.size(), false);
  for (NodeId start = 0; start < g.size(); ++start) {
    if (seen[start]) continue;
    components.emplace_back();
    auto& component = components.back();
    std::queue<NodeId> frontier;
    seen[start] = true;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      component.push_back(u);
      for (const Edge& e : g.neighbours(u)) {
        if (!seen[e.peer]) {
          seen[e.peer] = true;
          frontier.push(e.peer);
        }
      }
    }
  }
  return components;
}

bool is_connected(const Graph& g) {
  if (g.empty()) return true;
  return connected_components(g).size() == 1;
}

std::size_t diameter(const Graph& g) {
  if (g.empty()) throw ConfigError("diameter of empty graph");
  if (!is_connected(g)) throw ConfigError("diameter of disconnected graph");
  std::size_t best = 0;
  for (NodeId s = 0; s < g.size(); ++s) {
    const auto dist = bfs_hops(g, s);
    for (const std::size_t d : dist) best = std::max(best, d);
  }
  return best;
}

double mean_path_length(const Graph& g) {
  if (g.size() < 2) throw ConfigError("mean_path_length needs >= 2 nodes");
  if (!is_connected(g)) throw ConfigError("mean_path_length on disconnected graph");
  double sum = 0.0;
  for (NodeId s = 0; s < g.size(); ++s) {
    const auto dist = bfs_hops(g, s);
    for (const std::size_t d : dist) sum += static_cast<double>(d);
  }
  const auto n = static_cast<double>(g.size());
  return sum / (n * (n - 1.0));
}

std::vector<std::size_t> degree_sequence(const Graph& g) {
  std::vector<std::size_t> degrees(g.size());
  for (NodeId n = 0; n < g.size(); ++n) degrees[n] = g.degree(n);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  return degrees;
}

PowerLawFit degree_rank_fit(const Graph& g) {
  const auto degrees = degree_sequence(g);
  // Least squares on (log rank, log degree); degree-0 nodes are skipped
  // (log undefined) — random-but-connected generators never produce them.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    if (degrees[i] == 0) continue;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(degrees[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    ++count;
  }
  PowerLawFit fit;
  if (count < 2) return fit;
  const auto n = static_cast<double>(count);
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  const double ss_res = ss_tot - fit.slope * (sxy - sx * sy / n);
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace fastcons
