// Topology generators (DESIGN.md S2). barabasi_albert() is the BRITE
// replacement: Medina et al.'s two Internet-formation factors — incremental
// growth (F2) and preferential connectivity (F1) — are exactly the BA
// process, and tests verify the resulting Faloutsos power laws.
#ifndef FASTCONS_TOPOLOGY_GENERATORS_HPP
#define FASTCONS_TOPOLOGY_GENERATORS_HPP

#include <cstddef>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace fastcons {

/// Link latency assignment shared by all generators: every edge gets an
/// independent latency uniform on [lo, hi]. The defaults keep propagation
/// delays two orders of magnitude below the session period, the regime the
/// paper's evaluation assumes.
struct LatencyRange {
  double lo = 0.01;
  double hi = 0.05;
};

/// Path of n nodes: 0-1-2-...-(n-1). Requires n >= 1.
Graph make_line(std::size_t n, LatencyRange lat, Rng& rng);

/// Cycle of n nodes. Requires n >= 3.
Graph make_ring(std::size_t n, LatencyRange lat, Rng& rng);

/// width x height grid with 4-neighbour connectivity. Requires both >= 1.
Graph make_grid(std::size_t width, std::size_t height, LatencyRange lat,
                Rng& rng);

/// Star: node 0 is the hub, nodes 1..n-1 are leaves. Requires n >= 2.
Graph make_star(std::size_t n, LatencyRange lat, Rng& rng);

/// Complete graph on n nodes. Requires n >= 2.
Graph make_complete(std::size_t n, LatencyRange lat, Rng& rng);

/// Balanced binary tree with n nodes (node i's parent is (i-1)/2).
Graph make_binary_tree(std::size_t n, LatencyRange lat, Rng& rng);

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// m0 = m + 1 nodes, then each new node attaches to m distinct existing
/// nodes chosen with probability proportional to their degree. Connected by
/// construction. Requires n > m >= 1.
Graph make_barabasi_albert(std::size_t n, std::size_t m, LatencyRange lat,
                           Rng& rng);

/// Erdős–Rényi G(n, p) conditioned on connectivity: after sampling, any
/// disconnected component is joined to the giant component by one random
/// edge (documented deviation — keeps the generator total). Requires n >= 2
/// and p in [0, 1].
Graph make_erdos_renyi(std::size_t n, double p, LatencyRange lat, Rng& rng);

/// Waxman random geometric graph on the unit square: P(edge u,v) =
/// alpha * exp(-d(u,v) / (beta * L)), L = max distance. Joined up like
/// make_erdos_renyi if disconnected. Latency is proportional to Euclidean
/// distance scaled into [lat.lo, lat.hi].
Graph make_waxman(std::size_t n, double alpha, double beta, LatencyRange lat,
                  Rng& rng);

/// Two dense regions (cliques of size k) joined by a low-connectivity chain
/// of `bridge_len` nodes — the "islands" scenario of paper §6.
Graph make_dumbbell(std::size_t k, std::size_t bridge_len, LatencyRange lat,
                    Rng& rng);

}  // namespace fastcons

#endif  // FASTCONS_TOPOLOGY_GENERATORS_HPP
