#include "topology/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId a, NodeId b, double latency) {
  FASTCONS_EXPECTS(a < size() && b < size());
  FASTCONS_EXPECTS(a != b);
  FASTCONS_EXPECTS(latency >= 0.0);
  if (has_edge(a, b)) throw ConfigError("duplicate edge in topology");
  adjacency_[a].push_back(Edge{b, latency});
  adjacency_[b].push_back(Edge{a, latency});
  ++edge_count_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  FASTCONS_EXPECTS(a < size() && b < size());
  const auto& smaller =
      adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const NodeId target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  return std::any_of(smaller.begin(), smaller.end(),
                     [target](const Edge& e) { return e.peer == target; });
}

const Edge* Graph::find_edge(NodeId a, NodeId b) const {
  FASTCONS_EXPECTS(a < size() && b < size());
  for (const Edge& e : adjacency_[a]) {
    if (e.peer == b) return &e;
  }
  return nullptr;
}

double Graph::latency(NodeId a, NodeId b) const {
  FASTCONS_EXPECTS(a < size() && b < size());
  for (const Edge& e : adjacency_[a]) {
    if (e.peer == b) return e.latency;
  }
  throw ConfigError("latency() on missing edge");
}

void Graph::set_latency(NodeId a, NodeId b, double latency) {
  FASTCONS_EXPECTS(a < size() && b < size());
  FASTCONS_EXPECTS(latency >= 0.0);
  bool found = false;
  for (Edge& e : adjacency_[a]) {
    if (e.peer == b) {
      e.latency = latency;
      found = true;
    }
  }
  for (Edge& e : adjacency_[b]) {
    if (e.peer == a) e.latency = latency;
  }
  if (!found) throw ConfigError("set_latency() on missing edge");
}

const std::vector<Edge>& Graph::neighbours(NodeId n) const {
  FASTCONS_EXPECTS(n < size());
  return adjacency_[n];
}

std::vector<NodeId> Graph::nodes() const {
  std::vector<NodeId> ids(size());
  for (std::size_t i = 0; i < size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

}  // namespace fastcons
