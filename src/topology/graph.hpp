// Undirected weighted graph: the replica interconnection topology. Edge
// weights are link propagation delays in session-time units.
#ifndef FASTCONS_TOPOLOGY_GRAPH_HPP
#define FASTCONS_TOPOLOGY_GRAPH_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace fastcons {

/// One directed half of an undirected edge, as seen from its owner node.
struct Edge {
  NodeId peer = kInvalidNode;
  double latency = 0.0;  // propagation delay, session-time units
};

/// Adjacency-list graph. Nodes are dense 0..size()-1. Self-loops and
/// parallel edges are rejected; the graph stays simple by construction.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t size() const noexcept { return adjacency_.size(); }
  bool empty() const noexcept { return adjacency_.empty(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Appends a node; returns its id.
  NodeId add_node();

  /// Adds the undirected edge {a, b} with the given latency. Requires a != b,
  /// both in range, and the edge not already present.
  void add_edge(NodeId a, NodeId b, double latency = 0.0);

  bool has_edge(NodeId a, NodeId b) const;

  /// The {a, b} edge as seen from `a`, or nullptr when absent — one
  /// adjacency scan where a has_edge + latency pair would take two (the
  /// simulated dispatch path asks on every message).
  const Edge* find_edge(NodeId a, NodeId b) const;

  /// Latency of edge {a, b}; requires the edge to exist.
  double latency(NodeId a, NodeId b) const;

  /// Replaces the latency of the existing edge {a, b}.
  void set_latency(NodeId a, NodeId b, double latency);

  const std::vector<Edge>& neighbours(NodeId n) const;

  std::size_t degree(NodeId n) const { return neighbours(n).size(); }

  /// All node ids 0..size()-1, handy for range-for in callers.
  std::vector<NodeId> nodes() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace fastcons

#endif  // FASTCONS_TOPOLOGY_GRAPH_HPP
