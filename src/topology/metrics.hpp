// Graph analysis: BFS distances, diameter, components, degree statistics and
// the Faloutsos power-law fit used to validate the BRITE-replacement
// generator (paper §5 cites both).
#ifndef FASTCONS_TOPOLOGY_METRICS_HPP
#define FASTCONS_TOPOLOGY_METRICS_HPP

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace fastcons {

/// Hop distances from `source` to every node; unreachable == SIZE_MAX.
std::vector<std::size_t> bfs_hops(const Graph& g, NodeId source);

/// Latency-weighted shortest-path distances from `source` (Dijkstra);
/// unreachable == +inf.
std::vector<double> shortest_latencies(const Graph& g, NodeId source);

/// Connected components, each a list of node ids; the component containing
/// node 0 comes first. Empty graph -> empty result.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Hop-count diameter. Requires a connected, non-empty graph.
std::size_t diameter(const Graph& g);

/// Mean hop distance over all ordered pairs. Requires connected, size >= 2.
double mean_path_length(const Graph& g);

/// Least-squares fit of log(degree) against log(rank) where rank 1 is the
/// highest-degree node — Faloutsos et al.'s rank exponent power law. On a
/// BA graph the slope is clearly negative with high |R|.
struct PowerLawFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

PowerLawFit degree_rank_fit(const Graph& g);

/// Sorted (descending) degree sequence.
std::vector<std::size_t> degree_sequence(const Graph& g);

}  // namespace fastcons

#endif  // FASTCONS_TOPOLOGY_METRICS_HPP
