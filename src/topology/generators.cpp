#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "topology/metrics.hpp"

namespace fastcons {
namespace {

double draw_latency(LatencyRange lat, Rng& rng) {
  FASTCONS_EXPECTS(lat.lo >= 0.0 && lat.hi >= lat.lo);
  return rng.uniform(lat.lo, lat.hi);
}

/// Joins all components to the component of node 0 with one random edge
/// each, so sampled random graphs are always usable as replica networks.
void connect_components(Graph& g, LatencyRange lat, Rng& rng) {
  const auto components = connected_components(g);
  if (components.size() <= 1) return;
  // components[0] holds node 0's component; link every other one to it.
  for (std::size_t c = 1; c < components.size(); ++c) {
    const NodeId a = rng.pick(components[0]);
    const NodeId b = rng.pick(components[c]);
    if (!g.has_edge(a, b)) g.add_edge(a, b, draw_latency(lat, rng));
  }
}

}  // namespace

Graph make_line(std::size_t n, LatencyRange lat, Rng& rng) {
  if (n < 1) throw ConfigError("line topology needs n >= 1");
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
               draw_latency(lat, rng));
  }
  return g;
}

Graph make_ring(std::size_t n, LatencyRange lat, Rng& rng) {
  if (n < 3) throw ConfigError("ring topology needs n >= 3");
  Graph g = make_line(n, lat, rng);
  g.add_edge(static_cast<NodeId>(n - 1), 0, draw_latency(lat, rng));
  return g;
}

Graph make_grid(std::size_t width, std::size_t height, LatencyRange lat,
                Rng& rng) {
  if (width < 1 || height < 1) throw ConfigError("grid needs width,height >= 1");
  Graph g(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) g.add_edge(id(x, y), id(x + 1, y), draw_latency(lat, rng));
      if (y + 1 < height) g.add_edge(id(x, y), id(x, y + 1), draw_latency(lat, rng));
    }
  }
  return g;
}

Graph make_star(std::size_t n, LatencyRange lat, Rng& rng) {
  if (n < 2) throw ConfigError("star topology needs n >= 2");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(0, static_cast<NodeId>(i), draw_latency(lat, rng));
  }
  return g;
}

Graph make_complete(std::size_t n, LatencyRange lat, Rng& rng) {
  if (n < 2) throw ConfigError("complete topology needs n >= 2");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                 draw_latency(lat, rng));
    }
  }
  return g;
}

Graph make_binary_tree(std::size_t n, LatencyRange lat, Rng& rng) {
  if (n < 1) throw ConfigError("tree topology needs n >= 1");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<NodeId>((i - 1) / 2), static_cast<NodeId>(i),
               draw_latency(lat, rng));
  }
  return g;
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, LatencyRange lat,
                           Rng& rng) {
  if (m < 1) throw ConfigError("barabasi_albert needs m >= 1");
  if (n <= m) throw ConfigError("barabasi_albert needs n > m");
  const std::size_t m0 = m + 1;
  Graph g(n);
  // `stubs` holds one entry per edge endpoint; sampling uniformly from it is
  // sampling nodes proportionally to degree (preferential connectivity F1).
  // The simulation harness regenerates same-sized BA graphs thousands of
  // times per sweep point, so the working buffers are thread-local: after
  // the first trial on a thread the generator only allocates the Graph
  // itself. (Thread-local state never feeds randomness — draws come from
  // `rng` alone — so results are independent of thread placement.)
  thread_local std::vector<NodeId> stubs;
  thread_local std::vector<NodeId> targets;
  stubs.clear();
  stubs.reserve(2 * m * n);
  for (std::size_t i = 0; i < m0; ++i) {
    for (std::size_t j = i + 1; j < m0; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                 draw_latency(lat, rng));
      stubs.push_back(static_cast<NodeId>(i));
      stubs.push_back(static_cast<NodeId>(j));
    }
  }
  // Incremental growth (F2): nodes join one at a time.
  for (std::size_t v = m0; v < n; ++v) {
    targets.clear();
    while (targets.size() < m) {
      const NodeId candidate = stubs[rng.index(stubs.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (const NodeId t : targets) {
      g.add_edge(static_cast<NodeId>(v), t, draw_latency(lat, rng));
      stubs.push_back(static_cast<NodeId>(v));
      stubs.push_back(t);
    }
  }
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, LatencyRange lat, Rng& rng) {
  if (n < 2) throw ConfigError("erdos_renyi needs n >= 2");
  if (p < 0.0 || p > 1.0) throw ConfigError("erdos_renyi needs p in [0,1]");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                   draw_latency(lat, rng));
      }
    }
  }
  connect_components(g, lat, rng);
  return g;
}

Graph make_waxman(std::size_t n, double alpha, double beta, LatencyRange lat,
                  Rng& rng) {
  if (n < 2) throw ConfigError("waxman needs n >= 2");
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
    throw ConfigError("waxman needs alpha,beta in (0,1]");
  }
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.next_double(), rng.next_double()};
  const double max_dist = std::sqrt(2.0);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (rng.bernoulli(alpha * std::exp(-d / (beta * max_dist)))) {
        // Latency reflects geometric distance, mapped into [lo, hi].
        const double latency =
            lat.lo + (lat.hi - lat.lo) * (d / max_dist);
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), latency);
      }
    }
  }
  connect_components(g, lat, rng);
  return g;
}

Graph make_dumbbell(std::size_t k, std::size_t bridge_len, LatencyRange lat,
                    Rng& rng) {
  if (k < 2) throw ConfigError("dumbbell needs clique size k >= 2");
  const std::size_t n = 2 * k + bridge_len;
  Graph g(n);
  const auto clique = [&](std::size_t base) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        g.add_edge(static_cast<NodeId>(base + i), static_cast<NodeId>(base + j),
                   draw_latency(lat, rng));
      }
    }
  };
  clique(0);      // left island: nodes [0, k)
  clique(k);      // right island: nodes [k, 2k)
  // Chain of bridge nodes [2k, 2k+bridge_len) from node 0 to node k.
  NodeId prev = 0;
  for (std::size_t i = 0; i < bridge_len; ++i) {
    const auto b = static_cast<NodeId>(2 * k + i);
    g.add_edge(prev, b, draw_latency(lat, rng));
    prev = b;
  }
  g.add_edge(prev, static_cast<NodeId>(k), draw_latency(lat, rng));
  return g;
}

}  // namespace fastcons
