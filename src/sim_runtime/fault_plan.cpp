#include "sim_runtime/fault_plan.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {
namespace {

void check_probability(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw ConfigError(std::string("fault ") + name + " must be in [0, 1)");
  }
}

}  // namespace

void FaultPlan::reset(const FaultConfig& config, std::size_t nodes,
                      std::uint64_t seed) {
  check_probability(config.loss, "loss");
  check_probability(config.duplicate, "duplicate");
  check_probability(config.reorder, "reorder");
  if (config.reorder > 0.0 && config.reorder_delay_max <= 0.0) {
    throw ConfigError("fault reorder_delay_max must be > 0 when reordering");
  }
  if (config.crash_rate < 0.0) {
    throw ConfigError("fault crash_rate must be >= 0");
  }
  if (config.crash_rate > 0.0 && config.downtime_mean <= 0.0) {
    throw ConfigError("fault downtime_mean must be > 0 under churn");
  }
  for (const PartitionEvent& p : config.partitions) {
    if (p.groups < 2) throw ConfigError("partition needs >= 2 groups");
    if (p.heal_at && *p.heal_at < p.at) {
      throw ConfigError("partition heal_at must be >= at");
    }
  }
  config_ = config;
  nodes_ = nodes;
  rng_ = Rng(seed);
  down_until_.assign(nodes, std::nullopt);
  stats_ = FaultStats{};
}

FaultPlan::LinkFate FaultPlan::link_fate() {
  LinkFate fate;
  if (config_.loss > 0.0 && rng_.bernoulli(config_.loss)) {
    ++stats_.messages_lost;
    fate.lost = true;
    return fate;  // a lost message draws nothing further
  }
  if (config_.duplicate > 0.0 && rng_.bernoulli(config_.duplicate)) {
    ++stats_.messages_duplicated;
    fate.duplicated = true;
  }
  if (config_.reorder > 0.0) {
    if (rng_.bernoulli(config_.reorder)) {
      ++stats_.messages_delayed;
      fate.extra_delay = rng_.uniform(0.0, config_.reorder_delay_max);
    }
    if (fate.duplicated && rng_.bernoulli(config_.reorder)) {
      ++stats_.messages_delayed;
      fate.dup_extra_delay = rng_.uniform(0.0, config_.reorder_delay_max);
    }
  }
  return fate;
}

std::optional<std::size_t> FaultPlan::group_of(NodeId node,
                                               SimTime now) const {
  FASTCONS_EXPECTS(node < nodes_);
  // Later events win when windows overlap; in practice scenarios schedule
  // disjoint windows.
  for (auto it = config_.partitions.rbegin(); it != config_.partitions.rend();
       ++it) {
    if (now >= it->at && (!it->heal_at || now < *it->heal_at)) {
      return node * it->groups / nodes_;
    }
  }
  return std::nullopt;
}

bool FaultPlan::crossing_partition(NodeId a, NodeId b, SimTime now) const {
  if (config_.partitions.empty()) return false;
  const auto ga = group_of(a, now);
  if (!ga) return false;
  return *ga != *group_of(b, now);
}

FaultPlan::CrashOutcome FaultPlan::on_crash(NodeId node, SimTime now) {
  FASTCONS_EXPECTS(node < nodes_ && !node_down(node));
  ++stats_.crashes;
  CrashOutcome outcome;
  outcome.downtime = rng_.exponential(config_.downtime_mean);
  outcome.wipe = config_.wipe_on_restart;
  if (outcome.wipe) {
    ++stats_.wipes;
    outcome.wipe_seed = rng_.next_u64();
  }
  down_until_[node] = now + outcome.downtime;
  return outcome;
}

std::optional<double> FaultPlan::on_restart(NodeId node, SimTime now) {
  FASTCONS_EXPECTS(node < nodes_ && node_down(node));
  ++stats_.restarts;
  down_until_[node] = std::nullopt;
  if (!churn_active(now)) return std::nullopt;
  return rng_.exponential(1.0 / config_.crash_rate);
}

}  // namespace fastcons
