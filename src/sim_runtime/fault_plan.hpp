// FaultPlan: seeded fault injection for the simulated network — per-link
// message loss/duplication/bounded-reordering, node crash/restart churn
// (state wipe or retention), and scheduled partition/heal events.
//
// Determinism contract: every fault decision draws from the plan's OWN
// derived RNG stream, never from SimNetwork's driver or per-node streams,
// and a decision is only drawn when the corresponding fault class is
// enabled. A configuration with every probability at zero and no scheduled
// events therefore consumes ZERO draws and schedules ZERO events — the
// no-fault path is bit-identical to a build without this layer, which is
// what keeps every pre-existing scenario digest byte-stable (pinned by
// bench_results/smoke-digests.golden in CI).
#ifndef FASTCONS_SIM_RUNTIME_FAULT_PLAN_HPP
#define FASTCONS_SIM_RUNTIME_FAULT_PLAN_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastcons {

/// One scheduled partition: at `at` the nodes split into `groups` contiguous
/// id blocks (node's group = node * groups / n); messages crossing a group
/// boundary are dropped at send time until `heal_at`. `heal_at` unset means
/// the partition never heals (the negative-control configuration the
/// convergence-tracker tests use).
struct PartitionEvent {
  std::size_t groups = 2;
  SimTime at = 0.0;
  std::optional<SimTime> heal_at;
};

/// Fault-injection knobs. All probabilities are per-message and independent;
/// churn rates are per-node. Defaults disable everything.
struct FaultConfig {
  /// Probability a sent message is silently dropped. [0, 1).
  double loss = 0.0;

  /// Probability a sent (non-lost) message is delivered twice. The copy
  /// takes an independent reorder delay when reordering is on. [0, 1).
  double duplicate = 0.0;

  /// Probability a delivery is delayed by an extra uniform(0, reorder_delay_max)
  /// on top of the link latency — bounded reordering, not starvation. [0, 1).
  double reorder = 0.0;

  /// Upper bound on the extra reordering delay, in simulated time units.
  double reorder_delay_max = 0.25;

  /// Node crash arrivals per node per unit of UP time (exponential gaps);
  /// 0 disables churn.
  double crash_rate = 0.0;

  /// Mean crash duration (exponential), simulated time units.
  double downtime_mean = 1.0;

  /// On restart after a crash: true wipes the replica's state (the engine
  /// restarts empty and must anti-entropy its way back); false retains it
  /// (the node was merely unreachable).
  bool wipe_on_restart = true;

  /// Crashes are only generated before this time; nodes already down still
  /// restart. Lets scenarios measure catch-up after churn subsides (and
  /// makes convergence reachable at all under heavy churn).
  std::optional<SimTime> churn_until;

  /// Scheduled partition/heal events.
  std::vector<PartitionEvent> partitions;

  /// Any per-message fault enabled?
  bool link_faults() const noexcept {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0;
  }
  /// Node churn enabled?
  bool churn() const noexcept { return crash_rate > 0.0; }
  /// Anything at all enabled?
  bool enabled() const noexcept {
    return link_faults() || churn() || !partitions.empty();
  }
};

/// Monotone counters of the faults actually injected (telemetry; surfaced
/// as TrialResult counters by the faults scenario family).
struct FaultStats {
  std::uint64_t messages_lost = 0;        ///< dropped by the loss coin
  std::uint64_t messages_duplicated = 0;  ///< extra copies delivered
  std::uint64_t messages_delayed = 0;     ///< reorder delays applied
  std::uint64_t partition_drops = 0;      ///< dropped crossing a partition
  std::uint64_t crash_drops = 0;          ///< dropped at a down node
  std::uint64_t crashes = 0;              ///< crash events fired
  std::uint64_t restarts = 0;             ///< restart events fired
  std::uint64_t wipes = 0;                ///< restarts that wiped state
  std::uint64_t writes_deferred = 0;      ///< client writes deferred past a crash

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Seeded fault state machine for one simulated network. SimNetwork owns
/// one, resets it in wire() (pooled trials replay fresh trials exactly:
/// all state including the RNG is rebuilt from the config and seed), asks
/// it for per-message fates at send time, and drives the crash/restart
/// transitions from simulator events.
class FaultPlan {
 public:
  /// What happens to one sent message (drawn at send time).
  struct LinkFate {
    bool lost = false;
    bool duplicated = false;
    double extra_delay = 0.0;      ///< added to the primary delivery
    double dup_extra_delay = 0.0;  ///< added to the duplicate copy
  };

  /// Validates `config` (throws ConfigError) and rebuilds all state —
  /// per-node up/down flags, counters and the fault RNG — as if freshly
  /// constructed. `seed` must already be derived from the network seed
  /// (SimNetwork salts it) so fault draws never collide with driver or
  /// per-node streams.
  void reset(const FaultConfig& config, std::size_t nodes,
             std::uint64_t seed);

  const FaultConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled(); }

  /// Draws the fate of one message sent now. Only consults the RNG for
  /// fault classes with non-zero probability, so the draw sequence of a
  /// given configuration is stable under unrelated config extensions.
  LinkFate link_fate();

  /// True when `a` and `b` are separated by an active partition at `now`.
  /// Draw-free.
  bool crossing_partition(NodeId a, NodeId b, SimTime now) const;

  /// The partition group of `node` under the partition active at `now`, or
  /// nullopt when no partition is active. Draw-free; the invariant tests
  /// use it to assert no cross-group contamination.
  std::optional<std::size_t> group_of(NodeId node, SimTime now) const;

  // --- churn state machine (driven by SimNetwork's crash/restart events) --

  bool node_down(NodeId node) const {
    return node < down_until_.size() && down_until_[node].has_value();
  }
  /// Restart time of a down node (meaningless for up nodes).
  SimTime down_until(NodeId node) const { return *down_until_[node]; }

  /// Gap until a node's first crash (exponential in the crash rate).
  double first_crash_gap() { return rng_.exponential(1.0 / config_.crash_rate); }

  struct CrashOutcome {
    double downtime = 0.0;        ///< restart fires this much later
    bool wipe = false;            ///< reset the engine's state
    std::uint64_t wipe_seed = 0;  ///< engine reseed when wiping
  };
  /// Marks `node` down and draws its downtime (and wipe seed when state is
  /// wiped). The caller schedules the restart event at now + downtime.
  CrashOutcome on_crash(NodeId node, SimTime now);

  /// Marks `node` up again. Returns the gap until its next crash, or
  /// nullopt when churn has ended (now >= churn_until).
  std::optional<double> on_restart(NodeId node, SimTime now);

  /// True when a crash may still be scheduled at `at`.
  bool churn_active(SimTime at) const {
    return config_.churn() &&
           (!config_.churn_until || at < *config_.churn_until);
  }

  FaultStats& stats() noexcept { return stats_; }
  const FaultStats& stats() const noexcept { return stats_; }

 private:
  FaultConfig config_;
  std::size_t nodes_ = 0;
  Rng rng_;
  // down_until_[n]: restart time while n is crashed, nullopt while up.
  std::vector<std::optional<SimTime>> down_until_;
  FaultStats stats_;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_RUNTIME_FAULT_PLAN_HPP
