#include "sim_runtime/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fastcons {

TraceRecorder::TraceRecorder(SimNetwork& net) {
  net.on_delivery = [this](NodeId node, const Update& update,
                           DeliveryPath path, SimTime now) {
    events_.push_back(TraceEvent{now, node, update.id, path});
  };
}

std::vector<TraceEvent> TraceRecorder::for_update(UpdateId id) const {
  std::vector<TraceEvent> result;
  for (const TraceEvent& event : events_) {
    if (event.update == id) result.push_back(event);
  }
  return result;
}

std::size_t TraceRecorder::count_path(DeliveryPath path) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [path](const TraceEvent& e) { return e.path == path; }));
}

std::string TraceRecorder::describe(UpdateId id) const {
  std::ostringstream out;
  bool first = true;
  for (const TraceEvent& event : for_update(id)) {
    if (!first) out << " -> ";
    first = false;
    out << event.node << "@" << event.at << "("
        << delivery_path_name(event.path) << ")";
  }
  return out.str();
}

void TraceRecorder::write_csv(std::ostream& out) const {
  out << "at,node,origin,seq,path\n";
  for (const TraceEvent& event : events_) {
    out << event.at << ',' << event.node << ',' << event.update.origin << ','
        << event.update.seq << ',' << delivery_path_name(event.path) << '\n';
  }
}

}  // namespace fastcons
