// SimNetwork: runs one ReplicaEngine per topology node on the discrete-event
// simulator, modelling link latencies, message loss and link failures — the
// ns-2 replacement glue (DESIGN.md S6).
#ifndef FASTCONS_SIM_RUNTIME_SIM_NETWORK_HPP
#define FASTCONS_SIM_RUNTIME_SIM_NETWORK_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "demand/demand_model.hpp"
#include "sim/simulator.hpp"
#include "sim_runtime/fault_plan.hpp"
#include "topology/graph.hpp"

namespace fastcons {

/// Simulation-level knobs on top of the protocol configuration.
struct SimConfig {
  ProtocolConfig protocol;

  /// Inter-session timing: a Poisson process (exponential gaps, the classic
  /// anti-entropy model, "at random time" in the paper) or a fixed period
  /// with a uniformly random phase per node.
  enum class Timing { exponential, periodic } timing = Timing::exponential;

  /// Probability that any individual message is silently dropped.
  ///
  /// Historical knob, drawn from the network driver RNG — changing it moves
  /// every later draw and therefore every digest. New fault work should use
  /// `faults.loss` instead, which draws from the FaultPlan's own stream.
  double loss_rate = 0.0;

  /// Seeded fault injection: per-link loss/duplication/reordering, node
  /// crash/restart churn, scheduled partitions (fault_plan.hpp). The
  /// default (everything disabled) consumes no RNG draws and schedules no
  /// events, so it is bit-identical to the pre-fault-layer behaviour.
  FaultConfig faults;

  /// Master seed; every node and the network driver derive independent
  /// streams from it.
  std::uint64_t seed = 1;

  /// Prime every node's neighbour table with true demands at t=0 (the
  /// paper's experiments assume nodes already know neighbour demand; the
  /// advert protocol then keeps tables fresh if enabled).
  bool prime_tables = true;
};

/// A fully wired simulated replica network.
///
/// The topology is held as `shared_ptr<const Graph>` and never mutated:
/// trials of a sweep point that use one deterministic topology can share a
/// single immutable Graph with zero per-trial build cost, while callers
/// with a fresh per-trial graph pass it by value as before. Engines copy
/// the neighbour id lists they need at wiring time, so the graph is read,
/// never aliased mutably.
class SimNetwork {
 public:
  SimNetwork(Graph graph, std::shared_ptr<const DemandModel> demand,
             SimConfig config);
  SimNetwork(std::shared_ptr<const Graph> graph,
             std::shared_ptr<const DemandModel> demand, SimConfig config);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Rewires this instance as if freshly constructed with the given
  /// arguments — observationally identical, RNG streams included — while
  /// retaining slab slots, heap storage, engine log/kv/session capacity
  /// and the convergence tracker's arrays. A pooled network therefore runs
  /// steady-state trials allocation-free outside first touch. Overlay
  /// links, outages and the delivery observer are cleared.
  void reset(Graph graph, std::shared_ptr<const DemandModel> demand,
             SimConfig config);
  void reset(std::shared_ptr<const Graph> graph,
             std::shared_ptr<const DemandModel> demand, SimConfig config);

  std::size_t size() const noexcept { return engines_.size(); }
  Simulator& sim() noexcept { return sim_; }
  const Graph& graph() const noexcept { return *graph_; }
  ReplicaEngine& engine(NodeId n);
  const ReplicaEngine& engine(NodeId n) const;

  /// Schedules a client write at `node` at absolute time `at`; returns the
  /// id the write will get (deterministic: only SimNetwork injects writes).
  UpdateId schedule_write(NodeId node, std::string key, std::string value,
                          SimTime at);

  /// Adds an island-overlay link (§6): both engines treat each other as
  /// neighbours; messages between them take `latency`.
  void add_overlay_link(NodeId a, NodeId b, double latency);

  /// Messages sent over {a, b} during [down_at, up_at) are dropped.
  void add_link_failure(NodeId a, NodeId b, SimTime down_at, SimTime up_at);

  /// Runs the simulation until the given absolute time.
  void run_until(SimTime t);

  /// Runs until every node holds `id` or `deadline` passes. Returns whether
  /// full coverage was reached.
  bool run_until_update_everywhere(UpdateId id, SimTime deadline);

  /// Runs until all summaries are equal (checked every `check_every`) or
  /// deadline. Returns whether convergence was reached.
  bool run_until_consistent(SimTime deadline, SimTime check_every = 0.5);

  /// True when every engine's summary equals every other's. Incremental:
  /// every delivery bumps a revision counter and folds the update id into a
  /// per-node digest, so the common cases — nothing changed since the last
  /// check, or counts/digests disagree — cost O(1)/O(n); the full summary
  /// comparison only runs when every digest matches.
  bool all_consistent() const;

  /// Events executed by the underlying simulator so far.
  std::uint64_t events_executed() const noexcept {
    return sim_.events_executed();
  }

  std::size_t nodes_holding(UpdateId id) const;

  /// Time node `n` first applied `id` (any path), if it has.
  std::optional<SimTime> first_delivery(NodeId n, UpdateId id) const;

  /// Demand of every node at the current simulated time.
  std::vector<double> demand_now() const;

  /// Sum of per-engine traffic counters.
  TrafficCounters total_traffic() const;

  /// Sum of per-engine protocol statistics.
  EngineStats total_stats() const;

  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// The fault-injection state machine (config, node up/down, counters).
  const FaultPlan& faults() const noexcept { return faults_; }

  /// Counters of the faults injected so far this trial.
  const FaultStats& fault_stats() const noexcept { return faults_.stats(); }

  /// Optional observer invoked on every first-time delivery at any node.
  std::function<void(NodeId, const Update&, DeliveryPath, SimTime)> on_delivery;

  /// Optional observer invoked when a node crashes (`wiped` = its state was
  /// reset at that instant) and when it restarts. Cleared by reset(), like
  /// on_delivery.
  std::function<void(NodeId, bool wiped, SimTime)> on_crash;
  std::function<void(NodeId, bool wiped, SimTime)> on_restart;

 private:
  /// Shared tail of construction and reset(): validates the arguments,
  /// (re)builds engines and per-node RNG streams in exactly the
  /// constructor's draw order, primes demand knowledge, installs the
  /// delivery hooks and starts the timers.
  void wire(std::shared_ptr<const Graph> graph,
            std::shared_ptr<const DemandModel> demand, SimConfig config);
  void start_timers();
  /// Self-rescheduling timer bodies. Scheduled events capture just
  /// [this, node], which fits EventFn's inline buffer — no allocation and
  /// no closure-ownership gymnastics (see sim/timer_pool.hpp for the
  /// pattern external workloads still use).
  void session_tick(NodeId node);
  void advert_tick(NodeId node);
  /// Fault churn: crash `node` now (possibly wiping its engine) and
  /// schedule its restart; restart it and schedule the next crash while the
  /// churn window is open.
  void crash_tick(NodeId node);
  void restart_tick(NodeId node);
  /// Applies a client write at `node`, deferring past any crash the node is
  /// currently in (re-scheduled for the restart instant).
  void perform_write(NodeId node, std::string key, std::string value);
  /// (Re)installs the delivery hook that feeds first_seen_/holding_count_
  /// and the convergence tracker; also used after a crash wipes an engine.
  void install_delivery_hook(NodeId node);
  /// Schedules deliveries for `outs`, moving each message into its event;
  /// the vector's elements are consumed but the vector itself is the
  /// caller's (the hot paths pass scratch_out_ and reuse its capacity).
  void dispatch(NodeId from, std::vector<Outbound>& outs);
  void deliver(NodeId from, NodeId to, Message&& msg);
  void refresh_own_demand(NodeId n);
  double link_latency(NodeId a, NodeId b) const;
  bool link_down(NodeId a, NodeId b, SimTime at) const;
  static std::uint64_t edge_key(NodeId a, NodeId b) noexcept;

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const DemandModel> demand_;
  SimConfig config_;
  Simulator sim_;
  Rng rng_;
  FaultPlan faults_;
  std::vector<ReplicaEngine> engines_;
  std::vector<Rng> node_rngs_;

  std::unordered_map<std::uint64_t, double> overlay_latency_;
  struct Outage {
    SimTime down_at;
    SimTime up_at;
  };
  std::unordered_map<std::uint64_t, std::vector<Outage>> outages_;

  // first_seen_[n]: (update id, first application time) at node n, sorted
  // by id. Flat vectors: a trial touches few ids per node, and hash tables
  // here cost a bucket-array allocation per node per trial.
  std::vector<std::vector<std::pair<UpdateId, SimTime>>> first_seen_;
  // (update id, nodes holding it), sorted by id.
  std::vector<std::pair<UpdateId, std::size_t>> holding_count_;
  std::vector<SeqNo> planned_writes_;
  std::uint64_t dropped_ = 0;

  // Incremental convergence tracker: per-node count and order-independent
  // digest of applied update ids (a node's summary is exactly the set of
  // updates its delivery hook has seen), plus a global revision so repeated
  // all_consistent() polls between deliveries are free.
  std::vector<std::uint64_t> node_applied_;
  std::vector<std::uint64_t> node_digest_;
  std::uint64_t summary_revision_ = 0;
  mutable std::uint64_t consistent_revision_ = ~std::uint64_t{0};
  mutable bool consistent_cache_ = false;

  // Reused output buffer for engine entry points: one delivery never nests
  // inside another (follow-up traffic goes through scheduled events), so a
  // single scratch vector serves every call without allocating.
  std::vector<Outbound> scratch_out_;

  // Reused neighbour-id buffer for wiring engines on reset.
  std::vector<NodeId> scratch_neighbours_;
};

/// Owns at most one SimNetwork and hands it out construct-or-reset style:
/// the first acquire() builds the network, every later one rewires it in
/// place. This is the one spelling of "pooled network per trial context"
/// shared by the harness scenarios, run_workload and the benchmarks.
class SimNetworkPool {
 public:
  SimNetwork& acquire(std::shared_ptr<const Graph> graph,
                      std::shared_ptr<const DemandModel> demand,
                      SimConfig config) {
    if (net_ != nullptr) {
      net_->reset(std::move(graph), std::move(demand), std::move(config));
    } else {
      net_ = std::make_unique<SimNetwork>(std::move(graph), std::move(demand),
                                          std::move(config));
    }
    return *net_;
  }

  SimNetwork& acquire(Graph graph, std::shared_ptr<const DemandModel> demand,
                      SimConfig config) {
    return acquire(std::make_shared<const Graph>(std::move(graph)),
                   std::move(demand), std::move(config));
  }

  /// The pooled network, or nullptr before the first acquire().
  SimNetwork* get() noexcept { return net_.get(); }

 private:
  std::unique_ptr<SimNetwork> net_;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_RUNTIME_SIM_NETWORK_HPP
