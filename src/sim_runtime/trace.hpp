// Event trace recorder: captures delivery/session events from a SimNetwork
// into an in-memory timeline that can be queried or dumped as CSV — the
// debugging/visualisation companion to the aggregate statistics.
#ifndef FASTCONS_SIM_RUNTIME_TRACE_HPP
#define FASTCONS_SIM_RUNTIME_TRACE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "sim_runtime/sim_network.hpp"

namespace fastcons {

/// One recorded event.
struct TraceEvent {
  SimTime at = 0.0;
  NodeId node = kInvalidNode;
  UpdateId update;
  DeliveryPath path = DeliveryPath::local_write;
};

/// Attaches to a SimNetwork's delivery observer and accumulates events.
/// Attach exactly one recorder per network (it owns the observer slot).
class TraceRecorder {
 public:
  explicit TraceRecorder(SimNetwork& net);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Events for one update id, in delivery order.
  std::vector<TraceEvent> for_update(UpdateId id) const;

  /// Number of deliveries through a given path.
  std::size_t count_path(DeliveryPath path) const;

  /// Delivery-order propagation trace of `id`: "0 ->(fast-push) 3 ->..."
  /// — one line per hop, handy in test failure messages and demos.
  std::string describe(UpdateId id) const;

  /// CSV: at,node,origin,seq,path
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace fastcons

#endif  // FASTCONS_SIM_RUNTIME_TRACE_HPP
